// Steady-state timed benchmark — the service-shaped counterpart to the
// run-to-completion backend matrix.
//
// Each cell (backend x insert-policy x key-distribution x threads x
// pop-batch) prefills ~1M keys, drives a fixed wall-clock window of mixed
// insert/delete traffic, and reports the MEDIAN sustained ops/s over
// --runs repetitions plus Definition 1 rank-error percentiles from a
// serialized monitored companion pass (see src/bench/steady_state.h for
// the full measurement discipline). Multi-run medians from a timed window
// are stable enough that CI diffs the --json artifact with
// tools/bench_diff.py --fail — the binding perf gate — where the legacy
// matrix only ever warned.
//
// Usage: steady_state [--backends=multiqueue-c2,lockfree-multiqueue,spraylist]
//                     [--threads=1,4] [--pop-batch=1,8]
//                     [--policies=uniform|all|name,name,...]
//                     [--distributions=uniform|all|name,name,...]
//                     [--prefill=1000000] [--time-ms=1000] [--runs=3]
//                     [--key-universe=4194304] [--seed=1] [--quality=1]
//                     [--numa=off,virtual:2] [--json=path]
#include <cstdio>
#include <string>
#include <vector>

#include "bench/steady_state.h"
#include "engine/job.h"
#include "sched/backend_registry.h"
#include "sched/key_distribution.h"
#include "util/cli.h"
#include "util/topology.h"

namespace {

using relax::bench::SteadyCell;
using relax::bench::SteadyConfig;
using relax::sched::BackendInfo;
using relax::sched::InsertPolicy;
using relax::sched::KeyDistribution;

/// Strict comma-split of an axis flag: empty tokens (trailing comma,
/// doubled comma, empty value) exit 2 with the flag named, instead of
/// feeding "" into a registry/name lookup.
std::vector<std::string> split_axis(const std::string& flag,
                                    const std::string& value) {
  auto tokens = relax::util::split_csv(value);
  if (!tokens) {
    std::fprintf(stderr,
                 "invalid --%s='%s': empty value or empty list entry "
                 "(trailing/doubled comma?)\n",
                 flag.c_str(), value.c_str());
    std::exit(2);
  }
  return *tokens;
}

std::string batch_label(const SteadyCell& c) {
  return (c.pop_batch_auto ? "a" : "") + std::to_string(c.pop_batch);
}

void print_row(const SteadyCell& c) {
  std::printf("%-20s %-11s %-10s %7u %6s %-10s %12.0f %11llu %9llu",
              c.backend.c_str(),
              std::string(insert_policy_name(c.policy)).c_str(),
              std::string(key_distribution_name(c.distribution)).c_str(),
              c.threads, batch_label(c).c_str(), c.numa.c_str(), c.ops_per_s,
              static_cast<unsigned long long>(c.ops),
              static_cast<unsigned long long>(c.empty_pops));
  if (c.op_p99_us >= 0.0) {
    std::printf("%9.1f", c.op_p99_us);
  } else {
    std::printf("%9s", "-");
  }
  if (c.mean_rank >= 0.0) {
    std::printf("%10.2f %8.0f %8.0f %9llu\n", c.mean_rank, c.rank_p90,
                c.rank_p99, static_cast<unsigned long long>(c.max_rank));
  } else {
    std::printf("%10s %8s %8s %9s\n", "-", "-", "-", "-");
  }
}

bool write_json(const char* path, const std::vector<SteadyCell>& cells) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --json path '%s'\n", path);
    return false;
  }
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out += "  ";
    relax::bench::append_json_row(out, cells[i]);
    out += i + 1 < cells.size() ? ",\n" : "\n";
  }
  out += "]\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

[[noreturn]] void usage_and_exit(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: bench_steady_state [flags]   (every axis flag is a "
      "comma-separated list)\n"
      "\n"
      "  --backends=<list>        backend registry names (default\n"
      "                           multiqueue-c2,lockfree-multiqueue,\n"
      "                           spraylist)\n"
      "  --threads=<list>         thread-count axis (default 1,4)\n"
      "  --pop-batch=<list>       labels per scheduler touch, each entry\n"
      "                           <k>, 'auto', or 'auto:<max>' — 'auto'\n"
      "                           enables the adaptive controller\n"
      "                           (default 1,8)\n"
      "  --numa=<list>            topology-aware placement axis, each\n"
      "                           entry off|auto|virtual:<K>; virtual:K\n"
      "                           splits workers into K synthetic domains\n"
      "                           for host-independent CI (default off)\n"
      "  --policies=all|<list>    insert policies (default uniform)\n"
      "  --distributions=all|<list>\n"
      "                           key distributions (default uniform)\n"
      "  --prefill=<k>            keys resident before the timed window\n"
      "                           (default 1000000)\n"
      "  --time-ms=<t>            timed window length (default 1000)\n"
      "  --runs=<r>               repetitions per cell, median reported\n"
      "                           (default 3)\n"
      "  --key-universe=<u>       key space size (default 4194304)\n"
      "  --quality=0|1            also run the Definition 1 monitored\n"
      "                           companion pass (default 1)\n"
      "  --seed=<s>               base seed (default 1)\n"
      "  --json=<path>            machine-readable artifact for\n"
      "                           tools/bench_diff.py --fail (the binding\n"
      "                           perf gate)\n"
      "  --help                   this text\n");
  std::exit(error != nullptr ? 2 : 0);
}

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  if (cli.has("help")) usage_and_exit(nullptr);

  SteadyConfig base;
  base.prefill = static_cast<std::size_t>(cli.get_int("prefill", 1'000'000));
  base.working_seconds = cli.get_int("time-ms", 1000) / 1e3;
  base.runs = static_cast<unsigned>(cli.get_int("runs", 3));
  base.key_universe =
      static_cast<std::uint32_t>(cli.get_int("key-universe", 1 << 22));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  base.quality = cli.get_bool("quality", true);

  const auto thread_list = cli.get_int_list("threads", {1, 4});

  std::vector<relax::engine::PopBatchFlag> batch_list;
  for (const std::string& token :
       split_axis("pop-batch", cli.get_string("pop-batch", "1,8"))) {
    const auto pb = relax::engine::parse_pop_batch_flag(token);
    if (!pb.valid) {
      std::fprintf(stderr,
                   "invalid --pop-batch entry '%s': expected a positive "
                   "integer, 'auto', or 'auto:<max>'\n",
                   token.c_str());
      return 2;
    }
    batch_list.push_back(pb);
  }

  std::vector<const BackendInfo*> backends;
  const std::string backend_flag = cli.get_string(
      "backends", "multiqueue-c2,lockfree-multiqueue,spraylist");
  if (backend_flag == "all") {
    for (const auto& info : relax::sched::backend_registry())
      backends.push_back(&info);
  } else {
    for (const std::string& name : split_axis("backends", backend_flag)) {
      const auto* info = relax::sched::find_backend(name);
      if (info == nullptr) {
        std::fprintf(stderr, "unknown backend '%s'; valid: %s\n",
                     name.c_str(), relax::sched::backend_names().c_str());
        return 2;
      }
      backends.push_back(info);
    }
  }

  std::vector<InsertPolicy> policies;
  const std::string policy_flag = cli.get_string("policies", "uniform");
  if (policy_flag == "all") {
    for (const InsertPolicy p : relax::sched::all_insert_policies())
      policies.push_back(p);
  } else {
    for (const std::string& name : split_axis("policies", policy_flag)) {
      const auto p = relax::sched::parse_insert_policy(name);
      if (!p) {
        std::fprintf(stderr,
                     "unknown insert policy '%s'; valid: uniform, split, "
                     "producer, alternating (or 'all')\n",
                     name.c_str());
        return 2;
      }
      policies.push_back(*p);
    }
  }

  // Topology axis: each entry is a TopologySpec the timed pass stripes and
  // pins under (off | auto | virtual:<K>), recorded per JSON cell so
  // bench_diff.py keys off-vs-striped rows apart.
  std::vector<relax::util::TopologySpec> numa_list;
  for (const std::string& token :
       split_axis("numa", cli.get_string("numa", "off"))) {
    const auto spec = relax::util::TopologySpec::parse(token);
    if (!spec) {
      std::fprintf(stderr,
                   "invalid --numa entry '%s': expected 'off', 'auto', or "
                   "'virtual:<K>' with K >= 1\n",
                   token.c_str());
      return 2;
    }
    numa_list.push_back(*spec);
  }

  std::vector<KeyDistribution> distributions;
  const std::string dist_flag = cli.get_string("distributions", "uniform");
  if (dist_flag == "all") {
    for (const KeyDistribution d : relax::sched::all_key_distributions())
      distributions.push_back(d);
  } else {
    for (const std::string& name : split_axis("distributions", dist_flag)) {
      const auto d = relax::sched::parse_key_distribution(name);
      if (!d) {
        std::fprintf(stderr,
                     "unknown key distribution '%s'; valid: uniform, "
                     "dijkstra, ascending, descending (or 'all')\n",
                     name.c_str());
        return 2;
      }
      distributions.push_back(*d);
    }
  }

  std::printf(
      "steady_state: prefill=%zu window=%.0fms runs=%u universe=%u "
      "quality=%d\n",
      base.prefill, base.working_seconds * 1e3, base.runs, base.key_universe,
      base.quality ? 1 : 0);
  std::printf(
      "%-20s %-11s %-10s %7s %6s %-10s %12s %11s %9s %9s %10s %8s %8s %9s\n",
      "backend", "policy", "dist", "threads", "batch", "numa", "ops/s", "ops",
      "empty", "p99-us", "mean-rank", "r-p90", "r-p99", "max-rank");

  std::vector<SteadyCell> cells;
  for (const std::int64_t t : thread_list) {
    for (const relax::engine::PopBatchFlag& pb : batch_list) {
      for (const relax::util::TopologySpec& numa : numa_list) {
        for (const BackendInfo* backend : backends) {
          for (const InsertPolicy policy : policies) {
            for (const KeyDistribution dist : distributions) {
              SteadyConfig cfg = base;
              cfg.backend = backend;
              cfg.threads = static_cast<unsigned>(t < 1 ? 1 : t);
              cfg.policy = policy;
              cfg.distribution = dist;
              cfg.pop_batch = pb.batch;
              cfg.pop_batch_auto = pb.adaptive;
              cfg.numa = numa;
              SteadyCell cell = relax::bench::run_steady_cell(cfg);
              print_row(cell);
              std::fflush(stdout);
              cells.push_back(std::move(cell));
            }
          }
        }
      }
    }
  }

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty() && !write_json(json_path.c_str(), cells)) return 1;
  return 0;
}
