// Experiment E5 — empirical validation of Definition 1 for every scheduler
// in the library: exponential tail bounds on rank error and on per-element
// priority inversions.
//
// For each scheduler we drain a uniform random priority stream through a
// RelaxationMonitor and print the empirical tails Pr[rank >= l] and
// Pr[inv >= l] at l = k, 2k, 4k, 8k, plus the observed maxima. Definition 1
// requires Pr[. >= l] <= exp(-l/k): the printed "bound" column shows that
// reference value.
//
// Usage: scheduler_quality [--n=100000] [--seed=1]
#include <cmath>
#include <cstdio>
#include <string>

#include "sched/exact_heap.h"
#include "sched/kbounded.h"
#include "sched/relaxation_monitor.h"
#include "sched/sim_multiqueue.h"
#include "sched/sim_spraylist.h"
#include "sched/topk_uniform.h"
#include "util/cli.h"

namespace {

template <typename S>
void report(const char* name, S scheduler, std::uint32_t n, std::uint32_t k) {
  relax::sched::RelaxationMonitor<S> mon(std::move(scheduler), n, 1);
  for (relax::sched::Priority p = 0; p < n; ++p) mon.insert(p);
  while (mon.approx_get_min()) {
  }
  const auto& rank = mon.rank_histogram();
  const auto& inv = mon.inversion_histogram();
  std::printf("%-18s k=%-4u | rank_max=%-8llu inv_max=%-8llu\n", name, k,
              static_cast<unsigned long long>(rank.max_value()),
              static_cast<unsigned long long>(inv.max_value()));
  std::printf("  %-10s %12s %12s %12s\n", "l", "Pr[rank>=l]", "Pr[inv>=l]",
              "exp(-l/k)");
  for (const std::uint32_t mult : {1u, 2u, 4u, 8u}) {
    const std::uint64_t l = static_cast<std::uint64_t>(mult) * k;
    std::printf("  %-10llu %12.5f %12.5f %12.5f\n",
                static_cast<unsigned long long>(l),
                rank.tail_fraction_at_least(l), inv.tail_fraction_at_least(l),
                std::exp(-static_cast<double>(l) / k));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 100000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::printf("# Definition 1 validation: empirical relaxation tails over a\n"
              "# drain of %u uniformly random priorities.\n\n", n);

  report("exact-heap", relax::sched::ExactHeapScheduler(), n, 1);
  for (const std::uint32_t k : {8u, 32u}) {
    report("top-k-uniform", relax::sched::TopKUniformScheduler(n, k, seed),
           n, k);
    report("multiqueue-sim", relax::sched::SimMultiQueue(k, seed), n, k);
    report("k-bounded", relax::sched::KBoundedScheduler(k), n, k);
    report("spraylist-sim",
           relax::sched::make_sim_spraylist(n, k, seed), n, k);
  }
  return 0;
}
