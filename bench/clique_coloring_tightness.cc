// Experiment E7 — the tightness example stated after Theorem 1:
//
// "consider executing a greedy graph coloring problem on a clique. In this
//  case, at any step, only the highest priority node can ever be processed,
//  and for each such node u, it takes O(k) delete attempts before u is
//  processed. Thus in total, the algorithm runs for O(nk) iterations."
//
// We sweep k on K_n and print failed_deletes / (n*k); a roughly constant
// column confirms the Theta(nk) shape.
//
// Usage: clique_coloring_tightness [--n=400] [--runs=3] [--seed=1]
#include <cstdio>

#include "algorithms/coloring.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/topk_uniform.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 400));
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const auto g = relax::graph::clique(n);
  std::printf("# Greedy coloring on K_%u with the canonical top-k uniform\n"
              "# scheduler: Theta(nk) total failed deletes expected.\n", n);
  std::printf("%6s %14s %14s\n", "k", "failed_deletes", "per_nk");
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    double total = 0;
    for (int r = 0; r < runs; ++r) {
      const auto pri = relax::graph::random_priorities(n, seed + r);
      relax::algorithms::ColoringProblem problem(g, pri);
      relax::sched::TopKUniformScheduler sched(n, k, seed + 100 + r);
      total += static_cast<double>(
          relax::core::run_sequential(problem, pri, sched).failed_deletes);
    }
    const double avg = total / runs;
    std::printf("%6u %14.1f %14.3f\n", k, avg,
                avg / (static_cast<double>(n) * k));
    std::fflush(stdout);
  }
  return 0;
}
