// Experiment E2 — reproduces **Figure 2** of the paper: concurrent MIS
// wall-time versus thread count on three G(n, p) graph classes, comparing
//
//   relaxed    the paper's framework over the concurrent MultiQueue
//              (4 sub-queues per thread),
//   exact      the exact concurrent scheduler (FAA FIFO + backoff-wait,
//              our stand-in for the wait-free queue of [27]),
//   seq        the optimized sequential greedy MIS baseline.
//
// Also prints the E6 headline numbers: peak speedup of each scheduler over
// the sequential baseline per graph class (paper: sparse ~18.2x relaxed vs
// ~5.0x exact; small dense ~24.6x vs ~17.8x; large dense ~16.3x vs ~6.9x;
// and "6x speedup at 24 threads" for sparse at 24 threads).
//
// Graph classes follow the paper's density profile, scaled ~10x down from
// the paper to this machine (see DESIGN.md substitution table). --scale
// multiplies sizes; trials per point default to 3 (paper: 5; error bars =
// min/max).
//
// Usage: fig2_concurrent_mis [--scale=1.0] [--trials=3]
//                            [--threads=1,2,4,8,16,24] [--seed=1]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "util/cli.h"
#include "util/thread_pin.h"
#include "util/timer.h"

namespace {

using relax::graph::Graph;

struct GraphClass {
  const char* name;
  std::uint32_t n;
  std::uint64_t m;
};

struct Series {
  std::vector<double> avg, lo, hi;
};

double run_sequential_baseline(const Graph& g,
                               const relax::graph::Priorities& pri) {
  relax::util::Timer timer;
  volatile std::size_t guard =
      relax::algorithms::sequential_greedy_mis(g, pri).size();
  (void)guard;
  return timer.seconds();
}

double run_sequential_scan_baseline(const Graph& g,
                                    const relax::graph::Priorities& pri) {
  relax::util::Timer timer;
  volatile std::size_t guard =
      relax::algorithms::sequential_greedy_mis_scan(g, pri).size();
  (void)guard;
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  std::vector<std::int64_t> default_threads;
  for (unsigned t = 1; t <= relax::util::hardware_threads(); t *= 2)
    default_threads.push_back(t);
  const unsigned hw = relax::util::hardware_threads();
  if (default_threads.back() != static_cast<std::int64_t>(hw))
    default_threads.push_back(hw);
  const auto thread_counts = cli.get_int_list("threads", default_threads);

  // Paper: sparse 1e8/1e9, small dense 1e6/1e9, large dense 1e7/1e10 —
  // identical density *ratios*, scaled ~100x down to laptop size.
  const GraphClass classes[] = {
      {"sparse", static_cast<std::uint32_t>(10000000 * scale),
       static_cast<std::uint64_t>(100000000 * scale)},
      {"small-dense", static_cast<std::uint32_t>(1000000 * scale),
       static_cast<std::uint64_t>(100000000 * scale)},
      {"large-dense", static_cast<std::uint32_t>(3000000 * scale),
       static_cast<std::uint64_t>(300000000 * scale)},
  };

  std::printf(
      "# Figure 2: concurrent MIS run time (seconds) vs thread count.\n"
      "# columns: threads relaxed_avg relaxed_min relaxed_max "
      "exact_avg exact_min exact_max\n");

  for (const auto& cls : classes) {
    const Graph g = relax::graph::gnm(cls.n, cls.m, seed);
    const auto pri = relax::graph::random_priorities(cls.n, seed + 7);
    const auto reference = relax::algorithms::sequential_greedy_mis(g, pri);

    double seq_time = 1e300, seq_scan_time = 1e300;
    for (int t = 0; t < trials; ++t) {
      seq_time = std::min(seq_time, run_sequential_baseline(g, pri));
      seq_scan_time =
          std::min(seq_scan_time, run_sequential_scan_baseline(g, pri));
    }

    // Two sequential baselines: dead-propagation (skips killed vertices in
    // O(1); the strongest sequential code we know) and the paper's §1 full
    // adjacency-scan formulation (Theta(m) edge visits). Speedup claims
    // depend heavily on which one is taken as "optimized sequential".
    std::printf("\n## class=%s n=%u m=%llu seq_time=%.4f seq_scan_time=%.4f\n",
                cls.name, cls.n,
                static_cast<unsigned long long>(g.num_edges()), seq_time,
                seq_scan_time);

    double best_relaxed = 1e300, best_exact = 1e300;
    double relaxed_at_max_threads = 1e300;
    for (const auto tc : thread_counts) {
      const auto threads = static_cast<unsigned>(tc);
      double rsum = 0, rmin = 1e300, rmax = 0;
      double esum = 0, emin = 1e300, emax = 0;
      for (int trial = 0; trial < trials; ++trial) {
        relax::core::ParallelOptions opts;
        opts.num_threads = threads;
        opts.seed = seed + 31 * trial;
        {
          relax::algorithms::AtomicMisProblem problem(g, pri);
          const auto stats =
              relax::core::run_parallel_relaxed(problem, pri, opts);
          if (problem.result() != reference) {
            std::fprintf(stderr, "ERROR: relaxed output mismatch!\n");
            return 1;
          }
          rsum += stats.seconds;
          rmin = std::min(rmin, stats.seconds);
          rmax = std::max(rmax, stats.seconds);
        }
        {
          relax::algorithms::AtomicMisProblem problem(g, pri);
          const auto stats =
              relax::core::run_parallel_exact(problem, pri, opts);
          if (problem.result() != reference) {
            std::fprintf(stderr, "ERROR: exact output mismatch!\n");
            return 1;
          }
          esum += stats.seconds;
          emin = std::min(emin, stats.seconds);
          emax = std::max(emax, stats.seconds);
        }
      }
      std::printf("%8u %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f\n", threads,
                  rsum / trials, rmin, rmax, esum / trials, emin, emax);
      std::fflush(stdout);
      best_relaxed = std::min(best_relaxed, rmin);
      best_exact = std::min(best_exact, emin);
      if (threads == hw || tc == thread_counts.back())
        relaxed_at_max_threads = rmin;
    }
    std::printf(
        "# %s peak speedup vs dead-propagation seq: relaxed %.1fx, exact "
        "%.1fx; relaxed at max threads %.1fx\n",
        cls.name, seq_time / best_relaxed, seq_time / best_exact,
        seq_time / relaxed_at_max_threads);
    std::printf(
        "# %s peak speedup vs scan seq (paper's formulation): relaxed "
        "%.1fx, exact %.1fx\n",
        cls.name, seq_scan_time / best_relaxed, seq_scan_time / best_exact);
  }
  return 0;
}
