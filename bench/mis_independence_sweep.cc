// Experiment E4 — Theorem 2 beyond the paper's Table 1 grid: the MIS
// relaxation overhead must stay flat while n grows by 100x and m by 100x.
//
// "Algorithm 4 incurs a relaxation cost with no dependence at all on the
//  size or structure of G, only on the relaxation factor k."
//
// Also sweeps structure (random, power-law, grid, star) at fixed k to
// exercise the "or structure" half of the claim.
//
// Usage: mis_independence_sweep [--runs=3] [--seed=1]
#include <cstdio>

#include "algorithms/mis.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/sim_multiqueue.h"
#include "util/cli.h"

namespace {

using relax::graph::Graph;

double mis_overhead(const Graph& g, std::uint32_t k, int runs,
                    std::uint64_t seed) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    const auto pri =
        relax::graph::random_priorities(g.num_vertices(), seed + 100 + r);
    relax::algorithms::MisProblem p(g, pri);
    relax::sched::SimMultiQueue s(k, seed + 200 + r);
    total += static_cast<double>(
        relax::core::run_sequential(p, pri, s).failed_deletes);
  }
  return total / runs;
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::printf("# Theorem 2: MIS extra iterations vs graph SIZE (k fixed)\n");
  std::printf("%9s %10s | %-10s %-10s\n", "n", "m", "k=8", "k=64");
  for (const std::uint32_t n : {10000u, 100000u, 1000000u}) {
    const Graph g = relax::graph::gnm(n, 10ull * n, seed);
    std::printf("%9u %10llu | %-10.1f %-10.1f\n", n,
                static_cast<unsigned long long>(g.num_edges()),
                mis_overhead(g, 8, runs, seed),
                mis_overhead(g, 64, runs, seed));
    std::fflush(stdout);
  }

  std::printf("\n# Theorem 2: MIS extra iterations vs graph STRUCTURE "
              "(n=100000, k=16)\n");
  const std::uint32_t n = 100000;
  struct Named {
    const char* name;
    Graph g;
  };
  const Named graphs[] = {
      {"gnm-sparse", relax::graph::gnm(n, 3ull * n, seed)},
      {"gnm-dense", relax::graph::gnm(n, 30ull * n, seed)},
      {"powerlaw-ba", relax::graph::barabasi_albert(n, 5, seed)},
      {"grid", relax::graph::grid(316, 316)},
      {"star", relax::graph::star(n)},
      {"rmat", relax::graph::rmat(1u << 17, 10ull * n, 0.57, 0.19, 0.19,
                                  seed)},
  };
  std::printf("%12s %9s %10s | %-10s\n", "structure", "n", "m", "extra");
  for (const auto& [name, g] : graphs) {
    std::printf("%12s %9u %10llu | %-10.1f\n", name, g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                mis_overhead(g, 16, runs, seed));
    std::fflush(stdout);
  }
  return 0;
}
