// Experiment E10 — the paper's §1 motivating example: parallelizing
// Dijkstra's SSSP with a relaxed scheduler.
//
// "The scheduler can retrieve vertices in relaxed order without breaking
// correctness, as the distance at each vertex is guaranteed to eventually
// converge to the minimum. The trade-off is between the performance gains
// arising from using simpler, more scalable schedulers, and the loss of
// determinism and the wasted work due to relaxed priority order."
//
// This bench quantifies exactly that trade-off:
//   (a) wall time of the concurrent relaxed SSSP vs sequential Dijkstra,
//       swept over thread counts;
//   (b) wasted work (stale pops) as a function of the relaxation degree
//       (MultiQueue queue factor) at fixed thread count.
//
// Distances are verified against Dijkstra on every run — relaxation never
// affects the output here (monotone convergence), only the work.
//
// Usage: sssp_motivation [--n=2000000] [--m=20000000] [--trials=3]
//                        [--threads=1,2,4,8,16,24] [--seed=1]
#include <cstdio>
#include <vector>

#include "algorithms/sssp.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/thread_pin.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 2000000));
  const auto m = static_cast<std::uint64_t>(cli.get_int("m", 20000000));
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  std::vector<std::int64_t> default_threads{1, 2, 4, 8, 16};
  const auto hw = static_cast<std::int64_t>(relax::util::hardware_threads());
  if (default_threads.back() < hw) default_threads.push_back(hw);
  const auto thread_counts = cli.get_int_list("threads", default_threads);

  const auto g = relax::graph::gnm(n, m, seed);
  const auto weights = relax::algorithms::synthetic_edge_weights(g, seed + 1);
  constexpr relax::graph::Vertex kSource = 0;

  double dijkstra_time = 1e300;
  std::vector<std::uint32_t> reference;
  for (int t = 0; t < trials; ++t) {
    relax::util::Timer timer;
    reference = relax::algorithms::dijkstra(g, weights, kSource);
    dijkstra_time = std::min(dijkstra_time, timer.seconds());
  }
  std::printf("# SSSP motivation (paper §1): G(n=%u, m=%llu), source=%u\n",
              n, static_cast<unsigned long long>(g.num_edges()), kSource);
  std::printf("# sequential Dijkstra: %.4f s\n", dijkstra_time);

  std::printf("\n## (a) relaxed concurrent SSSP vs threads (queue factor 4)\n");
  std::printf("%8s %10s %9s %12s %12s\n", "threads", "seconds", "speedup",
              "stale_pops", "stale_frac");
  for (const auto tc : thread_counts) {
    double best = 1e300;
    relax::algorithms::SsspStats best_stats;
    for (int t = 0; t < trials; ++t) {
      relax::algorithms::SsspStats stats;
      const auto dist = relax::algorithms::parallel_relaxed_sssp(
          g, weights, kSource, static_cast<unsigned>(tc), 4, seed + t,
          /*pop_batch=*/1, &stats);
      if (dist != reference) {
        std::fprintf(stderr, "ERROR: SSSP distances mismatch!\n");
        return 1;
      }
      if (stats.seconds < best) {
        best = stats.seconds;
        best_stats = stats;
      }
    }
    std::printf("%8lld %10.4f %8.1fx %12llu %11.4f%%\n",
                static_cast<long long>(tc), best, dijkstra_time / best,
                static_cast<unsigned long long>(best_stats.stale_pops),
                100.0 * static_cast<double>(best_stats.stale_pops) /
                    static_cast<double>(best_stats.pops));
    std::fflush(stdout);
  }

  std::printf("\n## (b) wasted work vs relaxation (max threads)\n");
  std::printf("%8s %10s %12s %11s\n", "factor", "seconds", "stale_pops",
              "stale_frac");
  for (const unsigned factor : {1u, 2u, 4u, 8u, 16u}) {
    relax::algorithms::SsspStats stats;
    const auto dist = relax::algorithms::parallel_relaxed_sssp(
        g, weights, kSource, static_cast<unsigned>(hw), factor, seed,
        /*pop_batch=*/1, &stats);
    if (dist != reference) {
      std::fprintf(stderr, "ERROR: SSSP distances mismatch!\n");
      return 1;
    }
    std::printf("%8u %10.4f %12llu %10.4f%%\n", factor, stats.seconds,
                static_cast<unsigned long long>(stats.stale_pops),
                100.0 * static_cast<double>(stats.stale_pops) /
                    static_cast<double>(stats.pops));
    std::fflush(stdout);
  }
  return 0;
}
