// Experiment E3 — Theorem 1 sanity for the *generic* framework
// (Algorithm 2): extra iterations = O(m/n) * poly(k).
//
// Sweeps the four generic problems the paper names (greedy coloring,
// greedy matching, list contraction, Knuth shuffle) across densities and
// relaxation factors and prints failed deletes alongside the m/n ratio, so
// the O(m/n)*poly(k) shape can be read off directly: within a column
// (fixed k), overhead should track m/n; within a row, it should grow with
// k but not with n.
//
// Usage: theorem1_generic_overhead [--runs=3] [--seed=1]
#include <cstdio>
#include <numeric>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/knuth_shuffle.h"
#include "algorithms/list_contraction.h"
#include "algorithms/matching.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/sim_multiqueue.h"
#include "util/cli.h"

namespace {

using relax::core::run_sequential;
using relax::graph::Graph;

double coloring_overhead(std::uint32_t n, std::uint64_t m, std::uint32_t k,
                         int runs, std::uint64_t seed) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    const Graph g = relax::graph::gnm(n, m, seed + r);
    const auto pri = relax::graph::random_priorities(n, seed + 100 + r);
    relax::algorithms::ColoringProblem p(g, pri);
    relax::sched::SimMultiQueue s(k, seed + 200 + r);
    total += static_cast<double>(run_sequential(p, pri, s).failed_deletes);
  }
  return total / runs;
}

double matching_overhead(std::uint32_t n, std::uint64_t m, std::uint32_t k,
                         int runs, std::uint64_t seed) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    const Graph g = relax::graph::gnm(n, m, seed + r);
    const relax::algorithms::EdgeIncidence inc(g);
    const auto pri =
        relax::graph::random_priorities(inc.num_edges(), seed + 100 + r);
    relax::algorithms::MatchingProblem p(inc, pri);
    relax::sched::SimMultiQueue s(k, seed + 200 + r);
    total += static_cast<double>(run_sequential(p, pri, s).failed_deletes);
  }
  return total / runs;
}

double contraction_overhead(std::uint32_t n, std::uint32_t k, int runs,
                            std::uint64_t seed) {
  double total = 0;
  std::vector<std::uint32_t> arr(n);
  std::iota(arr.begin(), arr.end(), 0u);
  for (int r = 0; r < runs; ++r) {
    const auto pri = relax::graph::random_priorities(n, seed + 100 + r);
    relax::algorithms::ListContractionProblem p(arr, pri);
    relax::sched::SimMultiQueue s(k, seed + 200 + r);
    total += static_cast<double>(run_sequential(p, pri, s).failed_deletes);
  }
  return total / runs;
}

double shuffle_overhead(std::uint32_t n, std::uint32_t k, int runs,
                        std::uint64_t seed) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    const auto targets = relax::algorithms::shuffle_targets(n, seed + r);
    const auto pri = relax::graph::random_priorities(n, seed + 100 + r);
    const relax::algorithms::PositionIndex index(targets, pri);
    relax::algorithms::KnuthShuffleProblem p(targets, index);
    relax::sched::SimMultiQueue s(k, seed + 200 + r);
    total += static_cast<double>(run_sequential(p, pri, s).failed_deletes);
  }
  return total / runs;
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::vector<std::int64_t> ks = cli.get_int_list("ks", {4, 16, 64});

  std::printf(
      "# Theorem 1: generic-framework extra iterations ~ O(m/n)*poly(k).\n");

  std::printf("\n## greedy coloring on G(n, m)\n");
  std::printf("%8s %9s %6s |", "n", "m", "m/n");
  for (const auto k : ks) std::printf(" k=%-9lld", static_cast<long long>(k));
  std::printf("\n");
  const std::pair<std::uint32_t, std::uint64_t> grid[] = {
      {20000, 20000}, {20000, 100000}, {20000, 400000},
      {80000, 80000}, {80000, 400000}, {80000, 1600000},
  };
  for (const auto& [n, m] : grid) {
    std::printf("%8u %9llu %6.1f |", n, static_cast<unsigned long long>(m),
                static_cast<double>(m) / n);
    for (const auto k : ks)
      std::printf(" %-11.1f", coloring_overhead(
                                  n, m, static_cast<std::uint32_t>(k), runs,
                                  seed));
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\n## greedy matching (tasks = edges; dependency graph = line "
              "graph)\n");
  std::printf("%8s %9s |", "n", "m");
  for (const auto k : ks) std::printf(" k=%-9lld", static_cast<long long>(k));
  std::printf("\n");
  for (const auto& [n, m] :
       {std::pair<std::uint32_t, std::uint64_t>{20000, 60000},
        {20000, 200000},
        {80000, 240000}}) {
    std::printf("%8u %9llu |", n, static_cast<unsigned long long>(m));
    for (const auto k : ks)
      std::printf(" %-11.1f", matching_overhead(
                                  n, m, static_cast<std::uint32_t>(k), runs,
                                  seed));
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\n## list contraction (m = n-1 dependency edges)\n");
  std::printf("%8s |", "n");
  for (const auto k : ks) std::printf(" k=%-9lld", static_cast<long long>(k));
  std::printf("\n");
  for (const std::uint32_t n : {20000u, 80000u, 320000u}) {
    std::printf("%8u |", n);
    for (const auto k : ks)
      std::printf(" %-11.1f", contraction_overhead(
                                  n, static_cast<std::uint32_t>(k), runs,
                                  seed));
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\n## Knuth shuffle (sparse conflict structure)\n");
  std::printf("%8s |", "n");
  for (const auto k : ks) std::printf(" k=%-9lld", static_cast<long long>(k));
  std::printf("\n");
  for (const std::uint32_t n : {20000u, 80000u, 320000u}) {
    std::printf("%8u |", n);
    for (const auto k : ks)
      std::printf(" %-11.1f", shuffle_overhead(
                                  n, static_cast<std::uint32_t>(k), runs,
                                  seed));
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
