// Experiment E11 — the paper's §5 future-work question, answered
// empirically: do the work bounds change when cost is measured in *edge
// accesses* instead of scheduler (vertex) queries?
//
// "One shortcoming of our approach is the fact that our cost measure is
//  the number of vertex accesses in the priority queue. Notice that in
//  theory our bounds may be substantially different when expressed in
//  other metrics, such as the number of edge accesses ... We plan to
//  investigate such cost measures in future work."
//
// Method: run sequential relaxed MIS / coloring at relaxation k and at
// k = 1 (exact) on the same (graph, pi), and report both overhead metrics:
//   extra vertex queries  = failed deletes (what Theorems 1-2 bound)
//   extra edge accesses   = edge_accesses(k) - edge_accesses(exact)
// The interesting contrast is degree skew: on a power-law graph one failed
// delete on a hub costs a full adjacency scan, so the edge metric can be
// much heavier per wasted query than on a uniform G(n, m).
//
// Usage: edge_cost_metric [--runs=3] [--seed=1] [--ks=4,16,64]
#include <cstdio>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/mis.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/sim_multiqueue.h"
#include "util/cli.h"

namespace {

using relax::graph::Graph;

struct Overheads {
  double extra_queries = 0;   // failed deletes
  double extra_edges = 0;     // edge accesses beyond the exact run
  double edges_per_query = 0; // ratio (the per-wasted-query edge price)
};

template <typename MakeProblem>
Overheads measure(const Graph& g, std::uint32_t k, int runs,
                  std::uint64_t seed, MakeProblem make_problem) {
  Overheads o;
  for (int r = 0; r < runs; ++r) {
    const auto pri =
        relax::graph::random_priorities(g.num_vertices(), seed + r);
    // Exact reference on the same permutation.
    auto exact_problem = make_problem(g, pri);
    relax::sched::SimMultiQueue exact_sched(1, seed + 100 + r);
    relax::core::run_sequential(exact_problem, pri, exact_sched);
    const auto exact_edges = exact_problem.edge_accesses();

    auto relaxed_problem = make_problem(g, pri);
    relax::sched::SimMultiQueue sched(k, seed + 200 + r);
    const auto stats =
        relax::core::run_sequential(relaxed_problem, pri, sched);
    o.extra_queries += static_cast<double>(stats.failed_deletes);
    o.extra_edges +=
        static_cast<double>(relaxed_problem.edge_accesses() - exact_edges);
  }
  o.extra_queries /= runs;
  o.extra_edges /= runs;
  o.edges_per_query =
      o.extra_queries > 0 ? o.extra_edges / o.extra_queries : 0.0;
  return o;
}

template <typename MakeProblem>
void report(const char* title, const Graph& uniform, const Graph& powerlaw,
            const std::vector<std::int64_t>& ks, int runs,
            std::uint64_t seed, MakeProblem make_problem) {
  std::printf("\n## %s\n", title);
  std::printf("%10s %6s %14s %14s %14s\n", "graph", "k", "extra_queries",
              "extra_edges", "edges/query");
  for (const auto [name, g] :
       {std::pair<const char*, const Graph*>{"uniform", &uniform},
        std::pair<const char*, const Graph*>{"powerlaw", &powerlaw}}) {
    for (const auto k : ks) {
      const auto o = measure(*g, static_cast<std::uint32_t>(k), runs, seed,
                             make_problem);
      std::printf("%10s %6lld %14.1f %14.1f %14.1f\n", name,
                  static_cast<long long>(k), o.extra_queries, o.extra_edges,
                  o.edges_per_query);
      std::fflush(stdout);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto ks = cli.get_int_list("ks", {4, 16, 64});

  std::printf(
      "# E11 (paper §5 future work): vertex-query vs edge-access cost of "
      "relaxation.\n"
      "# Uniform G(n, m) vs power-law (Barabasi-Albert) at equal edge "
      "count;\n"
      "# a failed delete on a hub costs a full adjacency scan, so the edge\n"
      "# metric is expected to be disproportionately heavier on skewed "
      "degrees.\n");

  const Graph uniform = relax::graph::gnm(100000, 500000, seed);
  const Graph powerlaw = relax::graph::barabasi_albert(100000, 5, seed);

  report("greedy MIS (Algorithm 4)", uniform, powerlaw, ks, runs, seed,
         [](const Graph& g, const relax::graph::Priorities& pri) {
           return relax::algorithms::MisProblem(g, pri);
         });
  report("greedy coloring (Algorithm 2)", uniform, powerlaw, ks, runs, seed,
         [](const Graph& g, const relax::graph::Priorities& pri) {
           return relax::algorithms::ColoringProblem(g, pri);
         });
  return 0;
}
