// Experiment E12 — Definition 1 under real concurrency.
//
// The paper's work bounds assume the scheduler's rank/fairness tails; its
// §2.1 notes that for MultiQueues "this holds even in concurrent
// executions" (reference [1]). This bench validates that claim for our
// concurrent schedulers: T threads pop from a shared queue while every
// delivery is ranked against an exact mirror of the current contents.
//
// Measurement protocol: a global mutex-protected order-statistics mirror
// serializes {pop, rank, erase} triples. The mirror slightly perturbs the
// timing (it serializes the *recording*, not the scheduler's internal
// races), so the measured distribution is an approximation of the free-
// running one; it is the standard way rank error is measured in the
// MultiQueue literature.
//
// Usage: concurrent_relaxation_quality [--n=200000] [--threads=2,8,24]
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/concurrent_multiqueue.h"
#include "sched/lockfree_multiqueue.h"
#include "sched/order_stat_set.h"
#include "sched/spraylist.h"
#include "util/cli.h"
#include "util/stats.h"

namespace {

using relax::sched::OrderStatSet;
using relax::sched::Priority;

struct TailTable {
  double mean = 0;
  std::uint64_t max = 0;
  double frac8 = 0, frac32 = 0, frac128 = 0, frac512 = 0;
};

/// Drains `queue` (pre-loaded with 0..n-1) from `threads` threads,
/// ranking every delivery against a serialized exact mirror.
template <typename Queue>
TailTable measure(Queue& queue, std::uint32_t n, unsigned threads) {
  OrderStatSet mirror(n);
  for (Priority p = 0; p < n; ++p) mirror.insert(p);
  std::mutex mirror_lock;
  std::vector<std::uint64_t> ranks;
  ranks.reserve(n);
  {
    std::vector<std::jthread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        auto handle = queue.get_handle();
        for (;;) {
          std::unique_lock<std::mutex> guard(mirror_lock);
          // Pop under the mirror lock so the rank snapshot is consistent
          // with the pop (see the protocol note in the header comment).
          const auto p = handle.approx_get_min();
          if (!p) return;
          ranks.push_back(mirror.rank_of(*p));
          mirror.erase(*p);
        }
      });
    }
  }
  TailTable tt;
  double sum = 0;
  for (const auto r : ranks) {
    sum += static_cast<double>(r);
    tt.max = std::max(tt.max, r);
    if (r >= 8) ++tt.frac8;
    if (r >= 32) ++tt.frac32;
    if (r >= 128) ++tt.frac128;
    if (r >= 512) ++tt.frac512;
  }
  const auto total = static_cast<double>(ranks.size());
  tt.mean = sum / total;
  tt.frac8 /= total;
  tt.frac32 /= total;
  tt.frac128 /= total;
  tt.frac512 /= total;
  return tt;
}

void print_row(const char* name, unsigned threads, const TailTable& tt) {
  std::printf("%-12s %7u %8.1f %7llu %9.4f %9.4f %9.5f %9.5f\n", name,
              threads, tt.mean, static_cast<unsigned long long>(tt.max),
              tt.frac8, tt.frac32, tt.frac128, tt.frac512);
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 200000));
  const auto thread_counts = cli.get_int_list("threads", {2, 8, 24});

  std::printf(
      "# E12: rank-error tails of concurrent schedulers under real "
      "concurrency\n"
      "# (Definition 1 / reference [1]: the two-choice bounds should "
      "survive\n"
      "# asynchronous execution). q = 4*threads sub-queues.\n");
  std::printf("%-12s %7s %8s %7s %9s %9s %9s %9s\n", "scheduler", "threads",
              "mean", "max", "P[r>=8]", "P[r>=32]", "P[r>=128]",
              "P[r>=512]");

  for (const auto tc : thread_counts) {
    const auto threads = static_cast<unsigned>(tc);
    {
      relax::sched::ConcurrentMultiQueue q(4 * threads, 1);
      std::vector<Priority> keys(n);
      for (Priority p = 0; p < n; ++p) keys[p] = p;
      q.bulk_load(keys);
      print_row("multiqueue", threads, measure(q, n, threads));
    }
    {
      relax::sched::LockFreeMultiQueue q(4 * threads, 1);
      std::vector<Priority> keys(n);
      for (Priority p = 0; p < n; ++p) keys[p] = p;
      q.bulk_load(keys);
      print_row("lockfree-mq", threads, measure(q, n, threads));
    }
    {
      relax::sched::SprayList q(threads, 1);
      for (Priority p = 0; p < n; ++p) q.insert(p);
      print_row("spraylist", threads, measure(q, n, threads));
    }
    std::fflush(stdout);
  }
  return 0;
}
