// Experiment E9 — scheduler micro-throughput (google-benchmark).
//
// Measures raw insert/delete-min throughput of every scheduler in the
// library, sequential and concurrent, to quantify the operation-level
// speedup relaxation buys ("operation-level speedups provided by
// relaxation", §1). The concurrent MultiQueue is swept over thread counts;
// the MPMC FIFO gives the exact-scheduler baseline cost.
#include <benchmark/benchmark.h>

#include <atomic>
#include <optional>
#include <vector>

#include "sched/concurrent_multiqueue.h"
#include "sched/exact_heap.h"
#include "sched/faa_array_queue.h"
#include "sched/kbounded.h"
#include "sched/lockfree_multiqueue.h"
#include "sched/mpmc_queue.h"
#include "sched/sim_multiqueue.h"
#include "sched/sim_spraylist.h"
#include "sched/topk_uniform.h"
#include "util/rng.h"

namespace {

constexpr std::uint32_t kUniverse = 1 << 20;

template <typename S>
void drain_mixed(S& sched, benchmark::State& state) {
  // 50/50 insert/pop mix over a pre-warmed scheduler. Priorities are
  // recycled through a shuffled free-list so every present priority is
  // distinct — the framework invariant the order-statistics-backed
  // schedulers rely on (labels are unique; re-insertion happens only after
  // removal).
  relax::util::Rng rng(42);
  std::vector<std::uint32_t> free_list =
      relax::util::random_permutation(kUniverse, rng);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    sched.insert(free_list.back());
    free_list.pop_back();
  }
  std::uint64_t ops = 0;
  for (auto _ : state) {
    if ((ops & 1) == 0 && !free_list.empty()) {
      sched.insert(free_list.back());
      free_list.pop_back();
    } else {
      const auto p = sched.approx_get_min();
      benchmark::DoNotOptimize(p);
      if (p) free_list.push_back(*p);
    }
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void BM_ExactHeap(benchmark::State& state) {
  relax::sched::ExactHeapScheduler s;
  drain_mixed(s, state);
}
BENCHMARK(BM_ExactHeap);

void BM_TopKUniform(benchmark::State& state) {
  relax::sched::TopKUniformScheduler s(
      kUniverse, static_cast<std::uint32_t>(state.range(0)), 1);
  drain_mixed(s, state);
}
BENCHMARK(BM_TopKUniform)->Arg(8)->Arg(64);

void BM_SimMultiQueue(benchmark::State& state) {
  relax::sched::SimMultiQueue s(static_cast<std::uint32_t>(state.range(0)),
                                1);
  drain_mixed(s, state);
}
BENCHMARK(BM_SimMultiQueue)->Arg(8)->Arg(64);

void BM_SimSprayList(benchmark::State& state) {
  auto s = relax::sched::make_sim_spraylist(
      kUniverse, static_cast<std::uint32_t>(state.range(0)), 1);
  drain_mixed(s, state);
}
BENCHMARK(BM_SimSprayList)->Arg(8)->Arg(64);

void BM_KBounded(benchmark::State& state) {
  relax::sched::KBoundedScheduler s(
      static_cast<std::uint32_t>(state.range(0)));
  drain_mixed(s, state);
}
BENCHMARK(BM_KBounded)->Arg(8)->Arg(64);

// --- concurrent structures: thread sweep via google-benchmark threads ---
//
// google-benchmark runs the function body in every thread with no barrier
// around the code outside the `for (auto _ : state)` loop, so the naive
// thread_index()==0 setup/teardown pattern races: another thread can use
// the shared structure before construction finishes or after thread 0
// deletes it. SharedSetup spin-waits on an atomic pointer for setup and
// lets the *last* thread out run the teardown.

template <typename T>
struct SharedSetup {
  std::atomic<T*> ptr{nullptr};
  std::atomic<unsigned> finished{0};

  template <typename Make>
  T* acquire(benchmark::State& state, Make make) {
    if (state.thread_index() == 0) ptr.store(make(), std::memory_order_release);
    T* p;
    while ((p = ptr.load(std::memory_order_acquire)) == nullptr) {
    }
    return p;
  }

  void release(benchmark::State& state) {
    if (finished.fetch_add(1) + 1 ==
        static_cast<unsigned>(state.threads())) {
      delete ptr.exchange(nullptr, std::memory_order_acq_rel);
      finished.store(0, std::memory_order_release);
    }
  }
};

SharedSetup<relax::sched::ConcurrentMultiQueue> g_mq;
SharedSetup<relax::sched::LockFreeMultiQueue> g_lfmq;
SharedSetup<relax::sched::MpmcQueue<std::uint32_t>> g_fifo;
SharedSetup<relax::sched::FaaArrayQueue<std::uint32_t>> g_faa;

void BM_ConcurrentMultiQueue(benchmark::State& state) {
  auto* mq = g_mq.acquire(state, [&] {
    auto* q = new relax::sched::ConcurrentMultiQueue(
        4 * static_cast<unsigned>(state.threads()), 1);
    auto handle = q->get_handle();
    for (std::uint32_t p = 0; p < 1 << 16; ++p) handle.insert(p);
    return q;
  });
  auto handle = mq->get_handle();
  relax::util::Rng rng(state.thread_index() + 7);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    if ((ops & 1) == 0) {
      handle.insert(static_cast<std::uint32_t>(
          relax::util::bounded(rng, kUniverse)));
    } else {
      benchmark::DoNotOptimize(handle.approx_get_min());
    }
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  g_mq.release(state);
}
BENCHMARK(BM_ConcurrentMultiQueue)->Threads(1)->Threads(4)->Threads(8)
    ->Threads(16)->UseRealTime();

void BM_LockFreeMultiQueue(benchmark::State& state) {
  auto* mq = g_lfmq.acquire(state, [&] {
    auto* q = new relax::sched::LockFreeMultiQueue(
        4 * static_cast<unsigned>(state.threads()), 1);
    std::vector<relax::sched::Priority> keys(1 << 16);
    for (std::uint32_t p = 0; p < keys.size(); ++p) keys[p] = p;
    q->bulk_load(keys);
    return q;
  });
  auto handle = mq->get_handle();
  std::uint64_t ops = 0;
  for (auto _ : state) {
    // Pop-mostly mix: re-insert every 8th popped key near the top, the
    // framework's actual traffic pattern for the sorted-list sub-queues.
    const auto p = handle.approx_get_min();
    benchmark::DoNotOptimize(p);
    if (p && (ops & 7) == 0) handle.insert(*p);
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  g_lfmq.release(state);
}
BENCHMARK(BM_LockFreeMultiQueue)->Threads(1)->Threads(4)->Threads(8)
    ->Threads(16)->UseRealTime();

void BM_FaaArrayQueue(benchmark::State& state) {
  auto* q = g_faa.acquire(state, [&] {
    std::vector<std::uint32_t> items(1 << 22);
    for (std::uint32_t i = 0; i < items.size(); ++i) items[i] = i;
    return new relax::sched::FaaArrayQueue<std::uint32_t>(std::move(items));
  });
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->try_dequeue());
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  g_faa.release(state);
}
BENCHMARK(BM_FaaArrayQueue)->Threads(1)->Threads(4)->Threads(8)->Threads(16)
    ->UseRealTime();

void BM_MpmcFifo(benchmark::State& state) {
  auto* fifo = g_fifo.acquire(state, [&] {
    auto* q = new relax::sched::MpmcQueue<std::uint32_t>(1 << 20);
    for (std::uint32_t p = 0; p < 1 << 16; ++p) q->try_enqueue(p);
    return q;
  });
  std::uint64_t ops = 0;
  for (auto _ : state) {
    if ((ops & 1) == 0) {
      benchmark::DoNotOptimize(fifo->try_enqueue(7));
    } else {
      benchmark::DoNotOptimize(fifo->try_dequeue());
    }
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  g_fifo.release(state);
}
BENCHMARK(BM_MpmcFifo)->Threads(1)->Threads(4)->Threads(8)->Threads(16)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
