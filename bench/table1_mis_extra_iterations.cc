// Experiment E1 — reproduces **Table 1** of the paper.
//
// "We implemented the sequential relaxed framework described in Algorithm 2
//  and used it to solve instances of MIS [...] using a relaxed scheduler
//  which uses the MultiQueue algorithm, for various relaxation factors. We
//  record the average number of extra relaxations, that is, the number of
//  failed deletes during the entire execution."
//
// Grid (exactly the paper's): |V| in {1000, 10000}, |E| in {10^4, 3*10^4,
// 10^5}, k in {4, 8, 16, 32, 64} where k = number of MultiQueue sub-queues.
// Cell = avg failed deletes over --runs runs (paper: averaged over runs).
//
// The --scheduler flag selects the simulated relaxed scheduler:
//   topk       (default) the canonical k-relaxed queue of §2.1 — returns a
//              uniformly random element of the top-k; its relaxation factor
//              is exactly the table's k and reproduces the paper's
//              magnitudes most closely;
//   multiqueue the 2-choice MultiQueue simulation with k sub-queues (the
//              MultiQueue's effective rank error concentrates well below
//              its queue count, so overheads run smaller at equal k).
//
// Usage: table1_mis_extra_iterations [--runs=5] [--seed=1]
//                                    [--scheduler=topk|multiqueue]
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/mis.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "sched/sim_multiqueue.h"
#include "sched/topk_uniform.h"
#include "util/cli.h"

namespace {

double avg_extra_iterations(std::uint32_t n, std::uint64_t m, std::uint32_t k,
                            int runs, std::uint64_t seed,
                            const std::string& scheduler) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    const auto g = relax::graph::gnm(n, m, seed + 1000 * r);
    const auto pri =
        relax::graph::random_priorities(n, seed + 1000 * r + 500);
    relax::algorithms::MisProblem problem(g, pri);
    relax::core::ExecutionStats stats;
    if (scheduler == "multiqueue") {
      relax::sched::SimMultiQueue sched(k, seed + 1000 * r + 900);
      stats = relax::core::run_sequential(problem, pri, sched);
    } else {
      relax::sched::TopKUniformScheduler sched(n, k, seed + 1000 * r + 900);
      stats = relax::core::run_sequential(problem, pri, sched);
    }
    total += static_cast<double>(stats.failed_deletes);
  }
  return total / runs;
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const int runs = static_cast<int>(cli.get_int("runs", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto scheduler = cli.get_string("scheduler", "topk");
  const auto ks = cli.get_int_list("ks", {4, 8, 16, 32, 64});

  std::printf(
      "# Table 1: average extra iterations (failed deletes) for sequential\n"
      "# relaxed MIS (Algorithm 4) with a simulated k-relaxed scheduler.\n"
      "# Paper reference values (|V|=1000, |E|=10000): 12.8 56.8 148.8 "
      "308.6 583.0\n");
  std::printf("%8s %8s |", "|V|", "|E|");
  for (const auto k : ks) std::printf(" k=%-8lld", static_cast<long long>(k));
  std::printf("\n");

  for (const std::uint32_t n : {1000u, 10000u}) {
    for (const std::uint64_t m : {10000ull, 30000ull, 100000ull}) {
      std::printf("%8u %8llu |", n, static_cast<unsigned long long>(m));
      for (const auto k : ks) {
        const double avg = avg_extra_iterations(
            n, m, static_cast<std::uint32_t>(k), runs, seed, scheduler);
        std::printf(" %-10.1f", avg);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
