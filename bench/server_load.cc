// Open-loop load client for relax_server (src/server/).
//
// Drives the wire protocol (docs/PROTOCOL.md) at a fixed *offered* rate:
// requests are sent on schedule whether or not earlier ones have completed
// — the open-loop discipline that exposes queueing delay instead of hiding
// it behind client-side backpressure (a closed-loop client slows down
// exactly when the server is saturated, which is when you most want the
// latency numbers). Responses are correlated by request id and end-to-end
// latency is recorded send-to-receive, including BUSY rejections in their
// own bucket.
//
// Output: sent / ok / busy / error counts and p50/p95/p99/max end-to-end
// latency over the OK responses. Exits nonzero if any request never got a
// response (a dropped request is a server bug — BUSY is the only sanctioned
// shed path) or if the server connection failed.
//
// Usage: bench_server_load --port=<p> [--host=127.0.0.1]
//          [--connections=4] [--rate=200] [--time-ms=2000]
//          [--kind=mis|coloring|matching|mix] [--backend=<name>]
//          [--pop-batch=<k>|auto[:max]] [--audit-every=0] [--seed=1]
//          [--drain-ms=2000] [--weights=a,b,c]
//
// --weights assigns QoS weights per *connection* (connection i takes
// weights[i % len]), so one invocation can offer a weighted tenant mix and
// report ok-counts and latency split per weight class — the client-side
// view of the server's QosGovernor (docs/ARCHITECTURE.md, Multi-tenant
// QoS).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/histogram.h"
#include "server/protocol.h"
#include "server/server_cli.h"
#include "util/cli.h"

namespace {

namespace protocol = relax::server::protocol;
using Clock = std::chrono::steady_clock;

[[noreturn]] void usage_and_exit(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: bench_server_load --port=<p> [flags]\n"
      "\n"
      "  --host=<addr>            server address (default 127.0.0.1)\n"
      "  --port=<p>               server port (required)\n"
      "  --connections=<n>        parallel connections; the offered load\n"
      "                           is spread round-robin (default 4)\n"
      "  --rate=<r>               offered requests/second across all\n"
      "                           connections; open-loop — sends stay on\n"
      "                           schedule under saturation (default 200)\n"
      "  --time-ms=<t>            send window length (default 2000)\n"
      "  --kind=mis|coloring|matching|mix\n"
      "                           problem family per request; mix rotates\n"
      "                           (default mix)\n"
      "  --backend=<name>         scheduler backend each request names\n"
      "                           ('' = server default)\n"
      "  --pop-batch=<k>|auto[:max]\n"
      "                           per-request pop batch; 'auto' requests\n"
      "                           the adaptive controller (default:\n"
      "                           server default)\n"
      "  --audit-every=<k>        every k-th request runs under the\n"
      "                           Definition 1 relaxation monitor\n"
      "                           (0 = never; default 0)\n"
      "  --weights=<a,b,...>      QoS weight per connection (connection i\n"
      "                           takes entry i mod len); 0 = server\n"
      "                           default weight. With more than one\n"
      "                           distinct weight the report splits ok\n"
      "                           counts and latency per weight class\n"
      "                           (default 0)\n"
      "  --seed=<s>               base scheduler seed (default 1)\n"
      "  --drain-ms=<t>           wait for stragglers after the send\n"
      "                           window before declaring drops\n"
      "                           (default 2000)\n"
      "  --help                   this text\n");
  std::exit(error != nullptr ? 2 : 0);
}

/// Per-weight-class slice of the results (tenant view of QoS fairness).
struct WeightBucket {
  std::uint32_t weight = 0;  // 0 = server default
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> busy{0};
  std::mutex hist_mu;
  relax::obs::Histogram ok_latency_ns;
};

/// One TCP connection plus the in-flight map its receiver thread resolves.
struct Conn {
  int fd = -1;
  std::uint32_t weight = 0;        // QoS weight every request carries
  WeightBucket* bucket = nullptr;  // shared per-weight results slice
  std::mutex mu;
  std::unordered_map<std::uint64_t, Clock::time_point> sent_at;
  std::thread receiver;
};

struct Totals {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> busy{0};
  std::atomic<std::uint64_t> error{0};
  std::mutex hist_mu;
  relax::obs::Histogram ok_latency_ns;
};

/// Parses "--weights=a,b,c" into per-connection weight entries. Each entry
/// must be in [0, 1024]; 0 means "server default".
bool parse_weights(const std::string& flag,
                   std::vector<std::uint32_t>* out) {
  out->clear();
  std::size_t pos = 0;
  while (pos <= flag.size()) {
    const std::size_t comma = flag.find(',', pos);
    const std::string tok =
        flag.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (tok.empty()) return false;
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v > 1024) return false;
    out->push_back(static_cast<std::uint32_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->empty();
}

int dial(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t w = ::write(fd, data + off, len - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Receiver: reassemble frames, match ids to send timestamps, classify.
void receive_loop(Conn& conn, Totals& totals) {
  protocol::FrameReader reader;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::read(conn.fd, buf, sizeof(buf));
    if (r == 0) return;  // server closed (shutdown or slow-reader cap)
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    reader.feed(
        std::span<const std::uint8_t>(buf, static_cast<std::size_t>(r)));
    if (reader.corrupt()) return;
    while (auto payload = reader.next()) {
      const auto resp =
          protocol::decode_response(std::span<const std::uint8_t>(*payload));
      if (!resp) {
        totals.error.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Clock::time_point sent;
      bool known = false;
      {
        std::lock_guard<std::mutex> guard(conn.mu);
        auto it = conn.sent_at.find(resp->id);
        if (it != conn.sent_at.end()) {
          sent = it->second;
          conn.sent_at.erase(it);
          known = true;
        }
      }
      switch (resp->status) {
        case protocol::Status::kOk: {
          totals.ok.fetch_add(1, std::memory_order_relaxed);
          if (conn.bucket != nullptr)
            conn.bucket->ok.fetch_add(1, std::memory_order_relaxed);
          if (known) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - sent)
                    .count();
            {
              std::lock_guard<std::mutex> guard(totals.hist_mu);
              totals.ok_latency_ns.record(static_cast<std::uint64_t>(ns));
            }
            if (conn.bucket != nullptr) {
              std::lock_guard<std::mutex> guard(conn.bucket->hist_mu);
              conn.bucket->ok_latency_ns.record(
                  static_cast<std::uint64_t>(ns));
            }
          }
          break;
        }
        case protocol::Status::kBusy:
          totals.busy.fetch_add(1, std::memory_order_relaxed);
          if (conn.bucket != nullptr)
            conn.bucket->busy.fetch_add(1, std::memory_order_relaxed);
          break;
        case protocol::Status::kError:
          totals.error.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  if (cli.has("help")) usage_and_exit(nullptr);
  if (!cli.has("port")) usage_and_exit("--port is required");

  const std::string host = cli.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  const auto connections = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("connections", 4)));
  const double rate = cli.get_double("rate", 200.0);
  if (rate <= 0.0) usage_and_exit("--rate must be positive");
  const auto time_ms =
      std::max<std::int64_t>(1, cli.get_int("time-ms", 2000));
  const auto drain_ms =
      std::max<std::int64_t>(0, cli.get_int("drain-ms", 2000));
  const auto audit_every =
      std::max<std::int64_t>(0, cli.get_int("audit-every", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string backend = cli.get_string("backend", "");

  const std::string kind_flag = cli.get_string("kind", "mix");
  std::vector<protocol::Kind> kinds;
  if (kind_flag == "mis") {
    kinds = {protocol::Kind::kMis};
  } else if (kind_flag == "coloring") {
    kinds = {protocol::Kind::kColoring};
  } else if (kind_flag == "matching") {
    kinds = {protocol::Kind::kMatching};
  } else if (kind_flag == "mix") {
    kinds = {protocol::Kind::kMis, protocol::Kind::kColoring,
             protocol::Kind::kMatching};
  } else {
    usage_and_exit("unknown --kind (mis|coloring|matching|mix)");
  }

  std::uint32_t pop_batch = 0;
  bool pop_batch_auto = false;
  if (cli.has("pop-batch")) {
    const auto pb = relax::server::cli::parse_pop_batch(
        cli.get_string("pop-batch", "1"));
    if (!pb) return 2;
    pop_batch = pb->batch;
    pop_batch_auto = pb->adaptive;
  }

  std::vector<std::uint32_t> weights{0};
  if (cli.has("weights") &&
      !parse_weights(cli.get_string("weights", "0"), &weights)) {
    usage_and_exit("--weights expects comma-separated integers in [0,1024]");
  }
  // One result bucket per *distinct* weight, shared by every connection of
  // that class, so the report reads as tenants rather than sockets.
  std::vector<std::unique_ptr<WeightBucket>> buckets;
  auto bucket_for = [&buckets](std::uint32_t w) -> WeightBucket* {
    for (auto& b : buckets)
      if (b->weight == w) return b.get();
    buckets.push_back(std::make_unique<WeightBucket>());
    buckets.back()->weight = w;
    return buckets.back().get();
  };

  std::vector<std::unique_ptr<Conn>> conns;
  Totals totals;
  for (std::size_t i = 0; i < connections; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->weight = weights[i % weights.size()];
    conn->bucket = bucket_for(conn->weight);
    conn->fd = dial(host, port);
    if (conn->fd < 0) {
      std::fprintf(stderr, "error: cannot connect to %s:%u: %s\n",
                   host.c_str(), static_cast<unsigned>(port),
                   std::strerror(errno));
      return 1;
    }
    conn->receiver = std::thread(
        [&totals, raw = conn.get()] { receive_loop(*raw, totals); });
    conns.push_back(std::move(conn));
  }

  // Open-loop send schedule: request i is due at start + i/rate,
  // regardless of completions. Falling behind the schedule (send_all
  // blocking on a full socket) is itself reported: offered vs achieved.
  const auto start = Clock::now();
  const auto window = std::chrono::milliseconds(time_ms);
  std::uint64_t sent = 0;
  std::uint64_t send_failures = 0;
  std::vector<std::uint8_t> wire;
  while (Clock::now() - start < window) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(sent) / rate));
    std::this_thread::sleep_until(due);
    if (Clock::now() - start >= window) break;

    protocol::Request req;
    req.id = sent + 1;  // ids start at 1; 0 is the server's "no id" reply
    req.kind = kinds[static_cast<std::size_t>(sent) % kinds.size()];
    req.graph_id = 0;
    req.pop_batch = pop_batch;
    req.pop_batch_auto = pop_batch_auto;
    req.audit = audit_every > 0 &&
                (sent % static_cast<std::uint64_t>(audit_every)) == 0;
    req.seed = seed + sent;
    req.backend = backend;

    Conn& conn = *conns[static_cast<std::size_t>(sent) % conns.size()];
    req.weight = conn.weight;
    {
      std::lock_guard<std::mutex> guard(conn.mu);
      conn.sent_at.emplace(req.id, Clock::now());
    }
    wire.clear();
    protocol::encode(req, wire);
    if (!send_all(conn.fd, wire.data(), wire.size())) {
      std::lock_guard<std::mutex> guard(conn.mu);
      conn.sent_at.erase(req.id);
      ++send_failures;
    }
    ++sent;
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Drain: give stragglers a grace window, then half-close to stop the
  // receivers and count what never came back.
  const auto drain_deadline =
      Clock::now() + std::chrono::milliseconds(drain_ms);
  for (auto& conn : conns) {
    for (;;) {
      {
        std::lock_guard<std::mutex> guard(conn->mu);
        if (conn->sent_at.empty()) break;
      }
      if (Clock::now() >= drain_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  std::uint64_t dropped = 0;
  for (auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->receiver.join();
    ::close(conn->fd);
    std::lock_guard<std::mutex> guard(conn->mu);
    dropped += conn->sent_at.size();
  }

  const std::uint64_t ok = totals.ok.load();
  const std::uint64_t busy = totals.busy.load();
  const std::uint64_t error = totals.error.load();
  std::printf(
      "server_load: %s:%u  offered %.0f req/s over %lld ms on %zu "
      "connections\n",
      host.c_str(), static_cast<unsigned>(port), rate,
      static_cast<long long>(time_ms), conns.size());
  std::printf(
      "  sent=%llu (%.1f req/s achieved)  ok=%llu busy=%llu error=%llu "
      "send-failures=%llu dropped=%llu\n",
      static_cast<unsigned long long>(sent),
      elapsed > 0.0 ? static_cast<double>(sent) / elapsed : 0.0,
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(busy),
      static_cast<unsigned long long>(error),
      static_cast<unsigned long long>(send_failures),
      static_cast<unsigned long long>(dropped));
  if (ok > 0) {
    std::printf(
        "  latency p50=%.2f ms  p95=%.2f ms  p99=%.2f ms  max=%.2f ms\n",
        totals.ok_latency_ns.percentile(50) / 1e6,
        totals.ok_latency_ns.percentile(95) / 1e6,
        totals.ok_latency_ns.percentile(99) / 1e6,
        static_cast<double>(totals.ok_latency_ns.max()) / 1e6);
  }
  // Per-weight split: the tenant-side fairness readout. Shares of the OK
  // total should track the weight ratio when the server pool saturates.
  if (buckets.size() > 1) {
    for (const auto& b : buckets) {
      const std::uint64_t b_ok = b->ok.load();
      const double share =
          ok > 0 ? 100.0 * static_cast<double>(b_ok) /
                       static_cast<double>(ok)
                 : 0.0;
      char wlabel[16];
      if (b->weight == 0)
        std::snprintf(wlabel, sizeof(wlabel), "default");
      else
        std::snprintf(wlabel, sizeof(wlabel), "%u", b->weight);
      std::printf(
          "  weight=%s: ok=%llu (%.1f%% of ok) busy=%llu  "
          "p50=%.2f ms p99=%.2f ms\n",
          wlabel, static_cast<unsigned long long>(b_ok), share,
          static_cast<unsigned long long>(b->busy.load()),
          b_ok > 0 ? b->ok_latency_ns.percentile(50) / 1e6 : 0.0,
          b_ok > 0 ? b->ok_latency_ns.percentile(99) / 1e6 : 0.0);
    }
  }
  // Drops are the one unacceptable outcome: every admitted-or-shed request
  // owes a response. BUSY under saturation is expected; silence is a bug.
  if (dropped > 0) {
    std::fprintf(stderr, "error: %llu requests got no response\n",
                 static_cast<unsigned long long>(dropped));
    return 1;
  }
  return 0;
}
