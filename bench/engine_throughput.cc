// Engine experiment — sustained multi-job throughput of the persistent
// SchedulingEngine: a stream of mixed framework jobs (relaxed MIS, greedy
// coloring, maximal matching, plus the exact-baseline MIS) submitted from
// concurrent feeder threads onto one long-lived pinned worker pool,
// sweeping pool width and the number of jobs multiplexed in flight.
//
// This is the service-shaped counterpart of fig2_concurrent_mis: instead of
// one problem per freshly spawned thread set, the pool stays hot and jobs
// share it, so the figure of merit is jobs/sec (and per-job latency), not
// single-run wall time. SSSP is deliberately absent from the mix: it is not
// in the paper's deterministic framework class (§2.2 — its priority order
// must follow distances, see src/algorithms/sssp.h), so it cannot ride the
// generic Problem adapter.
//
// Usage: engine_throughput [--jobs=120] [--threads=1,2,4] [--inflight=1,4,8]
//                          [--feeders=2] [--scale=1.0] [--seed=1]
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/matching.h"
#include "algorithms/mis.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

using relax::graph::Graph;
using relax::graph::Priorities;

struct RequestMix {
  Graph mis_graph;
  Priorities mis_pri;
  Graph color_graph;
  Priorities color_pri;
  Graph match_graph;
  std::unique_ptr<relax::algorithms::EdgeIncidence> incidence;
  Priorities match_pri;
};

// Per-job problem storage: problems must outlive their tickets, so each
// feeder owns the problems for the jobs it submits.
struct ProblemArena {
  std::vector<std::unique_ptr<relax::algorithms::AtomicMisProblem>> mis;
  std::vector<std::unique_ptr<relax::algorithms::AtomicColoringProblem>> color;
  std::vector<std::unique_ptr<relax::algorithms::AtomicMatchingProblem>> match;
};

relax::engine::JobTicket submit_one(relax::engine::SchedulingEngine& eng,
                                    const RequestMix& mix, ProblemArena& arena,
                                    int kind, std::uint64_t seed) {
  relax::engine::JobConfig cfg;
  cfg.seed = seed;
  switch (kind) {
    case 0: {
      arena.mis.push_back(std::make_unique<relax::algorithms::AtomicMisProblem>(
          mix.mis_graph, mix.mis_pri));
      return eng.submit_relaxed(*arena.mis.back(), mix.mis_pri, cfg);
    }
    case 1: {
      arena.color.push_back(
          std::make_unique<relax::algorithms::AtomicColoringProblem>(
              mix.color_graph, mix.color_pri));
      return eng.submit_relaxed(*arena.color.back(), mix.color_pri, cfg);
    }
    case 2: {
      arena.match.push_back(
          std::make_unique<relax::algorithms::AtomicMatchingProblem>(
              *mix.incidence, mix.match_pri));
      return eng.submit_relaxed(*arena.match.back(), mix.match_pri, cfg);
    }
    default: {  // exact-baseline MIS
      arena.mis.push_back(std::make_unique<relax::algorithms::AtomicMisProblem>(
          mix.mis_graph, mix.mis_pri));
      return eng.submit_exact(*arena.mis.back(), mix.mis_pri, cfg);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const int jobs = static_cast<int>(cli.get_int("jobs", 120));
  const int feeders = static_cast<int>(cli.get_int("feeders", 2));
  const double scale = cli.get_double("scale", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto thread_list = cli.get_int_list("threads", {1, 2, 4});
  const auto inflight_list = cli.get_int_list("inflight", {1, 4, 8});

  const auto n = [&](double base) {
    return static_cast<std::uint32_t>(base * scale);
  };
  const auto m = [&](double base) {
    return static_cast<std::uint64_t>(base * scale);
  };

  RequestMix mix;
  mix.mis_graph = relax::graph::gnm(n(2000), m(12000), seed);
  mix.mis_pri = relax::graph::random_priorities(n(2000), seed + 1);
  mix.color_graph = relax::graph::gnm(n(1500), m(9000), seed + 2);
  mix.color_pri = relax::graph::random_priorities(n(1500), seed + 3);
  mix.match_graph = relax::graph::gnm(n(1000), m(5000), seed + 4);
  mix.incidence =
      std::make_unique<relax::algorithms::EdgeIncidence>(mix.match_graph);
  mix.match_pri =
      relax::graph::random_priorities(mix.incidence->num_edges(), seed + 5);

  std::printf(
      "# engine_throughput: %d mixed jobs (MIS/coloring/matching/exact-MIS) "
      "per config, %d feeder threads\n",
      jobs, feeders);
  std::printf("%8s %9s %10s %12s %14s %14s\n", "threads", "inflight",
              "seconds", "jobs/sec", "iterations", "wasted");

  for (const auto threads : thread_list) {
    for (const auto inflight : inflight_list) {
      relax::engine::EngineOptions opts;
      opts.num_threads = static_cast<unsigned>(threads);
      opts.max_in_flight = static_cast<unsigned>(inflight);
      relax::engine::SchedulingEngine eng(opts);

      std::vector<ProblemArena> arenas(static_cast<std::size_t>(feeders));
      std::uint64_t iterations = 0;
      std::uint64_t wasted = 0;
      relax::util::Timer timer;
      {
        std::vector<std::jthread> feed;
        std::mutex agg_mu;
        for (int f = 0; f < feeders; ++f) {
          feed.emplace_back([&, f] {
            auto& arena = arenas[static_cast<std::size_t>(f)];
            std::vector<relax::engine::JobTicket> tickets;
            for (int j = f; j < jobs; j += feeders) {
              tickets.push_back(submit_one(eng, mix, arena, j % 4,
                                           seed + static_cast<unsigned>(j)));
            }
            std::uint64_t it = 0, wa = 0;
            for (auto& t : tickets) {
              const auto stats = t.wait();
              it += stats.iterations;
              wa += stats.failed_deletes;
            }
            std::lock_guard<std::mutex> guard(agg_mu);
            iterations += it;
            wasted += wa;
          });
        }
      }
      const double seconds = timer.seconds();
      std::printf("%8lld %9lld %10.3f %12.1f %14llu %14llu\n",
                  static_cast<long long>(threads),
                  static_cast<long long>(inflight), seconds,
                  static_cast<double>(jobs) / seconds,
                  static_cast<unsigned long long>(iterations),
                  static_cast<unsigned long long>(wasted));
    }
  }
  return 0;
}
