// Experiment E8 — ablations over the design choices DESIGN.md calls out:
//
//   (a) MultiQueue queue factor c (sub-queues per thread): the paper uses
//       c = 4; smaller c means less relaxation but more contention.
//   (b) one-choice vs two-choice sampling on pop: one-choice loses the
//       rank bound entirely (rank error grows over the run), two-choice is
//       the classic MultiQueue.
//   (c) exact executor's backoff-wait vs the relaxed executor's re-insert
//       (the two strategies the paper contrasts in §4);
//   (d) locked (spinlock + heap) vs lock-free (Harris lists) MultiQueue —
//       the paper's own implementation uses "lock-free lists to maintain
//       the individual priority queues".
//
// Workload: concurrent MIS on a mid-size sparse G(n, m) at max threads.
//
// Usage: ablation_multiqueue [--n=500000] [--m=5000000] [--trials=3]
#include <algorithm>
#include <cstdio>

#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "sched/lockfree_multiqueue.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/thread_pin.h"

namespace {

using relax::algorithms::AtomicMisProblem;

struct Result {
  double seconds;
  std::uint64_t failed_deletes;
};

Result run_relaxed(const relax::graph::Graph& g,
                   const relax::graph::Priorities& pri, unsigned threads,
                   unsigned queue_factor, unsigned choices, int trials,
                   std::uint64_t seed) {
  Result best{1e300, 0};
  for (int t = 0; t < trials; ++t) {
    relax::core::ParallelOptions opts;
    opts.num_threads = threads;
    opts.queue_factor = queue_factor;
    opts.choices = choices;
    opts.seed = seed + t;
    AtomicMisProblem problem(g, pri);
    const auto stats = relax::core::run_parallel_relaxed(problem, pri, opts);
    if (stats.seconds < best.seconds)
      best = {stats.seconds, stats.failed_deletes};
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 500000));
  const auto m = static_cast<std::uint64_t>(cli.get_int("m", 5000000));
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const unsigned threads = relax::util::hardware_threads();

  const auto g = relax::graph::gnm(n, m, seed);
  const auto pri = relax::graph::random_priorities(n, seed + 7);

  std::printf("# MultiQueue ablations: concurrent MIS, n=%u m=%llu, "
              "%u threads, best of %d trials\n",
              n, static_cast<unsigned long long>(g.num_edges()), threads,
              trials);

  std::printf("\n## (a) queue factor c (choices=2)\n");
  std::printf("%4s %10s %16s\n", "c", "seconds", "failed_deletes");
  for (const unsigned c : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = run_relaxed(g, pri, threads, c, 2, trials, seed);
    std::printf("%4u %10.4f %16llu\n", c, r.seconds,
                static_cast<unsigned long long>(r.failed_deletes));
    std::fflush(stdout);
  }

  std::printf("\n## (b) choices per pop (c=4)\n");
  std::printf("%8s %10s %16s\n", "choices", "seconds", "failed_deletes");
  for (const unsigned choices : {1u, 2u, 4u}) {
    const auto r = run_relaxed(g, pri, threads, 4, choices, trials, seed);
    std::printf("%8u %10.4f %16llu\n", choices, r.seconds,
                static_cast<unsigned long long>(r.failed_deletes));
    std::fflush(stdout);
  }

  std::printf("\n## (c) dependency-miss strategy at c=4, choices=2\n");
  std::printf("%12s %10s %16s\n", "strategy", "seconds", "waste");
  {
    const auto r = run_relaxed(g, pri, threads, 4, 2, trials, seed);
    std::printf("%12s %10.4f %16llu\n", "re-insert", r.seconds,
                static_cast<unsigned long long>(r.failed_deletes));
  }
  {
    double best = 1e300;
    std::uint64_t waits = 0;
    for (int t = 0; t < trials; ++t) {
      relax::core::ParallelOptions opts;
      opts.num_threads = threads;
      opts.seed = seed + t;
      AtomicMisProblem problem(g, pri);
      const auto stats = relax::core::run_parallel_exact(problem, pri, opts);
      if (stats.seconds < best) {
        best = stats.seconds;
        waits = stats.failed_deletes;
      }
    }
    std::printf("%12s %10.4f %16llu\n", "exact-wait", best,
                static_cast<unsigned long long>(waits));
  }

  std::printf("\n## (d) sub-queue implementation at c=4, choices=2\n");
  std::printf("%12s %10.4f  (locked: spinlock + two-part heap)\n", "locked",
              run_relaxed(g, pri, threads, 4, 2, trials, seed).seconds);
  {
    double best = 1e300;
    for (int t = 0; t < trials; ++t) {
      relax::core::ParallelOptions opts;
      opts.num_threads = threads;
      opts.seed = seed + t;
      opts.pin_threads = true;
      relax::sched::LockFreeMultiQueue mq(4 * threads, seed + t);
      AtomicMisProblem problem(g, pri);
      const auto stats =
          relax::core::run_parallel_relaxed_on(problem, pri, mq, opts);
      best = std::min(best, stats.seconds);
    }
    std::printf("%12s %10.4f  (lock-free Harris lists)\n", "lock-free",
                best);
  }
  return 0;
}
