// Backend matrix — the cross-backend experiment the registry exists for:
// every registered scheduler backend × thread count × workload, one
// comparable table of throughput (tasks/s), wasted-work overhead
// (iterations per task, the paper's extra-iterations metric), and
// Definition 1 relaxation quality (mean/max rank error from a monitored
// companion run of the same job).
//
// Workloads: the framework problems MIS, greedy coloring, and maximal
// matching run through the engine on every backend. SSSP is outside the
// deterministic framework class (§2.2) and its label-correcting executor
// is keyed by 64-bit (distance, vertex) pairs over its own
// BasicConcurrentMultiQueue — it is swept per (thread count, pop-batch)
// against the multiqueue-c2 row only and marked "-" elsewhere.
//
// The pop-batch axis sweeps batching on BOTH scheduler sides (labels
// claimed per acquisition touch, kNotReady re-insertions flushed as one
// batched insert run): batch k>1 pays one sample/lock round trip per k
// scheduler touches on backends with native batch ops, at an O(k*q)
// rank-error cost the quality columns make visible next to the throughput
// gain. SSSP's executor batches the same way (pop_batch keys per claim,
// relaxations re-inserted via one bulk_insert). The axis accepts the same
// vocabulary as the CLIs — fixed sizes, `auto`, and `auto:<max>` — so the
// occupancy-aware adaptive controller gets its own rows next to the fixed
// caps it is supposed to track (printed as a<max> in the batch column).
//
// --json=<path> additionally writes every row as a JSON array — the
// machine-readable form CI uploads as the BENCH_backend_matrix.json
// artifact, seeding the perf trajectory (tools/bench_diff.py compares two
// of these cell by cell).
//
// The numa axis sweeps topology-aware placement (util/topology.h): each
// entry is off | auto | virtual:<K>, the same vocabulary as the CLIs.
// virtual:K is the reproducible form — synthetic domains independent of
// the host — so a CI box can hold the locality-vs-quality trade steady.
// The domain spec is recorded per JSON cell, so bench_diff.py keys on it
// and an off-vs-virtual regression shows up cell by cell.
//
// Usage: backend_matrix [--n=4000] [--m=24000] [--threads=1,4]
//                       [--pop-batch=1,8,auto:8]
//                       [--numa=off,virtual:2]
//                       [--backends=all|name,name,...]
//                       [--quality=1] [--repeat=3] [--seed=1] [--json=path]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/matching.h"
#include "algorithms/mis.h"
#include "algorithms/sssp.h"
#include "core/parallel_executor.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "sched/backend_registry.h"
#include "util/cli.h"
#include "util/topology.h"

namespace {

using relax::core::ExecutionStats;
using relax::graph::Graph;
using relax::sched::BackendInfo;

struct Row {
  const char* workload;
  std::string backend;
  unsigned threads;
  unsigned pop_batch;
  bool pop_batch_auto;
  std::string numa;  // topology spec label: off | auto | virtual:K
  double seconds;
  double tasks_per_s;
  double iters_per_task;
  double wasted_frac;
  double slice_p99_us;  // < 0: not measured (sssp rows — no engine slices)
  double mean_rank;     // < 0: not measured
  std::uint64_t max_rank;
};

/// The batch column: a fixed size prints as the number, an adaptive row as
/// a<cap> (e.g. a8 == --pop-batch=auto:8).
std::string batch_label(const Row& r) {
  return (r.pop_batch_auto ? "a" : "") + std::to_string(r.pop_batch);
}

void print_row(const Row& r) {
  std::printf("%-9s %-20s %7u %6s %-10s %9.4f %12.0f %10.3f %8.2f%%",
              r.workload, r.backend.c_str(), r.threads,
              batch_label(r).c_str(), r.numa.c_str(), r.seconds,
              r.tasks_per_s, r.iters_per_task, 100.0 * r.wasted_frac);
  if (r.slice_p99_us >= 0.0) {
    std::printf("%10.1f", r.slice_p99_us);
  } else {
    std::printf("%10s", "-");
  }
  if (r.mean_rank >= 0.0) {
    std::printf("%10.2f %9llu\n", r.mean_rank,
                static_cast<unsigned long long>(r.max_rank));
  } else {
    std::printf("%10s %9s\n", "-", "-");
  }
}

/// Writes the collected rows as a JSON array (one object per row; quality
/// fields are null when not measured). No external deps — every field is a
/// number or a name from the registry, so plain fprintf suffices.
bool write_json(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --json path '%s'\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"workload\": \"%s\", \"backend\": \"%s\", "
                 "\"threads\": %u, \"pop_batch\": %u, "
                 "\"pop_batch_auto\": %s, \"numa\": \"%s\", "
                 "\"seconds\": %.6f, "
                 "\"tasks_per_s\": %.1f, \"iters_per_task\": %.4f, "
                 "\"wasted_frac\": %.6f, ",
                 r.workload, r.backend.c_str(), r.threads, r.pop_batch,
                 r.pop_batch_auto ? "true" : "false", r.numa.c_str(),
                 r.seconds, r.tasks_per_s, r.iters_per_task, r.wasted_frac);
    if (r.slice_p99_us >= 0.0) {
      std::fprintf(f, "\"slice_p99_us\": %.2f, ", r.slice_p99_us);
    } else {
      std::fprintf(f, "\"slice_p99_us\": null, ");
    }
    if (r.mean_rank >= 0.0) {
      std::fprintf(f, "\"mean_rank\": %.4f, \"max_rank\": %llu}",
                   r.mean_rank,
                   static_cast<unsigned long long>(r.max_rank));
    } else {
      std::fprintf(f, "\"mean_rank\": null, \"max_rank\": null}");
    }
    std::fprintf(f, "%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

/// One framework cell for `problem` on `backend`: `repeat` timed plain
/// runs with the MEDIAN-throughput run reported (a single cold shot per
/// cell made first-cell rows absorb allocator/page-fault warmup and trip
/// spurious bench_diff warnings), plus (optionally) one monitored run of a
/// fresh copy for the Definition 1 quality columns.
template <typename MakeProblem>
Row run_framework(const char* workload, const BackendInfo& backend,
                  unsigned threads,
                  const relax::engine::PopBatchFlag& pop_batch,
                  const relax::util::TopologySpec& numa,
                  const relax::graph::Priorities& pri,
                  MakeProblem make_problem, bool quality, unsigned repeat,
                  std::uint64_t seed) {
  relax::engine::EngineOptions eo;
  eo.num_threads = threads;
  eo.pin_threads = false;
  eo.max_in_flight = 1;
  eo.topology = numa;
  relax::engine::SchedulingEngine eng(eo);

  relax::engine::JobConfig cfg;
  cfg.seed = seed;
  cfg.pop_batch = pop_batch.batch;
  cfg.pop_batch_auto = pop_batch.adaptive;

  std::vector<ExecutionStats> trials;
  std::uint32_t n = 0;
  for (unsigned r = 0; r < std::max<unsigned>(repeat, 1); ++r) {
    auto problem = make_problem();
    n = problem.num_tasks();
    trials.push_back(
        eng.submit_relaxed_backend(problem, pri, backend, cfg).wait());
  }
  std::sort(trials.begin(), trials.end(),
            [](const ExecutionStats& a, const ExecutionStats& b) {
              return a.seconds < b.seconds;
            });
  const ExecutionStats& stats = trials[(trials.size() - 1) / 2];

  Row row;
  row.workload = workload;
  row.backend = std::string(backend.name);
  row.threads = threads;
  row.pop_batch = pop_batch.batch;
  row.pop_batch_auto = pop_batch.adaptive;
  row.numa = numa.label();
  row.seconds = stats.seconds;
  row.tasks_per_s = stats.seconds > 0.0 ? n / stats.seconds : 0.0;
  row.iters_per_task =
      n > 0 ? static_cast<double>(stats.iterations) / n : 0.0;
  row.wasted_frac =
      stats.iterations > 0
          ? static_cast<double>(stats.failed_deletes) / stats.iterations
          : 0.0;
  // Tail latency straight from the job's always-on slice histogram — no
  // registry needed for the per-cell p99.
  row.slice_p99_us = stats.slices > 0 ? stats.slice_percentile_us(99) : -1.0;
  row.mean_rank = -1.0;
  row.max_rank = 0;
  if (quality) {
    auto audited = make_problem();
    relax::engine::JobConfig audit_cfg = cfg;
    audit_cfg.monitor_relaxation = true;
    audit_cfg.monitor_stride = 64;
    const ExecutionStats audit =
        eng.submit_relaxed_backend(audited, pri, backend, audit_cfg).wait();
    row.mean_rank = audit.mean_rank_error;
    row.max_rank = audit.max_rank_error;
  }
  return row;
}

/// Strict comma-split of an axis flag (util::split_csv, shared with
/// bench/steady_state): empty tokens exit 2 with the flag named instead
/// of flowing "" into a registry lookup or number parse.
std::vector<std::string> split_axis(const char* flag,
                                    const std::string& value) {
  auto tokens = relax::util::split_csv(value);
  if (!tokens) {
    std::fprintf(stderr,
                 "invalid --%s='%s': empty value or empty list entry "
                 "(trailing/doubled comma?)\n",
                 flag, value.c_str());
    std::exit(2);
  }
  return *tokens;
}

}  // namespace

[[noreturn]] void usage_and_exit(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: bench_backend_matrix [flags]   (every axis flag is a "
      "comma-separated list)\n"
      "\n"
      "  --n=<v> --m=<e>          G(n,m) workload size (default 4000 / "
      "24000)\n"
      "  --threads=<list>         thread-count axis (default 1,4)\n"
      "  --pop-batch=<list>       labels per scheduler touch, each entry\n"
      "                           <k>, 'auto', or 'auto:<max>' — 'auto'\n"
      "                           enables the adaptive controller\n"
      "                           (default 1,8,auto:8)\n"
      "  --numa=<list>            topology-aware placement axis, each\n"
      "                           entry off|auto|virtual:<K>; virtual:K\n"
      "                           splits workers into K synthetic domains\n"
      "                           for host-independent CI (default off)\n"
      "  --backends=all|<list>    backend registry names (default all)\n"
      "  --quality=0|1            also run the Definition 1 monitored\n"
      "                           companion pass (default 1)\n"
      "  --repeat=<r>             repetitions per cell, median reported\n"
      "                           (default 3)\n"
      "  --seed=<s>               base seed (default 1)\n"
      "  --json=<path>            machine-readable artifact for\n"
      "                           tools/bench_diff.py\n"
      "  --help                   this text\n");
  std::exit(error != nullptr ? 2 : 0);
}

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  if (cli.has("help")) usage_and_exit(nullptr);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 4000));
  const auto m = static_cast<std::uint64_t>(cli.get_int("m", 24000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool quality = cli.get_bool("quality", true);
  const auto repeat =
      static_cast<unsigned>(std::max<std::int64_t>(cli.get_int("repeat", 3), 1));
  const auto thread_list = cli.get_int_list("threads", {1, 4});

  // The pop-batch axis speaks the CLI vocabulary (fixed | auto | auto:max)
  // so adaptive rows sit next to the fixed caps they should track.
  std::vector<relax::engine::PopBatchFlag> batch_list;
  for (const std::string& token :
       split_axis("pop-batch", cli.get_string("pop-batch", "1,8,auto:8"))) {
    const auto pb = relax::engine::parse_pop_batch_flag(token);
    if (!pb.valid) {
      std::fprintf(stderr,
                   "invalid --pop-batch entry '%s': expected a positive "
                   "integer, 'auto', or 'auto:<max>'\n",
                   token.c_str());
      return 2;
    }
    batch_list.push_back(pb);
  }

  // The numa axis speaks the CLI vocabulary too (off | auto | virtual:K);
  // each entry becomes its own sweep dimension and its own JSON key part.
  std::vector<relax::util::TopologySpec> numa_list;
  for (const std::string& token :
       split_axis("numa", cli.get_string("numa", "off"))) {
    const auto spec = relax::util::TopologySpec::parse(token);
    if (!spec) {
      std::fprintf(stderr,
                   "invalid --numa entry '%s': expected 'off', 'auto', or "
                   "'virtual:<K>' with K >= 1\n",
                   token.c_str());
      return 2;
    }
    numa_list.push_back(*spec);
  }

  const std::string backend_flag = cli.get_string("backends", "all");
  std::vector<const BackendInfo*> backends;
  if (backend_flag == "all") {
    for (const auto& info : relax::sched::backend_registry())
      backends.push_back(&info);
  } else {
    for (const std::string& name : split_axis("backends", backend_flag)) {
      const auto* info = relax::sched::find_backend(name);
      if (info == nullptr) {
        std::fprintf(stderr, "unknown backend '%s'; valid: %s\n",
                     name.c_str(),
                     relax::sched::backend_names().c_str());
        return 2;
      }
      backends.push_back(info);
    }
  }

  const Graph g = relax::graph::gnm(n, m, seed);
  const auto pri = relax::graph::random_priorities(n, seed + 7);
  const relax::algorithms::EdgeIncidence incidence(g);
  const auto edge_pri =
      relax::graph::random_priorities(incidence.num_edges(), seed + 11);
  const auto weights = relax::algorithms::synthetic_edge_weights(g, seed + 3);

  std::printf("backend_matrix: gnm n=%u m=%llu, %zu backends, quality=%d\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              backends.size(), quality ? 1 : 0);
  std::printf("%-9s %-20s %7s %6s %-10s %9s %12s %10s %9s %10s %10s %9s\n",
              "workload", "backend", "threads", "batch", "numa", "seconds",
              "tasks/s", "iters/task", "wasted", "p99-us", "mean-rank",
              "max-rank");

  std::vector<Row> rows;
  const auto emit = [&rows](Row row) {
    print_row(row);
    rows.push_back(std::move(row));
  };

  for (const std::int64_t t : thread_list) {
    const auto threads = static_cast<unsigned>(t < 1 ? 1 : t);
    for (const relax::engine::PopBatchFlag& pop_batch : batch_list) {
      for (const relax::util::TopologySpec& numa : numa_list) {
      for (const BackendInfo* backend : backends) {
        emit(run_framework(
            "mis", *backend, threads, pop_batch, numa, pri,
            [&] { return relax::algorithms::AtomicMisProblem(g, pri); },
            quality, repeat, seed));
        emit(run_framework(
            "coloring", *backend, threads, pop_batch, numa, pri,
            [&] { return relax::algorithms::AtomicColoringProblem(g, pri); },
            quality, repeat, seed));
        emit(run_framework(
            "matching", *backend, threads, pop_batch, numa, edge_pri,
            [&] {
              return relax::algorithms::AtomicMatchingProblem(incidence,
                                                              edge_pri);
            },
            quality, repeat, seed));
        // SSSP rides its own 64-bit-key MultiQueue (see header note): one
        // row per (thread count, pop-batch), attached to multiqueue-c2 —
        // its label-correcting executor batches both scheduler sides with
        // the same pop_batch (and the same adaptive controller) the
        // framework rows sweep.
        if (backend->name == "multiqueue-c2") {
          relax::algorithms::SsspOptions sssp_opts;
          sssp_opts.num_threads = threads;
          sssp_opts.queue_factor = 4;
          sssp_opts.seed = seed;
          sssp_opts.pop_batch = pop_batch.batch;
          sssp_opts.pop_batch_auto = pop_batch.adaptive;
          sssp_opts.topology = numa;
          // Same median-of-repeat discipline as the framework rows.
          std::vector<relax::algorithms::SsspStats> strials(repeat);
          for (unsigned r = 0; r < repeat; ++r)
            (void)relax::algorithms::parallel_relaxed_sssp(
                g, weights, 0, sssp_opts, &strials[r]);
          std::sort(strials.begin(), strials.end(),
                    [](const relax::algorithms::SsspStats& a,
                       const relax::algorithms::SsspStats& b) {
                      return a.seconds < b.seconds;
                    });
          const relax::algorithms::SsspStats& sstats =
              strials[(strials.size() - 1) / 2];
          Row row;
          row.workload = "sssp";
          row.backend = std::string(backend->name);
          row.threads = threads;
          row.pop_batch = pop_batch.batch;
          row.pop_batch_auto = pop_batch.adaptive;
          row.numa = numa.label();
          row.seconds = sstats.seconds;
          row.tasks_per_s =
              sstats.seconds > 0.0 ? g.num_vertices() / sstats.seconds : 0.0;
          row.iters_per_task =
              g.num_vertices() > 0
                  ? static_cast<double>(sstats.pops) / g.num_vertices()
                  : 0.0;
          row.wasted_frac =
              sstats.pops > 0
                  ? static_cast<double>(sstats.stale_pops) / sstats.pops
                  : 0.0;
          row.slice_p99_us = -1.0;  // standalone executor: no engine slices
          row.mean_rank = -1.0;
          row.max_rank = 0;
          emit(row);
        }
      }
      }
    }
  }

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty() && !write_json(json_path.c_str(), rows)) return 1;
  return 0;
}
