// QoS fairness benchmark — measures what the weighted QosGovernor
// (src/engine/qos.h) actually delivers when tenants contend.
//
// Co-schedules synthetic "spin" tenants on one engine pool: a heavy class
// (--heavy-weight, default 2) and a light class (--light-weight, default
// 1), each a long-running job whose run_slice burns a fixed amount of CPU
// per scheduler iteration and counts what it consumed. Because every
// iteration costs the same, the per-tenant iteration totals over the timed
// window ARE the throughput shares, and fairness reduces to one line:
//
//   measured share ratio (heavy : light)  vs  configured weight ratio
//
// The paper's acceptance bar (ISSUE: 2:1 weights => at least 1.5:1 work
// ratio) is printed but not enforced here — engine_test carries the
// binding assertion; this harness exists to watch the margin over time.
// The light tenant's slice-latency percentiles are reported too: weighted
// sharing is only interesting if the small tenant still gets timely
// slices rather than banked starvation.
//
// --json emits one row per tenant class in the bench_diff.py cell schema
// (workload/backend/threads/pop_batch + tasks_per_s), so CI can track
// per-class throughput like any other bench cell; the extra fairness
// fields are ignored by old baselines per bench_diff's unknown-field rule.
//
// Usage: bench_qos_fairness [--threads=2] [--time-ms=2000]
//          [--heavy=1] [--light=1] [--heavy-weight=2] [--light-weight=1]
//          [--spin=200] [--slice-budget=0] [--json=path]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/execution_stats.h"
#include "engine/engine.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "util/cli.h"

namespace {

using Clock = std::chrono::steady_clock;

/// A synthetic tenant: burns --spin work units per scheduler iteration
/// until the shared stop flag flips, counting consumed iterations and
/// timing each slice. Uniform per-iteration cost makes iteration counts
/// directly comparable across tenants — the cleanest fairness signal.
class SpinJob final : public relax::engine::Job {
 public:
  SpinJob(std::uint32_t weight, std::uint32_t spin,
          const std::atomic<bool>* stop)
      : weight_(weight), spin_(spin), stop_(stop) {}

  void activate(unsigned) override {}

  relax::engine::SliceResult run_slice(unsigned,
                                       std::uint32_t budget) override {
    if (stop_->load(std::memory_order_relaxed)) return {};
    const auto t0 = Clock::now();
    std::uint32_t done = 0;
    while (done < budget && !stop_->load(std::memory_order_relaxed)) {
      volatile std::uint64_t sink = 0;
      for (std::uint32_t i = 0; i < spin_; ++i) sink += i;
      ++done;
    }
    iterations_.fetch_add(done, std::memory_order_relaxed);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - t0)
                        .count();
    {
      std::lock_guard<std::mutex> guard(hist_mu_);
      slice_ns_.record(static_cast<std::uint64_t>(ns));
    }
    return {done, done > 0};
  }

  [[nodiscard]] std::uint32_t weight() const noexcept override {
    return weight_;
  }
  [[nodiscard]] bool finished() const noexcept override {
    return stop_->load(std::memory_order_acquire);
  }
  relax::core::ExecutionStats collect() override { return {}; }

  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return iterations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double slice_percentile_us(double p) {
    std::lock_guard<std::mutex> guard(hist_mu_);
    return slice_ns_.percentile(p) / 1e3;
  }

 private:
  const std::uint32_t weight_;
  const std::uint32_t spin_;
  const std::atomic<bool>* stop_;
  std::atomic<std::uint64_t> iterations_{0};
  std::mutex hist_mu_;
  relax::obs::Histogram slice_ns_;
};

[[noreturn]] void usage_and_exit(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: bench_qos_fairness [flags]\n"
      "\n"
      "  --threads=<n>            engine worker threads (default 2)\n"
      "  --time-ms=<t>            contention window length (default 2000)\n"
      "  --heavy=<n>              heavy-class tenants (default 1)\n"
      "  --light=<n>              light-class tenants (default 1)\n"
      "  --heavy-weight=<w>       QoS weight of each heavy tenant\n"
      "                           (default 2)\n"
      "  --light-weight=<w>       QoS weight of each light tenant\n"
      "                           (default 1)\n"
      "  --spin=<k>               work units burned per scheduler\n"
      "                           iteration; sets the per-iteration cost\n"
      "                           all tenants share (default 200)\n"
      "  --slice-budget=<b>       engine slice budget override\n"
      "                           (0 = engine default)\n"
      "  --json=<path>            bench_diff.py-compatible artifact, one\n"
      "                           row per tenant class\n"
      "  --help                   this text\n");
  std::exit(error != nullptr ? 2 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  if (cli.has("help")) usage_and_exit(nullptr);

  const auto threads = static_cast<unsigned>(
      std::max<std::int64_t>(1, cli.get_int("threads", 2)));
  const auto time_ms = std::max<std::int64_t>(1, cli.get_int("time-ms", 2000));
  const auto n_heavy = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("heavy", 1)));
  const auto n_light = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("light", 1)));
  const auto heavy_w = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("heavy-weight", 2)));
  const auto light_w = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("light-weight", 1)));
  const auto spin = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("spin", 200)));
  const auto slice_budget =
      std::max<std::int64_t>(0, cli.get_int("slice-budget", 0));

  relax::obs::MetricsRegistry registry;
  relax::engine::EngineOptions eo;
  eo.num_threads = threads;
  eo.pin_threads = false;  // shared CI runners; placement is not the point
  eo.max_in_flight = static_cast<unsigned>(n_heavy + n_light);
  eo.metrics = &registry;
  if (slice_budget > 0)
    eo.slice_budget = static_cast<std::uint32_t>(slice_budget);

  std::atomic<bool> stop{false};
  std::vector<std::shared_ptr<SpinJob>> heavy;
  std::vector<std::shared_ptr<SpinJob>> light;
  std::vector<relax::engine::JobTicket> tickets;
  {
    relax::engine::SchedulingEngine eng(eo);
    // Submit every tenant before the window opens so the whole timed
    // interval runs under full contention.
    for (std::size_t i = 0; i < n_heavy; ++i)
      heavy.push_back(std::make_shared<SpinJob>(heavy_w, spin, &stop));
    for (std::size_t i = 0; i < n_light; ++i)
      light.push_back(std::make_shared<SpinJob>(light_w, spin, &stop));
    for (auto& j : heavy) tickets.push_back(eng.submit(j));
    for (auto& j : light) tickets.push_back(eng.submit(j));

    std::this_thread::sleep_for(std::chrono::milliseconds(time_ms));
    stop.store(true, std::memory_order_release);
    for (auto& t : tickets) t.wait();
  }

  const double seconds = static_cast<double>(time_ms) / 1e3;
  std::uint64_t heavy_iters = 0;
  std::uint64_t light_iters = 0;
  for (const auto& j : heavy) heavy_iters += j->iterations();
  for (const auto& j : light) light_iters += j->iterations();
  const std::uint64_t total = heavy_iters + light_iters;

  // Configured share ratio: total heavy weight vs total light weight.
  const double weight_ratio =
      static_cast<double>(heavy_w) * static_cast<double>(n_heavy) /
      (static_cast<double>(light_w) * static_cast<double>(n_light));
  const double measured_ratio =
      light_iters > 0 ? static_cast<double>(heavy_iters) /
                            static_cast<double>(light_iters)
                      : 0.0;

  std::printf(
      "qos_fairness: %u workers, %zu heavy (w=%u) + %zu light (w=%u), "
      "%lld ms window, spin=%u\n",
      threads, n_heavy, heavy_w, n_light, light_w,
      static_cast<long long>(time_ms), spin);
  std::printf(
      "  heavy: %llu iters (%.1f%% of work, %.0f iters/s)\n",
      static_cast<unsigned long long>(heavy_iters),
      total > 0 ? 100.0 * static_cast<double>(heavy_iters) /
                      static_cast<double>(total)
                : 0.0,
      static_cast<double>(heavy_iters) / seconds);
  std::printf(
      "  light: %llu iters (%.1f%% of work, %.0f iters/s)\n",
      static_cast<unsigned long long>(light_iters),
      total > 0 ? 100.0 * static_cast<double>(light_iters) /
                      static_cast<double>(total)
                : 0.0,
      static_cast<double>(light_iters) / seconds);
  std::printf("  share ratio heavy:light = %.2f (weights say %.2f)\n",
              measured_ratio, weight_ratio);
  if (!light.empty()) {
    std::printf("  light slice latency p50=%.1fus p99=%.1fus\n",
                light[0]->slice_percentile_us(50),
                light[0]->slice_percentile_us(99));
  }

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --json path '%s'\n",
                   json_path.c_str());
      return 1;
    }
    // bench_diff.py cell schema: workload/backend/threads/pop_batch key
    // plus tasks_per_s; the fairness extras ride along as ignored fields.
    std::fprintf(
        f,
        "[\n"
        "  {\"workload\": \"qos-fairness\", \"backend\": \"tenant-heavy\", "
        "\"threads\": %u, \"pop_batch\": 1, \"pop_batch_auto\": false, "
        "\"tasks_per_s\": %.1f, \"weight\": %u, \"share_ratio\": %.4f, "
        "\"weight_ratio\": %.4f},\n"
        "  {\"workload\": \"qos-fairness\", \"backend\": \"tenant-light\", "
        "\"threads\": %u, \"pop_batch\": 1, \"pop_batch_auto\": false, "
        "\"tasks_per_s\": %.1f, \"weight\": %u, \"slice_p99_us\": %.1f}\n"
        "]\n",
        threads, static_cast<double>(heavy_iters) / seconds, heavy_w,
        measured_ratio, weight_ratio, threads,
        static_cast<double>(light_iters) / seconds, light_w,
        light.empty() ? 0.0 : light[0]->slice_percentile_us(99));
    std::fclose(f);
  }
  return 0;
}
