#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/generators.h"

namespace relax::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string temp_path(const char* name) {
    return std::string(::testing::TempDir()) + "/" + name;
  }

  static void expect_same(const Graph& a, const Graph& b) {
    ASSERT_EQ(a.num_vertices(), b.num_vertices());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (Vertex v = 0; v < a.num_vertices(); ++v) {
      const auto na = a.neighbors(v);
      const auto nb = b.neighbors(v);
      ASSERT_EQ(na.size(), nb.size());
      EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
    }
  }
};

TEST_F(IoTest, TextRoundTrip) {
  const Graph g = gnm_exact(100, 300, 7);
  const auto path = temp_path("g.el");
  write_edge_list(g, path);
  expect_same(g, read_edge_list(path));
  std::remove(path.c_str());
}

TEST_F(IoTest, TextRoundTripEmpty) {
  const Graph g = Graph::from_edges(10, {});
  const auto path = temp_path("empty.el");
  write_edge_list(g, path);
  expect_same(g, read_edge_list(path));
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Graph g = gnm_exact(200, 1500, 11);
  const auto path = temp_path("g.bel");
  write_binary(g, path);
  expect_same(g, read_binary(path));
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  const auto path = temp_path("garbage.bel");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a graph", f);
  std::fclose(f);
  EXPECT_THROW(read_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list("/nonexistent/path/g.el"), std::runtime_error);
  EXPECT_THROW(read_binary("/nonexistent/path/g.bel"), std::runtime_error);
}

TEST_F(IoTest, TextHandWritten) {
  const auto path = temp_path("hand.el");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("3 2\n0 1\n1 2\n", f);
  std::fclose(f);
  const Graph g = read_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace relax::graph
