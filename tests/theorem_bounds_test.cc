// Statistical sanity checks of Theorems 1 and 2: these do not prove the
// bounds, but a regression that made the relaxation overhead scale with the
// input size would fail them. Margins are generous to avoid flakiness.
#include <gtest/gtest.h>

#include "algorithms/coloring.h"
#include "algorithms/mis.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/sim_multiqueue.h"
#include "sched/topk_uniform.h"

namespace relax {
namespace {

using graph::Graph;

std::uint64_t mis_extra_iterations(const Graph& g, std::uint32_t k,
                                   std::uint64_t seed) {
  const auto pri = graph::random_priorities(g.num_vertices(), seed);
  algorithms::MisProblem problem(g, pri);
  sched::SimMultiQueue sched(k, seed + 1);
  return core::run_sequential(problem, pri, sched).failed_deletes;
}

TEST(Theorem2, MisOverheadIndependentOfGraphSize) {
  // n doubles 4x at fixed density and k; extra iterations must not grow
  // proportionally (they should stay roughly flat ~ poly(k)).
  constexpr std::uint32_t kK = 8;
  double small_avg = 0, large_avg = 0;
  constexpr int kRuns = 3;
  for (int r = 0; r < kRuns; ++r) {
    small_avg += static_cast<double>(
        mis_extra_iterations(graph::gnm(2000, 10000, r), kK, r + 10));
    large_avg += static_cast<double>(
        mis_extra_iterations(graph::gnm(32000, 160000, r), kK, r + 20));
  }
  small_avg /= kRuns;
  large_avg /= kRuns;
  // 16x more vertices; Theorem 2 says overhead is size-independent. Allow
  // a factor-4 drift for noise, far below proportional growth.
  EXPECT_LT(large_avg, std::max(small_avg * 4.0, 200.0))
      << "small=" << small_avg << " large=" << large_avg;
}

TEST(Theorem2, MisOverheadIndependentOfDensity) {
  constexpr std::uint32_t kK = 8;
  double sparse = 0, dense = 0;
  constexpr int kRuns = 3;
  for (int r = 0; r < kRuns; ++r) {
    sparse += static_cast<double>(
        mis_extra_iterations(graph::gnm(5000, 10000, r), kK, r + 30));
    dense += static_cast<double>(
        mis_extra_iterations(graph::gnm(5000, 200000, r), kK, r + 40));
  }
  sparse /= kRuns;
  dense /= kRuns;
  EXPECT_LT(dense, std::max(sparse * 4.0, 200.0))
      << "sparse=" << sparse << " dense=" << dense;
}

TEST(Theorem2, OverheadGrowsWithK) {
  const Graph g = graph::gnm(10000, 30000, 5);
  double k4 = 0, k64 = 0;
  for (int r = 0; r < 3; ++r) {
    k4 += static_cast<double>(mis_extra_iterations(g, 4, r + 50));
    k64 += static_cast<double>(mis_extra_iterations(g, 64, r + 60));
  }
  EXPECT_LT(k4, k64);
}

TEST(Theorem1, CliqueColoringCostsAboutNK) {
  // The tightness example: greedy coloring on K_n with a k-relaxed queue
  // needs Theta(nk) iterations. Check both directions loosely.
  constexpr std::uint32_t kN = 200;
  for (const std::uint32_t k : {4u, 16u}) {
    const Graph g = graph::clique(kN);
    const auto pri = graph::random_priorities(kN, k);
    algorithms::ColoringProblem problem(g, pri);
    // Canonical top-k queue gives the cleanest Theta(nk) behaviour.
    sched::TopKUniformScheduler sched(kN, k, k + 1);
    const auto stats = core::run_sequential(problem, pri, sched);
    // Lower bound: at least ~ n*(k-1)/k * (k-1)/2 ... use a weak floor.
    EXPECT_GT(stats.failed_deletes, static_cast<std::uint64_t>(kN) * k / 8)
        << "k=" << k;
    // Upper: a few nk.
    EXPECT_LT(stats.failed_deletes, static_cast<std::uint64_t>(kN) * k * 8)
        << "k=" << k;
  }
}

TEST(Theorem1, SparseColoringOverheadSmall) {
  // m = O(n): Theorem 1 predicts poly(k) overhead, independent of n.
  constexpr std::uint32_t kK = 8;
  double small = 0, large = 0;
  for (int r = 0; r < 3; ++r) {
    {
      const Graph g = graph::gnm(4000, 8000, r);
      const auto pri = graph::random_priorities(4000, r + 70);
      algorithms::ColoringProblem p(g, pri);
      sched::SimMultiQueue s(kK, r + 71);
      small += static_cast<double>(
          core::run_sequential(p, pri, s).failed_deletes);
    }
    {
      const Graph g = graph::gnm(32000, 64000, r);
      const auto pri = graph::random_priorities(32000, r + 80);
      algorithms::ColoringProblem p(g, pri);
      sched::SimMultiQueue s(kK, r + 81);
      large += static_cast<double>(
          core::run_sequential(p, pri, s).failed_deletes);
    }
  }
  EXPECT_LT(large / 3, std::max(small / 3 * 4.0, 300.0));
}

}  // namespace
}  // namespace relax
