// Overhead guard: attaching a MetricsRegistry must not meaningfully slow
// the engine. The hot paths were built around this budget — plain-local
// accumulation flushed once per slice, padded per-worker slots, relaxed
// adds — and this test pins the total: MIS with metrics on stays within 5%
// (plus a small absolute allowance for timer noise) of metrics off.
//
// Single worker on purpose: multi-threaded MIS wall time is dominated by
// contention-dependent wasted work (failed deletes swing the iteration
// count by 2x run to run), which buries any instrumentation signal in
// noise. A single worker runs the identical instrumented code path —
// slice timing, per-claim flush, histogram records — with run-to-run
// jitter small enough that a 5% bound is actually meaningful.
//
// Interleaved min-of-N: each configuration's best run is its intrinsic
// cost with scheduling noise mostly stripped; interleaving keeps thermal /
// frequency drift from biasing one side.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "obs/metrics.h"
#include "util/timer.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define RELAX_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define RELAX_SANITIZED 1
#endif
#endif

namespace relax {
namespace {

double best_mis_seconds(const graph::Graph& g, const graph::Priorities& pri,
                        obs::MetricsRegistry* reg, int rounds) {
  double best = 1e9;
  for (int r = 0; r < rounds; ++r) {
    algorithms::AtomicMisProblem problem(g, pri);
    core::ParallelOptions opts;
    opts.num_threads = 1;
    opts.pin_threads = false;
    opts.pop_batch = 8;
    opts.pop_batch_auto = true;
    opts.metrics = reg;
    util::Timer timer;
    (void)core::run_parallel_relaxed(problem, pri, opts);
    best = std::min(best, timer.seconds());
  }
  return best;
}

TEST(Observability, MetricsOverheadWithinBudget) {
#ifdef RELAX_SANITIZED
  GTEST_SKIP() << "timing comparison is meaningless under sanitizers";
#else
  const auto g = graph::gnm(200000, 1200000, 11);
  const auto pri = graph::random_priorities(200000, 12);

  // Warm both paths (first-touch faults, code paging) before measuring.
  (void)best_mis_seconds(g, pri, nullptr, 1);
  obs::MetricsRegistry reg;
  (void)best_mis_seconds(g, pri, &reg, 1);

  constexpr int kRounds = 7;
  double best_off = 1e9;
  double best_on = 1e9;
  for (int r = 0; r < kRounds; ++r) {  // interleaved, one round each
    best_off = std::min(best_off, best_mis_seconds(g, pri, nullptr, 1));
    best_on = std::min(best_on, best_mis_seconds(g, pri, &reg, 1));
  }
  std::printf("metrics off: %.4fs  on: %.4fs  (+%.1f%%)\n", best_off,
              best_on, 100.0 * (best_on / best_off - 1.0));
  // 5% relative budget + 2ms absolute: on a run this size the absolute
  // term only absorbs clock/scheduler jitter, not real per-op cost.
  EXPECT_LE(best_on, best_off * 1.05 + 0.002);
#endif
}

}  // namespace
}  // namespace relax
