#include "sched/concurrent_multiqueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "sched/order_stat_set.h"
#include "util/rng.h"

namespace relax::sched {
namespace {

TEST(ConcurrentMultiQueue, SingleThreadDrainsAll) {
  ConcurrentMultiQueue q(8, 1);
  for (Priority p = 0; p < 1000; ++p) q.insert(p);
  EXPECT_EQ(q.size(), 1000u);
  std::vector<char> seen(1000, 0);
  std::uint32_t n = 0;
  while (auto p = q.approx_get_min()) {
    ASSERT_FALSE(seen[*p]);
    seen[*p] = 1;
    ++n;
  }
  EXPECT_EQ(n, 1000u);
  EXPECT_TRUE(q.empty());
}

TEST(ConcurrentMultiQueue, EmptyReturnsNullopt) {
  ConcurrentMultiQueue q(4, 1);
  EXPECT_FALSE(q.approx_get_min().has_value());
}

TEST(ConcurrentMultiQueue, MinimumQueueCountEnforced) {
  ConcurrentMultiQueue q(0, 1);
  EXPECT_GE(q.num_queues(), 2u);
}

TEST(ConcurrentMultiQueue, RoughPriorityBias) {
  // Two-choice over q heaps: the first pops should be strongly biased
  // toward small priorities. Pop a tenth of the universe and check the
  // mean popped value is far below the universe mean.
  ConcurrentMultiQueue q(8, 3);
  constexpr std::uint32_t kN = 10000;
  for (Priority p = 0; p < kN; ++p) q.insert(p);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto p = q.approx_get_min();
    ASSERT_TRUE(p.has_value());
    sum += *p;
  }
  EXPECT_LT(sum / 1000.0, kN * 0.2);  // exact would be ~500; universe mean 5000
}

TEST(ConcurrentMultiQueue, ConcurrentExactlyOnce) {
  constexpr std::uint32_t kN = 100000;
  constexpr unsigned kThreads = 8;
  ConcurrentMultiQueue q(4 * kThreads, 5);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        auto handle = q.get_handle();
        // Each thread produces a slice and consumes until global drain.
        for (;;) {
          const auto i = produced.fetch_add(1);
          if (i >= kN) break;
          handle.insert(i);
        }
        while (consumed.load() < kN) {
          const auto p = handle.approx_get_min();
          if (!p) continue;
          got[*p].fetch_add(1);
          consumed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
}

TEST(ConcurrentMultiQueue, ConcurrentReinsertionSafe) {
  // Threads pop and re-insert half the time; ensure nothing is lost.
  constexpr std::uint32_t kN = 20000;
  ConcurrentMultiQueue q(16, 7);
  for (Priority p = 0; p < kN; ++p) q.insert(p);
  std::atomic<std::uint32_t> retired{0};
  std::vector<std::atomic<int>> done(kN);
  for (auto& d : done) d.store(0);
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        util::Rng rng(t + 100);
        auto handle = q.get_handle();
        while (retired.load() < kN) {
          const auto p = handle.approx_get_min();
          if (!p) continue;
          if (done[*p].load() == 0 && util::bounded(rng, 2) == 0) {
            handle.insert(*p);  // simulate a failed delete
          } else {
            ASSERT_EQ(done[*p].fetch_add(1), 0);
            retired.fetch_add(1);
          }
        }
      });
    }
  }
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(done[i].load(), 1);
}

TEST(ConcurrentMultiQueue, SixtyFourBitKeys) {
  BasicConcurrentMultiQueue<std::uint64_t> q(4, 1);
  const std::uint64_t big = (0x12345678ULL << 32) | 0x9abcdef0ULL;
  q.insert(big);
  q.insert(1);
  std::uint64_t seen_big = 0, count = 0;
  while (auto v = q.approx_get_min()) {
    if (*v == big) seen_big = 1;
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_TRUE(seen_big);
}

TEST(ConcurrentMultiQueue, SequentialRankErrorBoundedByQueueSpread) {
  // Single-threaded: the rank error should concentrate below a small
  // multiple of the queue count (PODC'17 analysis).
  constexpr std::uint32_t kQueues = 8, kN = 20000;
  ConcurrentMultiQueue q(kQueues, 11);
  OrderStatSet mirror(kN);
  for (Priority p = 0; p < kN; ++p) {
    q.insert(p);
    mirror.insert(p);
  }
  std::uint64_t violations = 0;
  while (auto p = q.approx_get_min()) {
    if (mirror.rank_of(*p) >= 16 * kQueues) ++violations;
    mirror.erase(*p);
  }
  EXPECT_LT(violations, kN / 100);
}


TEST(ConcurrentMultiQueue, BulkLoadDrainsAllExactlyOnce) {
  ConcurrentMultiQueue q(8, 7);
  constexpr std::uint32_t kN = 5000;
  std::vector<Priority> labels(kN);
  for (Priority p = 0; p < kN; ++p) labels[p] = p;
  q.bulk_load(labels);
  EXPECT_EQ(q.size(), kN);
  std::vector<char> seen(kN, 0);
  std::uint32_t n = 0;
  while (auto p = q.approx_get_min()) {
    ASSERT_FALSE(seen[*p]);
    seen[*p] = 1;
    ++n;
  }
  EXPECT_EQ(n, kN);
}

TEST(ConcurrentMultiQueue, BulkLoadMixesWithDynamicInserts) {
  // The two-part sub-queue must interleave base-array pops and heap pops in
  // priority order: bulk-load the evens, insert the odds dynamically, then
  // check pops are biased-small and complete.
  ConcurrentMultiQueue q(4, 9);
  constexpr std::uint32_t kN = 2000;
  std::vector<Priority> evens;
  for (Priority p = 0; p < kN; p += 2) evens.push_back(p);
  q.bulk_load(evens);
  for (Priority p = 1; p < kN; p += 2) q.insert(p);
  EXPECT_EQ(q.size(), kN);
  std::vector<char> seen(kN, 0);
  std::uint32_t n = 0;
  while (auto p = q.approx_get_min()) {
    ASSERT_FALSE(seen[*p]);
    seen[*p] = 1;
    ++n;
  }
  EXPECT_EQ(n, kN);
}

TEST(ConcurrentMultiQueue, BulkInsertOnLiveQueueDrainsExactly) {
  // Unlike bulk_load, bulk_insert targets a queue that is already serving
  // pops: interleave batched inserts with partial drains and verify every
  // key is delivered exactly once, in spite of base-array compaction.
  ConcurrentMultiQueue q(4, 13);
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint32_t kBatch = 256;
  std::vector<char> seen(kN, 0);
  std::uint32_t popped = 0;
  for (std::uint32_t lo = 0; lo < kN; lo += kBatch) {
    std::vector<Priority> batch;
    for (Priority p = lo; p < lo + kBatch; ++p) batch.push_back(p);
    q.bulk_insert(batch);
    // Drain roughly half of what is present before the next batch lands.
    for (std::size_t target = q.size() / 2; q.size() > target;) {
      const auto p = q.approx_get_min();
      ASSERT_TRUE(p.has_value());
      ASSERT_LT(*p, kN);
      ASSERT_FALSE(seen[*p]);
      seen[*p] = 1;
      ++popped;
    }
  }
  while (auto p = q.approx_get_min()) {
    ASSERT_FALSE(seen[*p]);
    seen[*p] = 1;
    ++popped;
  }
  EXPECT_EQ(popped, kN);
  EXPECT_TRUE(q.empty());
}

TEST(ConcurrentMultiQueue, ConcurrentBulkInsertAndPopLosesNothing) {
  ConcurrentMultiQueue q(8, 17);
  constexpr std::uint32_t kN = 1 << 15;
  constexpr unsigned kProducers = 2;
  std::vector<std::atomic<std::uint8_t>> seen(kN);
  std::atomic<std::uint32_t> popped{0};
  // A detected duplicate must abort the consumer loops, not just mark the
  // test failed — otherwise `popped` never reaches kN and the join hangs
  // the binary instead of reporting.
  std::atomic<bool> failed{false};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kProducers; ++t) {
      threads.emplace_back([&, t] {
        auto handle = q.get_handle();
        std::vector<Priority> batch;
        for (Priority p = t; p < kN; p += kProducers) {
          batch.push_back(p);
          if (batch.size() == 512) {
            handle.bulk_insert(batch);
            batch.clear();
          }
        }
        handle.bulk_insert(batch);
      });
    }
    for (unsigned t = 0; t < 2; ++t) {
      threads.emplace_back([&] {
        auto handle = q.get_handle();
        while (popped.load(std::memory_order_acquire) < kN &&
               !failed.load(std::memory_order_acquire)) {
          const auto p = handle.approx_get_min();
          if (!p) continue;  // producers may still be inserting
          if (seen[*p].fetch_add(1) != 0) {
            ADD_FAILURE() << "duplicate pop of " << *p;
            failed.store(true, std::memory_order_release);
            return;
          }
          popped.fetch_add(1, std::memory_order_release);
        }
      });
    }
  }
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(popped.load(), kN);
  EXPECT_TRUE(q.empty());
}

TEST(ConcurrentMultiQueue, BatchPopDrainsAllExactlyOnce) {
  ConcurrentMultiQueue q(8, 31);
  constexpr std::uint32_t kN = 5000;
  for (Priority p = 0; p < kN; ++p) q.insert(p);
  std::vector<char> seen(kN, 0);
  std::uint32_t n = 0;
  std::vector<Priority> batch;
  for (;;) {
    batch.clear();
    const std::size_t got = q.approx_get_min_batch(8, batch);
    if (got == 0) break;
    ASSERT_EQ(got, batch.size());
    ASSERT_LE(got, 8u);
    for (const Priority p : batch) {
      ASSERT_LT(p, kN);
      ASSERT_FALSE(seen[p]);
      seen[p] = 1;
      ++n;
    }
  }
  EXPECT_EQ(n, kN);
  EXPECT_TRUE(q.empty());
}

TEST(ConcurrentMultiQueue, BatchPopReturnsSortedRunsFromOneSubQueue) {
  // A batch drains one sub-queue's prefix, so within a batch the labels
  // must come out in ascending order (base cursor advances + heap pops).
  ConcurrentMultiQueue q(4, 33);
  constexpr std::uint32_t kN = 2000;
  std::vector<Priority> labels(kN);
  for (Priority p = 0; p < kN; ++p) labels[p] = p;
  q.bulk_load(labels);
  std::vector<Priority> batch;
  while (q.approx_get_min_batch(16, batch) > 0) {
    for (std::size_t i = 1; i < batch.size(); ++i)
      EXPECT_LE(batch[i - 1], batch[i]);
    batch.clear();
  }
  EXPECT_TRUE(q.empty());
}

TEST(ConcurrentMultiQueue, ConcurrentBatchPopExactlyOnce) {
  constexpr std::uint32_t kN = 60000;
  constexpr unsigned kThreads = 4;
  ConcurrentMultiQueue q(4 * kThreads, 35);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        auto handle = q.get_handle();
        for (;;) {
          const auto i = produced.fetch_add(1);
          if (i >= kN) break;
          handle.insert(i);
        }
        std::vector<Priority> batch;
        while (consumed.load() < kN) {
          batch.clear();
          if (handle.approx_get_min_batch(8, batch) == 0) continue;
          for (const Priority p : batch) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
  EXPECT_TRUE(q.empty());
}

TEST(ConcurrentMultiQueue, SmallBulkInsertSpreadsOverSubQueues) {
  // Regression: batches below 2 * kMinBulkChunk used to collapse into a
  // single chunk aimed at one random sub-queue, transiently skewing that
  // queue (and the two-choice rank distribution) until pops rebalanced it.
  static_assert(ConcurrentMultiQueue::kMinBulkChunk >= 2);
  constexpr auto kSmall =
      static_cast<std::uint32_t>(2 * ConcurrentMultiQueue::kMinBulkChunk - 2);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ConcurrentMultiQueue q(8, seed);
    std::vector<Priority> batch(kSmall);
    for (Priority p = 0; p < kSmall; ++p) batch[p] = p;
    q.bulk_insert(batch);
    const auto sizes = q.per_queue_sizes();
    std::size_t nonempty = 0, largest = 0;
    for (const std::size_t s : sizes) {
      nonempty += s > 0 ? 1 : 0;
      largest = std::max(largest, s);
    }
    EXPECT_GE(nonempty, 2u) << "seed " << seed;
    EXPECT_LT(largest, kSmall) << "seed " << seed;
  }
}

TEST(ConcurrentMultiQueue, TinyBulkInsertStillDeliversEverything) {
  // Degenerate sizes around the new >=2-chunk floor: nothing lost, nothing
  // duplicated, even for 1-key batches (which necessarily fill one chunk).
  ConcurrentMultiQueue q(4, 41);
  std::uint32_t next = 0;
  for (const std::uint32_t size : {1u, 2u, 3u, 63u, 64u, 65u, 127u}) {
    std::vector<Priority> batch;
    for (std::uint32_t i = 0; i < size; ++i) batch.push_back(next++);
    q.bulk_insert(batch);
  }
  std::vector<char> seen(next, 0);
  std::uint32_t n = 0;
  while (auto p = q.approx_get_min()) {
    ASSERT_LT(*p, next);
    ASSERT_FALSE(seen[*p]);
    seen[*p] = 1;
    ++n;
  }
  EXPECT_EQ(n, next);
}

TEST(ConcurrentMultiQueue, BulkInsertCompactionTriggersAndLosesNothing) {
  // Drive the consumed-prefix compaction path (cursor * 2 >= base.size()
  // erase) hard: rounds of live batched inserts interleaved with partial
  // drains grow each sub-queue's consumed prefix until bulk_insert must
  // compact. The compactions() counter proves the path actually ran; the
  // exactly-once ledger proves it dropped and duplicated nothing.
  ConcurrentMultiQueue q(2, 43);
  constexpr std::uint32_t kBatch = 256;
  constexpr std::uint32_t kRounds = 48;
  constexpr std::uint32_t kN = kBatch * kRounds;
  std::vector<char> seen(kN, 0);
  std::uint32_t popped = 0;
  Priority next = 0;
  for (std::uint32_t round = 0; round < kRounds; ++round) {
    std::vector<Priority> batch;
    for (std::uint32_t i = 0; i < kBatch; ++i) batch.push_back(next++);
    q.bulk_insert(batch);
    // Pop 3/4 of the batch so a live tail survives in base across the next
    // insert's merge (and, periodically, its compaction).
    for (std::uint32_t i = 0; i < kBatch - kBatch / 4; ++i) {
      const auto p = q.approx_get_min();
      ASSERT_TRUE(p.has_value());
      ASSERT_LT(*p, kN);
      ASSERT_FALSE(seen[*p]);
      seen[*p] = 1;
      ++popped;
    }
  }
  EXPECT_GT(q.compactions(), 0u);
  while (auto p = q.approx_get_min()) {
    ASSERT_FALSE(seen[*p]);
    seen[*p] = 1;
    ++popped;
  }
  EXPECT_EQ(popped, kN);
  EXPECT_TRUE(q.empty());
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_TRUE(seen[i]) << "label " << i;
}

TEST(ConcurrentMultiQueue, SingleSubQueuePairPopsExactWithBulkLoad) {
  // With 2 sub-queues and two-choice sampling, every pop compares both
  // tops, so the global minimum is always returned: exact behaviour.
  ConcurrentMultiQueue q(2, 11);
  std::vector<Priority> labels(500);
  for (Priority p = 0; p < 500; ++p) labels[p] = p;
  q.bulk_load(labels);
  for (Priority expect = 0; expect < 500; ++expect)
    EXPECT_EQ(q.approx_get_min(), expect);
}

}  // namespace
}  // namespace relax::sched
