// Deterministic unit tests for the steady-state harness building blocks
// (insert policies, key distributions, role assignment) plus a short
// steady smoke over two real backends: nonzero measured ops and a
// well-formed JSON row are the contract the CI perf gate stands on.
#include "sched/key_distribution.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>

#include "bench/steady_state.h"
#include "sched/backend_registry.h"
#include "util/rng.h"
#include "util/topology.h"

namespace relax::sched {
namespace {

TEST(InsertPolicy, NamesRoundTrip) {
  for (const InsertPolicy p : all_insert_policies()) {
    const auto parsed = parse_insert_policy(insert_policy_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_insert_policy("nope").has_value());
  for (const KeyDistribution d : all_key_distributions()) {
    const auto parsed = parse_key_distribution(key_distribution_name(d));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, d);
  }
  EXPECT_FALSE(parse_key_distribution("").has_value());
}

TEST(InsertPolicy, SplitAssignsProducerAndConsumerHalves) {
  constexpr unsigned kThreads = 8;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    const ThreadRole role = thread_role(InsertPolicy::kSplit, tid, kThreads);
    EXPECT_EQ(role.inserts, tid < kThreads / 2) << "tid=" << tid;
    EXPECT_EQ(role.deletes, tid >= kThreads / 2) << "tid=" << tid;
  }
  // Odd thread counts put the extra thread on the delete side.
  EXPECT_TRUE(thread_role(InsertPolicy::kSplit, 0, 3).inserts);
  EXPECT_TRUE(thread_role(InsertPolicy::kSplit, 1, 3).deletes);
  EXPECT_TRUE(thread_role(InsertPolicy::kSplit, 2, 3).deletes);
}

TEST(InsertPolicy, ProducerIsThreadZeroOnly) {
  constexpr unsigned kThreads = 4;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    const ThreadRole role =
        thread_role(InsertPolicy::kProducer, tid, kThreads);
    EXPECT_EQ(role.inserts, tid == 0) << "tid=" << tid;
    EXPECT_EQ(role.deletes, tid != 0) << "tid=" << tid;
  }
}

TEST(InsertPolicy, SingleThreadDegradesToBothRoles) {
  // A lone thread must make progress under every policy.
  for (const InsertPolicy p : all_insert_policies()) {
    const ThreadRole role = thread_role(p, 0, 1);
    EXPECT_TRUE(role.inserts) << insert_policy_name(p);
    EXPECT_TRUE(role.deletes) << insert_policy_name(p);
  }
}

TEST(InsertPolicy, AlternatingStrictlyAlternates) {
  OpSequencer seq(InsertPolicy::kAlternating, 1, 4);
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(seq.next_is_insert(rng), i % 2 == 0) << "op " << i;
}

TEST(InsertPolicy, UniformEmitsBothOps) {
  OpSequencer seq(InsertPolicy::kUniform, 0, 4);
  util::Rng rng(11);
  int inserts = 0;
  for (int i = 0; i < 1000; ++i) inserts += seq.next_is_insert(rng) ? 1 : 0;
  EXPECT_GT(inserts, 300);
  EXPECT_LT(inserts, 700);
}

TEST(InsertPolicy, RoleOnlySidesNeverFlip) {
  util::Rng rng(13);
  OpSequencer producer(InsertPolicy::kSplit, 0, 4);   // insert half
  OpSequencer consumer(InsertPolicy::kSplit, 3, 4);   // delete half
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(producer.next_is_insert(rng));
    EXPECT_FALSE(consumer.next_is_insert(rng));
  }
}

TEST(KeyGenerator, DijkstraFeedsPoppedKeysBackWithOffset) {
  constexpr Priority kUniverse = 1 << 20;
  KeyGenerator gen(KeyDistribution::kDijkstra, kUniverse, 0, 1);
  util::Rng rng(42);
  gen.feed(5000);
  gen.feed(6000);
  ASSERT_EQ(gen.pending_feedback(), 2u);
  const Priority first = gen.next(rng);
  EXPECT_GE(first, 5000u + KeyGenerator::kDijkstraMinIncrease);
  EXPECT_LE(first, 5000u + KeyGenerator::kDijkstraMaxIncrease);
  const Priority second = gen.next(rng);
  EXPECT_GE(second, 6000u + KeyGenerator::kDijkstraMinIncrease);
  EXPECT_LE(second, 6000u + KeyGenerator::kDijkstraMaxIncrease);
  EXPECT_EQ(gen.pending_feedback(), 0u);
  // Drained ring: self-starts from a uniform draw inside the universe.
  EXPECT_LT(gen.next(rng), kUniverse);
}

TEST(KeyGenerator, DijkstraClampsAtUniverseEdge) {
  constexpr Priority kUniverse = 1024;
  KeyGenerator gen(KeyDistribution::kDijkstra, kUniverse, 0, 1);
  util::Rng rng(3);
  gen.feed(kUniverse - 1);
  EXPECT_EQ(gen.next(rng), kUniverse - 1);
}

TEST(KeyGenerator, AscendingIsMonotoneAndStrided) {
  constexpr unsigned kThreads = 4;
  constexpr Priority kUniverse = 1 << 16;
  util::Rng rng(1);
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    KeyGenerator gen(KeyDistribution::kAscending, kUniverse, tid, kThreads);
    Priority prev = gen.next(rng);
    EXPECT_EQ(prev, tid);  // thread t starts at t
    for (int i = 0; i < 2000; ++i) {
      const Priority next = gen.next(rng);
      ASSERT_GE(next, prev);
      prev = next;
    }
  }
  // Saturates at universe - 1 instead of wrapping.
  KeyGenerator tiny(KeyDistribution::kAscending, 8, 0, 4);
  for (int i = 0; i < 64; ++i) ASSERT_LT(tiny.next(rng), 8u);
}

TEST(KeyGenerator, DescendingIsMonotoneFromTop) {
  constexpr unsigned kThreads = 4;
  constexpr Priority kUniverse = 1 << 16;
  util::Rng rng(1);
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    KeyGenerator gen(KeyDistribution::kDescending, kUniverse, tid, kThreads);
    Priority prev = gen.next(rng);
    EXPECT_EQ(prev, kUniverse - 1 - tid);
    for (int i = 0; i < 2000; ++i) {
      const Priority next = gen.next(rng);
      ASSERT_LE(next, prev);
      prev = next;
    }
  }
  // Saturates at 0 instead of wrapping below zero.
  KeyGenerator tiny(KeyDistribution::kDescending, 8, 1, 4);
  for (int i = 0; i < 64; ++i) ASSERT_LT(tiny.next(rng), 8u);
}

TEST(KeyGenerator, FeedbackRingDropsWhenFull) {
  KeyGenerator gen(KeyDistribution::kDijkstra, 1 << 20, 0, 1);
  for (std::size_t i = 0; i < 2 * KeyGenerator::kFeedbackCapacity; ++i)
    gen.feed(static_cast<Priority>(i));
  EXPECT_EQ(gen.pending_feedback(), KeyGenerator::kFeedbackCapacity);
}

// --- Steady smoke: two real backends through the full harness path. ---

void expect_json_field(const std::string& row, const std::string& needle) {
  EXPECT_NE(row.find(needle), std::string::npos)
      << "missing " << needle << " in: " << row;
}

TEST(SteadySmoke, TwoBackendsProduceOpsAndWellFormedJson) {
  for (const char* name : {"multiqueue-c2", "exact"}) {
    const BackendInfo* backend = find_backend(name);
    ASSERT_NE(backend, nullptr) << name;

    bench::SteadyConfig cfg;
    cfg.backend = backend;
    cfg.threads = 2;
    cfg.policy = InsertPolicy::kUniform;
    cfg.distribution = KeyDistribution::kDijkstra;
    cfg.prefill = 20'000;
    cfg.working_seconds = 0.3;
    cfg.runs = 1;
    cfg.key_universe = 1 << 16;
    cfg.seed = 5;
    cfg.quality = true;

    const bench::SteadyCell cell = bench::run_steady_cell(cfg);
    EXPECT_GT(cell.ops, 0u) << name;
    EXPECT_GT(cell.ops_per_s, 0.0) << name;
    EXPECT_GT(cell.inserts, 0u) << name;
    EXPECT_GT(cell.deletes, 0u) << name;
    EXPECT_GE(cell.mean_rank, 0.0) << name << ": quality pass did not run";

    std::string row;
    bench::append_json_row(row, cell);
    EXPECT_EQ(row.front(), '{');
    EXPECT_EQ(row.back(), '}');
    expect_json_field(row, "\"workload\": \"steady\"");
    expect_json_field(row, std::string("\"backend\": \"") + name + "\"");
    expect_json_field(row, "\"policy\": \"uniform\"");
    expect_json_field(row, "\"distribution\": \"dijkstra\"");
    expect_json_field(row, "\"tasks_per_s\": ");
    expect_json_field(row, "\"runs\": 1");
    EXPECT_EQ(row.find("nan"), std::string::npos) << row;
    EXPECT_EQ(row.find("inf"), std::string::npos) << row;
  }
}

// The exact backend's steady quality pass must report zero rank error —
// the end-to-end check that the monitored companion pass wires the
// harness traffic through RelaxationMonitor correctly.
TEST(SteadySmoke, ExactBackendHasZeroRankError) {
  const BackendInfo* backend = find_backend("exact");
  ASSERT_NE(backend, nullptr);
  bench::SteadyConfig cfg;
  cfg.backend = backend;
  cfg.threads = 2;
  cfg.policy = InsertPolicy::kSplit;
  cfg.distribution = KeyDistribution::kUniform;
  cfg.prefill = 5'000;
  cfg.working_seconds = 0.2;
  cfg.runs = 1;
  cfg.key_universe = 1 << 14;
  cfg.seed = 9;
  cfg.quality = true;
  const bench::SteadyCell cell = bench::run_steady_cell(cfg);
  EXPECT_EQ(cell.max_rank, 0u);
  EXPECT_DOUBLE_EQ(cell.mean_rank, 0.0);
}

// The throughput-over-time profile must account for every completed op
// (empty pops excluded) and be clamped to the measured window — the
// properties the "is it actually steady" reading of the buckets rests on.
// The cell also carries its topology label end to end into the JSON row.
TEST(SteadySmoke, BucketsAccountForEveryOpAndCarryTheNumaLabel) {
  const BackendInfo* backend = find_backend("multiqueue-c2");
  ASSERT_NE(backend, nullptr);
  bench::SteadyConfig cfg;
  cfg.backend = backend;
  cfg.threads = 2;
  cfg.policy = InsertPolicy::kUniform;
  cfg.distribution = KeyDistribution::kUniform;
  cfg.prefill = 10'000;
  cfg.working_seconds = 0.3;
  cfg.runs = 1;
  cfg.key_universe = 1 << 16;
  cfg.seed = 21;
  cfg.quality = false;
  const auto numa = relax::util::TopologySpec::parse("virtual:2");
  ASSERT_TRUE(numa.has_value());
  cfg.numa = *numa;

  const bench::SteadyCell cell = bench::run_steady_cell(cfg);
  EXPECT_EQ(cell.numa, "virtual:2");
  ASSERT_FALSE(cell.buckets.empty());
  // Exhaustive attribution: bucket totals are exactly inserts + deletes.
  const std::uint64_t bucketed = std::accumulate(
      cell.buckets.begin(), cell.buckets.end(), std::uint64_t{0});
  EXPECT_EQ(bucketed, cell.ops);
  // Straggler ops past the stop flag are folded into the window's last
  // bucket: the profile length is a function of the measured window
  // (100 ms buckets), never of scheduler jitter.
  EXPECT_LE(cell.buckets.size(),
            static_cast<std::size_t>(cell.seconds * 10.0) + 1);

  std::string row;
  bench::append_json_row(row, cell);
  expect_json_field(row, "\"numa\": \"virtual:2\"");
  expect_json_field(row, "\"buckets\": [");
  // A default-constructed spec labels "off" — what legacy-equivalent rows
  // report and what bench_diff.py folds into the legacy cell key.
  cfg.numa = relax::util::TopologySpec{};
  const bench::SteadyCell flat = bench::run_steady_cell(cfg);
  EXPECT_EQ(flat.numa, "off");
}

}  // namespace
}  // namespace relax::sched
