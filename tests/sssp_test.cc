#include "algorithms/sssp.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace relax::algorithms {
namespace {

using graph::Graph;

TEST(SyntheticWeights, SymmetricAndInRange) {
  const Graph g = graph::gnm_exact(100, 400, 3);
  const auto w = synthetic_edge_weights(g, 7, 50);
  ASSERT_EQ(w.size(), g.num_arcs());
  for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      const auto weight = w[g.arc_offset(u) + j];
      EXPECT_GE(weight, 1u);
      EXPECT_LE(weight, 50u);
      // Find the reverse arc and compare.
      const graph::Vertex v = nb[j];
      const auto back = g.neighbors(v);
      for (std::size_t i = 0; i < back.size(); ++i) {
        if (back[i] == u) {
          EXPECT_EQ(w[g.arc_offset(v) + i], weight);
        }
      }
    }
  }
}

TEST(Dijkstra, HandComputedPath) {
  // 0 -1- 1 -1- 2 and a direct heavy edge 0-2.
  const Graph g =
      Graph::from_edges(3, std::vector<graph::Edge>{{0, 1}, {1, 2}, {0, 2}});
  // Weights are synthesized; instead build explicit weights by matching the
  // CSR layout: we assign via a lambda over sorted adjacency.
  std::vector<std::uint32_t> w(g.num_arcs());
  auto set_w = [&](graph::Vertex a, graph::Vertex b, std::uint32_t weight) {
    const auto nb = g.neighbors(a);
    for (std::size_t j = 0; j < nb.size(); ++j)
      if (nb[j] == b) w[g.arc_offset(a) + j] = weight;
  };
  set_w(0, 1, 1);
  set_w(1, 0, 1);
  set_w(1, 2, 1);
  set_w(2, 1, 1);
  set_w(0, 2, 10);
  set_w(2, 0, 10);
  const auto dist = dijkstra(g, w, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);  // via 1, not the heavy direct edge
}

TEST(Dijkstra, UnreachableVertices) {
  const Graph g =
      Graph::from_edges(4, std::vector<graph::Edge>{{0, 1}, {2, 3}});
  const auto w = synthetic_edge_weights(g, 1, 10);
  const auto dist = dijkstra(g, w, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_NE(dist[1], kUnreachable);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(ParallelRelaxedSssp, MatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::gnm(2000, 10000, seed);
    const auto w = synthetic_edge_weights(g, seed + 1, 100);
    const auto expected = dijkstra(g, w, 0);
    SsspStats stats;
    const auto dist =
        parallel_relaxed_sssp(g, w, 0, 4, 4, seed + 2, /*pop_batch=*/1,
                              &stats);
    EXPECT_EQ(dist, expected) << "seed=" << seed;
    EXPECT_GE(stats.pops, stats.relaxations);
  }
}

TEST(ParallelRelaxedSssp, BatchedPopsAndReinsertsStayExact) {
  // The batched path claims up to k keys per scheduler touch and flushes
  // relaxations back as one bulk_insert run; distances must stay exact and
  // every popped key must be accounted (pops sum across batches).
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = graph::gnm(2000, 10000, seed + 40);
    const auto w = synthetic_edge_weights(g, seed + 41, 100);
    const auto expected = dijkstra(g, w, 0);
    SsspStats stats;
    const auto dist =
        parallel_relaxed_sssp(g, w, 0, 4, 4, seed + 42, /*pop_batch=*/8,
                              &stats);
    EXPECT_EQ(dist, expected) << "seed=" << seed;
    EXPECT_GE(stats.pops, stats.relaxations);
    // Batching really happened: strictly fewer acquisition round trips
    // than pops (a mean batch > 1), and never more round trips than pops.
    EXPECT_GT(stats.batches, 0u);
    EXPECT_LT(stats.batches, stats.pops);
    // Fixed mode asks for exactly pop_batch every touch.
    EXPECT_EQ(stats.min_claim, 8u);
    EXPECT_EQ(stats.max_claim, 8u);
  }
}

TEST(ParallelRelaxedSssp, AdaptiveBatchingReportsVaryingClaims) {
  // --pop-batch=auto end to end: the standalone executor runs the same
  // occupancy-aware BatchController as the engine jobs, so the requested
  // claim size must actually float — every worker starts at 1 and ramps
  // under load — instead of silently degrading to a fixed cap (the PR 4
  // behaviour this guards against).
  const Graph g = graph::gnm(4000, 24000, 51);
  const auto w = synthetic_edge_weights(g, 52, 100);
  const auto expected = dijkstra(g, w, 0);
  SsspOptions opts;
  opts.num_threads = 4;
  opts.queue_factor = 4;
  opts.seed = 53;
  opts.pop_batch = 32;  // the adaptive cap
  opts.pop_batch_auto = true;
  SsspStats stats;
  EXPECT_EQ(parallel_relaxed_sssp(g, w, 0, opts, &stats), expected);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.min_claim, 1u);   // everyone starts at a single pop
  EXPECT_GT(stats.max_claim, 1u);   // and the ramp engaged under load
  EXPECT_LE(stats.max_claim, 32u);  // never beyond the cap
}

TEST(ParallelRelaxedSssp, AdaptiveSingleThreadMatchesDijkstra) {
  const Graph g = graph::gnm(1500, 9000, 55);
  const auto w = synthetic_edge_weights(g, 56, 50);
  SsspOptions opts;
  opts.num_threads = 1;
  opts.seed = 57;
  opts.pop_batch = 16;
  opts.pop_batch_auto = true;
  EXPECT_EQ(parallel_relaxed_sssp(g, w, 0, opts), dijkstra(g, w, 0));
}

TEST(ParallelRelaxedSssp, BatchedSingleThreadMatchesDijkstra) {
  const Graph g = graph::gnm(1500, 9000, 33);
  const auto w = synthetic_edge_weights(g, 34, 50);
  EXPECT_EQ(parallel_relaxed_sssp(g, w, 0, 1, 4, 35, /*pop_batch=*/16),
            dijkstra(g, w, 0));
}

TEST(ParallelRelaxedSssp, SingleThreadCorrect) {
  const Graph g = graph::gnm(500, 3000, 9);
  const auto w = synthetic_edge_weights(g, 11, 20);
  EXPECT_EQ(parallel_relaxed_sssp(g, w, 0, 1, 4, 13), dijkstra(g, w, 0));
}

TEST(ParallelRelaxedSssp, ManyThreadsCorrect) {
  const Graph g = graph::gnm(3000, 30000, 15);
  const auto w = synthetic_edge_weights(g, 17, 1000);
  EXPECT_EQ(parallel_relaxed_sssp(g, w, 0, 8, 4, 19), dijkstra(g, w, 0));
}

TEST(ParallelRelaxedSssp, DifferentSourcesAgree) {
  const Graph g = graph::gnm(1000, 8000, 21);
  const auto w = synthetic_edge_weights(g, 23, 100);
  for (const graph::Vertex src : {0u, 500u, 999u}) {
    EXPECT_EQ(parallel_relaxed_sssp(g, w, src, 4, 4, 25),
              dijkstra(g, w, src));
  }
}

TEST(ParallelRelaxedSssp, PathGraphWorstCaseForRelaxation) {
  // A long path forces essentially sequential propagation; correctness must
  // hold even when the relaxed queue serves vertices far out of order.
  const Graph g = graph::path(5000);
  const auto w = synthetic_edge_weights(g, 27, 10);
  EXPECT_EQ(parallel_relaxed_sssp(g, w, 0, 8, 4, 29), dijkstra(g, w, 0));
}

}  // namespace
}  // namespace relax::algorithms
