#include "util/cli.h"

#include <gtest/gtest.h>

namespace relax::util {
namespace {

CommandLine make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(CommandLine, EqualsForm) {
  const auto cl = make({"--n=100", "--name=foo"});
  EXPECT_EQ(cl.get_int("n", 0), 100);
  EXPECT_EQ(cl.get_string("name", ""), "foo");
}

TEST(CommandLine, SpaceForm) {
  const auto cl = make({"--n", "42"});
  EXPECT_EQ(cl.get_int("n", 0), 42);
}

TEST(CommandLine, BareBooleanFlag) {
  const auto cl = make({"--verbose"});
  EXPECT_TRUE(cl.get_bool("verbose", false));
  EXPECT_FALSE(cl.get_bool("quiet", false));
}

TEST(CommandLine, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
}

TEST(CommandLine, DefaultsWhenMissing) {
  const auto cl = make({});
  EXPECT_EQ(cl.get_int("n", 7), 7);
  EXPECT_EQ(cl.get_string("s", "d"), "d");
  EXPECT_DOUBLE_EQ(cl.get_double("p", 0.5), 0.5);
}

TEST(CommandLine, IntList) {
  const auto cl = make({"--ks=4,8,16,32"});
  const auto ks = cl.get_int_list("ks", {});
  ASSERT_EQ(ks.size(), 4u);
  EXPECT_EQ(ks[0], 4);
  EXPECT_EQ(ks[3], 32);
}

TEST(CommandLine, IntListDefault) {
  const auto cl = make({});
  const auto ks = cl.get_int_list("ks", {1, 2});
  ASSERT_EQ(ks.size(), 2u);
}

TEST(CommandLine, Positional) {
  const auto cl = make({"file1", "--n=3", "file2"});
  ASSERT_EQ(cl.positional().size(), 2u);
  EXPECT_EQ(cl.positional()[0], "file1");
  EXPECT_EQ(cl.positional()[1], "file2");
}

TEST(CommandLine, DoubleParsing) {
  const auto cl = make({"--p=0.125"});
  EXPECT_DOUBLE_EQ(cl.get_double("p", 0), 0.125);
}

TEST(CommandLine, HasDetectsPresence) {
  const auto cl = make({"--a=1"});
  EXPECT_TRUE(cl.has("a"));
  EXPECT_FALSE(cl.has("b"));
}

TEST(SplitCsv, SplitsPlainLists) {
  const auto tokens = split_csv("a,b,c");
  ASSERT_TRUE(tokens.has_value());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0], "a");
  EXPECT_EQ((*tokens)[2], "c");
  const auto one = split_csv("solo");
  ASSERT_TRUE(one.has_value());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0], "solo");
}

TEST(SplitCsv, RejectsEmptyTokens) {
  // The CLIs exit 2 on nullopt — a trailing comma silently feeding "" into
  // a backend lookup was the bug this replaces.
  EXPECT_FALSE(split_csv("").has_value());
  EXPECT_FALSE(split_csv("a,").has_value());
  EXPECT_FALSE(split_csv(",a").has_value());
  EXPECT_FALSE(split_csv("a,,b").has_value());
  EXPECT_FALSE(split_csv(",").has_value());
}

}  // namespace
}  // namespace relax::util
