// MetricsRegistry / TraceRing — snapshot consistency under concurrent
// recording (the TSan row runs this), exporter output shape, ring
// overwrite-oldest semantics, and end-to-end engine integration.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "obs/trace_ring.h"

namespace relax::obs {
namespace {

TEST(MetricsRegistry, ResizeClearsAndSizes) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.width(), 0u);
  reg.resize(3);
  ASSERT_EQ(reg.width(), 3u);
  reg.worker(1).pops.add(7);
  reg.jobs_submitted().add();
  reg.resize(2);  // a fresh run on the same registry starts from zero
  EXPECT_EQ(reg.width(), 2u);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.workers[1].pops, 0u);
  EXPECT_EQ(snap.jobs_submitted, 0u);
}

// Writers hammer their own slots while a reader snapshots mid-write. Run
// under TSan this proves the relaxed-atomic contract; under any build it
// checks snapshot monotonicity (counters never run backwards) and internal
// consistency (histogram count == bucket sum, so percentile() can't walk
// off the end of a torn snapshot).
TEST(MetricsRegistry, SnapshotDuringConcurrentRecording) {
  constexpr unsigned kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  MetricsRegistry reg;
  reg.resize(kWriters);
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&reg, &go, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      WorkerMetrics& wm = reg.worker(w);
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        wm.pops.add();
        wm.slice_ns.record(i % 5000);
        wm.current_claim.set(i % 64);
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::uint64_t last_pops = 0;
  for (int round = 0; round < 200; ++round) {
    const MetricsSnapshot snap = reg.snapshot();
    std::uint64_t pops = 0;
    for (const WorkerSnapshot& ws : snap.workers) {
      pops += ws.pops;
      std::uint64_t bucket_sum = 0;
      for (unsigned b = 0; b < kHistogramBuckets; ++b)
        bucket_sum += ws.slice_ns.bucket(b);
      EXPECT_EQ(ws.slice_ns.count(), bucket_sum);
      // Percentiles on a mid-write snapshot must stay finite and ordered.
      const double p50 = ws.slice_ns.percentile(50.0);
      const double p99 = ws.slice_ns.percentile(99.0);
      EXPECT_GE(p50, 0.0);
      EXPECT_LE(p50, p99 + 1e-9);
    }
    EXPECT_GE(pops, last_pops);  // counters are monotone
    last_pops = pops;
  }
  for (auto& t : writers) t.join();
  const MetricsSnapshot final_snap = reg.snapshot();
  std::uint64_t total = 0;
  for (const WorkerSnapshot& ws : final_snap.workers) total += ws.pops;
  EXPECT_EQ(total, kWriters * kPerWriter);
}

TEST(MetricsRegistry, PrometheusListsEveryFamily) {
  MetricsRegistry reg;
  reg.resize(2);
  reg.worker(0).pops.add(3);
  reg.worker(0).slice_ns.record(1500);
  reg.worker(1).parks.add();
  reg.jobs_submitted().add();
  reg.jobs_completed().add();
  const std::string text = reg.to_prometheus();
  for (const char* family :
       {"relax_engine_jobs_submitted_total", "relax_engine_jobs_completed_total",
        "relax_worker_slices_total", "relax_worker_idle_visits_total",
        "relax_worker_claims_total", "relax_worker_pops_total",
        "relax_worker_processed_total", "relax_worker_failed_deletes_total",
        "relax_worker_dead_skips_total", "relax_worker_empty_polls_total",
        "relax_worker_reinserts_total", "relax_worker_parks_total",
        "relax_worker_current_claim", "relax_worker_regime_ramps_total",
        "relax_worker_regime_resets_total",
        "relax_worker_regime_backlog_jumps_total",
        "relax_worker_regime_drain_pins_total", "relax_slice_latency_ns",
        "relax_claim_size", "relax_park_ns"}) {
    EXPECT_NE(text.find(family), std::string::npos)
        << "missing family " << family;
  }
  EXPECT_NE(text.find("relax_worker_pops_total{worker=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("relax_slice_latency_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistry, JsonShape) {
  MetricsRegistry reg;
  reg.resize(1);
  reg.worker(0).processed.add(42);
  const std::string json = reg.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"workers\": ["), std::string::npos);
  EXPECT_NE(json.find("\"processed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  ring.resize(1);
  for (std::uint32_t i = 0; i < 7; ++i) {
    ring.record(0, EventKind::kClaim, /*ts_ns=*/i * 100, 0, /*arg=*/i);
  }
  EXPECT_EQ(ring.event_count(), 4u);  // bounded
  EXPECT_EQ(ring.dropped(), 3u);      // 3 oldest overwritten
  const std::string json = ring.to_chrome_json();
  // Events 0..2 were evicted; 3..6 survive, oldest first.
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(json.find("{\"got\": " + std::to_string(i) + "}"),
              std::string::npos)
        << "evicted event " << i << " still present";
  }
  std::size_t prev = 0;
  for (std::uint32_t i = 3; i < 7; ++i) {
    const std::size_t at = json.find("{\"got\": " + std::to_string(i) + "}");
    ASSERT_NE(at, std::string::npos) << "surviving event " << i << " missing";
    EXPECT_GT(at, prev) << "events out of oldest-first order";
    prev = at;
  }
}

TEST(TraceRing, ChromeJsonShape) {
  TraceRing ring;
  ring.resize(2);
  ring.record(0, EventKind::kSlice, 1000, 5000, /*job=*/1);
  ring.record(1, EventKind::kPark, 2000, 3000, 0);
  ring.record(1, EventKind::kRegime, 9000, 0, /*claim=*/8);
  const std::string json = ring.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"name\": \"slice\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"park\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"regime\""), std::string::npos);
  // ts/dur are microseconds: 1000ns -> 1.000us.
  EXPECT_NE(json.find("\"ts\": 1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 5.000"), std::string::npos);
}

// End to end: a real MIS run through the engine with both sinks attached
// fills every layer — job counters, engine slice accounting, and the ring.
TEST(Observability, EngineRunPopulatesSinks) {
  const auto g = relax::graph::gnm(3000, 15000, 5);
  const auto pri = relax::graph::random_priorities(3000, 6);
  relax::algorithms::AtomicMisProblem problem(g, pri);

  MetricsRegistry reg;
  TraceRing ring;
  relax::core::ParallelOptions opts;
  opts.num_threads = 4;
  opts.pin_threads = false;
  opts.pop_batch = 8;
  opts.pop_batch_auto = true;
  opts.metrics = &reg;
  opts.trace = &ring;
  const auto stats = relax::core::run_parallel_relaxed(problem, pri, opts);

  EXPECT_EQ(reg.width(), 4u);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.jobs_submitted, 1u);
  EXPECT_EQ(snap.jobs_completed, 1u);
  std::uint64_t pops = 0, processed = 0, claims = 0;
  for (const WorkerSnapshot& ws : snap.workers) {
    pops += ws.pops;
    processed += ws.processed;
    claims += ws.claims;
  }
  // The registry's totals agree with the job's own quiesced stats
  // (iterations counts every label the scheduler delivered: processed +
  // failed deletes + dead skips).
  EXPECT_EQ(pops, stats.iterations);
  EXPECT_EQ(processed, stats.processed);
  EXPECT_GT(claims, 0u);
  EXPECT_EQ(snap.claim_size.sum(), pops);
  // Engine-side slice accounting and the job's own stripe both saw slices.
  EXPECT_GT(snap.slice_ns.count(), 0u);
  EXPECT_GT(stats.slices, 0u);
  EXPECT_GT(stats.slice_percentile_us(99), 0.0);
  ASSERT_EQ(stats.per_worker.size(), 4u);
  std::uint64_t striped_processed = 0;
  for (const auto& w : stats.per_worker) striped_processed += w.processed;
  EXPECT_EQ(striped_processed, stats.processed);
  // The ring holds slice spans with the submitted job's id as arg.
  EXPECT_GT(ring.event_count(), 0u);
  const std::string trace = ring.to_chrome_json();
  EXPECT_NE(trace.find("\"name\": \"slice\""), std::string::npos);
  EXPECT_NE(trace.find("{\"job\": 1}"), std::string::npos);
}

}  // namespace
}  // namespace relax::obs
