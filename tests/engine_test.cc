// SchedulingEngine behaviour: multi-tenant determinism (every job's decided
// outcome equals its sequential execution under the same pi, even with
// heterogeneous jobs in flight on a shared pool — the concurrent-submission
// analogue of determinism_property_test.cc), admission backpressure
// (blocking, never dropping), scheduler plug-ins through the job layer, and
// the opt-in relaxation-quality audit mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/knuth_shuffle.h"
#include "algorithms/list_contraction.h"
#include "algorithms/matching.h"
#include "algorithms/mis.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "sched/concurrent_multiqueue.h"
#include "sched/kbounded.h"
#include "sched/spraylist.h"

namespace relax::engine {
namespace {

using graph::Graph;

EngineOptions engine_opts(unsigned threads, unsigned in_flight,
                          std::size_t max_pending = 64) {
  EngineOptions opts;
  opts.num_threads = threads;
  opts.pin_threads = false;  // CI-style environment friendliness
  opts.max_in_flight = in_flight;
  opts.max_pending = max_pending;
  return opts;
}

JobConfig job_cfg(std::uint64_t seed) {
  JobConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(SchedulingEngine, SingleJobMatchesSequential) {
  const Graph g = graph::gnm(3000, 20000, 3);
  const auto pri = graph::random_priorities(3000, 7);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  SchedulingEngine eng(engine_opts(4, 1));
  algorithms::AtomicMisProblem problem(g, pri);
  const auto stats = eng.submit_relaxed(problem, pri, job_cfg(1)).wait();
  EXPECT_EQ(problem.result(), expected);
  EXPECT_EQ(stats.processed + stats.dead_skips, 3000u);
  EXPECT_EQ(stats.iterations,
            stats.processed + stats.failed_deletes + stats.dead_skips);
  EXPECT_EQ(eng.jobs_completed(), 1u);
}

// The headline multi-tenant property: heterogeneous jobs (MIS, coloring,
// matching, list contraction, shuffle) submitted concurrently from several
// client threads, multiplexed over one pool, each still produces exactly
// its sequential outcome.
TEST(SchedulingEngine, ConcurrentHeterogeneousJobsAreDeterministic) {
  const Graph g1 = graph::gnm(2000, 12000, 11);
  const auto pri1 = graph::random_priorities(2000, 13);
  const auto mis_expected = algorithms::sequential_greedy_mis(g1, pri1);

  const Graph g2 = graph::gnm(1500, 10000, 17);
  const auto pri2 = graph::random_priorities(1500, 19);
  const auto color_expected = algorithms::sequential_greedy_coloring(g2, pri2);

  const Graph g3 = graph::gnm(800, 5000, 23);
  const algorithms::EdgeIncidence inc(g3);
  const auto pri3 = graph::random_priorities(inc.num_edges(), 29);
  const auto match_expected = algorithms::sequential_greedy_matching(inc, pri3);

  std::vector<std::uint32_t> arr(3000);
  std::iota(arr.begin(), arr.end(), 0u);
  const auto pri4 = graph::random_priorities(3000, 31);
  const auto contraction_expected =
      algorithms::sequential_list_contraction(arr, pri4);

  SchedulingEngine eng(engine_opts(4, 3));

  algorithms::AtomicMisProblem mis(g1, pri1);
  algorithms::AtomicColoringProblem coloring(g2, pri2);
  algorithms::AtomicMatchingProblem matching(inc, pri3);
  algorithms::AtomicListContractionProblem contraction(arr, pri4);

  // Each client thread submits one job and waits on its own ticket.
  std::vector<std::jthread> clients;
  clients.emplace_back([&] {
    const auto stats = eng.submit_relaxed(mis, pri1, job_cfg(2)).wait();
    EXPECT_EQ(stats.processed + stats.dead_skips, 2000u);
  });
  clients.emplace_back([&] {
    eng.submit_relaxed(coloring, pri2, job_cfg(3)).wait();
  });
  clients.emplace_back([&] {
    eng.submit_relaxed(matching, pri3, job_cfg(5)).wait();
  });
  clients.emplace_back([&] {
    eng.submit_exact(contraction, pri4, job_cfg(7)).wait();
  });
  clients.clear();  // join all

  EXPECT_EQ(mis.result(), mis_expected);
  EXPECT_EQ(coloring.colors(), color_expected);
  EXPECT_EQ(matching.result(), match_expected);
  EXPECT_EQ(contraction.trace(), contraction_expected);
  EXPECT_EQ(eng.jobs_completed(), 4u);
}

// A stream of jobs far longer than max_in_flight/max_pending, submitted
// from multiple threads, all on one persistent pool.
TEST(SchedulingEngine, JobStreamFromMultipleSubmitters) {
  const Graph g = graph::gnm(600, 4000, 37);
  const auto pri = graph::random_priorities(600, 41);
  const auto mis_expected = algorithms::sequential_greedy_mis(g, pri);
  const auto color_expected = algorithms::sequential_greedy_coloring(g, pri);

  constexpr int kPerClient = 8;
  SchedulingEngine eng(engine_opts(4, 2, /*max_pending=*/4));

  std::vector<algorithms::AtomicMisProblem> mis_problems;
  std::vector<algorithms::AtomicColoringProblem> color_problems;
  for (int i = 0; i < kPerClient; ++i) {
    mis_problems.emplace_back(g, pri);
    color_problems.emplace_back(g, pri);
  }
  {
    std::jthread mis_client([&] {
      for (int i = 0; i < kPerClient; ++i)
        eng.submit_relaxed(mis_problems[i], pri, job_cfg(100 + i)).wait();
    });
    std::jthread color_client([&] {
      for (int i = 0; i < kPerClient; ++i)
        eng.submit_relaxed(color_problems[i], pri, job_cfg(200 + i)).wait();
    });
  }
  for (int i = 0; i < kPerClient; ++i) {
    EXPECT_EQ(mis_problems[i].result(), mis_expected) << "job " << i;
    EXPECT_EQ(color_problems[i].colors(), color_expected) << "job " << i;
  }
  EXPECT_EQ(eng.jobs_completed(), 2u * kPerClient);
}

// Problem whose tasks all spin on a shared gate: keeps a job "running"
// deterministically so admission-queue states can be scripted.
class GatedProblem {
 public:
  GatedProblem(std::uint32_t n, const std::atomic<bool>& gate)
      : n_(n), gate_(&gate) {}
  [[nodiscard]] std::uint32_t num_tasks() const { return n_; }
  core::Outcome try_process(core::Task /*t*/) {
    return gate_->load(std::memory_order_acquire) ? core::Outcome::kProcessed
                                                  : core::Outcome::kNotReady;
  }

 private:
  std::uint32_t n_;
  const std::atomic<bool>* gate_;
};

// Backpressure: with max_in_flight=1 and max_pending=1, a third submission
// must BLOCK until the gated first job completes — not drop, not return.
TEST(SchedulingEngine, AdmissionQueueBlocksInsteadOfDropping) {
  std::atomic<bool> gate{false};
  GatedProblem j1(64, gate), j2(64, gate), j3(64, gate);
  const auto pri = graph::identity_priorities(64);

  SchedulingEngine eng(engine_opts(2, /*in_flight=*/1, /*max_pending=*/1));
  auto t1 = eng.submit_relaxed(j1, pri, job_cfg(1));  // active, gated
  auto t2 = eng.submit_relaxed(j2, pri, job_cfg(2));  // fills the queue

  std::atomic<bool> third_submitted{false};
  JobTicket t3;
  std::jthread submitter([&] {
    t3 = eng.submit_relaxed(j3, pri, job_cfg(3));  // must block here
    third_submitted.store(true, std::memory_order_release);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(third_submitted.load(std::memory_order_acquire))
      << "submit returned while the admission queue was full";

  gate.store(true, std::memory_order_release);
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  const auto s1 = t1.wait();
  t2.wait();
  t3.wait();
  EXPECT_EQ(s1.processed, 64u);
  EXPECT_GT(s1.failed_deletes, 0u);  // the gate forced re-insertions
  EXPECT_EQ(eng.jobs_completed(), 3u);
}

// Caller-owned schedulers ride through the same engine: a SprayList and a
// lock-serialized deterministic k-bounded scheduler.
TEST(SchedulingEngine, PluggableSchedulersStayDeterministic) {
  const Graph g = graph::gnm(1500, 9000, 43);
  const auto pri = graph::random_priorities(1500, 47);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  SchedulingEngine eng(engine_opts(4, 2));
  {
    algorithms::AtomicMisProblem problem(g, pri);
    sched::SprayList list(4, 51);
    eng.submit_relaxed_on(problem, pri, list, job_cfg(1)).wait();
    EXPECT_EQ(problem.result(), expected);
  }
  {
    algorithms::AtomicMisProblem problem(g, pri);
    sched::LockedScheduler<sched::KBoundedScheduler> kbounded(64u);
    eng.submit_relaxed_on(problem, pri, kbounded, job_cfg(1)).wait();
    EXPECT_EQ(problem.result(), expected);
  }
}

// ConcurrentMultiQueue wrapper whose handle constructions are counted: the
// seam proving sched::make_handle runs at most once per (worker, job) now
// that handles live in per-worker scheduler sessions instead of being
// rebuilt every run_slice.
class CountingHandleQueue {
 public:
  CountingHandleQueue(std::uint32_t queues, std::uint64_t seed)
      : inner_(queues, seed) {}

  auto get_handle() {
    handles_created_.fetch_add(1, std::memory_order_relaxed);
    return inner_.get_handle();
  }
  [[nodiscard]] std::size_t size() const { return inner_.size(); }
  [[nodiscard]] std::uint64_t handles_created() const {
    return handles_created_.load(std::memory_order_relaxed);
  }

 private:
  sched::ConcurrentMultiQueue inner_;
  std::atomic<std::uint64_t> handles_created_{0};
};

// Scheduler-session lifetime: a worker's cached handle survives across all
// of its slices (handle constructions bounded by the pool width, while the
// tiny slice budget forces hundreds of slices), and a second job over the
// SAME caller-owned queue rebuilds fresh sessions after the first job's
// retirement — again at most one handle per worker.
TEST(SchedulingEngine, HandleCreatedAtMostOncePerWorkerPerJob) {
  const Graph g = graph::gnm(3000, 20000, 83);
  const auto pri = graph::random_priorities(3000, 89);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  CountingHandleQueue queue(8, 97);
  auto opts = engine_opts(2, 1);
  opts.slice_budget = 16;  // >> slices than workers: caching must show
  SchedulingEngine eng(opts);
  {
    algorithms::AtomicMisProblem problem(g, pri);
    const auto stats =
        eng.submit_relaxed_on(problem, pri, queue, job_cfg(1)).wait();
    EXPECT_EQ(problem.result(), expected);
    // The job genuinely ran in many slices (>= iterations / budget), so a
    // per-slice make_handle would have created hundreds of handles.
    EXPECT_GE(stats.iterations, 3000u);
  }
  const std::uint64_t first = queue.handles_created();
  EXPECT_GE(first, 1u);
  EXPECT_LE(first, 2u);  // at most one per worker
  {
    algorithms::AtomicMisProblem problem(g, pri);
    eng.submit_relaxed_on(problem, pri, queue, job_cfg(2)).wait();
    EXPECT_EQ(problem.result(), expected);
  }
  const std::uint64_t second = queue.handles_created() - first;
  EXPECT_GE(second, 1u);  // retirement dropped job 1's sessions: rebuilt
  EXPECT_LE(second, 2u);
}

// Opt-in audit mode: stats must carry Definition 1 quality samples, and the
// monitored run must still decide the sequential outcome.
TEST(SchedulingEngine, MonitoredJobReportsRelaxationQuality) {
  const Graph g = graph::gnm(2000, 12000, 53);
  const auto pri = graph::random_priorities(2000, 59);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  SchedulingEngine eng(engine_opts(4, 1));
  algorithms::AtomicMisProblem problem(g, pri);
  JobConfig cfg = job_cfg(61);
  cfg.monitor_relaxation = true;
  cfg.monitor_stride = 16;
  const auto stats = eng.submit_relaxed(problem, pri, cfg).wait();
  EXPECT_EQ(problem.result(), expected);
  EXPECT_GT(stats.rank_samples, 0u);
  EXPECT_EQ(stats.rank_samples, stats.iterations);  // every pop sampled
  EXPECT_GT(stats.inversion_samples, 0u);
  EXPECT_GE(stats.max_rank_error, static_cast<std::uint64_t>(
                                      stats.mean_rank_error));
  // Unmonitored runs must not report quality fields.
  algorithms::AtomicMisProblem plain(g, pri);
  const auto plain_stats = eng.submit_relaxed(plain, pri, job_cfg(61)).wait();
  EXPECT_EQ(plain_stats.rank_samples, 0u);
}

TEST(SchedulingEngine, EmptyJobCompletesImmediately) {
  SchedulingEngine eng(engine_opts(2, 1));
  const auto pri = graph::identity_priorities(0);
  std::atomic<bool> gate{true};
  GatedProblem empty(0, gate);
  const auto stats = eng.submit_relaxed(empty, pri, job_cfg(1)).wait();
  EXPECT_EQ(stats.processed, 0u);
  EXPECT_EQ(stats.iterations, 0u);
}

// Synthetic tenant for the QoS legs: consumes its whole granted budget
// every slice (uniform per-iteration cost) until the shared stop flag
// flips, counting consumed iterations and the budget range it was granted.
class SpinJob final : public Job {
 public:
  SpinJob(std::uint32_t weight, const std::atomic<bool>* stop)
      : weight_(weight), stop_(stop) {}

  void activate(unsigned) override {}

  SliceResult run_slice(unsigned, std::uint32_t budget) override {
    std::uint32_t prev = min_budget_.load(std::memory_order_relaxed);
    while (budget < prev &&
           !min_budget_.compare_exchange_weak(prev, budget,
                                              std::memory_order_relaxed)) {
    }
    prev = max_budget_.load(std::memory_order_relaxed);
    while (budget > prev &&
           !max_budget_.compare_exchange_weak(prev, budget,
                                              std::memory_order_relaxed)) {
    }
    if (stop_->load(std::memory_order_relaxed)) return {};
    std::uint32_t done = 0;
    while (done < budget && !stop_->load(std::memory_order_relaxed)) {
      volatile std::uint64_t sink = 0;
      for (std::uint32_t i = 0; i < 64; ++i) sink += i;
      ++done;
    }
    iterations_.fetch_add(done, std::memory_order_relaxed);
    return {done, done > 0};
  }

  [[nodiscard]] std::uint32_t weight() const noexcept override {
    return weight_;
  }
  [[nodiscard]] bool finished() const noexcept override {
    return stop_->load(std::memory_order_acquire);
  }
  core::ExecutionStats collect() override { return {}; }

  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return iterations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t min_budget() const noexcept {
    return min_budget_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t max_budget() const noexcept {
    return max_budget_.load(std::memory_order_relaxed);
  }

 private:
  const std::uint32_t weight_;
  const std::atomic<bool>* stop_;
  std::atomic<std::uint64_t> iterations_{0};
  std::atomic<std::uint32_t> min_budget_{
      std::numeric_limits<std::uint32_t>::max()};
  std::atomic<std::uint32_t> max_budget_{0};
};

// The QoS acceptance bar: a weight-2 tenant co-scheduled with a weight-1
// tenant on a saturated two-worker pool must capture at least a 1.5x share
// of the processed work (the governor targets 2x; 1.5 leaves scheduler
// noise room).
TEST(SchedulingEngine, WeightedTenantsShareThePoolByWeight) {
  std::atomic<bool> stop{false};
  auto heavy = std::make_shared<SpinJob>(2, &stop);
  auto light = std::make_shared<SpinJob>(1, &stop);
  auto opts = engine_opts(2, /*in_flight=*/2);
  opts.slice_budget = 256;
  SchedulingEngine eng(opts);
  auto t1 = eng.submit(heavy);
  auto t2 = eng.submit(light);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_release);
  t1.wait();
  t2.wait();

  const std::uint64_t h = heavy->iterations();
  const std::uint64_t l = light->iterations();
  ASSERT_GT(l, 0u);
  const double ratio = static_cast<double>(h) / static_cast<double>(l);
  EXPECT_GE(ratio, 1.5) << "heavy=" << h << " light=" << l;
  // Sanity in the other direction: weighted sharing, not starvation — the
  // light tenant must still see a nontrivial share.
  EXPECT_LT(ratio, 8.0) << "heavy=" << h << " light=" << l;
}

// Solo-tenant bypass: a job that owns the pool gets the full configured
// slice budget on every visit — weighted sharing must cost nothing when
// there is nobody to share with.
TEST(SchedulingEngine, SoloJobAlwaysGetsFullSliceBudget) {
  std::atomic<bool> stop{false};
  auto job = std::make_shared<SpinJob>(3, &stop);
  auto opts = engine_opts(2, /*in_flight=*/2);
  opts.slice_budget = 256;
  SchedulingEngine eng(opts);
  auto ticket = eng.submit(job);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  ticket.wait();
  EXPECT_GT(job->iterations(), 0u);
  EXPECT_EQ(job->min_budget(), 256u);
  EXPECT_EQ(job->max_budget(), 256u);
}

TEST(SchedulingEngine, DestructorDrainsOutstandingJobs) {
  const Graph g = graph::gnm(1000, 6000, 67);
  const auto pri = graph::random_priorities(1000, 71);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  std::vector<algorithms::AtomicMisProblem> problems;
  for (int i = 0; i < 4; ++i) problems.emplace_back(g, pri);
  {
    SchedulingEngine eng(engine_opts(4, 2));
    for (auto& p : problems) eng.submit_relaxed(p, pri, job_cfg(5));
    // No wait(): the destructor must finish all four jobs.
  }
  for (auto& p : problems) EXPECT_EQ(p.result(), expected);
}

}  // namespace
}  // namespace relax::engine
