#include "algorithms/list_contraction.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/sequential_executor.h"
#include "sched/exact_heap.h"
#include "sched/sim_multiqueue.h"
#include "sched/topk_uniform.h"
#include "util/rng.h"

namespace relax::algorithms {
namespace {

std::vector<std::uint32_t> identity_arrangement(std::uint32_t n) {
  std::vector<std::uint32_t> a(n);
  std::iota(a.begin(), a.end(), 0u);
  return a;
}

TEST(SequentialListContraction, TinyListTrace) {
  // List 0-1-2, contract in order 1, 0, 2.
  const auto arr = identity_arrangement(3);
  const auto pri = graph::priorities_from_order(
      std::vector<std::uint32_t>{1, 0, 2});
  const auto trace = sequential_list_contraction(arr, pri);
  // 1 contracts first: neighbors (0, 2).
  EXPECT_EQ(trace[1], std::make_pair(0u, 2u));
  // 0 contracts next: list is 0-2, so (nil, 2).
  EXPECT_EQ(trace[0], std::make_pair(kNilNode, 2u));
  // 2 is last: alone, (nil, nil).
  EXPECT_EQ(trace[2], std::make_pair(kNilNode, kNilNode));
}

TEST(SequentialListContraction, IdentityOrderPeelsFromFront) {
  const auto arr = identity_arrangement(4);
  const auto pri = graph::identity_priorities(4);
  const auto trace = sequential_list_contraction(arr, pri);
  EXPECT_EQ(trace[0], std::make_pair(kNilNode, 1u));
  EXPECT_EQ(trace[1], std::make_pair(kNilNode, 2u));
  EXPECT_EQ(trace[2], std::make_pair(kNilNode, 3u));
  EXPECT_EQ(trace[3], std::make_pair(kNilNode, kNilNode));
}

TEST(SequentialListContraction, CustomArrangement) {
  // Arrangement 2-0-1 (node 2 is the head).
  const std::vector<std::uint32_t> arr{2, 0, 1};
  const auto pri = graph::identity_priorities(3);
  const auto trace = sequential_list_contraction(arr, pri);
  EXPECT_EQ(trace[0], std::make_pair(2u, 1u));
}

TEST(ListContractionProblem, ExactMatchesBaseline) {
  const auto arr = identity_arrangement(500);
  const auto pri = graph::random_priorities(500, 7);
  ListContractionProblem problem(arr, pri);
  sched::ExactHeapScheduler sched;
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.failed_deletes, 0u);
  EXPECT_EQ(problem.trace(), sequential_list_contraction(arr, pri));
}

TEST(ListContractionProblem, RelaxedTraceIsDeterministic) {
  const auto arr = identity_arrangement(400);
  const auto pri = graph::random_priorities(400, 11);
  const auto expected = sequential_list_contraction(arr, pri);
  for (const std::uint32_t k : {2u, 16u, 128u}) {
    ListContractionProblem problem(arr, pri);
    sched::TopKUniformScheduler sched(400, k, 13);
    core::run_sequential(problem, pri, sched);
    EXPECT_EQ(problem.trace(), expected) << "k=" << k;
  }
}

TEST(ListContractionProblem, ShuffledArrangement) {
  util::Rng rng(17);
  auto arr = identity_arrangement(300);
  util::shuffle(std::span<std::uint32_t>(arr), rng);
  const auto pri = graph::random_priorities(300, 19);
  const auto expected = sequential_list_contraction(arr, pri);
  ListContractionProblem problem(arr, pri);
  sched::SimMultiQueue sched(8, 23);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.trace(), expected);
}

TEST(AtomicListContractionProblem, SequentialUseMatchesBaseline) {
  const auto arr = identity_arrangement(300);
  const auto pri = graph::random_priorities(300, 29);
  AtomicListContractionProblem problem(arr, pri);
  sched::TopKUniformScheduler sched(300, 8, 31);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.trace(), sequential_list_contraction(arr, pri));
}

TEST(ListContractionProblem, SingletonList) {
  const auto arr = identity_arrangement(1);
  const auto pri = graph::identity_priorities(1);
  ListContractionProblem problem(arr, pri);
  sched::ExactHeapScheduler sched;
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.trace()[0], std::make_pair(kNilNode, kNilNode));
}

}  // namespace
}  // namespace relax::algorithms
