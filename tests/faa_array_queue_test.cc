#include "sched/faa_array_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace relax::sched {
namespace {

TEST(FaaArrayQueue, DispensesInOrder) {
  std::vector<std::uint32_t> items(100);
  std::iota(items.begin(), items.end(), 0u);
  FaaArrayQueue<std::uint32_t> q(std::move(items));
  for (std::uint32_t expect = 0; expect < 100; ++expect)
    EXPECT_EQ(q.try_dequeue(), expect);
  EXPECT_FALSE(q.try_dequeue().has_value());
  EXPECT_FALSE(q.try_dequeue().has_value());  // stays empty
}

TEST(FaaArrayQueue, EmptyFromStart) {
  FaaArrayQueue<std::uint32_t> q;
  EXPECT_EQ(q.capacity(), 0u);
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TEST(FaaArrayQueue, LoadResetsCursor) {
  FaaArrayQueue<std::uint32_t> q(std::vector<std::uint32_t>{1, 2});
  EXPECT_EQ(q.try_dequeue(), 1u);
  q.load({7, 8, 9});
  EXPECT_EQ(q.size_approx(), 3u);
  EXPECT_EQ(q.try_dequeue(), 7u);
  EXPECT_EQ(q.try_dequeue(), 8u);
  EXPECT_EQ(q.try_dequeue(), 9u);
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TEST(FaaArrayQueue, SizeApproxTracksConsumption) {
  std::vector<std::uint32_t> items(10);
  std::iota(items.begin(), items.end(), 0u);
  FaaArrayQueue<std::uint32_t> q(std::move(items));
  EXPECT_EQ(q.size_approx(), 10u);
  (void)q.try_dequeue();
  (void)q.try_dequeue();
  EXPECT_EQ(q.size_approx(), 8u);
}

TEST(FaaArrayQueue, ConcurrentExactlyOnceDelivery) {
  constexpr std::uint32_t kN = 200000;
  constexpr unsigned kThreads = 8;
  std::vector<std::uint32_t> items(kN);
  std::iota(items.begin(), items.end(), 0u);
  FaaArrayQueue<std::uint32_t> q(std::move(items));
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (auto v = q.try_dequeue()) got[*v].fetch_add(1);
      });
    }
  }
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
}

TEST(FaaArrayQueue, ConcurrentDeliveryPreservesPerThreadOrder) {
  // Each thread's private sequence of tickets must be strictly increasing —
  // the property the exact executor relies on for priority order.
  constexpr std::uint32_t kN = 100000;
  constexpr unsigned kThreads = 8;
  std::vector<std::uint32_t> items(kN);
  std::iota(items.begin(), items.end(), 0u);
  FaaArrayQueue<std::uint32_t> q(std::move(items));
  std::vector<std::vector<std::uint32_t>> per_thread(kThreads);
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        while (auto v = q.try_dequeue()) per_thread[t].push_back(*v);
      });
    }
  }
  for (const auto& seq : per_thread)
    EXPECT_TRUE(std::is_sorted(seq.begin(), seq.end()));
}

}  // namespace
}  // namespace relax::sched
