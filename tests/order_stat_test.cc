#include "sched/order_stat_set.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace relax::sched {
namespace {

TEST(OrderStatSet, InsertEraseContains) {
  OrderStatSet s(100);
  EXPECT_TRUE(s.empty());
  s.insert(5);
  s.insert(50);
  s.insert(99);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(99));
  EXPECT_FALSE(s.contains(6));
  s.erase(50);
  EXPECT_FALSE(s.contains(50));
  EXPECT_EQ(s.size(), 2u);
}

TEST(OrderStatSet, SelectReturnsSortedOrder) {
  OrderStatSet s(64);
  for (const std::uint32_t p : {40u, 3u, 17u, 60u, 0u}) s.insert(p);
  EXPECT_EQ(s.select(0), 0u);
  EXPECT_EQ(s.select(1), 3u);
  EXPECT_EQ(s.select(2), 17u);
  EXPECT_EQ(s.select(3), 40u);
  EXPECT_EQ(s.select(4), 60u);
  EXPECT_EQ(s.min(), 0u);
}

TEST(OrderStatSet, RankOfCountsSmallerPresent) {
  OrderStatSet s(32);
  s.insert(10);
  s.insert(20);
  s.insert(30);
  EXPECT_EQ(s.rank_of(10), 0u);
  EXPECT_EQ(s.rank_of(11), 1u);
  EXPECT_EQ(s.rank_of(25), 2u);
  EXPECT_EQ(s.rank_of(31), 3u);
  EXPECT_EQ(s.rank_of(0), 0u);
}

TEST(OrderStatSet, BoundaryPriorities) {
  OrderStatSet s(8);
  s.insert(0);
  s.insert(7);
  EXPECT_EQ(s.select(0), 0u);
  EXPECT_EQ(s.select(1), 7u);
  EXPECT_EQ(s.rank_of(7), 1u);
  s.erase(0);
  EXPECT_EQ(s.min(), 7u);
}

TEST(OrderStatSet, NonPowerOfTwoCapacity) {
  OrderStatSet s(100);  // not a power of two: descent logic must clamp
  for (std::uint32_t p = 0; p < 100; p += 7) s.insert(p);
  std::uint32_t expect = 0;
  for (std::uint32_t r = 0; r < s.size(); ++r) {
    EXPECT_EQ(s.select(r), expect);
    expect += 7;
  }
}

TEST(OrderStatSet, RandomizedAgainstStdSet) {
  constexpr std::uint32_t kUniverse = 512;
  OrderStatSet s(kUniverse);
  std::set<std::uint32_t> ref;
  util::Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const auto p =
        static_cast<std::uint32_t>(util::bounded(rng, kUniverse));
    if (ref.count(p)) {
      s.erase(p);
      ref.erase(p);
    } else {
      s.insert(p);
      ref.insert(p);
    }
    ASSERT_EQ(s.size(), ref.size());
    if (!ref.empty() && step % 16 == 0) {
      // Compare a random rank query and a random rank_of query.
      const auto r = static_cast<std::uint32_t>(
          util::bounded(rng, ref.size()));
      auto it = ref.begin();
      std::advance(it, r);
      ASSERT_EQ(s.select(r), *it);
      const auto q =
          static_cast<std::uint32_t>(util::bounded(rng, kUniverse));
      const auto expected = static_cast<std::uint32_t>(
          std::distance(ref.begin(), ref.lower_bound(q)));
      ASSERT_EQ(s.rank_of(q), expected);
    }
  }
}

// The set is a counting multiset since the steady-state harness: key
// streams (uniform draws, Dijkstra feedback) collide freely, unlike the
// framework's unique dense labels.
TEST(OrderStatSet, DuplicateInsertCounts) {
  OrderStatSet s(64);
  s.insert(10);
  s.insert(10);
  s.insert(10);
  s.insert(20);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.count(10), 3u);
  EXPECT_EQ(s.count(20), 1u);
  EXPECT_EQ(s.count(30), 0u);
  // select() walks multiplicity: ranks 0..2 all land on 10.
  EXPECT_EQ(s.select(0), 10u);
  EXPECT_EQ(s.select(1), 10u);
  EXPECT_EQ(s.select(2), 10u);
  EXPECT_EQ(s.select(3), 20u);
  EXPECT_EQ(s.rank_of(20), 3u);
  // erase removes one copy at a time.
  s.erase(10);
  EXPECT_EQ(s.count(10), 2u);
  EXPECT_TRUE(s.contains(10));
  EXPECT_EQ(s.min(), 10u);
  s.erase(10);
  s.erase(10);
  EXPECT_FALSE(s.contains(10));
  EXPECT_EQ(s.min(), 20u);
}

TEST(OrderStatSet, RandomizedMultisetAgainstStdMultiset) {
  constexpr std::uint32_t kUniverse = 128;
  OrderStatSet s(kUniverse);
  std::multiset<std::uint32_t> ref;
  util::Rng rng(1234);
  for (int step = 0; step < 20000; ++step) {
    const auto p =
        static_cast<std::uint32_t>(util::bounded(rng, kUniverse));
    // Biased toward insert so multiplicities actually build up.
    if ((rng() % 3) != 0 || ref.empty()) {
      s.insert(p);
      ref.insert(p);
    } else {
      // Erase a random present element.
      auto it = ref.begin();
      std::advance(it, static_cast<long>(util::bounded(rng, ref.size())));
      s.erase(*it);
      ref.erase(it);
    }
    ASSERT_EQ(s.size(), ref.size());
    if (!ref.empty() && step % 32 == 0) {
      const auto r = static_cast<std::uint32_t>(
          util::bounded(rng, ref.size()));
      auto it = ref.begin();
      std::advance(it, r);
      ASSERT_EQ(s.select(r), *it);
      const auto q =
          static_cast<std::uint32_t>(util::bounded(rng, kUniverse));
      ASSERT_EQ(s.count(q), ref.count(q));
      const auto expected = static_cast<std::uint32_t>(
          std::distance(ref.begin(), ref.lower_bound(q)));
      ASSERT_EQ(s.rank_of(q), expected);
    }
  }
}

TEST(OrderStatSet, FullUniverse) {
  OrderStatSet s(64);
  for (std::uint32_t p = 0; p < 64; ++p) s.insert(p);
  EXPECT_EQ(s.size(), 64u);
  for (std::uint32_t r = 0; r < 64; ++r) EXPECT_EQ(s.select(r), r);
  for (std::uint32_t p = 0; p < 64; ++p) s.erase(p);
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace relax::sched
