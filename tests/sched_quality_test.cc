// Empirical validation of Definition 1: rank-error and inversion tails.
// These are statistical sanity checks with generous margins (the benches
// print the full tail tables). The first half drives the sequential
// simulations directly; the BackendQuality suite at the bottom drives
// every backend registered in sched/backend_registry.h through
// RelaxationMonitor, so each one's empirical rank-error envelope is pinned
// against its nominal Definition 1 bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "sched/backend_registry.h"
#include "sched/concurrent_multiqueue.h"
#include "sched/exact_heap.h"
#include "sched/handles.h"
#include "sched/kbounded.h"
#include "sched/lockfree_multiqueue.h"
#include "sched/relaxation_monitor.h"
#include "sched/sim_multiqueue.h"
#include "sched/sim_spraylist.h"
#include "sched/stripe_map.h"
#include "sched/topk_uniform.h"
#include "util/rng.h"

#include <utility>

namespace relax::sched {
namespace {

template <typename S>
void drain_full_universe(RelaxationMonitor<S>& mon, std::uint32_t n) {
  for (Priority p = 0; p < n; ++p) mon.insert(p);
  while (mon.approx_get_min()) {
  }
}

TEST(RelaxationMonitor, ExactSchedulerHasZeroRankError) {
  RelaxationMonitor<ExactHeapScheduler> mon(ExactHeapScheduler{}, 1000, 1);
  drain_full_universe(mon, 1000);
  EXPECT_EQ(mon.rank_histogram().total(), 1000u);
  EXPECT_EQ(mon.rank_histogram().max_value(), 0u);
  EXPECT_EQ(mon.inversion_histogram().max_value(), 0u);
}

TEST(RelaxationMonitor, CountsMatchDeliveries) {
  RelaxationMonitor<SimMultiQueue> mon(SimMultiQueue(4, 1), 500, 10);
  drain_full_universe(mon, 500);
  EXPECT_EQ(mon.rank_histogram().total(), 500u);
  // Tracked priorities: 0, 10, 20, ..., 490 -> 50 inversion samples.
  EXPECT_EQ(mon.inversion_histogram().total(), 50u);
}

TEST(RelaxationMonitor, TopKRankCappedAtKMinusOne) {
  constexpr std::uint32_t kK = 16;
  RelaxationMonitor<TopKUniformScheduler> mon(
      TopKUniformScheduler(2000, kK, 3), 2000, 1);
  drain_full_universe(mon, 2000);
  EXPECT_LT(mon.rank_histogram().max_value(), kK);
  // Mean rank of uniform-top-k is ~ (k-1)/2.
  const double tail_half = mon.rank_histogram().tail_fraction_at_least(kK / 2);
  EXPECT_GT(tail_half, 0.3);
  EXPECT_LT(tail_half, 0.7);
}

TEST(RelaxationMonitor, MultiQueueRankTailDecaysExponentially) {
  constexpr std::uint32_t kQueues = 8;
  RelaxationMonitor<SimMultiQueue> mon(SimMultiQueue(kQueues, 7), 20000, 1);
  drain_full_universe(mon, 20000);
  const auto& h = mon.rank_histogram();
  // The PODC'17 analysis gives Pr[rank >= l] <= exp(-l/O(q)). Check the
  // empirical tail at a few multiples of q with generous constants.
  EXPECT_LT(h.tail_fraction_at_least(4 * kQueues), 0.25);
  EXPECT_LT(h.tail_fraction_at_least(16 * kQueues), 0.01);
  EXPECT_GT(h.tail_fraction_at_least(1), 0.1);  // it IS relaxed
}

TEST(RelaxationMonitor, MultiQueueFairnessTailDecays) {
  constexpr std::uint32_t kQueues = 8;
  RelaxationMonitor<SimMultiQueue> mon(SimMultiQueue(kQueues, 9), 20000, 1);
  drain_full_universe(mon, 20000);
  const auto& h = mon.inversion_histogram();
  EXPECT_EQ(h.total(), 20000u);
  // phi = O(q log q); tails beyond ~8*q*log(q) should be tiny.
  EXPECT_LT(h.tail_fraction_at_least(200), 0.02);
}

TEST(RelaxationMonitor, SprayListStaysWithinReach) {
  auto spray = make_sim_spraylist(5000, 8, 3);
  const auto reach = spray.reach();
  RelaxationMonitor<SimSprayList> mon(std::move(spray), 5000, 1);
  drain_full_universe(mon, 5000);
  EXPECT_LE(mon.rank_histogram().max_value(), reach);
}

TEST(RelaxationMonitor, KBoundedDeterministicRankCap) {
  constexpr std::uint32_t kK = 8;
  RelaxationMonitor<KBoundedScheduler> mon(KBoundedScheduler(kK), 4096, 1);
  drain_full_universe(mon, 4096);
  EXPECT_LT(mon.rank_histogram().max_value(), kK);
  // Worst-case-within-window service: all pops land at rank k-1, except
  // the periodic fairness valve (1/k of pops, rank 0) and the final
  // window drain — so a (k-1)/k fraction, minus the tail.
  const double at_back = mon.rank_histogram().tail_fraction_at_least(kK - 1);
  EXPECT_GT(at_back, 0.85);
  EXPECT_LT(at_back, 0.9);
  // The fairness valve serves the exact minimum every k-th pop.
  const double exact = 1.0 - mon.rank_histogram().tail_fraction_at_least(1);
  EXPECT_GT(exact, 0.1);
  EXPECT_LT(exact, 0.15);
}

TEST(RelaxationMonitor, LargerKMeansLargerMeanRank) {
  auto mean_rank = [](std::uint32_t k) {
    RelaxationMonitor<TopKUniformScheduler> mon(
        TopKUniformScheduler(10000, k, 5), 10000, 1);
    for (Priority p = 0; p < 10000; ++p) mon.insert(p);
    while (mon.approx_get_min()) {
    }
    double sum = 0;
    const auto& b = mon.rank_histogram().buckets();
    for (std::size_t i = 0; i < b.size(); ++i)
      sum += static_cast<double>(b[i]) * static_cast<double>((1u << i) - 1);
    return sum / 10000.0;
  };
  EXPECT_LT(mean_rank(4), mean_rank(64));
}

// ---------------------------------------------------------------------------
// Registry-wide quality: every concurrent backend, driven through
// RelaxationMonitor via its quiescent SequentialView, must keep its
// empirical rank errors within a generous multiple of the nominal
// Definition 1 bound expected_rank_bound() reports for it. Seeded and
// single-threaded, so these are deterministic — no flaky tight constants.
// ---------------------------------------------------------------------------

TEST(BackendQuality, EveryRegistryBackendStaysWithinItsRankEnvelope) {
  constexpr std::uint32_t kN = 20000;
  for (const BackendInfo& info : backend_registry()) {
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    BackendParams params;
    params.threads = 8;
    params.queue_factor = 4;
    params.seed = 99;
    params.capacity = kN;
    const std::uint64_t bound = expected_rank_bound(info, params);
    ASSERT_GE(bound, 1u);
    dispatch_backend(info, params, [&](auto tag, auto&&... args) {
      using Queue = typename decltype(tag)::type;
      Queue queue(std::forward<decltype(args)>(args)...);
      RelaxationMonitor<SequentialView<Queue>> mon(SequentialView<Queue>(queue),
                                                   kN, 16);
      for (Priority p = 0; p < kN; ++p) mon.insert(p);
      while (mon.approx_get_min()) {
      }
      const auto& ranks = mon.rank_histogram();
      // Counting: the monitor saw every pop exactly once.
      ASSERT_EQ(ranks.total(), kN);
      EXPECT_EQ(mon.inversion_histogram().total(), kN / 16);
      // Mean rank error is O(bound); 2x is a generous constant for every
      // backend in the registry (the deterministic window averages
      // ~(k-1)(1 - 1/k), the randomized structures well under bound).
      EXPECT_LE(ranks.mean(), 2.0 * static_cast<double>(bound));
      // Definition 1 tail: Pr[rank >= 8k] <= e^-8 ~ 3e-4 for a
      // (k, phi)-relaxed scheduler; allow two orders of magnitude slack.
      EXPECT_LT(ranks.tail_fraction_at_least(8 * bound), 0.02);
      if (info.deterministic) {
        // Window/exact backends honour the rank bound strictly.
        EXPECT_LT(ranks.max_value(), bound);
      }
    });
  }
}

TEST(BackendQuality, ExactBackendIsExact) {
  constexpr std::uint32_t kN = 5000;
  const BackendInfo& exact = backend_or_throw("exact");
  BackendParams params;
  params.threads = 8;
  params.capacity = kN;
  dispatch_backend(exact, params, [&](auto tag, auto&&... args) {
    using Queue = typename decltype(tag)::type;
    Queue queue(std::forward<decltype(args)>(args)...);
    RelaxationMonitor<SequentialView<Queue>> mon(SequentialView<Queue>(queue),
                                                 kN, 1);
    for (Priority p = 0; p < kN; ++p) mon.insert(p);
    while (mon.approx_get_min()) {
    }
    EXPECT_EQ(mon.rank_histogram().total(), kN);
    EXPECT_EQ(mon.rank_histogram().max_value(), 0u);
    EXPECT_EQ(mon.inversion_histogram().max_value(), 0u);
  });
}

// Batch-aware Definition 1 envelopes: a native batched pop claims k
// consecutive minima from ONE best-of-c sub-structure, so batch element i
// is served ~i sub-structure spacings past the single-pop bound — the rank
// scale becomes O(k * k_0) (batched_rank_bound), NOT the single-pop k_0.
// This test certifies both directions at once: the batched path's measured
// envelope stays within the k-scaled bound for every registry backend
// (including the one-at-a-time shim backends, whose per-pop bound the
// scaled envelope dominates), and the monitor's counting shows every
// batched pop was recorded exactly once. bench/backend_matrix's quality
// columns report the same quantity for concurrent runs.
TEST(BackendQuality, BatchedPopsStayWithinBatchAwareEnvelope) {
  constexpr std::uint32_t kN = 20000;
  constexpr std::size_t kBatch = 8;
  for (const BackendInfo& info : backend_registry()) {
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    BackendParams params;
    params.threads = 8;
    params.queue_factor = 4;
    params.seed = 101;
    params.capacity = kN;
    const std::uint64_t bound = batched_rank_bound(info, params, kBatch);
    ASSERT_GE(bound, expected_rank_bound(info, params));
    dispatch_backend(info, params, [&](auto tag, auto&&... args) {
      using Queue = typename decltype(tag)::type;
      Queue queue(std::forward<decltype(args)>(args)...);
      RelaxationMonitor<SequentialView<Queue>> mon(SequentialView<Queue>(queue),
                                                   kN, 16);
      for (Priority p = 0; p < kN; ++p) mon.insert(p);
      std::vector<Priority> buf;
      while (mon.approx_get_min_batch(kBatch, buf) > 0) buf.clear();
      const auto& ranks = mon.rank_histogram();
      // Counting: the monitor accounted every batched pop exactly once.
      ASSERT_EQ(ranks.total(), kN);
      EXPECT_EQ(mon.inversion_histogram().total(), kN / 16);
      EXPECT_LE(ranks.mean(), 2.0 * static_cast<double>(bound));
      EXPECT_LT(ranks.tail_fraction_at_least(8 * bound), 0.02);
      if (info.deterministic) {
        // Shim-batched deterministic backends still honour their strict
        // per-pop cap: batching must not loosen a hard rank guarantee.
        EXPECT_LT(ranks.max_value(), expected_rank_bound(info, params));
      }
    });
  }
}

// The batched Definition 1 envelope must also hold when the *insert* side
// is batched: labels enter through RelaxationMonitor::insert_batch (the
// backend's native sorted-run splice where one exists) in mixed-size runs,
// and leave through batched pops. A batched insert concentrates its run in
// one sub-structure, so this pins down that the transient skew never blows
// the k-scaled rank envelope — the whole-system symmetry claim of the
// insert-side batching work.
TEST(BackendQuality, BatchedInsertsStayWithinBatchAwareEnvelope) {
  constexpr std::uint32_t kN = 20000;
  constexpr std::size_t kBatch = 8;
  for (const BackendInfo& info : backend_registry()) {
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    BackendParams params;
    params.threads = 8;
    params.queue_factor = 4;
    params.seed = 103;
    params.capacity = kN;
    const std::uint64_t bound = batched_rank_bound(info, params, kBatch);
    dispatch_backend(info, params, [&](auto tag, auto&&... args) {
      using Queue = typename decltype(tag)::type;
      Queue queue(std::forward<decltype(args)>(args)...);
      RelaxationMonitor<SequentialView<Queue>> mon(SequentialView<Queue>(queue),
                                                   kN, 16);
      std::vector<Priority> labels(kN);
      for (Priority p = 0; p < kN; ++p) labels[p] = p;
      util::Rng rng(29);
      util::shuffle(std::span<Priority>(labels), rng);
      // Mixed run lengths: single inserts, engine-style re-insertion runs,
      // and admission-sized chunks.
      constexpr std::size_t kRuns[] = {1, 8, 64, 3, 256};
      std::size_t off = 0, run_ix = 0;
      while (off < kN) {
        const std::size_t len = std::min<std::size_t>(
            kRuns[run_ix++ % std::size(kRuns)], kN - off);
        mon.insert_batch(std::span<const Priority>(labels.data() + off, len));
        off += len;
      }
      std::vector<Priority> buf;
      while (mon.approx_get_min_batch(kBatch, buf) > 0) buf.clear();
      const auto& ranks = mon.rank_histogram();
      // Counting: every batched insert reached the mirror and the backend
      // exactly once — nothing lost or invented by the splice paths.
      ASSERT_EQ(ranks.total(), kN);
      EXPECT_EQ(mon.inversion_histogram().total(), kN / 16);
      EXPECT_LE(ranks.mean(), 2.0 * static_cast<double>(bound));
      EXPECT_LT(ranks.tail_fraction_at_least(8 * bound), 0.02);
    });
  }
}

// The inversion (fairness) tail for the MultiQueue family: phi is
// O(q log q), so mass beyond ~40q must be negligible. Restricted to the
// two-choice structures — the deterministic window's fairness guarantee is
// k*r + k per element (not a uniform exponential tail), and spray-family
// inversions concentrate at the p polylog p scale with weaker constants.
TEST(BackendQuality, MultiQueueFamilyInversionTailDecays) {
  constexpr std::uint32_t kN = 20000;
  for (const BackendInfo& info : backend_registry()) {
    if (info.kind != BackendKind::kMultiQueue &&
        info.kind != BackendKind::kLockFreeMultiQueue &&
        info.kind != BackendKind::kSimMultiQueue) {
      continue;
    }
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    BackendParams params;
    params.threads = 8;
    params.queue_factor = 4;
    params.seed = 7;
    params.capacity = kN;
    const std::uint64_t bound = expected_rank_bound(info, params);
    dispatch_backend(info, params, [&](auto tag, auto&&... args) {
      using Queue = typename decltype(tag)::type;
      Queue queue(std::forward<decltype(args)>(args)...);
      // Stride 8: tracking cost is O(kN^2 / stride) across the drain; 2500
      // inversion samples are plenty for a 2% tail assertion.
      RelaxationMonitor<SequentialView<Queue>> mon(SequentialView<Queue>(queue),
                                                   kN, 8);
      for (Priority p = 0; p < kN; ++p) mon.insert(p);
      while (mon.approx_get_min()) {
      }
      const auto& inversions = mon.inversion_histogram();
      EXPECT_EQ(inversions.total(), kN / 8);
      EXPECT_LT(inversions.tail_fraction_at_least(40 * bound), 0.02);
    });
  }
}

// ---------------------------------------------------------------------------
// Topology-striped sampling quality. The rank analysis behind Definition 1
// is oblivious to WHICH sub-queues a sampler probes, so the StripeMap's
// domain-biased sampling (own block best-of-c, every kStealPeriod-th
// sample stealing cross-domain) must keep the same empirical envelope as
// the flat process as long as every domain's workers keep draining — that
// is what the engine guarantees by giving every domain workers. The
// flip side is pinned too: with stealing ablated (steal_period 0), a
// domain whose workers stall simply stops being served — the regression
// the bounded steal exists to prevent.
// ---------------------------------------------------------------------------

/// A quiescently-driven "pool" of one handle per domain, round-robin over
/// ops — models workers on every domain taking turns, the placement the
/// engine sets up, narrowed to the SequentialScheduler concept so
/// RelaxationMonitor can mirror it exactly.
template <typename Queue>
class StripedPoolView {
 public:
  StripedPoolView(Queue& queue, unsigned domains) : queue_(&queue) {
    for (unsigned d = 0; d < domains; ++d) {
      handles_.push_back(queue.get_handle());
      handles_.back().set_domain(d);
    }
  }
  void insert(Priority p) { next().insert(p); }
  std::optional<Priority> approx_get_min() { return next().approx_get_min(); }
  [[nodiscard]] bool empty() const { return queue_->empty(); }
  [[nodiscard]] std::size_t size() const { return queue_->size(); }

  [[nodiscard]] StripeStats stripe_stats() const {
    StripeStats total;
    for (const auto& h : handles_) {
      const StripeStats s = h.stripe_stats();
      total.local_claims += s.local_claims;
      total.steal_claims += s.steal_claims;
    }
    return total;
  }

 private:
  auto& next() { return handles_[ix_++ % handles_.size()]; }
  Queue* queue_;
  std::vector<decltype(std::declval<Queue&>().get_handle())> handles_;
  std::size_t ix_ = 0;
};

template <typename Queue>
void striped_envelope_leg() {
  constexpr std::uint32_t kN = 20000;
  constexpr std::uint32_t kQueues = 32;  // 8 threads x factor 4
  // The nominal Definition 1 bound for the matching flat configuration:
  // striped sampling must live inside the SAME envelope.
  BackendParams params;
  params.threads = 8;
  params.queue_factor = 4;
  params.capacity = kN;
  const std::uint64_t bound =
      expected_rank_bound(backend_or_throw("multiqueue-c2"), params);

  Queue queue(kQueues, /*seed=*/77);
  queue.set_stripe_map(StripeMap(kQueues, 2));
  RelaxationMonitor<StripedPoolView<Queue>> mon(
      StripedPoolView<Queue>(queue, 2), kN, 16);
  for (Priority p = 0; p < kN; ++p) mon.insert(p);
  while (mon.approx_get_min()) {
  }
  const auto& ranks = mon.rank_histogram();
  ASSERT_EQ(ranks.total(), kN);  // counting: nothing lost to the stripes
  EXPECT_LE(ranks.mean(), 2.0 * static_cast<double>(bound));
  EXPECT_LT(ranks.tail_fraction_at_least(8 * bound), 0.02);
  // The bias is real: claims are overwhelmingly domain-local, and the
  // steal cadence actually fired (one sample in kStealPeriod).
  const StripeStats stats = mon.inner().stripe_stats();
  EXPECT_EQ(stats.local_claims + stats.steal_claims, kN);
  EXPECT_GT(stats.steal_claims, 0u);
  EXPECT_GT(stats.local_claims, stats.steal_claims);
}

TEST(StripedQuality, MultiQueueBiasedSamplingHoldsTheEnvelope) {
  striped_envelope_leg<ConcurrentMultiQueue>();
}

TEST(StripedQuality, LockFreeMultiQueueBiasedSamplingHoldsTheEnvelope) {
  striped_envelope_leg<LockFreeMultiQueue>();
}

TEST(StripedQuality, DisabledStealStarvesAnIdleDomain) {
  // Two domains, but only domain 1's worker drains — the stalled-domain
  // scenario. Evens live in domain 0's block, odds in domain 1's.
  constexpr Priority kN = 8192;
  constexpr std::uint32_t kQueues = 16;
  const auto fill = [](auto& h0, auto& h1) {
    for (Priority p = 0; p < kN; ++p) {
      if (p % 2 == 0) {
        h0.insert(p);
      } else {
        h1.insert(p);
      }
    }
  };

  // Steal ablated: while its own block has work, the draining handle
  // NEVER serves domain 0 — the global minimum (priority 0) starves for
  // the entire first half of the drain.
  {
    ConcurrentMultiQueue queue(kQueues, /*seed=*/5);
    queue.set_stripe_map(StripeMap(kQueues, 2, /*steal_period=*/0));
    auto h0 = queue.get_handle();
    auto h1 = queue.get_handle();
    h0.set_domain(0);
    h1.set_domain(1);
    fill(h0, h1);
    for (Priority i = 0; i < kN / 2; ++i) {
      const auto got = h1.approx_get_min();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got % 2, 1u) << "steal-disabled drain served a foreign key";
    }
    EXPECT_EQ(h1.stripe_stats().steal_claims, 0u);
    EXPECT_EQ(queue.size(), kN / 2);  // every even key still waiting
  }

  // Bounded steal on: the same drain serves domain 0 on the kStealPeriod
  // cadence, so the starved block's minima keep flowing.
  {
    ConcurrentMultiQueue queue(kQueues, /*seed=*/5);
    queue.set_stripe_map(StripeMap(kQueues, 2));
    auto h0 = queue.get_handle();
    auto h1 = queue.get_handle();
    h0.set_domain(0);
    h1.set_domain(1);
    fill(h0, h1);
    Priority evens_served = 0;
    for (Priority i = 0; i < kN / 2; ++i) {
      const auto got = h1.approx_get_min();
      ASSERT_TRUE(got.has_value());
      if (*got % 2 == 0) ++evens_served;
    }
    const StripeStats stats = h1.stripe_stats();
    EXPECT_EQ(stats.steal_claims, evens_served);
    // One sample in kStealPeriod targets the foreign block and every
    // claim lands (quiescent drive): within rounding, 1/8 of the pops.
    EXPECT_GE(evens_served, kN / 2 / (2 * StripeMap::kStealPeriod));
  }
}

}  // namespace
}  // namespace relax::sched
