#include "sched/lockfree_multiqueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "graph/generators.h"
#include "sched/order_stat_set.h"

namespace relax::sched {
namespace {

static_assert(ConcurrentScheduler<LockFreeMultiQueue>);
static_assert(SequentialScheduler<LockFreeMultiQueue>);

TEST(LockFreeMultiQueue, SingleListIsExact) {
  // One sub-list degrades to an exact priority queue.
  LockFreeMultiQueue mq(1, 3);
  util::Rng rng(1);
  for (const auto p : util::random_permutation(500, rng)) mq.insert(p);
  for (Priority expect = 0; expect < 500; ++expect)
    EXPECT_EQ(mq.approx_get_min(), expect);
  EXPECT_TRUE(mq.empty());
}

TEST(LockFreeMultiQueue, DrainsAllExactlyOnce) {
  LockFreeMultiQueue mq(8, 5);
  constexpr std::uint32_t kN = 5000;
  util::Rng rng(2);
  for (const auto p : util::random_permutation(kN, rng)) mq.insert(p);
  EXPECT_EQ(mq.size(), kN);
  std::vector<char> seen(kN, 0);
  std::uint32_t count = 0;
  while (auto p = mq.approx_get_min()) {
    ASSERT_LT(*p, kN);
    ASSERT_FALSE(seen[*p]) << "duplicate " << *p;
    seen[*p] = 1;
    ++count;
  }
  EXPECT_EQ(count, kN);
  EXPECT_TRUE(mq.empty());
}

TEST(LockFreeMultiQueue, EmptyReturnsNullopt) {
  LockFreeMultiQueue mq(4, 1);
  EXPECT_FALSE(mq.approx_get_min().has_value());
  mq.insert(7);
  EXPECT_EQ(mq.approx_get_min(), 7u);
  EXPECT_FALSE(mq.approx_get_min().has_value());
}

TEST(LockFreeMultiQueue, DuplicateKeysSupported) {
  LockFreeMultiQueue mq(2, 9);
  for (int i = 0; i < 5; ++i) mq.insert(42);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(mq.approx_get_min(), 42u);
  EXPECT_FALSE(mq.approx_get_min().has_value());
}

TEST(LockFreeMultiQueue, BulkLoadEquivalentToInserts) {
  constexpr std::uint32_t kN = 4000;
  LockFreeMultiQueue mq(16, 11);
  std::vector<Priority> labels(kN);
  std::iota(labels.begin(), labels.end(), 0u);
  mq.bulk_load(labels);
  EXPECT_EQ(mq.size(), kN);
  std::vector<char> seen(kN, 0);
  std::uint32_t count = 0;
  while (auto p = mq.approx_get_min()) {
    ASSERT_FALSE(seen[*p]);
    seen[*p] = 1;
    ++count;
  }
  EXPECT_EQ(count, kN);
}

TEST(LockFreeMultiQueue, TwoChoiceRankStaysNearHead) {
  constexpr std::uint32_t kQueues = 8, kN = 20000;
  LockFreeMultiQueue mq(kQueues, 13);
  OrderStatSet mirror(kN);
  std::vector<Priority> labels(kN);
  std::iota(labels.begin(), labels.end(), 0u);
  mq.bulk_load(labels);
  for (Priority p = 0; p < kN; ++p) mirror.insert(p);
  double sum = 0;
  std::uint64_t beyond = 0;
  for (std::uint32_t i = 0; i < kN; ++i) {
    const auto p = mq.approx_get_min();
    ASSERT_TRUE(p.has_value());
    const auto rank = mirror.rank_of(*p);
    sum += static_cast<double>(rank);
    if (rank >= 16 * kQueues) ++beyond;
    mirror.erase(*p);
  }
  // Two-choice process: mean rank O(q), exponential tails (PODC'17).
  EXPECT_LT(sum / kN, 4.0 * kQueues);
  EXPECT_LT(static_cast<double>(beyond) / kN, 0.01);
}

TEST(LockFreeMultiQueue, InsertBatchIntoSingleListKeepsExactOrder) {
  // One sub-list degrades to an exact sorted list, so after CAS-splicing
  // shuffled runs the drain must come out in strictly ascending order —
  // any mis-link from the forward-resumed search would surface here.
  constexpr std::uint32_t kN = 2000;
  LockFreeMultiQueue mq(1, 31);
  util::Rng rng(7);
  const auto labels = util::random_permutation(kN, rng);
  constexpr std::size_t kRun = 64;
  for (std::uint32_t off = 0; off < kN; off += kRun) {
    mq.insert_batch(std::span<const Priority>(
        labels.data() + off, std::min<std::size_t>(kRun, kN - off)));
  }
  EXPECT_EQ(mq.size(), kN);
  for (Priority expect = 0; expect < kN; ++expect)
    EXPECT_EQ(mq.approx_get_min(), expect);
  EXPECT_TRUE(mq.empty());
}

TEST(LockFreeMultiQueue, InsertBatchWithDuplicatesAndSingletons) {
  LockFreeMultiQueue mq(2, 33);
  const std::vector<Priority> run = {5, 1, 5, 9, 1, 1};
  mq.insert_batch(run);
  mq.insert_batch(std::span<const Priority>(run.data(), 1));  // singleton
  mq.insert_batch({});                                        // empty: no-op
  EXPECT_EQ(mq.size(), run.size() + 1);
  std::vector<Priority> popped;
  while (auto p = mq.approx_get_min()) popped.push_back(*p);
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(popped, (std::vector<Priority>{1, 1, 1, 5, 5, 5, 9}));
}

TEST(LockFreeMultiQueue, LargeInsertBatchSpreadsAcrossSubLists) {
  // Splice-skew regression: a run much larger than a per-list share must
  // NOT land on one sub-list (the old behaviour — that list's head then
  // owns the run's whole minimum neighbourhood and every two-choice sample
  // that misses it is off by O(run) ranks until pops rebalance). Large
  // runs are dealt strided over several sub-lists like the MultiQueue's
  // chunked bulk_insert: 1024 keys / kMinSpliceChunk = 16 chunks, capped
  // at q = 8 -> every sub-list gets exactly 128 keys.
  constexpr std::uint32_t kQueues = 8, kN = 1024;
  LockFreeMultiQueue mq(kQueues, 41);
  util::Rng rng(11);
  const auto run = util::random_permutation(kN, rng);
  mq.insert_batch(run);
  EXPECT_EQ(mq.size(), kN);
  const auto sizes = mq.per_list_sizes();
  ASSERT_EQ(sizes.size(), kQueues);
  for (std::size_t i = 0; i < sizes.size(); ++i)
    EXPECT_EQ(sizes[i], kN / kQueues) << "sub-list " << i;
  // The strided deal interleaves: each sub-list holds one residue class of
  // the sorted run, so every sub-list drains ascending and the whole
  // multiset comes out exactly once.
  std::vector<char> seen(kN, 0);
  std::uint32_t count = 0;
  while (auto p = mq.approx_get_min()) {
    ASSERT_FALSE(seen[*p]) << "duplicate " << *p;
    seen[*p] = 1;
    ++count;
  }
  EXPECT_EQ(count, kN);
}

TEST(LockFreeMultiQueue, SmallInsertBatchKeepsSingleListSplice) {
  // Below 2 * kMinSpliceChunk the run stays on ONE sub-list — the single
  // coordination round trip that makes small-batch splicing pay.
  LockFreeMultiQueue mq(8, 43);
  std::vector<Priority> run(LockFreeMultiQueue::kMinSpliceChunk + 30);
  std::iota(run.begin(), run.end(), 0u);
  mq.insert_batch(run);
  const auto sizes = mq.per_list_sizes();
  std::size_t nonempty = 0;
  for (const std::size_t s : sizes) nonempty += s > 0 ? 1 : 0;
  EXPECT_EQ(nonempty, 1u);
  EXPECT_EQ(mq.size(), run.size());
}

TEST(LockFreeMultiQueue, ConcurrentLargeInsertBatchDrainExactlyOnce) {
  // Large chunked splices racing batched claims and each other: every key
  // delivered exactly once whatever sub-list its chunk landed on.
  constexpr std::uint32_t kN = 32768;
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kRun = 512;  // >> kMinSpliceChunk: multi-chunk
  LockFreeMultiQueue mq(8, 47);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto handle = mq.get_handle();
        util::Rng rng(300 + t);
        std::vector<Priority> run;
        std::vector<Priority> buf;
        for (;;) {
          const auto lo = produced.fetch_add(kRun);
          if (lo >= kN) break;
          run.clear();
          for (std::uint32_t i = lo; i < std::min(lo + kRun, kN); ++i)
            run.push_back(i);
          util::shuffle(std::span<Priority>(run), rng);
          handle.insert_batch(run);
          buf.clear();
          handle.approx_get_min_batch(16, buf);
          for (const Priority p : buf) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
        while (consumed.load() < kN) {
          buf.clear();
          if (handle.approx_get_min_batch(16, buf) == 0) continue;
          for (const Priority p : buf) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
}

TEST(LockFreeMultiQueue, ConcurrentInsertBatchDrainExactlyOnce) {
  // Sorted-run splices racing batched head claims on the same sub-lists:
  // the forward-resumed link CAS must never lose a key to a concurrent
  // claim (the search_from fallback path) or double-link one.
  constexpr std::uint32_t kN = 40000;
  constexpr unsigned kThreads = 8;
  constexpr std::uint32_t kRun = 32;
  LockFreeMultiQueue mq(4 * kThreads, 19);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto handle = mq.get_handle();
        util::Rng rng(100 + t);
        std::vector<Priority> run;
        std::vector<Priority> buf;
        for (;;) {
          const auto lo = produced.fetch_add(kRun);
          if (lo >= kN) break;
          run.clear();
          for (std::uint32_t i = lo; i < std::min(lo + kRun, kN); ++i)
            run.push_back(i);
          util::shuffle(std::span<Priority>(run), rng);
          handle.insert_batch(run);
          // Interleave a batched claim to race the two paths.
          buf.clear();
          handle.approx_get_min_batch(4, buf);
          for (const Priority p : buf) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
        while (consumed.load() < kN) {
          buf.clear();
          if (handle.approx_get_min_batch(8, buf) == 0) continue;
          for (const Priority p : buf) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
}

TEST(LockFreeMultiQueue, ConcurrentInsertDrainExactlyOnce) {
  constexpr std::uint32_t kN = 40000;
  constexpr unsigned kThreads = 8;
  LockFreeMultiQueue mq(4 * kThreads, 17);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        auto handle = mq.get_handle();
        for (;;) {
          const auto i = produced.fetch_add(1);
          if (i >= kN) break;
          handle.insert(i);
        }
        while (consumed.load() < kN) {
          const auto p = handle.approx_get_min();
          if (!p) continue;
          got[*p].fetch_add(1);
          consumed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
}

TEST(LockFreeMultiQueue, ConcurrentReinsertionStress) {
  constexpr std::uint32_t kN = 10000;
  LockFreeMultiQueue mq(16, 19);
  std::vector<Priority> labels(kN);
  std::iota(labels.begin(), labels.end(), 0u);
  mq.bulk_load(labels);
  std::atomic<std::uint32_t> retired{0};
  std::vector<std::atomic<int>> done(kN);
  for (auto& d : done) d.store(0);
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        util::Rng rng(t + 1);
        auto handle = mq.get_handle();
        while (retired.load() < kN) {
          const auto p = handle.approx_get_min();
          if (!p) continue;
          if (done[*p].load() == 0 && util::bounded(rng, 2) == 0) {
            handle.insert(*p);
          } else {
            ASSERT_EQ(done[*p].fetch_add(1), 0);
            retired.fetch_add(1);
          }
        }
      });
    }
  }
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(done[i].load(), 1);
}

TEST(LockFreeMultiQueue, DrivesParallelMisDeterministically) {
  const auto g = graph::gnm(2000, 10000, 23);
  const auto pri = graph::random_priorities(2000, 29);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    algorithms::AtomicMisProblem problem(g, pri);
    LockFreeMultiQueue mq(32, seed);
    core::ParallelOptions opts;
    opts.num_threads = 8;
    opts.pin_threads = false;
    core::run_parallel_relaxed_on(problem, pri, mq, opts);
    EXPECT_EQ(problem.result(), expected) << "seed=" << seed;
  }
}

TEST(LockFreeMultiQueue, ConcurrentBatchedClaimExactlyOnce) {
  // Racing batched head claims on the same sub-lists: every label delivered
  // exactly once, none stranded behind a marked prefix.
  constexpr std::uint32_t kN = 40000;
  constexpr unsigned kThreads = 4;
  LockFreeMultiQueue q(2 * kThreads, 19);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        auto handle = q.get_handle();
        for (;;) {
          const auto i = produced.fetch_add(1);
          if (i >= kN) break;
          handle.insert(i);
        }
        std::vector<Priority> batch;
        while (consumed.load() < kN) {
          batch.clear();
          if (handle.approx_get_min_batch(8, batch) == 0) continue;
          for (const Priority p : batch) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
  EXPECT_TRUE(q.empty());
}

TEST(LockFreeMultiQueue, BatchedClaimRunsAreSortedWithinOneList) {
  // A batch claims successive heads of one sorted sub-list, so each batch
  // must come out ascending.
  LockFreeMultiQueue q(4, 23);
  std::vector<Priority> labels(2000);
  std::iota(labels.begin(), labels.end(), 0u);
  q.bulk_load(labels);
  std::vector<Priority> batch;
  std::uint32_t total = 0;
  while (q.approx_get_min_batch(16, batch) > 0) {
    EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));
    total += static_cast<std::uint32_t>(batch.size());
    batch.clear();
  }
  EXPECT_EQ(total, 2000u);
  EXPECT_TRUE(q.empty());
}

TEST(LockFreeMultiQueue, SingleChoiceAblationStillCorrect) {
  LockFreeMultiQueue mq(8, 31, /*choices=*/1);
  constexpr std::uint32_t kN = 2000;
  util::Rng rng(3);
  for (const auto p : util::random_permutation(kN, rng)) mq.insert(p);
  std::vector<char> seen(kN, 0);
  std::uint32_t count = 0;
  while (auto p = mq.approx_get_min()) {
    ASSERT_FALSE(seen[*p]);
    seen[*p] = 1;
    ++count;
  }
  EXPECT_EQ(count, kN);
}

}  // namespace
}  // namespace relax::sched
