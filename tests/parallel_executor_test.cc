// Concurrent determinism: the parallel relaxed and parallel exact executors
// must produce exactly the sequential output for every problem, thread
// count and seed. These tests are the concurrent analogue of
// determinism_property_test.cc and also exercise the executors' termination
// logic under real contention.
#include <gtest/gtest.h>

#include <numeric>

#include "algorithms/coloring.h"
#include "algorithms/knuth_shuffle.h"
#include "algorithms/list_contraction.h"
#include "algorithms/matching.h"
#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "graph/generators.h"

namespace relax {
namespace {

using graph::Graph;

core::ParallelOptions opts(unsigned threads, std::uint64_t seed) {
  core::ParallelOptions o;
  o.num_threads = threads;
  o.seed = seed;
  o.pin_threads = false;  // CI-style environment friendliness
  return o;
}

class ThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadSweep, RelaxedMisMatchesSequential) {
  const unsigned threads = GetParam();
  const Graph g = graph::gnm(3000, 20000, 3);
  const auto pri = graph::random_priorities(3000, 7);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    algorithms::AtomicMisProblem problem(g, pri);
    const auto stats =
        core::run_parallel_relaxed(problem, pri, opts(threads, seed));
    EXPECT_EQ(problem.result(), expected)
        << "threads=" << threads << " seed=" << seed;
    EXPECT_EQ(stats.processed + stats.dead_skips, 3000u);
  }
}

TEST_P(ThreadSweep, ExactMisMatchesSequential) {
  const unsigned threads = GetParam();
  const Graph g = graph::gnm(3000, 20000, 5);
  const auto pri = graph::random_priorities(3000, 11);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  algorithms::AtomicMisProblem problem(g, pri);
  const auto stats = core::run_parallel_exact(problem, pri, opts(threads, 1));
  EXPECT_EQ(problem.result(), expected);
  EXPECT_EQ(stats.processed + stats.dead_skips, 3000u);
  EXPECT_EQ(stats.iterations, 3000u);  // exact: one delivery per task
}

TEST_P(ThreadSweep, RelaxedColoringMatchesSequential) {
  const unsigned threads = GetParam();
  const Graph g = graph::gnm(2000, 16000, 13);
  const auto pri = graph::random_priorities(2000, 17);
  const auto expected = algorithms::sequential_greedy_coloring(g, pri);
  algorithms::AtomicColoringProblem problem(g, pri);
  core::run_parallel_relaxed(problem, pri, opts(threads, 2));
  EXPECT_EQ(problem.colors(), expected);
}

TEST_P(ThreadSweep, ExactColoringMatchesSequential) {
  const unsigned threads = GetParam();
  const Graph g = graph::gnm(2000, 16000, 19);
  const auto pri = graph::random_priorities(2000, 23);
  algorithms::AtomicColoringProblem problem(g, pri);
  core::run_parallel_exact(problem, pri, opts(threads, 3));
  EXPECT_EQ(problem.colors(),
            algorithms::sequential_greedy_coloring(g, pri));
}

TEST_P(ThreadSweep, RelaxedMatchingMatchesSequential) {
  const unsigned threads = GetParam();
  const Graph g = graph::gnm(1000, 6000, 29);
  const algorithms::EdgeIncidence inc(g);
  const auto pri = graph::random_priorities(inc.num_edges(), 31);
  const auto expected = algorithms::sequential_greedy_matching(inc, pri);
  algorithms::AtomicMatchingProblem problem(inc, pri);
  core::run_parallel_relaxed(problem, pri, opts(threads, 4));
  EXPECT_EQ(problem.result(), expected);
}

TEST_P(ThreadSweep, RelaxedListContractionMatchesSequential) {
  const unsigned threads = GetParam();
  std::vector<std::uint32_t> arr(5000);
  std::iota(arr.begin(), arr.end(), 0u);
  const auto pri = graph::random_priorities(5000, 37);
  const auto expected = algorithms::sequential_list_contraction(arr, pri);
  algorithms::AtomicListContractionProblem problem(arr, pri);
  core::run_parallel_relaxed(problem, pri, opts(threads, 5));
  EXPECT_EQ(problem.trace(), expected);
}

TEST_P(ThreadSweep, RelaxedKnuthShuffleMatchesSequential) {
  const unsigned threads = GetParam();
  const auto targets = algorithms::shuffle_targets(5000, 41);
  const auto pri = graph::random_priorities(5000, 43);
  const algorithms::PositionIndex index(targets, pri);
  const auto expected = algorithms::sequential_knuth_shuffle(targets, pri);
  algorithms::AtomicKnuthShuffleProblem problem(targets, index);
  core::run_parallel_relaxed(problem, pri, opts(threads, 6));
  EXPECT_EQ(problem.array(), expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ParallelExecutor, DenseGraphHighContention) {
  // Small dense graph maximizes dependency conflicts and dead-marking races.
  const Graph g = graph::gnm(300, 20000, 47);
  const auto pri = graph::random_priorities(300, 53);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  for (int trial = 0; trial < 5; ++trial) {
    algorithms::AtomicMisProblem problem(g, pri);
    core::run_parallel_relaxed(problem, pri, opts(8, trial + 1));
    ASSERT_EQ(problem.result(), expected) << "trial " << trial;
  }
}

TEST(ParallelExecutor, CliqueSerializesCorrectly) {
  // On a clique only the current minimum is ever processable: worst case
  // for both executors' waiting/re-insertion paths.
  const Graph g = graph::clique(200);
  const auto pri = graph::random_priorities(200, 59);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  {
    algorithms::AtomicMisProblem problem(g, pri);
    core::run_parallel_relaxed(problem, pri, opts(8, 1));
    EXPECT_EQ(problem.result(), expected);
  }
  {
    algorithms::AtomicMisProblem problem(g, pri);
    core::run_parallel_exact(problem, pri, opts(8, 1));
    EXPECT_EQ(problem.result(), expected);
  }
}

TEST(ParallelExecutor, RelaxedStatsAccounting) {
  const Graph g = graph::gnm(2000, 10000, 61);
  const auto pri = graph::random_priorities(2000, 67);
  algorithms::AtomicMisProblem problem(g, pri);
  const auto stats = core::run_parallel_relaxed(problem, pri, opts(4, 7));
  EXPECT_EQ(stats.iterations,
            stats.processed + stats.failed_deletes + stats.dead_skips);
  EXPECT_EQ(stats.processed + stats.dead_skips, 2000u);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(ParallelExecutor, SingleVertexGraph) {
  const Graph g = Graph::from_edges(1, {});
  const auto pri = graph::identity_priorities(1);
  algorithms::AtomicMisProblem problem(g, pri);
  core::run_parallel_relaxed(problem, pri, opts(4, 1));
  EXPECT_EQ(problem.result(), (std::vector<std::uint8_t>{1}));
}

}  // namespace
}  // namespace relax
