// Cross-backend conformance: one fixture, every backend in the registry.
//
// A scheduler backend — whatever its internals — must behave like a relaxed
// priority multiset of labels: nothing lost, nothing duplicated, observed
// emptiness only when it may actually be empty. These tests run the same
// checks over every entry of sched::backend_registry() via
// dispatch_backend, so registering a new backend automatically subjects it
// to the full battery:
//
//   * fresh instance reports observed-empty (nullopt, empty(), size() 0);
//   * single-threaded insert/drain returns exactly the inserted label set
//     (a permutation — the relaxation may reorder, never drop or invent);
//   * labels can be re-inserted after a pop and are served again;
//   * multi-threaded insert/drain races preserve a per-label counting
//     invariant: every label popped exactly once, scheduler empty after.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "sched/backend_registry.h"
#include "sched/handles.h"
#include "sched/stripe_map.h"
#include "util/rng.h"

namespace relax::sched {
namespace {

BackendParams conformance_params(std::uint32_t capacity, unsigned threads) {
  BackendParams params;
  params.threads = threads;
  params.queue_factor = 4;
  params.seed = 12345;
  params.capacity = capacity;
  return params;
}

/// Runs f(info, queue) on a freshly constructed instance of every registry
/// backend, sized for `threads` workers and a label universe [0, capacity).
template <typename F>
void for_each_backend(std::uint32_t capacity, unsigned threads, F&& f) {
  for (const BackendInfo& info : backend_registry()) {
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    dispatch_backend(info, conformance_params(capacity, threads),
                     [&](auto tag, auto&&... args) {
                       using Queue = typename decltype(tag)::type;
                       Queue queue(std::forward<decltype(args)>(args)...);
                       f(info, queue);
                     });
  }
}

TEST(SchedConformance, RegistryIsNonEmptyAndNamesAreUnique) {
  const auto registry = backend_registry();
  ASSERT_GE(registry.size(), 7u);
  for (const auto& info : registry) {
    EXPECT_EQ(find_backend(info.name), &info);
  }
  EXPECT_EQ(find_backend("no-such-backend"), nullptr);
  EXPECT_THROW((void)backend_or_throw("no-such-backend"),
               std::invalid_argument);
  // The thrown message must carry the valid names (CLI relies on it).
  try {
    (void)backend_or_throw("no-such-backend");
  } catch (const std::invalid_argument& e) {
    for (const auto& info : registry) {
      EXPECT_NE(std::string(e.what()).find(std::string(info.name)),
                std::string::npos);
    }
  }
}

TEST(SchedConformance, FreshBackendIsObservedEmpty) {
  for_each_backend(256, 4, [](const BackendInfo&, auto& queue) {
    EXPECT_EQ(queue.approx_get_min(), std::nullopt);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
  });
}

TEST(SchedConformance, SingleThreadDrainIsAPermutationOfInserts) {
  constexpr std::uint32_t kN = 2048;
  for_each_backend(kN, 4, [&](const BackendInfo&, auto& queue) {
    std::vector<Priority> labels(kN);
    std::iota(labels.begin(), labels.end(), 0u);
    util::Rng rng(7);
    util::shuffle(std::span<Priority>(labels), rng);
    for (const Priority p : labels) queue.insert(p);
    EXPECT_EQ(queue.size(), kN);
    EXPECT_FALSE(queue.empty());

    std::vector<Priority> popped;
    popped.reserve(kN);
    while (const auto p = queue.approx_get_min()) popped.push_back(*p);
    ASSERT_EQ(popped.size(), kN);
    std::sort(popped.begin(), popped.end());
    for (std::uint32_t i = 0; i < kN; ++i) EXPECT_EQ(popped[i], i);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.approx_get_min(), std::nullopt);
  });
}

TEST(SchedConformance, ReinsertedLabelIsServedAgain) {
  constexpr std::uint32_t kN = 32;
  for_each_backend(kN, 2, [&](const BackendInfo&, auto& queue) {
    for (Priority p = 0; p < kN; ++p) queue.insert(p);
    const auto first = queue.approx_get_min();
    ASSERT_TRUE(first.has_value());
    queue.insert(*first);  // the framework's failed-delete path
    std::vector<Priority> popped;
    while (const auto p = queue.approx_get_min()) popped.push_back(*p);
    ASSERT_EQ(popped.size(), kN);
    std::sort(popped.begin(), popped.end());
    for (Priority p = 0; p < kN; ++p) EXPECT_EQ(popped[p], p);
  });
}

// Batched acquisition conformance: pop_batch over every backend — native
// batched claims on the scalable structures, the one-at-a-time shim on the
// locked adapters — must still deliver exactly the inserted label multiset.
TEST(SchedConformance, BatchedDrainIsAPermutationOfInserts) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::size_t kBatch = 8;
  for_each_backend(kN, 4, [&](const BackendInfo&, auto& queue) {
    std::vector<Priority> labels(kN);
    std::iota(labels.begin(), labels.end(), 0u);
    util::Rng rng(11);
    util::shuffle(std::span<Priority>(labels), rng);
    for (const Priority p : labels) queue.insert(p);

    auto handle = make_handle(queue);
    std::vector<Priority> popped;
    std::vector<Priority> buf;
    for (;;) {
      buf.clear();
      const std::size_t got = pop_batch(handle, kBatch, buf);
      if (got == 0) break;
      ASSERT_EQ(got, buf.size());
      ASSERT_LE(got, kBatch);
      popped.insert(popped.end(), buf.begin(), buf.end());
    }
    ASSERT_EQ(popped.size(), kN);
    std::sort(popped.begin(), popped.end());
    for (std::uint32_t i = 0; i < kN; ++i) EXPECT_EQ(popped[i], i);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
  });
}

// Insert-side batching conformance: sched::insert_batch over every backend
// — native sorted-run splices on the scalable structures (MultiQueue
// chunked merge, lock-free list CAS-splice, SprayList one-descent run),
// one lock per batch on the locked adapters, per-key shim elsewhere — must
// deliver exactly the inserted label multiset back out, whatever mix of
// batch sizes built it.
TEST(SchedConformance, InsertBatchDrainIsAPermutationOfInserts) {
  constexpr std::uint32_t kN = 2048;
  for_each_backend(kN, 4, [&](const BackendInfo&, auto& queue) {
    std::vector<Priority> labels(kN);
    std::iota(labels.begin(), labels.end(), 0u);
    util::Rng rng(23);
    util::shuffle(std::span<Priority>(labels), rng);

    auto handle = make_handle(queue);
    // Mixed batch sizes, including 1 and a run larger than any sub-queue
    // chunk, so both the splice and the degenerate paths are exercised.
    constexpr std::size_t kChunks[] = {1, 7, 64, 3, 200, 1, 500};
    std::size_t off = 0, chunk_ix = 0;
    while (off < kN) {
      const std::size_t len =
          std::min<std::size_t>(kChunks[chunk_ix++ % std::size(kChunks)],
                                kN - off);
      insert_batch(handle,
                   std::span<const Priority>(labels.data() + off, len));
      off += len;
    }
    EXPECT_EQ(queue.size(), kN);

    std::vector<Priority> popped;
    popped.reserve(kN);
    while (const auto p = queue.approx_get_min()) popped.push_back(*p);
    ASSERT_EQ(popped.size(), kN);
    std::sort(popped.begin(), popped.end());
    for (std::uint32_t i = 0; i < kN; ++i) EXPECT_EQ(popped[i], i);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
  });
}

// Regression for the biased kProbeLimit fallback: the full scan used to
// start at sub-queue 0 every time, so a near-empty queue funnelled every
// thread onto the lowest-index non-empty sub-queue (contention plus a pop
// bias toward whatever lived there). With probe_limit = 0 every pop takes
// the fallback path, and bulk_load's round-robin placement puts label i in
// sub-queue i — so the old scan provably drained labels in exactly
// ascending index order, while a randomized start makes that ordering
// astronomically unlikely (P = prod 1/remaining ~ 1/64!).
TEST(SchedConformance, FallbackScanStartsAtARandomOffset) {
  constexpr std::uint32_t kQ = 64;
  std::vector<Priority> labels(kQ);
  std::iota(labels.begin(), labels.end(), 0u);
  {
    ConcurrentMultiQueue q(kQ, 77, 2, /*probe_limit=*/0);
    q.bulk_load(labels);
    std::vector<Priority> popped;
    while (const auto p = q.approx_get_min()) popped.push_back(*p);
    ASSERT_EQ(popped.size(), kQ);
    EXPECT_FALSE(std::is_sorted(popped.begin(), popped.end()))
        << "fallback scan always started at sub-queue 0";
    std::sort(popped.begin(), popped.end());
    for (std::uint32_t i = 0; i < kQ; ++i) EXPECT_EQ(popped[i], i);
  }
  {
    LockFreeMultiQueue q(kQ, 77, 2, /*probe_limit=*/0);
    q.bulk_load(labels);
    std::vector<Priority> popped;
    while (const auto p = q.approx_get_min()) popped.push_back(*p);
    ASSERT_EQ(popped.size(), kQ);
    EXPECT_FALSE(std::is_sorted(popped.begin(), popped.end()))
        << "fallback scan always started at sub-list 0";
    std::sort(popped.begin(), popped.end());
    for (std::uint32_t i = 0; i < kQ; ++i) EXPECT_EQ(popped[i], i);
  }
}

// The concurrent counting invariant: kThreads workers interleave inserts of
// disjoint label ranges with pops, then drain to a global target. No label
// may be lost (the count would never reach kN) or duplicated (a per-label
// counter would exceed one). nullopt results mid-race are legitimate
// ("observed empty at some point") and simply retried.
TEST(SchedConformance, ConcurrentInsertDrainKeepsEveryLabelExactlyOnce) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kPerThread = 2500;
  constexpr std::uint32_t kN = kThreads * kPerThread;
  for_each_backend(kN, kThreads, [&](const BackendInfo&, auto& queue) {
    std::vector<std::atomic<std::uint8_t>> seen(kN);
    std::atomic<std::uint32_t> popped{0};
    std::atomic<std::uint32_t> duplicates{0};
    std::atomic<std::uint32_t> out_of_range{0};

    auto record = [&](Priority p) {
      if (p >= kN) {
        out_of_range.fetch_add(1, std::memory_order_relaxed);
      } else if (seen[p].fetch_add(1, std::memory_order_relaxed) != 0) {
        duplicates.fetch_add(1, std::memory_order_relaxed);
      }
      popped.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        auto handle = make_handle(queue);
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
          handle.insert(t * kPerThread + i);
          // Interleave pops with inserts to race the two paths.
          if ((i & 7) == 0) {
            if (const auto p = handle.approx_get_min()) record(*p);
          }
        }
        // Deadline-bounded drain: a lost label must fail the popped-count
        // assertion below, not hang CI in this loop. The clock is only
        // consulted on a stretch of failed pops — successful pops are
        // progress.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(60);
        std::uint32_t dry_polls = 0;
        while (popped.load(std::memory_order_relaxed) < kN) {
          if (const auto p = handle.approx_get_min()) {
            record(*p);
            dry_polls = 0;
          } else if ((++dry_polls & 0xfff) == 0 &&
                     std::chrono::steady_clock::now() > deadline) {
            break;
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    EXPECT_EQ(popped.load(), kN);
    EXPECT_EQ(duplicates.load(), 0u);
    EXPECT_EQ(out_of_range.load(), 0u);
    for (std::uint32_t p = 0; p < kN; ++p) {
      ASSERT_EQ(seen[p].load(), 1u) << "label " << p;
    }
    // Quiescent now: emptiness must be definitive.
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.approx_get_min(), std::nullopt);
  });
}

// Same counting invariant under *batched* acquisition: racing batched
// claims (multiqueue sub-queue drains, lock-free head-claim runs, spray
// walk claims) must never deliver a label twice or strand one.
TEST(SchedConformance, ConcurrentBatchedDrainKeepsEveryLabelExactlyOnce) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kPerThread = 2500;
  constexpr std::uint32_t kN = kThreads * kPerThread;
  constexpr std::size_t kBatch = 8;
  for_each_backend(kN, kThreads, [&](const BackendInfo&, auto& queue) {
    std::vector<std::atomic<std::uint8_t>> seen(kN);
    std::atomic<std::uint32_t> popped{0};
    std::atomic<std::uint32_t> duplicates{0};
    std::atomic<std::uint32_t> out_of_range{0};

    auto record = [&](Priority p) {
      if (p >= kN) {
        out_of_range.fetch_add(1, std::memory_order_relaxed);
      } else if (seen[p].fetch_add(1, std::memory_order_relaxed) != 0) {
        duplicates.fetch_add(1, std::memory_order_relaxed);
      }
      popped.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        auto handle = make_handle(queue);
        std::vector<Priority> buf;
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
          handle.insert(t * kPerThread + i);
          if ((i & 31) == 0) {
            buf.clear();
            pop_batch(handle, kBatch, buf);
            for (const Priority p : buf) record(p);
          }
        }
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(60);
        std::uint32_t dry_polls = 0;
        while (popped.load(std::memory_order_relaxed) < kN) {
          buf.clear();
          if (pop_batch(handle, kBatch, buf) > 0) {
            for (const Priority p : buf) record(p);
            dry_polls = 0;
          } else if ((++dry_polls & 0xfff) == 0 &&
                     std::chrono::steady_clock::now() > deadline) {
            break;
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    EXPECT_EQ(popped.load(), kN);
    EXPECT_EQ(duplicates.load(), 0u);
    EXPECT_EQ(out_of_range.load(), 0u);
    for (std::uint32_t p = 0; p < kN; ++p) {
      ASSERT_EQ(seen[p].load(), 1u) << "label " << p;
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.approx_get_min(), std::nullopt);
  });
}

// Full batching symmetry under concurrency: workers admit their label
// ranges through insert_batch runs while draining through pop_batch —
// racing sorted-run splices against batched head claims on every backend.
// The counting invariant must survive: every label delivered exactly once,
// scheduler definitively empty after.
TEST(SchedConformance, ConcurrentMixedBatchedOpsKeepEveryLabelExactlyOnce) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kPerThread = 2500;
  constexpr std::uint32_t kN = kThreads * kPerThread;
  constexpr std::size_t kInsertRun = 16;
  constexpr std::size_t kBatch = 8;
  for_each_backend(kN, kThreads, [&](const BackendInfo&, auto& queue) {
    std::vector<std::atomic<std::uint8_t>> seen(kN);
    std::atomic<std::uint32_t> popped{0};
    std::atomic<std::uint32_t> duplicates{0};
    std::atomic<std::uint32_t> out_of_range{0};

    auto record = [&](Priority p) {
      if (p >= kN) {
        out_of_range.fetch_add(1, std::memory_order_relaxed);
      } else if (seen[p].fetch_add(1, std::memory_order_relaxed) != 0) {
        duplicates.fetch_add(1, std::memory_order_relaxed);
      }
      popped.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        auto handle = make_handle(queue);
        std::vector<Priority> run;
        std::vector<Priority> buf;
        // Shuffle this worker's range so the sorted-run splice sees
        // non-trivial runs instead of pre-sorted input.
        std::vector<Priority> mine(kPerThread);
        std::iota(mine.begin(), mine.end(), t * kPerThread);
        util::Rng rng(1000 + t);
        util::shuffle(std::span<Priority>(mine), rng);
        for (std::uint32_t i = 0; i < kPerThread; i += kInsertRun) {
          const std::size_t len =
              std::min<std::size_t>(kInsertRun, kPerThread - i);
          insert_batch(handle,
                       std::span<const Priority>(mine.data() + i, len));
          buf.clear();
          pop_batch(handle, kBatch, buf);
          for (const Priority p : buf) record(p);
        }
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(60);
        std::uint32_t dry_polls = 0;
        while (popped.load(std::memory_order_relaxed) < kN) {
          buf.clear();
          if (pop_batch(handle, kBatch, buf) > 0) {
            for (const Priority p : buf) record(p);
            dry_polls = 0;
          } else if ((++dry_polls & 0xfff) == 0 &&
                     std::chrono::steady_clock::now() > deadline) {
            break;
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    EXPECT_EQ(popped.load(), kN);
    EXPECT_EQ(duplicates.load(), 0u);
    EXPECT_EQ(out_of_range.load(), 0u);
    for (std::uint32_t p = 0; p < kN; ++p) {
      ASSERT_EQ(seen[p].load(), 1u) << "label " << p;
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.approx_get_min(), std::nullopt);
  });
}

// The counting invariant under topology-striped placement (virtual:2):
// backends carrying a StripeMap serve claims domain-locally with bounded
// cross-domain steals, and handle inserts land in the inserting worker's
// block — none of which may lose, duplicate, or strand a label. Workers
// split across two domains exactly as util::plan_workers would place
// them; backends without the placement surface run flat, so the whole
// registry stays under the same battery. (This test is in the TSan row's
// ctest filter — it is the data-race coverage for the striped claim and
// steal paths.)
TEST(SchedConformance, StripedConcurrentDrainKeepsEveryLabelExactlyOnce) {
  constexpr unsigned kThreads = 4;
  constexpr unsigned kDomains = 2;
  constexpr std::uint32_t kPerThread = 2500;
  constexpr std::uint32_t kN = kThreads * kPerThread;
  for_each_backend(kN, kThreads, [&](const BackendInfo&, auto& queue) {
    using Queue = std::remove_reference_t<decltype(queue)>;
    if constexpr (requires(Queue& q, const StripeMap& m) {
                    q.num_queues();
                    q.set_stripe_map(m);
                  }) {
      queue.set_stripe_map(StripeMap(queue.num_queues(), kDomains));
    }

    std::vector<std::atomic<std::uint8_t>> seen(kN);
    std::atomic<std::uint32_t> popped{0};
    std::atomic<std::uint32_t> duplicates{0};
    std::atomic<std::uint32_t> out_of_range{0};

    auto record = [&](Priority p) {
      if (p >= kN) {
        out_of_range.fetch_add(1, std::memory_order_relaxed);
      } else if (seen[p].fetch_add(1, std::memory_order_relaxed) != 0) {
        duplicates.fetch_add(1, std::memory_order_relaxed);
      }
      popped.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        auto handle = make_handle(queue);
        if constexpr (requires { handle.set_domain(0u); }) {
          // Block split, exactly as plan_workers maps virtual:2.
          handle.set_domain(t * kDomains / kThreads);
        }
        std::vector<Priority> buf;
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
          handle.insert(t * kPerThread + i);
          if ((i & 15) == 0) {
            buf.clear();
            pop_batch(handle, 4, buf);
            for (const Priority p : buf) record(p);
          }
        }
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(60);
        std::uint32_t dry_polls = 0;
        while (popped.load(std::memory_order_relaxed) < kN) {
          if (const auto p = handle.approx_get_min()) {
            record(*p);
            dry_polls = 0;
          } else if ((++dry_polls & 0xfff) == 0 &&
                     std::chrono::steady_clock::now() > deadline) {
            break;
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    EXPECT_EQ(popped.load(), kN);
    EXPECT_EQ(duplicates.load(), 0u);
    EXPECT_EQ(out_of_range.load(), 0u);
    for (std::uint32_t p = 0; p < kN; ++p) {
      ASSERT_EQ(seen[p].load(), 1u) << "label " << p;
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.approx_get_min(), std::nullopt);
  });
}

}  // namespace
}  // namespace relax::sched
