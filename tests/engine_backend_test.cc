// Engine × backend matrix: every registry backend runs real framework jobs
// through one SchedulingEngine and must produce exactly the sequential
// outcome (the paper's determinism property survives the backend swap);
// the deterministic baselines must additionally be bit-reproducible.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/mis.h"
#include "core/execution_stats.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "sched/backend_registry.h"

namespace relax::engine {
namespace {

using graph::Graph;

EngineOptions engine_opts(unsigned threads, unsigned in_flight) {
  EngineOptions opts;
  opts.num_threads = threads;
  opts.pin_threads = false;  // CI-style environment friendliness
  opts.max_in_flight = in_flight;
  return opts;
}

struct MisFixture {
  Graph g;
  graph::Priorities pri;
  std::vector<std::uint8_t> expected;

  explicit MisFixture(std::uint32_t n = 3000, std::uint64_t m = 18000)
      : g(graph::gnm(n, m, 5)),
        pri(graph::random_priorities(n, 9)),
        expected(algorithms::sequential_greedy_mis(g, pri)) {}
};

TEST(EngineBackend, EveryBackendProducesTheSequentialMis) {
  const MisFixture fix;
  SchedulingEngine eng(engine_opts(4, 2));
  for (const sched::BackendInfo& info : sched::backend_registry()) {
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    algorithms::AtomicMisProblem problem(fix.g, fix.pri);
    JobConfig cfg;
    cfg.seed = 3;
    const auto stats =
        eng.submit_relaxed_backend(problem, fix.pri, info, cfg).wait();
    EXPECT_EQ(problem.result(), fix.expected);
    EXPECT_TRUE(algorithms::verify_mis(fix.g, problem.result()));
    // Counting invariant: every task retired exactly once, whatever the
    // backend's relaxation.
    EXPECT_EQ(stats.processed + stats.dead_skips, fix.g.num_vertices());
    EXPECT_EQ(stats.iterations,
              stats.processed + stats.failed_deletes + stats.dead_skips);
  }
  EXPECT_EQ(eng.jobs_completed(), sched::backend_registry().size());
}

// The headline multi-tenant variant: one job per backend, all in flight on
// the same pool at once, heterogeneous scheduler types multiplexed by the
// same workers — every job still decides the sequential MIS.
TEST(EngineBackend, AllBackendsInFlightTogetherStayDeterministic) {
  const MisFixture fix(2000, 12000);
  const auto registry = sched::backend_registry();
  SchedulingEngine eng(engine_opts(4, 4));
  std::vector<std::unique_ptr<algorithms::AtomicMisProblem>> problems;
  std::vector<JobTicket> tickets;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    problems.push_back(
        std::make_unique<algorithms::AtomicMisProblem>(fix.g, fix.pri));
    JobConfig cfg;
    cfg.seed = 11 + i;
    tickets.push_back(eng.submit_relaxed_backend(*problems.back(), fix.pri,
                                                 registry[i], cfg));
  }
  for (std::size_t i = 0; i < registry.size(); ++i) {
    SCOPED_TRACE(std::string("backend: ") + std::string(registry[i].name));
    (void)tickets[i].wait();
    EXPECT_EQ(problems[i]->result(), fix.expected);
  }
}

// Batched task acquisition (JobConfig::pop_batch) across the whole
// registry: the worker-local label buffer must not break the framework's
// determinism property or the retirement counting — every backend still
// decides exactly the sequential MIS, every task retires exactly once, and
// termination never fires while labels sit buffered (a lost label would
// hang the wait(); a duplicate would break the counting invariant).
TEST(EngineBackend, BatchedAcquisitionProducesTheSequentialMis) {
  const MisFixture fix;
  SchedulingEngine eng(engine_opts(4, 2));
  for (const sched::BackendInfo& info : sched::backend_registry()) {
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    algorithms::AtomicMisProblem problem(fix.g, fix.pri);
    JobConfig cfg;
    cfg.seed = 51;
    cfg.pop_batch = 8;
    const auto stats =
        eng.submit_relaxed_backend(problem, fix.pri, info, cfg).wait();
    EXPECT_EQ(problem.result(), fix.expected);
    EXPECT_TRUE(algorithms::verify_mis(fix.g, problem.result()));
    EXPECT_EQ(stats.processed + stats.dead_skips, fix.g.num_vertices());
    EXPECT_EQ(stats.iterations,
              stats.processed + stats.failed_deletes + stats.dead_skips);
  }
}

// Batched re-insertion + adaptive claim sizing (--pop-batch=auto): every
// backend still decides exactly the sequential MIS when kNotReady labels
// are buffered and flushed as insert_batch runs and the per-worker claim
// size floats between 1 and the cap. A label stranded in a re-insertion
// buffer would hang wait(); a duplicated one breaks the counting.
TEST(EngineBackend, AdaptiveBatchingProducesTheSequentialMis) {
  const MisFixture fix;
  SchedulingEngine eng(engine_opts(4, 2));
  for (const sched::BackendInfo& info : sched::backend_registry()) {
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    algorithms::AtomicMisProblem problem(fix.g, fix.pri);
    JobConfig cfg;
    cfg.seed = 71;
    cfg.pop_batch = 64;  // the adaptive cap
    cfg.pop_batch_auto = true;
    const auto stats =
        eng.submit_relaxed_backend(problem, fix.pri, info, cfg).wait();
    EXPECT_EQ(problem.result(), fix.expected);
    EXPECT_TRUE(algorithms::verify_mis(fix.g, problem.result()));
    EXPECT_EQ(stats.processed + stats.dead_skips, fix.g.num_vertices());
    EXPECT_EQ(stats.iterations,
              stats.processed + stats.failed_deletes + stats.dead_skips);
  }
}

TEST(EngineBackend, PopBatchFlagParsing) {
  const auto fixed = parse_pop_batch_flag("8");
  EXPECT_EQ(fixed.batch, 8u);
  EXPECT_FALSE(fixed.adaptive);
  EXPECT_TRUE(fixed.valid);

  const auto adaptive = parse_pop_batch_flag("auto");
  EXPECT_EQ(adaptive.batch, JobConfig::kDefaultAutoPopBatch);
  EXPECT_TRUE(adaptive.adaptive);
  EXPECT_TRUE(adaptive.valid);

  const auto capped = parse_pop_batch_flag("auto:128");
  EXPECT_EQ(capped.batch, 128u);
  EXPECT_TRUE(capped.adaptive);
  EXPECT_TRUE(capped.valid);

  // Degenerate values degrade safely (reported == effective) AND carry
  // valid == false so CLI front-ends can reject them with a clear error
  // instead of running a batch size the user never asked for.
  EXPECT_EQ(parse_pop_batch_flag("0").batch, 1u);
  EXPECT_FALSE(parse_pop_batch_flag("0").valid);
  EXPECT_EQ(parse_pop_batch_flag("garbage").batch, 1u);
  EXPECT_FALSE(parse_pop_batch_flag("garbage").adaptive);
  EXPECT_FALSE(parse_pop_batch_flag("garbage").valid);
  EXPECT_EQ(parse_pop_batch_flag("auto:junk").batch,
            JobConfig::kDefaultAutoPopBatch);
  EXPECT_TRUE(parse_pop_batch_flag("auto:junk").adaptive);
  EXPECT_FALSE(parse_pop_batch_flag("auto:junk").valid);

  // A zero adaptive cap would flow straight into the batch controller:
  // must parse as invalid (degraded to the default cap, still adaptive).
  const auto zero_cap = parse_pop_batch_flag("auto:0");
  EXPECT_FALSE(zero_cap.valid);
  EXPECT_TRUE(zero_cap.adaptive);
  EXPECT_EQ(zero_cap.batch, JobConfig::kDefaultAutoPopBatch);

  // Oversized values clamp and stay valid (documented behaviour).
  EXPECT_EQ(parse_pop_batch_flag("99999999").batch,
            JobConfig::kMaxPopBatch);
  EXPECT_TRUE(parse_pop_batch_flag("99999999").valid);
  EXPECT_TRUE(parse_pop_batch_flag("1").valid);
  EXPECT_FALSE(parse_pop_batch_flag("").valid);
  EXPECT_FALSE(parse_pop_batch_flag("-3").valid);
}

// A monitored batched job measures the batch-aware Definition 1 envelope
// in situ: mean rank error stays within a generous multiple of
// batched_rank_bound even under real concurrency.
TEST(EngineBackend, MonitoredBatchedJobStaysInBatchEnvelope) {
  const MisFixture fix(1500, 9000);
  SchedulingEngine eng(engine_opts(4, 1));
  algorithms::AtomicMisProblem problem(fix.g, fix.pri);
  JobConfig cfg;
  cfg.seed = 61;
  cfg.pop_batch = 8;
  cfg.monitor_relaxation = true;
  cfg.monitor_stride = 16;
  const auto stats =
      eng.submit_relaxed_backend(problem, fix.pri, "multiqueue-c2", cfg)
          .wait();
  EXPECT_EQ(problem.result(), fix.expected);
  EXPECT_GT(stats.rank_samples, 0u);
  sched::BackendParams params;
  params.threads = eng.width();
  params.queue_factor = cfg.queue_factor;
  const std::uint64_t bound = sched::batched_rank_bound(
      sched::backend_or_throw("multiqueue-c2"), params, cfg.pop_batch);
  EXPECT_LE(stats.mean_rank_error, 2.0 * static_cast<double>(bound));
}

// Deterministic baselines (kbounded, exact) on a single-worker engine are
// fully reproducible: two runs with the same seed give identical work
// accounting, not just identical output.
TEST(EngineBackend, DeterministicBaselinesAreReproducible) {
  const MisFixture fix(1500, 9000);
  for (const sched::BackendInfo& info : sched::backend_registry()) {
    if (!info.deterministic) continue;
    SCOPED_TRACE(std::string("backend: ") + std::string(info.name));
    core::ExecutionStats runs[2];
    for (auto& stats : runs) {
      SchedulingEngine eng(engine_opts(1, 1));
      algorithms::AtomicMisProblem problem(fix.g, fix.pri);
      JobConfig cfg;
      cfg.seed = 21;
      stats = eng.submit_relaxed_backend(problem, fix.pri, info, cfg).wait();
      EXPECT_EQ(problem.result(), fix.expected);
    }
    EXPECT_EQ(runs[0].iterations, runs[1].iterations);
    EXPECT_EQ(runs[0].processed, runs[1].processed);
    EXPECT_EQ(runs[0].failed_deletes, runs[1].failed_deletes);
    EXPECT_EQ(runs[0].dead_skips, runs[1].dead_skips);
  }
}

TEST(EngineBackend, MonitoredBackendJobReportsQuality) {
  const MisFixture fix(1500, 9000);
  SchedulingEngine eng(engine_opts(4, 1));
  // A randomized backend: quality fields populated, samples counted.
  {
    algorithms::AtomicMisProblem problem(fix.g, fix.pri);
    JobConfig cfg;
    cfg.seed = 31;
    cfg.monitor_relaxation = true;
    cfg.monitor_stride = 16;
    const auto stats =
        eng.submit_relaxed_backend(problem, fix.pri, "lockfree-multiqueue",
                                   cfg)
            .wait();
    EXPECT_EQ(problem.result(), fix.expected);
    EXPECT_GT(stats.rank_samples, 0u);
    EXPECT_GT(stats.inversion_samples, 0u);
    EXPECT_LT(stats.max_rank_error, fix.g.num_vertices());
  }
  // The deterministic window honours its rank cap even in audit mode:
  // k derives to queue_factor * width.
  {
    algorithms::AtomicMisProblem problem(fix.g, fix.pri);
    JobConfig cfg;
    cfg.seed = 37;
    cfg.monitor_relaxation = true;
    const auto stats =
        eng.submit_relaxed_backend(problem, fix.pri, "kbounded", cfg).wait();
    EXPECT_EQ(problem.result(), fix.expected);
    EXPECT_GT(stats.rank_samples, 0u);
    EXPECT_LT(stats.max_rank_error, cfg.queue_factor * eng.width());
  }
}

TEST(EngineBackend, ExplicitRelaxationKIsHonoured) {
  const MisFixture fix(1500, 9000);
  SchedulingEngine eng(engine_opts(2, 1));
  algorithms::AtomicMisProblem problem(fix.g, fix.pri);
  JobConfig cfg;
  cfg.seed = 41;
  cfg.relaxation_k = 3;
  cfg.monitor_relaxation = true;
  const auto stats =
      eng.submit_relaxed_backend(problem, fix.pri, "kbounded", cfg).wait();
  EXPECT_EQ(problem.result(), fix.expected);
  EXPECT_LT(stats.max_rank_error, 3u);
}

// Weighted co-runs over real framework jobs: QoS weights reshape slice
// budgets (the heavy tenant is granted larger slices under contention),
// and the determinism property must be completely insensitive to that —
// the decided outcome depends only on pi, never on slice boundaries.
TEST(EngineBackend, WeightedJobsStayDeterministic) {
  const MisFixture fix(2000, 12000);
  SchedulingEngine eng(engine_opts(2, 3));
  std::vector<std::unique_ptr<algorithms::AtomicMisProblem>> problems;
  std::vector<JobTicket> tickets;
  const std::uint32_t weights[] = {1, 2, 8};
  for (std::size_t i = 0; i < 3; ++i) {
    problems.push_back(
        std::make_unique<algorithms::AtomicMisProblem>(fix.g, fix.pri));
    JobConfig cfg;
    cfg.seed = 81 + i;
    cfg.weight = weights[i];
    tickets.push_back(eng.submit_relaxed_backend(
        *problems.back(), fix.pri, "multiqueue-c2", cfg));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(std::string("weight: ") + std::to_string(weights[i]));
    const auto stats = tickets[i].wait();
    EXPECT_EQ(problems[i]->result(), fix.expected);
    EXPECT_EQ(stats.processed + stats.dead_skips, fix.g.num_vertices());
  }
  // Out-of-range weights clamp at admission rather than distorting the
  // governor's aggregate weight: a solo max-weight job still just runs.
  algorithms::AtomicMisProblem solo(fix.g, fix.pri);
  JobConfig cfg;
  cfg.seed = 91;
  cfg.weight = JobConfig::kMaxWeight;
  (void)eng.submit_relaxed_backend(solo, fix.pri, "multiqueue-c2", cfg)
      .wait();
  EXPECT_EQ(solo.result(), fix.expected);
}

TEST(EngineBackend, UnknownBackendNameThrowsWithValidList) {
  const MisFixture fix(100, 300);
  SchedulingEngine eng(engine_opts(1, 1));
  algorithms::AtomicMisProblem problem(fix.g, fix.pri);
  EXPECT_THROW(
      (void)eng.submit_relaxed_backend(problem, fix.pri, "no-such-backend"),
      std::invalid_argument);
  try {
    (void)eng.submit_relaxed_backend(problem, fix.pri, "no-such-backend");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("multiqueue-c2"), std::string::npos);
  }
}

}  // namespace
}  // namespace relax::engine
