#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace relax::util {
namespace {

TEST(OnlineStats, EmptyIsZeroCount) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-6);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 120; ++i) {
    b.add(i * 0.5);
    all.add(i * 0.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 3.0);
}

TEST(ExponentialHistogram, BucketsByPowerOfTwo) {
  ExponentialHistogram h;
  h.add(0);  // bucket 0: values {0}
  h.add(1);  // bucket 1: values {1, 2}
  h.add(2);
  h.add(3);  // bucket 2: values {3..6}
  h.add(6);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.max_value(), 6u);
  ASSERT_GE(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 2u);
}

TEST(ExponentialHistogram, TailFractionExactOnSmallSamples) {
  ExponentialHistogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_DOUBLE_EQ(h.tail_fraction_at_least(0), 1.0);
  EXPECT_DOUBLE_EQ(h.tail_fraction_at_least(50), 0.5);
  EXPECT_DOUBLE_EQ(h.tail_fraction_at_least(100), 0.0);
}

TEST(ExponentialHistogram, MergeAccumulates) {
  ExponentialHistogram a, b;
  a.add(1);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.max_value(), 100u);
}

TEST(DenseHistogram, CountsAndGrowth) {
  DenseHistogram h;
  h.add(0);
  h.add(3);
  h.add(3);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.at(0), 1u);
  EXPECT_EQ(h.at(3), 2u);
  EXPECT_EQ(h.at(7), 0u);
  EXPECT_EQ(h.max_value(), 3u);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
}

}  // namespace
}  // namespace relax::util
