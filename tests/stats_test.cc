#include "util/stats.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <string>

#include "core/execution_stats.h"

namespace relax::util {
namespace {

TEST(OnlineStats, EmptyIsZeroCount) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-6);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 120; ++i) {
    b.add(i * 0.5);
    all.add(i * 0.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 3.0);
}

TEST(ExponentialHistogram, BucketsByPowerOfTwo) {
  ExponentialHistogram h;
  h.add(0);  // bucket 0: values {0}
  h.add(1);  // bucket 1: values {1, 2}
  h.add(2);
  h.add(3);  // bucket 2: values {3..6}
  h.add(6);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.max_value(), 6u);
  ASSERT_GE(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 2u);
}

TEST(ExponentialHistogram, TailFractionExactOnSmallSamples) {
  ExponentialHistogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_DOUBLE_EQ(h.tail_fraction_at_least(0), 1.0);
  EXPECT_DOUBLE_EQ(h.tail_fraction_at_least(50), 0.5);
  EXPECT_DOUBLE_EQ(h.tail_fraction_at_least(100), 0.0);
}

TEST(ExponentialHistogram, MergeAccumulates) {
  ExponentialHistogram a, b;
  a.add(1);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.max_value(), 100u);
}

TEST(DenseHistogram, CountsAndGrowth) {
  DenseHistogram h;
  h.add(0);
  h.add(3);
  h.add(3);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.at(0), 1u);
  EXPECT_EQ(h.at(3), 2u);
  EXPECT_EQ(h.at(7), 0u);
  EXPECT_EQ(h.max_value(), 3u);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
}

TEST(ExecutionStats, MergeAccumulatesCounters) {
  relax::core::ExecutionStats a, b;
  a.iterations = 10;
  a.processed = 6;
  a.failed_deletes = 2;
  b.iterations = 5;
  b.dead_skips = 3;
  b.empty_polls = 7;
  b.seconds = 1.5;
  a += b;
  EXPECT_EQ(a.iterations, 15u);
  EXPECT_EQ(a.processed, 6u);
  EXPECT_EQ(a.failed_deletes, 2u);
  EXPECT_EQ(a.dead_skips, 3u);
  EXPECT_EQ(a.empty_polls, 7u);
  EXPECT_DOUBLE_EQ(a.seconds, 1.5);
}

// Regression: the max must merge even from a stripe with rank_samples == 0
// (a stripe can carry a max observed elsewhere); it used to be dropped
// together with the sample-weighted mean.
TEST(ExecutionStats, MaxRankErrorMergesWithoutSamples) {
  relax::core::ExecutionStats a, b;
  a.rank_samples = 4;
  a.mean_rank_error = 2.0;
  a.max_rank_error = 8;
  b.rank_samples = 0;  // no mean contribution...
  b.max_rank_error = 99;  // ...but a larger max
  a += b;
  EXPECT_EQ(a.max_rank_error, 99u);
  EXPECT_EQ(a.rank_samples, 4u);
  EXPECT_DOUBLE_EQ(a.mean_rank_error, 2.0);
}

TEST(ExecutionStats, MergedWallOverridesSeconds) {
  relax::core::ExecutionStats s1, s2;
  s1.iterations = 3;
  s1.seconds = 0.4;  // busy time on worker 1
  s2.iterations = 5;
  s2.seconds = 0.6;  // busy time on worker 2
  const std::array<relax::core::ExecutionStats, 2> stripes{s1, s2};
  const auto total = relax::core::ExecutionStats::merged_wall(
      std::span<const relax::core::ExecutionStats>(stripes), 0.5);
  EXPECT_EQ(total.iterations, 8u);
  // Wall clock, not the 1.0s busy-time sum.
  EXPECT_DOUBLE_EQ(total.seconds, 0.5);
}

TEST(ExecutionStats, MergePropagatesSliceHistogramAndPerWorker) {
  relax::core::ExecutionStats a, b;
  a.slices = 2;
  a.slice_latency_ns.record(1000);
  a.slice_latency_ns.record(2000);
  b.slices = 1;
  b.slice_latency_ns.record(4000);
  b.per_worker.resize(2);
  b.per_worker[1].processed = 5;
  a += b;
  EXPECT_EQ(a.slices, 3u);
  EXPECT_EQ(a.slice_latency_ns.count(), 3u);
  EXPECT_EQ(a.slice_latency_ns.max(), 4000u);
  ASSERT_EQ(a.per_worker.size(), 2u);
  EXPECT_EQ(a.per_worker[1].processed, 5u);
}

// to_string must render every field that holds a nonzero value — a metric
// that exists but never prints is how telemetry rots.
TEST(ExecutionStats, ToStringMentionsEveryNonzeroField) {
  relax::core::ExecutionStats s;
  s.iterations = 1;
  s.processed = 2;
  s.failed_deletes = 3;
  s.dead_skips = 4;
  s.empty_polls = 5;
  s.seconds = 6.0;
  s.slices = 7;
  s.slice_latency_ns.record(8000);
  s.per_worker.resize(2);
  s.rank_samples = 9;
  s.mean_rank_error = 1.25;
  s.max_rank_error = 10;
  s.inversion_samples = 11;
  s.mean_inversions = 0.5;
  const std::string text = s.to_string();
  for (const char* field :
       {"iterations=", "processed=", "failed_deletes=", "dead_skips=",
        "empty_polls=", "seconds=", "slices=", "slice_p50_us=",
        "slice_p95_us=", "slice_p99_us=", "workers=", "mean_rank_error=",
        "max_rank_error=", "mean_inversions="}) {
    EXPECT_NE(text.find(field), std::string::npos)
        << "to_string() dropped '" << field << "': " << text;
  }
}

// A max_rank_error carried without samples still prints (same contract as
// the merge fix above).
TEST(ExecutionStats, ToStringShowsMaxRankWithoutSamples) {
  relax::core::ExecutionStats s;
  s.max_rank_error = 42;
  EXPECT_NE(s.to_string().find("max_rank_error=42"), std::string::npos);
}

}  // namespace
}  // namespace relax::util
