// The paper's central framework property, tested as a parameterized sweep:
// for every (problem, scheduler, relaxation k, graph family, seed), the
// relaxed execution's output is bit-identical to the sequential exact
// execution under the same permutation pi.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "algorithms/coloring.h"
#include "algorithms/matching.h"
#include "algorithms/mis.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/exact_heap.h"
#include "sched/kbounded.h"
#include "sched/sim_multiqueue.h"
#include "sched/sim_spraylist.h"
#include "sched/topk_uniform.h"

namespace relax {
namespace {

using graph::Graph;

struct SchedulerSpec {
  const char* name;
  // Builds a scheduler for `capacity` tasks with relaxation k.
  std::function<std::optional<core::ExecutionStats>(
      const Graph&, const graph::Priorities&, std::uint32_t k,
      std::uint64_t seed, const char* problem)>
      run_and_check;
};

/// Runs `problem` against scheduler S and returns stats; compares output to
/// the sequential baseline inside.
template <typename SchedFactory>
std::optional<core::ExecutionStats> run_problem(
    const Graph& g, const graph::Priorities& pri, const char* problem,
    SchedFactory make_sched) {
  if (std::string(problem) == "mis") {
    algorithms::MisProblem p(g, pri);
    auto sched = make_sched(g.num_vertices());
    const auto stats = core::run_sequential(p, pri, sched);
    if (p.result() != algorithms::sequential_greedy_mis(g, pri))
      return std::nullopt;
    return stats;
  }
  if (std::string(problem) == "coloring") {
    algorithms::ColoringProblem p(g, pri);
    auto sched = make_sched(g.num_vertices());
    const auto stats = core::run_sequential(p, pri, sched);
    if (p.colors() != algorithms::sequential_greedy_coloring(g, pri))
      return std::nullopt;
    return stats;
  }
  ADD_FAILURE() << "unknown problem " << problem;
  return std::nullopt;
}

struct Param {
  const char* scheduler;
  const char* problem;
  const char* family;
  std::uint32_t k;
  std::uint64_t seed;

  [[nodiscard]] std::string name() const {
    return std::string(scheduler) + "_" + problem + "_" + family + "_k" +
           std::to_string(k) + "_s" + std::to_string(seed);
  }
};

Graph make_family(const char* family, std::uint64_t seed) {
  const std::string f = family;
  if (f == "sparse") return graph::gnm(600, 1200, seed);
  if (f == "dense") return graph::gnm(300, 9000, seed);
  if (f == "clique") return graph::clique(64);
  if (f == "star") return graph::star(400);
  if (f == "grid") return graph::grid(20, 20);
  if (f == "powerlaw") return graph::barabasi_albert(500, 3, seed);
  ADD_FAILURE() << "unknown family " << family;
  return {};
}

class DeterminismSweep : public ::testing::TestWithParam<Param> {};

TEST_P(DeterminismSweep, RelaxedOutputEqualsExact) {
  const Param& param = GetParam();
  const Graph g = make_family(param.family, param.seed);
  const auto pri = graph::random_priorities(g.num_vertices(),
                                            param.seed ^ 0xabcdef);
  const std::string sched_name = param.scheduler;
  std::optional<core::ExecutionStats> stats;
  if (sched_name == "topk") {
    stats = run_problem(g, pri, param.problem, [&](std::uint32_t cap) {
      return sched::TopKUniformScheduler(cap, param.k, param.seed + 1);
    });
  } else if (sched_name == "multiqueue") {
    stats = run_problem(g, pri, param.problem, [&](std::uint32_t) {
      return sched::SimMultiQueue(param.k, param.seed + 1);
    });
  } else if (sched_name == "spray") {
    stats = run_problem(g, pri, param.problem, [&](std::uint32_t cap) {
      return sched::make_sim_spraylist(cap, param.k, param.seed + 1);
    });
  } else if (sched_name == "kbounded") {
    stats = run_problem(g, pri, param.problem, [&](std::uint32_t) {
      return sched::KBoundedScheduler(param.k);
    });
  }
  ASSERT_TRUE(stats.has_value())
      << "output mismatch for " << param.name();
  // Work accounting invariant: iterations = n + failed + dead.
  EXPECT_EQ(stats->iterations,
            stats->processed + stats->failed_deletes + stats->dead_skips);
}

std::vector<Param> make_params() {
  std::vector<Param> params;
  for (const char* sched : {"topk", "multiqueue", "spray", "kbounded"}) {
    for (const char* problem : {"mis", "coloring"}) {
      for (const char* family :
           {"sparse", "dense", "clique", "star", "grid", "powerlaw"}) {
        for (const std::uint32_t k : {2u, 16u}) {
          params.push_back(Param{sched, problem, family, k, 1});
        }
      }
    }
  }
  // Extra seed coverage on the main configuration.
  for (std::uint64_t seed = 2; seed <= 6; ++seed)
    params.push_back(Param{"multiqueue", "mis", "sparse", 8, seed});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeterminismSweep,
                         ::testing::ValuesIn(make_params()),
                         [](const auto& info) { return info.param.name(); });

}  // namespace
}  // namespace relax
