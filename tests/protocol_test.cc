// Wire-codec tests for src/server/protocol.h: byte-exact round trips,
// malformed-input rejection, and FrameReader stream reassembly — the
// properties docs/PROTOCOL.md promises.
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

namespace protocol = relax::server::protocol;

namespace {

std::span<const std::uint8_t> payload_of(
    const std::vector<std::uint8_t>& frame) {
  // Strip the 4-byte length prefix; the remainder is the payload.
  return {frame.data() + 4, frame.size() - 4};
}

protocol::Request sample_request(protocol::Kind kind) {
  protocol::Request req;
  req.id = 0x0123456789abcdefULL;
  req.kind = kind;
  req.graph_id = 7;
  req.pop_batch = 64;
  req.pop_batch_auto = true;
  req.audit = true;
  req.seed = 0xfeedface;
  req.backend = "multiqueue-c4";
  return req;
}

}  // namespace

TEST(Protocol, RequestRoundTripEveryKind) {
  for (const auto kind :
       {protocol::Kind::kMis, protocol::Kind::kColoring,
        protocol::Kind::kMatching}) {
    const protocol::Request req = sample_request(kind);
    std::vector<std::uint8_t> wire;
    protocol::encode(req, wire);

    const auto got = protocol::decode_request(payload_of(wire));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->id, req.id);
    EXPECT_EQ(got->kind, req.kind);
    EXPECT_EQ(got->graph_id, req.graph_id);
    EXPECT_EQ(got->pop_batch, req.pop_batch);
    EXPECT_EQ(got->pop_batch_auto, req.pop_batch_auto);
    EXPECT_EQ(got->audit, req.audit);
    EXPECT_EQ(got->seed, req.seed);
    EXPECT_EQ(got->backend, req.backend);
  }
}

TEST(Protocol, ResponseRoundTripEveryStatus) {
  for (const auto status :
       {protocol::Status::kOk, protocol::Status::kBusy,
        protocol::Status::kError}) {
    protocol::Response resp;
    resp.id = 42;
    resp.status = status;
    resp.error = protocol::ErrorCode::kBadBackend;
    resp.iterations = 1000;
    resp.processed = 999;
    resp.failed_deletes = 17;
    resp.latency_ns = 123456789;
    resp.rank_samples = 64;
    resp.max_rank_error = 9;
    resp.mean_rank_error = 1.5;
    resp.message = "details";
    std::vector<std::uint8_t> wire;
    protocol::encode(resp, wire);

    const auto got = protocol::decode_response(payload_of(wire));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->id, resp.id);
    EXPECT_EQ(got->status, resp.status);
    EXPECT_EQ(got->error, resp.error);
    EXPECT_EQ(got->iterations, resp.iterations);
    EXPECT_EQ(got->processed, resp.processed);
    EXPECT_EQ(got->failed_deletes, resp.failed_deletes);
    EXPECT_EQ(got->latency_ns, resp.latency_ns);
    EXPECT_EQ(got->rank_samples, resp.rank_samples);
    EXPECT_EQ(got->max_rank_error, resp.max_rank_error);
    EXPECT_DOUBLE_EQ(got->mean_rank_error, resp.mean_rank_error);
    EXPECT_EQ(got->message, resp.message);
  }
}

TEST(Protocol, DecodersRejectTruncatedPayloads) {
  std::vector<std::uint8_t> wire;
  protocol::encode(sample_request(protocol::Kind::kMis), wire);
  const auto payload = payload_of(wire);
  // Every prefix cut inside the MANDATORY fields must be rejected, never
  // mis-decoded. The trailing weight field is optional by design (additive
  // evolution — see OldFormatRequestDecodesWithWeightOne), so the rejection
  // sweep stops where the mandatory layout ends.
  ASSERT_GT(payload.size(), 4u);
  const std::size_t mandatory = payload.size() - 4;  // sans trailing weight
  for (std::size_t len = 0; len < mandatory; ++len)
    EXPECT_FALSE(protocol::decode_request(payload.subspan(0, len)))
        << "prefix of " << len << " bytes decoded";

  wire.clear();
  protocol::encode(protocol::Response{}, wire);
  const auto rpayload = payload_of(wire);
  for (std::size_t len = 0; len < rpayload.size(); ++len)
    EXPECT_FALSE(protocol::decode_response(rpayload.subspan(0, len)))
        << "prefix of " << len << " bytes decoded";
}

TEST(Protocol, DecodersRejectGarbageAndWrongHeader) {
  const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x01,
                                             0x02, 0x03, 0x04, 0x05, 0x06};
  EXPECT_FALSE(protocol::decode_request(garbage));
  EXPECT_FALSE(protocol::decode_response(garbage));

  std::vector<std::uint8_t> wire;
  protocol::encode(sample_request(protocol::Kind::kMis), wire);
  // Wrong version.
  auto bad = std::vector<std::uint8_t>(wire.begin() + 4, wire.end());
  bad[0] = protocol::kVersion + 1;
  EXPECT_FALSE(protocol::decode_request(bad));
  // A request payload is not a response and vice versa.
  EXPECT_FALSE(protocol::decode_response(payload_of(wire)));
  // Kind byte past the enum.
  bad = std::vector<std::uint8_t>(wire.begin() + 4, wire.end());
  bad[2] = 99;
  EXPECT_FALSE(protocol::decode_request(bad));
  // Declared backend length running past the payload end (offset 28 is
  // the backend_len byte, docs/PROTOCOL.md).
  bad = std::vector<std::uint8_t>(wire.begin() + 4, wire.end());
  bad[28] = 255;
  EXPECT_FALSE(protocol::decode_request(bad));
}

TEST(Protocol, RequestRoundTripPreservesWeight) {
  protocol::Request req = sample_request(protocol::Kind::kMis);
  req.weight = 7;
  std::vector<std::uint8_t> wire;
  protocol::encode(req, wire);
  const auto got = protocol::decode_request(payload_of(wire));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->weight, 7u);

  // Weight 0 ("use the server default") survives the trip too — it is a
  // PRESENT zero, distinct from the absent-field case below.
  req.weight = 0;
  wire.clear();
  protocol::encode(req, wire);
  const auto got0 = protocol::decode_request(payload_of(wire));
  ASSERT_TRUE(got0.has_value());
  EXPECT_EQ(got0->weight, 0u);
}

TEST(Protocol, OldFormatRequestDecodesWithWeightOne) {
  // A pre-weight client's payload ends right after the backend string.
  // It must decode, and with weight 1 (the historical equal share) — not
  // 0, which would opt the old client into the server's default-weight
  // override it never asked for.
  std::vector<std::uint8_t> wire;
  protocol::encode(sample_request(protocol::Kind::kMis), wire);
  const auto payload = payload_of(wire);
  const auto old_format = payload.subspan(0, payload.size() - 4);
  const auto got = protocol::decode_request(old_format);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->weight, 1u);
  EXPECT_EQ(got->backend, "multiqueue-c4");
  EXPECT_EQ(got->id, sample_request(protocol::Kind::kMis).id);

  // A partially-present weight field (1–3 trailing bytes) also decodes
  // as absent: the optional tail is all-or-nothing by byte count.
  for (std::size_t cut = 1; cut < 4; ++cut) {
    const auto partial = payload.subspan(0, payload.size() - cut);
    const auto p = protocol::decode_request(partial);
    ASSERT_TRUE(p.has_value()) << "cut " << cut;
    EXPECT_EQ(p->weight, 1u) << "cut " << cut;
  }
}

TEST(Protocol, DecodersIgnoreTrailingBytes) {
  // Additive evolution: a same-version payload with appended fields still
  // decodes on an old reader — including fields appended AFTER the weight,
  // which must itself still be read from its own position.
  protocol::Request req = sample_request(protocol::Kind::kColoring);
  req.weight = 3;
  std::vector<std::uint8_t> wire;
  protocol::encode(req, wire);
  std::vector<std::uint8_t> extended(wire.begin() + 4, wire.end());
  extended.insert(extended.end(), {1, 2, 3, 4, 5, 6, 7, 8});
  const auto got = protocol::decode_request(extended);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, protocol::Kind::kColoring);
  EXPECT_EQ(got->backend, "multiqueue-c4");
  EXPECT_EQ(got->weight, 3u);
}

TEST(Protocol, FrameReaderReassemblesByteByByte) {
  // Three frames, fed one byte at a time — the worst TCP segmentation.
  std::vector<std::uint8_t> wire;
  protocol::encode(sample_request(protocol::Kind::kMis), wire);
  protocol::encode(sample_request(protocol::Kind::kColoring), wire);
  protocol::encode(sample_request(protocol::Kind::kMatching), wire);

  protocol::FrameReader reader;
  std::vector<protocol::Kind> kinds;
  for (const std::uint8_t b : wire) {
    reader.feed(std::span<const std::uint8_t>(&b, 1));
    while (auto payload = reader.next()) {
      const auto req =
          protocol::decode_request(std::span<const std::uint8_t>(*payload));
      ASSERT_TRUE(req.has_value());
      kinds.push_back(req->kind);
    }
  }
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], protocol::Kind::kMis);
  EXPECT_EQ(kinds[1], protocol::Kind::kColoring);
  EXPECT_EQ(kinds[2], protocol::Kind::kMatching);
  EXPECT_FALSE(reader.corrupt());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Protocol, FrameReaderLatchesOnOversizedPrefix) {
  protocol::FrameReader reader;
  // Length prefix claiming kMaxFrameBytes + 1.
  const std::uint32_t len = protocol::kMaxFrameBytes + 1;
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len >> 16),
      static_cast<std::uint8_t>(len >> 24)};
  reader.feed(prefix);
  EXPECT_TRUE(reader.corrupt());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
  // Sticky: later well-formed bytes change nothing.
  std::vector<std::uint8_t> wire;
  protocol::encode(sample_request(protocol::Kind::kMis), wire);
  reader.feed(wire);
  EXPECT_TRUE(reader.corrupt());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Protocol, FrameReaderLatchesOnZeroLength) {
  protocol::FrameReader reader;
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  reader.feed(zeros);
  EXPECT_TRUE(reader.corrupt());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Protocol, FrameReaderHandlesBatchedAndPartialMix) {
  // One call carrying 1.5 frames, then the remaining half.
  std::vector<std::uint8_t> a, b;
  protocol::encode(sample_request(protocol::Kind::kMis), a);
  protocol::encode(sample_request(protocol::Kind::kMatching), b);
  std::vector<std::uint8_t> first(a);
  first.insert(first.end(), b.begin(), b.begin() + 5);

  protocol::FrameReader reader;
  reader.feed(first);
  auto p1 = reader.next();
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(protocol::decode_request(std::span<const std::uint8_t>(*p1))
                ->kind,
            protocol::Kind::kMis);
  EXPECT_FALSE(reader.next().has_value());

  reader.feed(std::span<const std::uint8_t>(b.data() + 5, b.size() - 5));
  auto p2 = reader.next();
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(protocol::decode_request(std::span<const std::uint8_t>(*p2))
                ->kind,
            protocol::Kind::kMatching);
  EXPECT_EQ(reader.buffered(), 0u);
}
