#include "algorithms/knuth_shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/sequential_executor.h"
#include "sched/exact_heap.h"
#include "sched/kbounded.h"
#include "sched/sim_multiqueue.h"
#include "sched/topk_uniform.h"

namespace relax::algorithms {
namespace {

TEST(ShuffleTargets, InRangeAndDeterministic) {
  const auto t1 = shuffle_targets(100, 5);
  const auto t2 = shuffle_targets(100, 5);
  EXPECT_EQ(t1, t2);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_LE(t1[i], i);
  EXPECT_EQ(t1[0], 0u);
}

TEST(SequentialShuffle, ProducesPermutation) {
  const auto targets = shuffle_targets(200, 7);
  auto a = sequential_knuth_shuffle(targets);
  std::sort(a.begin(), a.end());
  for (std::uint32_t i = 0; i < 200; ++i) EXPECT_EQ(a[i], i);
}

TEST(SequentialShuffle, LabelOrderProducesPermutation) {
  const auto targets = shuffle_targets(200, 7);
  const auto pri = graph::random_priorities(200, 9);
  auto a = sequential_knuth_shuffle(targets, pri);
  std::sort(a.begin(), a.end());
  for (std::uint32_t i = 0; i < 200; ++i) EXPECT_EQ(a[i], i);
}

TEST(SequentialShuffle, IdentityPrioritiesMatchTextbookPass) {
  const auto targets = shuffle_targets(300, 11);
  const auto pri = graph::identity_priorities(300);
  EXPECT_EQ(sequential_knuth_shuffle(targets, pri),
            sequential_knuth_shuffle(targets));
}

TEST(SequentialShuffle, UniformOverSmallDomain) {
  // n = 4 has 24 permutations; with random targets each should appear
  // with roughly equal frequency (Fisher-Yates correctness).
  std::map<std::vector<std::uint32_t>, int> counts;
  constexpr int kTrials = 24000;
  for (int s = 0; s < kTrials; ++s)
    ++counts[sequential_knuth_shuffle(shuffle_targets(4, s))];
  EXPECT_EQ(counts.size(), 24u);
  for (const auto& [perm, count] : counts) {
    EXPECT_GT(count, kTrials / 24 * 0.8);
    EXPECT_LT(count, kTrials / 24 * 1.2);
  }
}

TEST(SequentialShuffle, LabelOrderUniformOverSmallDomain) {
  // Applying the swaps in random label order must still produce uniformly
  // random permutations: each pass is a composition of transpositions that
  // is a bijection of seeds to outputs on this domain.
  std::map<std::vector<std::uint32_t>, int> counts;
  constexpr int kTrials = 24000;
  for (int s = 0; s < kTrials; ++s) {
    const auto targets = shuffle_targets(4, s);
    const auto pri = graph::random_priorities(4, s + 777);
    ++counts[sequential_knuth_shuffle(targets, pri)];
  }
  EXPECT_EQ(counts.size(), 24u);
}

TEST(PositionIndex, ListsLabelSortedAndComplete) {
  const auto targets = shuffle_targets(50, 9);
  const auto pri = graph::random_priorities(50, 15);
  const PositionIndex index(targets, pri);
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < 50; ++p) {
    const auto tasks = index.tasks_at(p);
    EXPECT_TRUE(std::is_sorted(tasks.begin(), tasks.end(),
                               [&](std::uint32_t a, std::uint32_t b) {
                                 return pri.labels[a] < pri.labels[b];
                               }));
    total += tasks.size();
    for (const auto t : tasks)
      EXPECT_TRUE(t == p || targets[t] == p);
  }
  // Each task appears once per distinct touched position.
  std::uint64_t expected = 0;
  for (std::uint32_t i = 0; i < 50; ++i)
    expected += targets[i] == i ? 1 : 2;
  EXPECT_EQ(total, expected);
}

TEST(KnuthShuffleProblem, ExactMatchesLabelOrderBaseline) {
  const auto targets = shuffle_targets(500, 11);
  const auto pri = graph::random_priorities(500, 13);
  const PositionIndex index(targets, pri);
  KnuthShuffleProblem problem(targets, index);
  sched::ExactHeapScheduler sched;
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.array(), sequential_knuth_shuffle(targets, pri));
  // Exact execution never blocks: the min-labelled task is always ready.
  EXPECT_EQ(stats.failed_deletes, 0u);
  EXPECT_EQ(stats.iterations, 500u);
}

TEST(KnuthShuffleProblem, IdentityPrioritiesRecoverTextbookShuffle) {
  const auto targets = shuffle_targets(400, 3);
  const auto pri = graph::identity_priorities(400);
  const PositionIndex index(targets, pri);
  KnuthShuffleProblem problem(targets, index);
  sched::SimMultiQueue sched(8, 5);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.array(), sequential_knuth_shuffle(targets));
}

TEST(KnuthShuffleProblem, RelaxedIsDeterministic) {
  const auto targets = shuffle_targets(400, 17);
  const auto pri = graph::random_priorities(400, 19);
  const PositionIndex index(targets, pri);
  const auto expected = sequential_knuth_shuffle(targets, pri);
  for (const std::uint32_t k : {4u, 64u}) {
    KnuthShuffleProblem problem(targets, index);
    sched::TopKUniformScheduler sched(400, k, 23);
    core::run_sequential(problem, pri, sched);
    EXPECT_EQ(problem.array(), expected) << "k=" << k;
  }
}

TEST(KnuthShuffleProblem, OutputInvariantAcrossSchedulers) {
  // Whatever scheduler (and scheduler seed) drives the schedule, the output
  // is the label-order shuffle under pi — the framework's determinism.
  const auto targets = shuffle_targets(300, 29);
  const auto pri = graph::random_priorities(300, 31);
  const PositionIndex index(targets, pri);
  const auto expected = sequential_knuth_shuffle(targets, pri);
  for (std::uint64_t sched_seed = 0; sched_seed < 5; ++sched_seed) {
    KnuthShuffleProblem problem(targets, index);
    sched::SimMultiQueue sched(8, sched_seed);
    core::run_sequential(problem, pri, sched);
    EXPECT_EQ(problem.array(), expected) << "sched_seed=" << sched_seed;
  }
}

TEST(KnuthShuffleProblem, KBoundedSchedulerTerminatesAndMatches) {
  const auto targets = shuffle_targets(300, 43);
  const auto pri = graph::random_priorities(300, 47);
  const PositionIndex index(targets, pri);
  KnuthShuffleProblem problem(targets, index);
  sched::KBoundedScheduler sched(16);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.array(), sequential_knuth_shuffle(targets, pri));
}

TEST(AtomicKnuthShuffleProblem, SequentialUseMatchesBaseline) {
  const auto targets = shuffle_targets(300, 37);
  const auto pri = graph::random_priorities(300, 41);
  const PositionIndex index(targets, pri);
  AtomicKnuthShuffleProblem problem(targets, index);
  sched::TopKUniformScheduler sched(300, 16, 43);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.array(), sequential_knuth_shuffle(targets, pri));
}

TEST(KnuthShuffleProblem, SelfSwapOnlyTask) {
  const std::vector<std::uint32_t> targets{0};
  const auto pri = graph::identity_priorities(1);
  const PositionIndex index(targets, pri);
  KnuthShuffleProblem problem(targets, index);
  sched::ExactHeapScheduler sched;
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.array(), (std::vector<std::uint32_t>{0}));
}

}  // namespace
}  // namespace relax::algorithms
