#include "sched/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace relax::sched {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.try_enqueue(i));
  for (int i = 0; i < 10; ++i) {
    const auto v = q.try_dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
}

TEST(MpmcQueue, FullRejectsEnqueue) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_enqueue(99));
  EXPECT_EQ(q.try_dequeue(), 0);
  EXPECT_TRUE(q.try_enqueue(99));
}

TEST(MpmcQueue, WrapAround) {
  MpmcQueue<int> q(8);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_enqueue(round * 5 + i));
    for (int i = 0; i < 5; ++i)
      ASSERT_EQ(q.try_dequeue(), round * 5 + i);
  }
}

TEST(MpmcQueue, SizeApprox) {
  MpmcQueue<int> q(16);
  EXPECT_EQ(q.size_approx(), 0u);
  q.try_enqueue(1);
  q.try_enqueue(2);
  EXPECT_EQ(q.size_approx(), 2u);
  q.try_dequeue();
  EXPECT_EQ(q.size_approx(), 1u);
}

TEST(MpmcQueue, ConcurrentExactlyOnceDelivery) {
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kTotal = kPerProducer * kProducers;
  MpmcQueue<int> q(kTotal);
  std::vector<std::atomic<int>> delivered(kTotal);
  for (auto& d : delivered) d.store(0);
  std::atomic<int> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          while (!q.try_enqueue(p * kPerProducer + i)) {
          }
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (consumed.load() < kTotal) {
          const auto v = q.try_dequeue();
          if (!v) continue;
          delivered[*v].fetch_add(1);
          consumed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kTotal);
  for (int i = 0; i < kTotal; ++i)
    ASSERT_EQ(delivered[i].load(), 1) << "element " << i;
}

TEST(MpmcQueue, SingleProducerFifoUnderConcurrentConsumer) {
  // With one producer and one consumer the dequeue order must equal the
  // enqueue order exactly.
  constexpr int kN = 50000;
  MpmcQueue<int> q(1024);
  std::vector<int> out;
  out.reserve(kN);
  {
    std::jthread producer([&] {
      for (int i = 0; i < kN; ++i) {
        while (!q.try_enqueue(i)) {
        }
      }
    });
    std::jthread consumer([&] {
      while (static_cast<int>(out.size()) < kN) {
        if (const auto v = q.try_dequeue()) out.push_back(*v);
      }
    });
  }
  for (int i = 0; i < kN; ++i) ASSERT_EQ(out[i], i);
}

TEST(MpmcQueue, PriorityOrderDeliveryForExactScheduling) {
  // The exact-executor usage: preload 0..n-1 in order, concurrent dequeues
  // each get a unique element and the set of delivered elements is exactly
  // 0..n-1.
  constexpr std::uint32_t kN = 10000;
  MpmcQueue<std::uint32_t> q(kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_TRUE(q.try_enqueue(i));
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        while (const auto v = q.try_dequeue()) got[*v].fetch_add(1);
      });
    }
  }
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
}

}  // namespace
}  // namespace relax::sched
