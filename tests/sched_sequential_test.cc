// Conformance tests every sequential scheduler must pass: no element is
// lost or duplicated, empty semantics, interleaved insert/pop, plus the
// scheduler-specific guarantees (exactness for the heap, deterministic rank
// bound for top-k and k-bounded).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "sched/exact_heap.h"
#include "sched/concurrent_multiqueue.h"
#include "sched/kbounded.h"
#include "sched/lockfree_multiqueue.h"
#include "sched/scheduler.h"
#include "sched/sim_multiqueue.h"
#include "sched/sim_spraylist.h"
#include "sched/topk_uniform.h"
#include "util/rng.h"

namespace relax::sched {
namespace {

/// Type-erased scheduler wrapper so one parameterized suite covers all
/// implementations.
struct AnyScheduler {
  std::function<void(Priority)> insert;
  std::function<std::optional<Priority>()> pop;
  std::function<std::size_t()> size;
  std::function<bool()> empty;
};

using Factory =
    std::function<AnyScheduler(std::uint32_t capacity, std::uint64_t seed)>;

template <typename S>
AnyScheduler wrap(std::shared_ptr<S> s) {
  return AnyScheduler{
      [s](Priority p) { s->insert(p); },
      [s] { return s->approx_get_min(); },
      [s] { return s->size(); },
      [s] { return s->empty(); },
  };
}

struct NamedFactory {
  const char* name;
  Factory make;
};

const NamedFactory kFactories[] = {
    {"ExactHeap",
     [](std::uint32_t, std::uint64_t seed) {
       return wrap(std::make_shared<ExactHeapScheduler>(seed));
     }},
    {"TopK8",
     [](std::uint32_t cap, std::uint64_t seed) {
       return wrap(std::make_shared<TopKUniformScheduler>(cap, 8, seed));
     }},
    {"SimMultiQueue8",
     [](std::uint32_t, std::uint64_t seed) {
       return wrap(std::make_shared<SimMultiQueue>(8, seed));
     }},
    {"SimSprayList",
     [](std::uint32_t cap, std::uint64_t seed) {
       return wrap(
           std::make_shared<SimSprayList>(make_sim_spraylist(cap, 8, seed)));
     }},
    {"KBounded8",
     [](std::uint32_t, std::uint64_t seed) {
       return wrap(std::make_shared<KBoundedScheduler>(8, seed));
     }},
    {"LockFreeMultiQueue8",
     [](std::uint32_t, std::uint64_t seed) {
       return wrap(std::make_shared<LockFreeMultiQueue>(8, seed));
     }},
    {"ConcurrentMultiQueue8",
     [](std::uint32_t, std::uint64_t seed) {
       return wrap(std::make_shared<ConcurrentMultiQueue>(8, seed));
     }},
};

class SchedulerConformance
    : public ::testing::TestWithParam<NamedFactory> {};

TEST_P(SchedulerConformance, DrainsExactlyOnce) {
  constexpr std::uint32_t kN = 2000;
  auto s = GetParam().make(kN, 1);
  for (Priority p = 0; p < kN; ++p) s.insert(p);
  EXPECT_EQ(s.size(), kN);
  std::vector<char> seen(kN, 0);
  std::uint32_t count = 0;
  while (auto p = s.pop()) {
    ASSERT_LT(*p, kN);
    ASSERT_FALSE(seen[*p]) << "duplicate delivery of " << *p;
    seen[*p] = 1;
    ++count;
  }
  EXPECT_EQ(count, kN);
  EXPECT_TRUE(s.empty());
}

TEST_P(SchedulerConformance, EmptyPopsReturnNullopt) {
  auto s = GetParam().make(16, 2);
  EXPECT_FALSE(s.pop().has_value());
  s.insert(3);
  EXPECT_TRUE(s.pop().has_value());
  EXPECT_FALSE(s.pop().has_value());
}

TEST_P(SchedulerConformance, InterleavedInsertPop) {
  constexpr std::uint32_t kN = 4096;
  auto s = GetParam().make(kN, 3);
  util::Rng rng(7);
  std::set<Priority> pending;
  Priority next = 0;
  std::uint32_t delivered = 0;
  while (delivered < kN) {
    const bool can_insert = next < kN;
    if (can_insert && (pending.empty() || util::bounded(rng, 2) == 0)) {
      s.insert(next);
      pending.insert(next);
      ++next;
    } else {
      const auto p = s.pop();
      ASSERT_TRUE(p.has_value());
      ASSERT_TRUE(pending.count(*p)) << "delivered unknown element";
      pending.erase(*p);
      ++delivered;
    }
    ASSERT_EQ(s.size(), pending.size());
  }
  EXPECT_TRUE(s.empty());
}

TEST_P(SchedulerConformance, ReinsertionRedelivers) {
  auto s = GetParam().make(64, 4);
  for (Priority p = 0; p < 32; ++p) s.insert(p);
  // Pop half, re-insert them, and verify the full set drains.
  std::vector<Priority> popped;
  for (int i = 0; i < 16; ++i) {
    const auto p = s.pop();
    ASSERT_TRUE(p.has_value());
    popped.push_back(*p);
  }
  for (const Priority p : popped) s.insert(p);
  std::uint32_t count = 0;
  while (s.pop()) ++count;
  EXPECT_EQ(count, 32u);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerConformance,
                         ::testing::ValuesIn(kFactories),
                         [](const auto& info) { return info.param.name; });

TEST(ExactHeap, StrictPriorityOrder) {
  ExactHeapScheduler s;
  util::Rng rng(1);
  auto labels = util::random_permutation(500, rng);
  for (const auto l : labels) s.insert(l);
  for (Priority expect = 0; expect < 500; ++expect) {
    const auto p = s.approx_get_min();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, expect);
  }
}

TEST(TopKUniform, NeverExceedsRankK) {
  constexpr std::uint32_t kN = 256, kK = 16;
  TopKUniformScheduler s(kN, kK, 5);
  OrderStatSet mirror(kN);
  for (Priority p = 0; p < kN; ++p) {
    s.insert(p);
    mirror.insert(p);
  }
  while (auto p = s.approx_get_min()) {
    EXPECT_LT(mirror.rank_of(*p), kK);
    mirror.erase(*p);
  }
}

TEST(TopKUniform, KOneIsExact) {
  TopKUniformScheduler s(100, 1, 9);
  for (Priority p = 0; p < 100; ++p) s.insert(p);
  for (Priority expect = 0; expect < 100; ++expect)
    EXPECT_EQ(s.approx_get_min(), expect);
}

TEST(KBounded, NeverExceedsRankK) {
  constexpr std::uint32_t kN = 256, kK = 8;
  KBoundedScheduler s(kK);
  OrderStatSet mirror(kN);
  util::Rng rng(11);
  const auto perm = util::random_permutation(kN, rng);
  for (const auto p : perm) {
    s.insert(p);
    mirror.insert(p);
  }
  while (auto p = s.approx_get_min()) {
    EXPECT_LT(mirror.rank_of(*p), kK);
    mirror.erase(*p);
  }
}

TEST(KBounded, RankBoundSurvivesInterleavedInserts) {
  constexpr std::uint32_t kN = 512, kK = 4;
  KBoundedScheduler s(kK);
  OrderStatSet mirror(kN);
  util::Rng rng(13);
  const auto perm = util::random_permutation(kN, rng);
  std::size_t inserted = 0;
  while (inserted < kN || !s.empty()) {
    if (inserted < kN && (s.empty() || util::bounded(rng, 2) == 0)) {
      s.insert(perm[inserted]);
      mirror.insert(perm[inserted]);
      ++inserted;
    } else {
      const auto p = s.approx_get_min();
      ASSERT_TRUE(p.has_value());
      ASSERT_LT(mirror.rank_of(*p), kK);
      mirror.erase(*p);
    }
  }
}

TEST(SimMultiQueue, SingleQueueIsExact) {
  SimMultiQueue s(1, 3);
  util::Rng rng(1);
  for (const auto p : util::random_permutation(200, rng)) s.insert(p);
  for (Priority expect = 0; expect < 200; ++expect)
    EXPECT_EQ(s.approx_get_min(), expect);
}

TEST(SimSprayList, ReachIsHeightTimesWidth) {
  SimSprayList s(100, 3, 5, 1);
  EXPECT_EQ(s.reach(), 16u);
}

}  // namespace
}  // namespace relax::sched
