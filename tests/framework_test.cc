// Framework-level behaviour of run_sequential beyond what the per-problem
// suites cover: outcome accounting, re-insertion semantics, retirement,
// and Algorithm 1 vs Algorithm 2 equivalences on synthetic problems whose
// behaviour is scripted exactly.
#include <gtest/gtest.h>

#include <vector>

#include "core/execution_stats.h"
#include "core/sequential_executor.h"
#include "graph/permutation.h"
#include "sched/exact_heap.h"
#include "sched/kbounded.h"
#include "sched/topk_uniform.h"

namespace relax::core {
namespace {

/// Scripted problem: task i requires task i-1 processed first (a chain),
/// so any out-of-order delivery produces a failed delete.
class ChainProblem {
 public:
  explicit ChainProblem(std::uint32_t n) : processed_(n, 0) {}

  [[nodiscard]] std::uint32_t num_tasks() const {
    return static_cast<std::uint32_t>(processed_.size());
  }

  Outcome try_process(Task t) {
    if (t > 0 && !processed_[t - 1]) return Outcome::kNotReady;
    processed_[t] = 1;
    order_.push_back(t);
    return Outcome::kProcessed;
  }

  [[nodiscard]] const std::vector<Task>& processing_order() const {
    return order_;
  }

 private:
  std::vector<std::uint8_t> processed_;
  std::vector<Task> order_;
};

/// Scripted problem: even tasks retire (never process), odd tasks process.
class RetireEvensProblem {
 public:
  explicit RetireEvensProblem(std::uint32_t n) : n_(n) {}
  [[nodiscard]] std::uint32_t num_tasks() const { return n_; }
  Outcome try_process(Task t) {
    return t % 2 == 0 ? Outcome::kRetired : Outcome::kProcessed;
  }

 private:
  std::uint32_t n_;
};

TEST(RunSequential, ChainWithExactSchedulerNeverWastes) {
  // Identity pi: the chain is delivered in dependency order.
  ChainProblem problem(100);
  const auto pri = graph::identity_priorities(100);
  sched::ExactHeapScheduler sched;
  const auto stats = run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.failed_deletes, 0u);
  EXPECT_EQ(stats.iterations, 100u);
  EXPECT_EQ(stats.processed, 100u);
  for (Task t = 0; t < 100; ++t)
    EXPECT_EQ(problem.processing_order()[t], t);
}

TEST(RunSequential, ChainWithRelaxedSchedulerStillCompletesInOrder) {
  // pi = identity, but the scheduler may deliver out of order; failed
  // deletes occur yet the processing order must remain the chain order.
  ChainProblem problem(200);
  const auto pri = graph::identity_priorities(200);
  sched::TopKUniformScheduler sched(200, 16, 7);
  const auto stats = run_sequential(problem, pri, sched);
  EXPECT_GT(stats.failed_deletes, 0u);  // k=16 must overshoot sometimes
  EXPECT_EQ(stats.processed, 200u);
  for (Task t = 0; t < 200; ++t)
    EXPECT_EQ(problem.processing_order()[t], t);
}

/// Scripted problem obeying the framework contract for any pi: a task is
/// ready iff the task holding the previous *label* is processed, so
/// processing must follow ascending label order exactly.
class LabelChainProblem {
 public:
  explicit LabelChainProblem(const graph::Priorities& pri)
      : pri_(&pri), processed_(pri.size(), 0) {}

  [[nodiscard]] std::uint32_t num_tasks() const { return pri_->size(); }

  Outcome try_process(Task t) {
    const std::uint32_t label = pri_->labels[t];
    if (label > 0 && !processed_[pri_->order[label - 1]])
      return Outcome::kNotReady;
    processed_[t] = 1;
    order_.push_back(t);
    return Outcome::kProcessed;
  }

  [[nodiscard]] const std::vector<Task>& processing_order() const {
    return order_;
  }

 private:
  const graph::Priorities* pri_;
  std::vector<std::uint8_t> processed_;
  std::vector<Task> order_;
};

TEST(RunSequential, LabelChainAgainstReversedPi) {
  // pi reverses task ids; the label chain forces processing order
  // kN-1..0 (ascending labels). The KBounded scheduler's adversarial
  // serve-the-window-back behaviour blocks on every pop except its
  // periodic fairness valve, so the executor grinds through a failed
  // delete per wasted pop and must still converge.
  constexpr std::uint32_t kN = 64;
  std::vector<std::uint32_t> order(kN);
  for (std::uint32_t i = 0; i < kN; ++i) order[i] = kN - 1 - i;
  const auto pri = graph::priorities_from_order(order);
  LabelChainProblem problem(pri);
  sched::KBoundedScheduler sched(4);
  const auto stats = run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.processed, kN);
  EXPECT_GT(stats.failed_deletes, 0u);
  for (std::uint32_t i = 0; i < kN; ++i)
    EXPECT_EQ(problem.processing_order()[i], kN - 1 - i);
  // Work accounting still holds under heavy waste.
  EXPECT_EQ(stats.iterations, stats.processed + stats.failed_deletes);
}

TEST(RunSequential, ChainAgainstReversedPiIsAntiFramework) {
  // The id-ordered chain with reversed pi *violates* the framework
  // precondition (dependencies must be oriented by label): the minimum-
  // labelled task is the chain's last, so no rank-bounded scheduler can
  // complete it. With a full-universe relaxation (k = n) the TopK scheduler
  // can reach the ready task and the run still converges — documenting the
  // boundary of the contract.
  constexpr std::uint32_t kN = 32;
  std::vector<std::uint32_t> order(kN);
  for (std::uint32_t i = 0; i < kN; ++i) order[i] = kN - 1 - i;
  const auto pri = graph::priorities_from_order(order);
  ChainProblem problem(kN);
  sched::TopKUniformScheduler sched(kN, kN, 5);
  const auto stats = run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.processed, kN);
  for (Task t = 0; t < kN; ++t)
    EXPECT_EQ(problem.processing_order()[t], t);
}

TEST(RunSequential, RetiredTasksAreNotReinserted) {
  RetireEvensProblem problem(100);
  const auto pri = graph::identity_priorities(100);
  sched::TopKUniformScheduler sched(100, 8, 3);
  const auto stats = run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.dead_skips, 50u);
  EXPECT_EQ(stats.processed, 50u);
  EXPECT_EQ(stats.iterations, 100u);  // nothing ever re-inserted
}

TEST(RunSequential, ZeroTasks) {
  ChainProblem problem(0);
  const auto pri = graph::identity_priorities(0);
  sched::ExactHeapScheduler sched;
  const auto stats = run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_EQ(stats.processed, 0u);
}

TEST(ExecutionStats, MergeAddsCounters) {
  ExecutionStats a, b;
  a.iterations = 10;
  a.failed_deletes = 2;
  b.iterations = 5;
  b.dead_skips = 3;
  a += b;
  EXPECT_EQ(a.iterations, 15u);
  EXPECT_EQ(a.failed_deletes, 2u);
  EXPECT_EQ(a.dead_skips, 3u);
}

TEST(ExecutionStats, ToStringContainsFields) {
  ExecutionStats s;
  s.iterations = 42;
  const auto str = s.to_string();
  EXPECT_NE(str.find("iterations=42"), std::string::npos);
  EXPECT_NE(str.find("failed_deletes=0"), std::string::npos);
}

}  // namespace
}  // namespace relax::core
