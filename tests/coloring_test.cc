#include "algorithms/coloring.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/exact_heap.h"
#include "sched/sim_multiqueue.h"
#include "sched/topk_uniform.h"

namespace relax::algorithms {
namespace {

using graph::Graph;

TEST(SequentialColoring, PathUsesTwoColors) {
  const Graph g = graph::path(10);
  const auto pri = graph::identity_priorities(10);
  const auto colors = sequential_greedy_coloring(g, pri);
  EXPECT_TRUE(verify_coloring(g, colors));
  EXPECT_EQ(*std::max_element(colors.begin(), colors.end()), 1u);
}

TEST(SequentialColoring, CliqueUsesNColors) {
  const Graph g = graph::clique(7);
  const auto pri = graph::random_priorities(7, 3);
  const auto colors = sequential_greedy_coloring(g, pri);
  EXPECT_TRUE(verify_coloring(g, colors));
  EXPECT_EQ(*std::max_element(colors.begin(), colors.end()), 6u);
}

TEST(SequentialColoring, CompleteBipartiteUsesTwoColors) {
  const Graph g = graph::complete_bipartite(5, 7);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto pri = graph::random_priorities(12, seed);
    const auto colors = sequential_greedy_coloring(g, pri);
    EXPECT_TRUE(verify_coloring(g, colors));
    EXPECT_LE(*std::max_element(colors.begin(), colors.end()), 1u);
  }
}

TEST(SequentialColoring, AtMostMaxDegreePlusOne) {
  const Graph g = graph::gnm(300, 2000, 7);
  const auto pri = graph::random_priorities(300, 11);
  const auto colors = sequential_greedy_coloring(g, pri);
  EXPECT_TRUE(verify_coloring(g, colors));
  EXPECT_LE(*std::max_element(colors.begin(), colors.end()),
            g.max_degree());
}

TEST(VerifyColoring, RejectsMonochromaticEdge) {
  const Graph g = graph::path(3);
  EXPECT_FALSE(verify_coloring(g, std::vector<std::uint32_t>{0, 0, 1}));
}

TEST(VerifyColoring, RejectsUncolored) {
  const Graph g = graph::path(2);
  EXPECT_FALSE(verify_coloring(
      g, std::vector<std::uint32_t>{0, ColoringProblem::kUncolored}));
}

TEST(ColoringProblem, ExactMatchesBaseline) {
  const Graph g = graph::gnm(500, 3000, 13);
  const auto pri = graph::random_priorities(500, 17);
  ColoringProblem problem(g, pri);
  sched::ExactHeapScheduler sched;
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.failed_deletes, 0u);
  EXPECT_EQ(problem.colors(), sequential_greedy_coloring(g, pri));
}

TEST(ColoringProblem, RelaxedIsDeterministic) {
  const Graph g = graph::gnm(400, 4000, 19);
  const auto pri = graph::random_priorities(400, 23);
  const auto expected = sequential_greedy_coloring(g, pri);
  for (const std::uint32_t k : {4u, 32u}) {
    ColoringProblem problem(g, pri);
    sched::TopKUniformScheduler sched(400, k, 29);
    core::run_sequential(problem, pri, sched);
    EXPECT_EQ(problem.colors(), expected) << "k=" << k;
  }
}

TEST(ColoringProblem, NeverRetires) {
  const Graph g = graph::gnm(300, 1500, 31);
  const auto pri = graph::random_priorities(300, 37);
  ColoringProblem problem(g, pri);
  sched::SimMultiQueue sched(8, 41);
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.dead_skips, 0u);
  EXPECT_EQ(stats.processed, 300u);
}

TEST(AtomicColoringProblem, SequentialUseMatchesBaseline) {
  const Graph g = graph::gnm(300, 2500, 43);
  const auto pri = graph::random_priorities(300, 47);
  AtomicColoringProblem problem(g, pri);
  sched::SimMultiQueue sched(8, 53);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.colors(), sequential_greedy_coloring(g, pri));
}

}  // namespace
}  // namespace relax::algorithms
