#include "sched/dary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "util/rng.h"

namespace relax::sched {
namespace {

TEST(DaryHeap, PopsInSortedOrder) {
  DaryHeap<int> h;
  for (const int x : {5, 1, 9, 3, 7, 2, 8}) h.push(x);
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 7u);
}

TEST(DaryHeap, TopIsMin) {
  DaryHeap<int> h;
  h.push(4);
  EXPECT_EQ(h.top(), 4);
  h.push(2);
  EXPECT_EQ(h.top(), 2);
  h.push(3);
  EXPECT_EQ(h.top(), 2);
  h.pop();
  EXPECT_EQ(h.top(), 3);
}

TEST(DaryHeap, DuplicatesPreserved) {
  DaryHeap<int> h;
  for (int i = 0; i < 5; ++i) h.push(7);
  EXPECT_EQ(h.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(h.pop(), 7);
}

TEST(DaryHeap, CustomComparatorMaxHeap) {
  DaryHeap<int, 4, std::greater<>> h;
  for (const int x : {3, 1, 4, 1, 5}) h.push(x);
  EXPECT_EQ(h.pop(), 5);
  EXPECT_EQ(h.pop(), 4);
}

TEST(DaryHeap, BinaryArityWorks) {
  DaryHeap<int, 2> h;
  for (int i = 100; i > 0; --i) h.push(i);
  for (int i = 1; i <= 100; ++i) EXPECT_EQ(h.pop(), i);
}

TEST(DaryHeap, HighArityWorks) {
  DaryHeap<int, 8> h;
  for (int i = 100; i > 0; --i) h.push(i);
  for (int i = 1; i <= 100; ++i) EXPECT_EQ(h.pop(), i);
}

TEST(DaryHeap, RandomizedAgainstStdPriorityQueue) {
  DaryHeap<std::uint64_t> h;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      ref;
  util::Rng rng(5);
  for (int step = 0; step < 50000; ++step) {
    if (ref.empty() || util::bounded(rng, 3) != 0) {
      const std::uint64_t v = util::bounded(rng, 1u << 20);
      h.push(v);
      ref.push(v);
    } else {
      ASSERT_EQ(h.pop(), ref.top());
      ref.pop();
    }
    ASSERT_EQ(h.size(), ref.size());
  }
}

TEST(DaryHeap, ClearEmpties) {
  DaryHeap<int> h;
  h.push(1);
  h.push(2);
  h.clear();
  EXPECT_TRUE(h.empty());
  h.push(5);
  EXPECT_EQ(h.pop(), 5);
}

}  // namespace
}  // namespace relax::sched
