#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace relax::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, LongJumpProducesDisjointStream) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.long_jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(from_a.count(b()));
}

TEST(Bounded, StaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound :
       {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 20}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(bounded(rng, bound), bound);
  }
}

TEST(Bounded, BoundOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(bounded(rng, 1), 0u);
}

TEST(Bounded, RoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[bounded(rng, kBound)];
  for (const int c : counts) {
    EXPECT_GT(c, kSamples / kBound * 0.9);
    EXPECT_LT(c, kSamples / kBound * 1.1);
  }
}

TEST(UniformIn, InclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = uniform_in(rng, 5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformDouble, HalfOpenUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = uniform_double(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Shuffle, ProducesPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(std::span<int>(v), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Shuffle, ActuallyPermutes) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(std::span<int>(v), rng);
  int moved = 0;
  for (int i = 0; i < 100; ++i)
    if (v[i] != i) ++moved;
  EXPECT_GT(moved, 50);
}

TEST(RandomPermutation, ValidAndSeedDeterministic) {
  Rng rng1(29), rng2(29);
  const auto p1 = random_permutation(1000, rng1);
  const auto p2 = random_permutation(1000, rng2);
  EXPECT_EQ(p1, p2);
  std::vector<std::uint32_t> sorted = p1;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RandomPermutation, EmptyAndSingleton) {
  Rng rng(31);
  EXPECT_TRUE(random_permutation(0, rng).empty());
  const auto p = random_permutation(1, rng);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

}  // namespace
}  // namespace relax::util
