#include "algorithms/mis.h"

#include <gtest/gtest.h>

#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/exact_heap.h"
#include "sched/sim_multiqueue.h"
#include "sched/topk_uniform.h"

namespace relax::algorithms {
namespace {

using graph::Graph;
using graph::Priorities;

TEST(SequentialMis, PathIdentityOrder) {
  // Path 0-1-2-3-4 with identity priorities: greedy takes 0, 2, 4.
  const Graph g = graph::path(5);
  const auto pri = graph::identity_priorities(5);
  const auto mis = sequential_greedy_mis(g, pri);
  EXPECT_EQ(mis, (std::vector<std::uint8_t>{1, 0, 1, 0, 1}));
  EXPECT_TRUE(verify_mis(g, mis));
}

TEST(SequentialMis, StarTakesHubOrLeaves) {
  const Graph g = graph::star(6);
  // Hub first -> only hub in MIS.
  auto pri = graph::identity_priorities(6);
  auto mis = sequential_greedy_mis(g, pri);
  EXPECT_EQ(mis[0], 1);
  for (int v = 1; v < 6; ++v) EXPECT_EQ(mis[v], 0);
  // Any leaf first -> all leaves in MIS.
  std::vector<std::uint32_t> order{1, 2, 3, 4, 5, 0};
  pri = graph::priorities_from_order(order);
  mis = sequential_greedy_mis(g, pri);
  EXPECT_EQ(mis[0], 0);
  for (int v = 1; v < 6; ++v) EXPECT_EQ(mis[v], 1);
}

TEST(SequentialMis, CliqueHasExactlyOne) {
  const Graph g = graph::clique(10);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto pri = graph::random_priorities(10, seed);
    const auto mis = sequential_greedy_mis(g, pri);
    int count = 0;
    for (const auto f : mis) count += f;
    EXPECT_EQ(count, 1);
    EXPECT_EQ(mis[pri.order[0]], 1);  // highest priority vertex wins
  }
}

TEST(SequentialMis, ValidOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = graph::gnm(500, 3000, seed);
    const auto pri = graph::random_priorities(500, seed + 100);
    EXPECT_TRUE(verify_mis(g, sequential_greedy_mis(g, pri)));
  }
}

TEST(VerifyMis, RejectsNonIndependent) {
  const Graph g = graph::path(3);
  EXPECT_FALSE(verify_mis(g, std::vector<std::uint8_t>{1, 1, 0}));
}

TEST(VerifyMis, RejectsNonMaximal) {
  const Graph g = graph::path(5);
  // {0, 4} is independent but 2 could be added.
  EXPECT_FALSE(verify_mis(g, std::vector<std::uint8_t>{1, 0, 0, 0, 1}));
}

TEST(VerifyMis, RejectsWrongSize) {
  const Graph g = graph::path(3);
  EXPECT_FALSE(verify_mis(g, std::vector<std::uint8_t>{1, 0}));
}

TEST(MisProblem, ExactSchedulerMatchesBaselineWithZeroWaste) {
  const Graph g = graph::gnm(1000, 5000, 3);
  const auto pri = graph::random_priorities(1000, 17);
  MisProblem problem(g, pri);
  sched::ExactHeapScheduler sched;
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.failed_deletes, 0u);
  EXPECT_EQ(stats.processed + stats.dead_skips, 1000u);
  EXPECT_EQ(problem.result(), sequential_greedy_mis(g, pri));
}

TEST(MisProblem, RelaxedSchedulerIsDeterministic) {
  const Graph g = graph::gnm(800, 8000, 5);
  const auto pri = graph::random_priorities(800, 23);
  const auto expected = sequential_greedy_mis(g, pri);
  for (const std::uint32_t k : {2u, 8u, 64u}) {
    MisProblem problem(g, pri);
    sched::TopKUniformScheduler sched(800, k, 7);
    const auto stats = core::run_sequential(problem, pri, sched);
    EXPECT_EQ(problem.result(), expected) << "k=" << k;
    EXPECT_EQ(stats.processed + stats.dead_skips, 800u);
  }
}

TEST(MisProblem, MultiQueueSchedulerIsDeterministic) {
  const Graph g = graph::gnm(600, 2000, 9);
  const auto pri = graph::random_priorities(600, 31);
  const auto expected = sequential_greedy_mis(g, pri);
  MisProblem problem(g, pri);
  sched::SimMultiQueue sched(16, 3);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.result(), expected);
}

TEST(MisProblem, IterationAccounting) {
  // iterations == n + failed_deletes: every vertex is delivered-decided
  // exactly once, plus one delivery per re-insertion.
  const Graph g = graph::gnm(500, 4000, 11);
  const auto pri = graph::random_priorities(500, 37);
  MisProblem problem(g, pri);
  sched::TopKUniformScheduler sched(500, 16, 5);
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.iterations, 500 + stats.failed_deletes);
}

TEST(AtomicMisProblem, SequentialUseMatchesPlainProblem) {
  const Graph g = graph::gnm(400, 1500, 13);
  const auto pri = graph::random_priorities(400, 41);
  AtomicMisProblem problem(g, pri);
  sched::TopKUniformScheduler sched(400, 8, 9);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.result(), sequential_greedy_mis(g, pri));
}

TEST(MisProblem, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  const auto pri = graph::identity_priorities(0);
  MisProblem problem(g, pri);
  sched::ExactHeapScheduler sched;
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(MisProblem, EdgelessGraphAllInMis) {
  const Graph g = Graph::from_edges(50, {});
  const auto pri = graph::random_priorities(50, 1);
  MisProblem problem(g, pri);
  sched::TopKUniformScheduler sched(50, 4, 1);
  core::run_sequential(problem, pri, sched);
  const auto mis = problem.result();
  for (const auto f : mis) EXPECT_EQ(f, 1);
}

TEST(SequentialMisScan, MatchesDeadPropagationBaseline) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = graph::gnm(800, 6000, seed);
    const auto pri = graph::random_priorities(800, seed + 50);
    EXPECT_EQ(sequential_greedy_mis_scan(g, pri),
              sequential_greedy_mis(g, pri))
        << "seed=" << seed;
  }
}

TEST(SequentialMisScan, VerifiesOnEveryFamily) {
  const auto check = [](const Graph& g) {
    const auto pri = graph::random_priorities(g.num_vertices(), 3);
    const auto mis = sequential_greedy_mis_scan(g, pri);
    EXPECT_TRUE(verify_mis(g, mis));
  };
  check(graph::clique(40));
  check(graph::star(100));
  check(graph::grid(12, 12));
  check(graph::cycle(77));
}

}  // namespace
}  // namespace relax::algorithms
