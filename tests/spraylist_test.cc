#include "sched/spraylist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <iterator>
#include <span>
#include <thread>
#include <vector>

#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "graph/generators.h"
#include "sched/order_stat_set.h"
#include "sched/relaxation_monitor.h"

namespace relax::sched {
namespace {

static_assert(SequentialScheduler<SprayList>);

TEST(SprayList, SingleThreadDrainsAll) {
  SprayList list(4, 1);
  for (Priority p = 0; p < 2000; ++p) list.insert(p);
  EXPECT_EQ(list.size(), 2000u);
  std::vector<char> seen(2000, 0);
  std::uint32_t count = 0;
  while (auto p = list.approx_get_min()) {
    ASSERT_LT(*p, 2000u);
    ASSERT_FALSE(seen[*p]) << "duplicate " << *p;
    seen[*p] = 1;
    ++count;
  }
  EXPECT_EQ(count, 2000u);
  EXPECT_TRUE(list.empty());
}

TEST(SprayList, EmptyReturnsNullopt) {
  SprayList list(4, 1);
  EXPECT_FALSE(list.approx_get_min().has_value());
  list.insert(7);
  EXPECT_TRUE(list.approx_get_min().has_value());
  EXPECT_FALSE(list.approx_get_min().has_value());
}

TEST(SprayList, ReinsertionOfSameKey) {
  SprayList list(2, 3);
  list.insert(5);
  const auto p = list.approx_get_min();
  ASSERT_EQ(p, 5u);
  list.insert(5);  // re-insert while the marked twin may still be present
  EXPECT_EQ(list.approx_get_min(), 5u);
  EXPECT_TRUE(list.empty());
}

TEST(SprayList, InsertBatchDrainsAllExactlyOnce) {
  // Batched insert (one descent, forward-linked run with hint-resumed
  // searches): shuffled mixed-size runs, including duplicates, must all
  // come back out exactly once.
  constexpr std::uint32_t kN = 4000;
  SprayList list(4, 21);
  util::Rng rng(9);
  auto labels = util::random_permutation(kN, rng);
  constexpr std::size_t kRuns[] = {1, 5, 64, 300};
  std::size_t off = 0, ix = 0;
  while (off < kN) {
    const std::size_t len =
        std::min<std::size_t>(kRuns[ix++ % std::size(kRuns)], kN - off);
    list.insert_batch(std::span<const Priority>(labels.data() + off, len));
    off += len;
  }
  EXPECT_EQ(list.size(), kN);
  std::vector<char> seen(kN, 0);
  std::uint32_t count = 0;
  while (auto p = list.approx_get_min()) {
    ASSERT_LT(*p, kN);
    ASSERT_FALSE(seen[*p]) << "duplicate " << *p;
    seen[*p] = 1;
    ++count;
  }
  EXPECT_EQ(count, kN);
  EXPECT_TRUE(list.empty());
}

TEST(SprayList, InsertBatchWithDuplicateKeys) {
  SprayList list(2, 23);
  const std::vector<Priority> run = {7, 7, 3, 7, 3};
  list.insert_batch(run);
  std::vector<Priority> popped;
  while (auto p = list.approx_get_min()) popped.push_back(*p);
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(popped, (std::vector<Priority>{3, 3, 7, 7, 7}));
}

TEST(SprayList, ConcurrentInsertBatchExactlyOnce) {
  // Batched inserts racing sprays and each other: the hint-resumed
  // optimistic links must fall back cleanly when a predecessor is claimed
  // or unlinked mid-run.
  constexpr std::uint32_t kN = 20000;
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kRun = 25;
  SprayList list(kThreads, 27);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto handle = list.get_handle();
        util::Rng rng(300 + t);
        std::vector<Priority> run;
        std::vector<Priority> buf;
        for (;;) {
          const auto lo = produced.fetch_add(kRun);
          if (lo >= kN) break;
          run.clear();
          for (std::uint32_t i = lo; i < std::min(lo + kRun, kN); ++i)
            run.push_back(i);
          util::shuffle(std::span<Priority>(run), rng);
          handle.insert_batch(run);
          buf.clear();
          handle.approx_get_min_batch(4, buf);
          for (const Priority p : buf) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
        while (consumed.load() < kN) {
          buf.clear();
          if (handle.approx_get_min_batch(8, buf) == 0) continue;
          for (const Priority p : buf) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
}

TEST(SprayList, BiasTowardSmallKeys) {
  SprayList list(8, 5);
  constexpr std::uint32_t kN = 20000;
  for (Priority p = 0; p < kN; ++p) list.insert(p);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto p = list.approx_get_min();
    ASSERT_TRUE(p.has_value());
    sum += *p;
  }
  // Spray reach is O(p log p) = tiny fraction of 20000: mean popped key
  // must be far below the universe mean (10000).
  EXPECT_LT(sum / 1000.0, 2000.0);
}

TEST(SprayList, RankErrorConcentratedNearHead) {
  // A spray hop at level l skips ~2^l bottom-level elements, so the landing
  // rank has mean O(p polylog p) with exponential tails (Definition 1) —
  // there is no absolute cap. Check the mean and a generous quantile.
  SprayList list(8, 7);
  constexpr std::uint32_t kN = 5000;
  OrderStatSet mirror(kN);
  for (Priority p = 0; p < kN; ++p) {
    list.insert(p);
    mirror.insert(p);
  }
  double sum = 0;
  std::uint64_t beyond1k = 0, total = 0;
  while (auto p = list.approx_get_min()) {
    const auto rank = mirror.rank_of(*p);
    sum += static_cast<double>(rank);
    if (rank >= 1024) ++beyond1k;
    mirror.erase(*p);
    ++total;
  }
  EXPECT_EQ(total, kN);
  // Mean landing rank is Theta(p polylog p) — a few hundred for p = 8 —
  // i.e. a small fraction of the 5000-element universe.
  EXPECT_LT(sum / static_cast<double>(kN), 600.0);
  EXPECT_LT(static_cast<double>(beyond1k) / static_cast<double>(kN), 0.05);
}

TEST(SprayList, ConcurrentExactlyOnce) {
  constexpr std::uint32_t kN = 40000;
  constexpr unsigned kThreads = 8;
  SprayList list(kThreads, 9);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        auto handle = list.get_handle();
        for (;;) {
          const auto i = produced.fetch_add(1);
          if (i >= kN) break;
          handle.insert(i);
        }
        while (consumed.load() < kN) {
          const auto p = handle.approx_get_min();
          if (!p) continue;
          got[*p].fetch_add(1);
          consumed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
}

TEST(SprayList, ConcurrentBatchedClaimExactlyOnce) {
  // Racing batched spray claims (one descent, up to k forward CAS claims):
  // every label delivered exactly once, none claimed twice off the shared
  // bottom level.
  constexpr std::uint32_t kN = 40000;
  constexpr unsigned kThreads = 8;
  SprayList list(kThreads, 17);
  std::vector<std::atomic<int>> got(kN);
  for (auto& g : got) g.store(0);
  std::atomic<std::uint32_t> produced{0};
  std::atomic<std::uint32_t> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        auto handle = list.get_handle();
        for (;;) {
          const auto i = produced.fetch_add(1);
          if (i >= kN) break;
          handle.insert(i);
        }
        std::vector<Priority> batch;
        while (consumed.load() < kN) {
          batch.clear();
          if (handle.approx_get_min_batch(8, batch) == 0) continue;
          for (const Priority p : batch) {
            got[p].fetch_add(1);
            consumed.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(consumed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(got[i].load(), 1);
  EXPECT_TRUE(list.empty());
}

TEST(SprayList, BatchedClaimRunsAreSortedAndNearHead) {
  // A batch walks forward from one landing point, so each batch is
  // ascending; and the batch's first element stays within the spray reach
  // plus claim-walk slack of the current minimum.
  SprayList list(4, 19);
  constexpr std::uint32_t kN = 5000;
  for (Priority p = 0; p < kN; ++p) list.insert(p);
  const auto reach = SprayList::spray_params(4).reach();
  constexpr std::size_t kBatch = 8;
  OrderStatSet mirror(kN);
  for (Priority p = 0; p < kN; ++p) mirror.insert(p);
  std::vector<Priority> batch;
  std::uint32_t total = 0;
  std::uint64_t envelope_misses = 0;
  while (list.approx_get_min_batch(kBatch, batch) > 0) {
    EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Rank envelope per batch element: spray reach + position in batch,
      // with generous slack for marked-node overshoot.
      if (mirror.rank_of(batch[i]) > 4 * (reach + i + 1)) ++envelope_misses;
      mirror.erase(batch[i]);
    }
    total += static_cast<std::uint32_t>(batch.size());
    batch.clear();
  }
  EXPECT_EQ(total, kN);
  EXPECT_TRUE(list.empty());
  // Sequential batched drain should essentially never overshoot 4x.
  EXPECT_LT(envelope_misses, kN / 100);
}

TEST(SprayList, ConcurrentReinsertionStress) {
  constexpr std::uint32_t kN = 10000;
  SprayList list(8, 11);
  for (Priority p = 0; p < kN; ++p) list.insert(p);
  std::atomic<std::uint32_t> retired{0};
  std::vector<std::atomic<int>> done(kN);
  for (auto& d : done) d.store(0);
  {
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        util::Rng rng(t + 1);
        auto handle = list.get_handle();
        while (retired.load() < kN) {
          const auto p = handle.approx_get_min();
          if (!p) continue;
          if (done[*p].load() == 0 && util::bounded(rng, 2) == 0) {
            handle.insert(*p);
          } else {
            ASSERT_EQ(done[*p].fetch_add(1), 0);
            retired.fetch_add(1);
          }
        }
      });
    }
  }
  for (std::uint32_t i = 0; i < kN; ++i) ASSERT_EQ(done[i].load(), 1);
}

TEST(SprayList, DefinitionOneRankTails) {
  // Manual mirror (SprayList is pinned in memory, so RelaxationMonitor's
  // by-value wrapping does not apply).
  constexpr std::uint32_t kN = 20000;
  SprayList list(8, 13);
  OrderStatSet mirror(kN);
  for (Priority p = 0; p < kN; ++p) {
    list.insert(p);
    mirror.insert(p);
  }
  // Definition 1 promises Pr[rank >= l] <= exp(-l/k) with k = O(p polylog p).
  // Record all landing ranks, then check the tail decays at multiples of
  // the nominal spray reach H*D ~ 2p (generous constants; the bench prints
  // full tables). Before deletion became prefix-deferred these constants
  // had to be ~20x looser: eager unlinking stripped the front's tall
  // towers and landing ranks grew linearly with the number of pops.
  std::vector<std::uint64_t> ranks;
  ranks.reserve(kN);
  while (auto p = list.approx_get_min()) {
    ranks.push_back(mirror.rank_of(*p));
    mirror.erase(*p);
  }
  ASSERT_EQ(ranks.size(), kN);
  double sum = 0;
  for (const auto r : ranks) sum += static_cast<double>(r);
  const double mean = sum / static_cast<double>(kN);
  const auto kReach =  // H = 4 levels, D = 4 jumps for p = 8
      static_cast<double>(SprayList::spray_params(8).reach());
  EXPECT_GT(mean, 1.0);       // it IS relaxed
  EXPECT_LT(mean, 2 * kReach);  // but concentrated within the spray reach
  const auto tail_frac = [&](double at) {
    std::uint64_t c = 0;
    for (const auto r : ranks)
      if (static_cast<double>(r) >= at) ++c;
    return static_cast<double>(c) / static_cast<double>(kN);
  };
  EXPECT_LT(tail_frac(2 * kReach), 0.10);
  EXPECT_LT(tail_frac(8 * kReach), 0.01);
  EXPECT_GT(tail_frac(1), 0.30);  // well over half the pops are not exact
}

TEST(SprayList, DrivesParallelMisCorrectly) {
  const auto g = relax::graph::gnm(2000, 10000, 17);
  const auto pri = relax::graph::random_priorities(2000, 19);
  const auto expected = relax::algorithms::sequential_greedy_mis(g, pri);
  relax::algorithms::AtomicMisProblem problem(g, pri);
  SprayList list(8, 21);
  core::ParallelOptions opts;
  opts.num_threads = 8;
  opts.pin_threads = false;
  core::run_parallel_relaxed_on(problem, pri, list, opts);
  EXPECT_EQ(problem.result(), expected);
}

}  // namespace
}  // namespace relax::sched
