#include "algorithms/matching.h"

#include <gtest/gtest.h>

#include "algorithms/mis.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/exact_heap.h"
#include "sched/topk_uniform.h"

namespace relax::algorithms {
namespace {

using graph::Graph;

TEST(EdgeIncidence, IndexesBothEndpoints) {
  const Graph g = graph::path(4);  // edges (0,1),(1,2),(2,3)
  const EdgeIncidence inc(g);
  EXPECT_EQ(inc.num_edges(), 3u);
  EXPECT_EQ(inc.incident(0).size(), 1u);
  EXPECT_EQ(inc.incident(1).size(), 2u);
  EXPECT_EQ(inc.incident(2).size(), 2u);
  EXPECT_EQ(inc.incident(3).size(), 1u);
}

TEST(SequentialMatching, PathGreedy) {
  const Graph g = graph::path(4);
  const EdgeIncidence inc(g);
  // Identity edge order: edge 0 = (0,1) matched, edge 1 = (1,2) blocked,
  // edge 2 = (2,3) matched.
  const auto pri = graph::identity_priorities(3);
  const auto matched = sequential_greedy_matching(inc, pri);
  EXPECT_EQ(matched, (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_TRUE(verify_matching(inc, matched));
}

TEST(SequentialMatching, MiddleEdgeFirstBlocksBoth) {
  const Graph g = graph::path(4);
  const EdgeIncidence inc(g);
  const std::vector<std::uint32_t> order{1, 0, 2};  // middle edge first
  const auto pri = graph::priorities_from_order(order);
  const auto matched = sequential_greedy_matching(inc, pri);
  EXPECT_EQ(matched, (std::vector<std::uint8_t>{0, 1, 0}));
}

TEST(SequentialMatching, ValidOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = graph::gnm(200, 800, seed);
    const EdgeIncidence inc(g);
    const auto pri = graph::random_priorities(inc.num_edges(), seed + 7);
    EXPECT_TRUE(verify_matching(inc, sequential_greedy_matching(inc, pri)));
  }
}

TEST(VerifyMatching, RejectsSharedVertex) {
  const Graph g = graph::path(3);  // edges (0,1),(1,2)
  const EdgeIncidence inc(g);
  EXPECT_FALSE(verify_matching(inc, std::vector<std::uint8_t>{1, 1}));
}

TEST(VerifyMatching, RejectsNonMaximal) {
  const Graph g = graph::path(2);
  const EdgeIncidence inc(g);
  EXPECT_FALSE(verify_matching(inc, std::vector<std::uint8_t>{0}));
}

TEST(MatchingProblem, ExactMatchesBaseline) {
  const Graph g = graph::gnm(300, 1200, 3);
  const EdgeIncidence inc(g);
  const auto pri = graph::random_priorities(inc.num_edges(), 11);
  MatchingProblem problem(inc, pri);
  sched::ExactHeapScheduler sched;
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(stats.failed_deletes, 0u);
  EXPECT_EQ(problem.result(), sequential_greedy_matching(inc, pri));
}

TEST(MatchingProblem, RelaxedIsDeterministic) {
  const Graph g = graph::gnm(250, 1000, 5);
  const EdgeIncidence inc(g);
  const auto pri = graph::random_priorities(inc.num_edges(), 13);
  const auto expected = sequential_greedy_matching(inc, pri);
  for (const std::uint32_t k : {4u, 64u}) {
    MatchingProblem problem(inc, pri);
    sched::TopKUniformScheduler sched(inc.num_edges(), k, 17);
    core::run_sequential(problem, pri, sched);
    EXPECT_EQ(problem.result(), expected) << "k=" << k;
  }
}

TEST(MatchingProblem, AgreesWithLineGraphMisReduction) {
  // Greedy matching == greedy MIS on the line graph under the same task
  // permutation (paper §2.4). Cross-validate the implicit adapter.
  const Graph g = graph::gnm_exact(60, 150, 7);
  std::vector<graph::Edge> edge_index;
  const Graph lg = graph::line_graph(g, &edge_index);
  const EdgeIncidence inc(g);
  ASSERT_EQ(inc.num_edges(), lg.num_vertices());
  // line_graph's vertex ids come from g.edge_list(), same as EdgeIncidence.
  for (std::uint32_t e = 0; e < inc.num_edges(); ++e)
    ASSERT_EQ(inc.edges()[e], edge_index[e]);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto pri = graph::random_priorities(inc.num_edges(), seed + 19);
    const auto matched = sequential_greedy_matching(inc, pri);
    const auto mis = sequential_greedy_mis(lg, pri);
    EXPECT_EQ(matched, mis);
  }
}

TEST(AtomicMatchingProblem, SequentialUseMatchesBaseline) {
  const Graph g = graph::gnm(200, 900, 23);
  const EdgeIncidence inc(g);
  const auto pri = graph::random_priorities(inc.num_edges(), 29);
  AtomicMatchingProblem problem(inc, pri);
  sched::TopKUniformScheduler sched(inc.num_edges(), 16, 31);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.result(), sequential_greedy_matching(inc, pri));
}

TEST(MatchingProblem, TriangleMatchesOneEdge) {
  const Graph g = graph::cycle(3);
  const EdgeIncidence inc(g);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto pri = graph::random_priorities(3, seed);
    const auto matched = sequential_greedy_matching(inc, pri);
    int count = 0;
    for (const auto f : matched) count += f;
    EXPECT_EQ(count, 1);
    EXPECT_EQ(matched[pri.order[0]], 1);
  }
}

}  // namespace
}  // namespace relax::algorithms
