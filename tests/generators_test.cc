#include "graph/generators.h"

#include <gtest/gtest.h>

#include <queue>

namespace relax::graph {
namespace {

TEST(Gnm, ApproximateEdgeCount) {
  const Graph g = gnm(10000, 50000, 1);
  // Duplicate collisions are rare at this density: expect >= 99%.
  EXPECT_GE(g.num_edges(), 49000u);
  EXPECT_LE(g.num_edges(), 50000u);
  EXPECT_EQ(g.num_vertices(), 10000u);
}

TEST(Gnm, SeedDeterminism) {
  const Graph a = gnm(1000, 5000, 42);
  const Graph b = gnm(1000, 5000, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (Vertex v = 0; v < 1000; ++v) EXPECT_EQ(a.degree(v), b.degree(v));
}

TEST(Gnm, DifferentSeedsDiffer) {
  const Graph a = gnm(1000, 5000, 1);
  const Graph b = gnm(1000, 5000, 2);
  int diff = 0;
  for (Vertex v = 0; v < 1000; ++v)
    if (a.degree(v) != b.degree(v)) ++diff;
  EXPECT_GT(diff, 100);
}

TEST(Gnm, ThreadCountInvariant) {
  const Graph a = gnm(2000, 20000, 9, 1);
  const Graph b = gnm(2000, 20000, 9, 8);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (Vertex v = 0; v < 2000; ++v) EXPECT_EQ(a.degree(v), b.degree(v));
}

TEST(GnmExact, ExactEdgeCount) {
  const Graph g = gnm_exact(100, 1000, 3);
  EXPECT_EQ(g.num_edges(), 1000u);
}

TEST(GnmExact, DenseFallback) {
  const Graph g = gnm_exact(50, 1200, 5);  // max is 1225: dense path
  EXPECT_EQ(g.num_edges(), 1200u);
}

TEST(GnmExact, FullCliqueRequest) {
  const Graph g = gnm_exact(20, 190, 7);
  EXPECT_EQ(g.num_edges(), 190u);
}

TEST(GnmExact, ThrowsWhenImpossible) {
  EXPECT_THROW(gnm_exact(10, 100, 1), std::invalid_argument);
}

TEST(Gnp, ExpectedDensity) {
  const double p = 0.01;
  const Graph g = gnp(2000, p, 17);
  const double expected = p * 2000.0 * 1999.0 / 2.0;
  EXPECT_GT(g.num_edges(), expected * 0.9);
  EXPECT_LT(g.num_edges(), expected * 1.1);
}

TEST(Gnp, ZeroAndOneProbability) {
  EXPECT_EQ(gnp(100, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(gnp(50, 1.0, 1).num_edges(), 50u * 49 / 2);
}

TEST(Gnp, ThreadCountInvariant) {
  const Graph a = gnp(3000, 0.01, 23, 1);
  const Graph b = gnp(3000, 0.01, 23, 16);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (Vertex v = 0; v < 3000; ++v) EXPECT_EQ(a.degree(v), b.degree(v));
}

TEST(Rmat, SizeAndSkew) {
  const Graph g = rmat(1 << 12, 40000, 0.57, 0.19, 0.19, 31);
  EXPECT_EQ(g.num_vertices(), 1u << 12);
  EXPECT_GT(g.num_edges(), 30000u);  // some dedup expected
  // Power-law-ish: the max degree far exceeds the average degree.
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / (1 << 12);
  EXPECT_GT(g.max_degree(), avg * 5);
}

TEST(Rmat, RejectsNonPowerOfTwo) {
  EXPECT_THROW(rmat(1000, 100, 0.25, 0.25, 0.25, 1), std::invalid_argument);
}

TEST(BarabasiAlbert, SizeAndConnectivity) {
  const Graph g = barabasi_albert(2000, 3, 37);
  EXPECT_EQ(g.num_vertices(), 2000u);
  // BFS from 0 must reach everything (preferential attachment connects).
  std::vector<char> seen(2000, 0);
  std::queue<Vertex> q;
  q.push(0);
  seen[0] = 1;
  std::size_t count = 1;
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (const Vertex u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        ++count;
        q.push(u);
      }
    }
  }
  EXPECT_EQ(count, 2000u);
}

TEST(BarabasiAlbert, HubsEmerge) {
  const Graph g = barabasi_albert(5000, 2, 41);
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / 5000;
  EXPECT_GT(g.max_degree(), avg * 8);
}

TEST(Path, Structure) {
  const Graph g = path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Cycle, Structure) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(5, 0));
}

TEST(Grid, Structure) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(g.degree(0), 2u);                 // corner
  EXPECT_EQ(g.degree(5), 4u);                 // interior (1,1)
}

TEST(Clique, Structure) {
  const Graph g = clique(8);
  EXPECT_EQ(g.num_edges(), 28u);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 7u);
}

TEST(Star, Structure) {
  const Graph g = star(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  for (Vertex v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(CompleteBipartite, Structure) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4u);
  for (Vertex v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_FALSE(g.has_edge(0, 1));  // within a part
  EXPECT_TRUE(g.has_edge(0, 3));
}

}  // namespace
}  // namespace relax::graph
