// sched::BatchController — the per-worker claim-sizing half of a scheduler
// session: the claim-feedback ramp hoisted out of RelaxedJob (full batch
// doubles toward the cap, short batch resets to 1) plus the occupancy
// consult that overrides the ramp from the backend's striped size() (deep
// backlog jumps to the cap, near drain pins 1).
#include "sched/batch_controller.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>

namespace relax::sched {
namespace {

/// Injectable occupancy: whatever the test says the backend holds.
struct FakeOccupancy {
  std::optional<std::size_t> live;
  [[nodiscard]] std::optional<std::size_t> size() const { return live; }
};

TEST(BatchController, FixedModeAlwaysReturnsCap) {
  BatchController fixed(8, /*adaptive=*/false);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fixed.next_claim(NoOccupancy{}), 8u);
    // Feedback is a no-op in fixed mode, whatever the claims returned.
    fixed.feedback(8, i % 9);
  }
  EXPECT_EQ(fixed.current(), 8u);
}

TEST(BatchController, ClaimFeedbackDoublesTowardCapAndResets) {
  // Consult period high enough that occupancy never interferes.
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/0,
                      /*consult_period=*/1000000);
  // Ramp: 1 -> 2 -> 4 -> ... -> 64, then saturate at the cap.
  std::uint32_t expect = 1;
  for (int i = 0; i < 10; ++i) {
    const std::uint32_t want = ctl.next_claim(NoOccupancy{});
    EXPECT_EQ(want, expect);
    ctl.feedback(want, want);  // full claim
    expect = expect < 64 ? expect * 2 : 64;
  }
  EXPECT_EQ(ctl.next_claim(NoOccupancy{}), 64u);
  // Short claim: the sampled sub-structure ran dry — back to single pops.
  ctl.feedback(64, 3);
  EXPECT_EQ(ctl.next_claim(NoOccupancy{}), 1u);
}

TEST(BatchController, BudgetCappedClaimNeverRamps) {
  BatchController ctl(64, /*adaptive=*/true, 0, /*consult_period=*/1000000);
  ctl.feedback(1, 1);
  ctl.feedback(2, 2);
  ASSERT_EQ(ctl.next_claim(NoOccupancy{}), 4u);
  // The caller shrank the claim against an external budget (asked 2 of the
  // 4 on offer) and the scheduler delivered all of it. Not evidence of
  // load: the claim size must neither ramp nor reset.
  ctl.feedback(2, 2);
  EXPECT_EQ(ctl.next_claim(NoOccupancy{}), 4u);
}

TEST(BatchController, DeepBacklogJumpsStraightToCap) {
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/1000,
                      /*consult_period=*/1);
  // No feedback ramp has run, but the backend reports a deep backlog: the
  // very next consult sets the claim to the cap.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{5000}), 64u);
}

TEST(BatchController, NearDrainOccupancyResetsToOne) {
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/100000,
                      /*consult_period=*/1);
  // Ramp up under load first (occupancy comfortably between the marks
  // leaves the feedback value alone).
  for (std::uint32_t want = 1; want < 64;) {
    EXPECT_EQ(ctl.next_claim(FakeOccupancy{50000}), want);
    ctl.feedback(want, want);
    want *= 2;
  }
  // live <= cap: one full claim could drain everything visible — the
  // consult pins single pops regardless of the ramp.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{64}), 1u);
}

TEST(BatchController, DrainPinSticksUntilOccupancyRecovers) {
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/100000,
                      /*consult_period=*/4);
  ctl.feedback(1, 1);  // ramp to 2 before any consult
  // Claims 1-3: mid-range occupancy, no consult yet.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{50000}), 2u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{50000}), 2u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{50000}), 2u);
  // Claim 4 consults, sees near-drain: pinned at 1.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{60}), 1u);
  // A few leftover items keep filling single claims; the pin must hold
  // through the whole consult period AND through a still-drained consult
  // (claim 4 of this stretch) — re-ramping against a nearly drained
  // scheduler is the O(k*q) rank charge the rule exists to avoid.
  for (int i = 0; i < 4; ++i) {
    ctl.feedback(1, 1);
    EXPECT_EQ(ctl.next_claim(FakeOccupancy{60}), 1u) << "claim " << i;
  }
  // Backlog recovers. Claims 1-3 of the next period: consult hasn't fired,
  // still pinned; claim 4 consults mid-range occupancy and unpins, after
  // which full claims ramp again.
  for (int i = 0; i < 4; ++i) {
    ctl.feedback(1, 1);
    EXPECT_EQ(ctl.next_claim(FakeOccupancy{5000}), 1u) << "claim " << i;
  }
  ctl.feedback(1, 1);  // unpinned by the consult above: ramps to 2
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{5000}), 2u);
}

TEST(BatchController, MidRangeOccupancyLeavesRampUntouched) {
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/100000,
                      /*consult_period=*/1);
  ctl.feedback(1, 1);
  ctl.feedback(2, 2);
  // Between cap and high watermark: the claim-feedback value rules.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{5000}), 4u);
}

TEST(BatchController, UnknownOccupancyStaysPureClaimFeedback) {
  BatchController ctl(16, /*adaptive=*/true, /*high_watermark=*/1,
                      /*consult_period=*/1);
  // Every consult fires, but size() is unknown — the ramp must behave
  // exactly as without occupancy.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{std::nullopt}), 1u);
  ctl.feedback(1, 1);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{std::nullopt}), 2u);
  ctl.feedback(2, 1);  // short
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{std::nullopt}), 1u);
}

TEST(BatchController, ConsultPeriodRateLimitsTheSizeReads) {
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/10,
                      /*consult_period=*/4);
  // Backlog far above the watermark, but the first three claims must not
  // consult (stay at the feedback value 1); the fourth does and jumps.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{100000}), 1u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{100000}), 1u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{100000}), 1u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{100000}), 64u);
}

TEST(BatchController, WidthOneDefaultsMatchTheClassicWatermarks) {
  // num_workers defaulted (1): high = cap * 16, low = cap — exactly the
  // pre-width constants, so existing callers see identical thresholds.
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/0,
                      /*consult_period=*/1);
  // cap * 16 = 1024: just below, the ramp value rules; at the watermark
  // the jump fires.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{1023}), 1u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{1024}), 64u);
  // live == cap (the width-1 low mark) pins the drain.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{64}), 1u);
}

TEST(BatchController, WatermarksScaleWithPoolWidth) {
  // Eight workers: "deep backlog" and "nearly drained" are pool-wide
  // judgments — W concurrent full claims drain cap * W, not cap. High
  // watermark becomes 64 * 16 * 8 = 8192, drain threshold 64 * 8 = 512.
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/0,
                      /*consult_period=*/1, /*num_workers=*/8);
  // Backlog deep for one worker but not for eight: no jump at the old
  // width-1 threshold...
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{1024}), 1u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{8191}), 1u);
  // ...and the jump fires once the pool-wide watermark is reached.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{8192}), 64u);
  // Drain pin: live 512 could be eaten by one claim round across the
  // pool, so the consult pins 1 (and suppresses ramping); 513 releases
  // the pin on the next consult, after which full claims ramp again.
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{512}), 1u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{513}), 1u);  // unpinned, not ramped
  ctl.feedback(1, 1);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{513}), 2u);
}

TEST(BatchController, ExplicitHighWatermarkOverridesWidthScaling) {
  // A caller-provided high watermark wins over the width-derived default;
  // the low (drain) mark still scales with width.
  BatchController ctl(8, /*adaptive=*/true, /*high_watermark=*/100,
                      /*consult_period=*/1, /*num_workers=*/4);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{101}), 8u);
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{32}), 1u);  // cap * W = 32
}

TEST(BatchController, ZeroCapIsClampedToOne) {
  // A zero cap must not flow into the claim path (satellite bug: CLI zero
  // values are rejected up front, but the controller still defends).
  BatchController ctl(0, /*adaptive=*/true);
  EXPECT_EQ(ctl.cap(), 1u);
  EXPECT_EQ(ctl.next_claim(NoOccupancy{}), 1u);
  BatchController fixed(0, /*adaptive=*/false);
  EXPECT_EQ(fixed.next_claim(NoOccupancy{}), 1u);
}

/// Deterministic clock for the measured-watermark legs: tests advance it
/// by hand between consults.
std::uint64_t g_fake_now = 0;
std::uint64_t fake_now() { return g_fake_now; }

TEST(BatchController, MeasuredModeColdStartKeepsStaticMarks) {
  g_fake_now = 0;
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/0,
                      /*consult_period=*/1, /*num_workers=*/1,
                      /*measured_watermarks=*/true, &fake_now);
  // Static width-1 defaults until a window of evidence exists.
  EXPECT_EQ(ctl.high_watermark(), 64u * 16u);
  EXPECT_EQ(ctl.low_watermark(), 64u);
  // Consults with nothing delivered (first one only seeds the window, the
  // rest close empty windows): the static fallback persists.
  for (int i = 0; i < 3; ++i) {
    g_fake_now += 1'000'000'000;
    (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  }
  EXPECT_EQ(ctl.high_watermark(), 64u * 16u);
  EXPECT_EQ(ctl.low_watermark(), 64u);
}

TEST(BatchController, MeasuredMarksDeriveFromDrainRate) {
  g_fake_now = 0;
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/0,
                      /*consult_period=*/1, /*num_workers=*/1,
                      /*measured_watermarks=*/true, &fake_now);
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});  // seeds the window
  // 100 labels over 1s: the pool clears ~100 labels per consult window,
  // so low = 100 and high = 16 * low.
  ctl.feedback(100, 100);
  g_fake_now += 1'000'000'000;
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  EXPECT_EQ(ctl.low_watermark(), 100u);
  EXPECT_EQ(ctl.high_watermark(), 1600u);
  // A faster window: 300 labels over the next second. EWMA (alpha = 1/2)
  // of the rate gives (100 + 300) / 2 = 200 labels per window.
  ctl.feedback(300, 300);
  g_fake_now += 1'000'000'000;
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  EXPECT_EQ(ctl.low_watermark(), 200u);
  EXPECT_EQ(ctl.high_watermark(), 3200u);
}

TEST(BatchController, MeasuredMarksScaleWithPoolWidth) {
  g_fake_now = 0;
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/0,
                      /*consult_period=*/1, /*num_workers=*/4,
                      /*measured_watermarks=*/true, &fake_now);
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  // One worker drains 100/window; the marks gate a GLOBAL occupancy
  // reading, so the pool-wide low mark is 4x that.
  ctl.feedback(100, 100);
  g_fake_now += 1'000'000'000;
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  EXPECT_EQ(ctl.low_watermark(), 400u);
  EXPECT_EQ(ctl.high_watermark(), 6400u);
}

TEST(BatchController, ExplicitHighWatermarkSurvivesMeasuredDerivation) {
  g_fake_now = 0;
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/5000,
                      /*consult_period=*/1, /*num_workers=*/1,
                      /*measured_watermarks=*/true, &fake_now);
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  ctl.feedback(100, 100);
  g_fake_now += 1'000'000'000;
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  // The low mark follows the measurement; the caller's high mark wins.
  EXPECT_EQ(ctl.low_watermark(), 100u);
  EXPECT_EQ(ctl.high_watermark(), 5000u);
}

TEST(BatchController, IdleMeasuredWindowKeepsPriorMarks) {
  g_fake_now = 0;
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/0,
                      /*consult_period=*/1, /*num_workers=*/1,
                      /*measured_watermarks=*/true, &fake_now);
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  ctl.feedback(100, 100);
  g_fake_now += 1'000'000'000;
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  ASSERT_EQ(ctl.low_watermark(), 100u);
  // An idle window (nothing delivered) and a zero-elapsed window (coarse
  // clock) both leave the measured marks standing.
  g_fake_now += 1'000'000'000;
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  ctl.feedback(50, 50);
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});  // elapsed == 0
  EXPECT_EQ(ctl.low_watermark(), 100u);
  EXPECT_EQ(ctl.high_watermark(), 1600u);
}

TEST(BatchController, MeasuredMarksGateTheRegimeSwitches) {
  g_fake_now = 0;
  BatchController ctl(64, /*adaptive=*/true, /*high_watermark=*/0,
                      /*consult_period=*/1, /*num_workers=*/1,
                      /*measured_watermarks=*/true, &fake_now);
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  ctl.feedback(100, 100);
  g_fake_now += 1'000'000'000;
  (void)ctl.next_claim(FakeOccupancy{std::nullopt});
  ASSERT_EQ(ctl.low_watermark(), 100u);
  ASSERT_EQ(ctl.high_watermark(), 1600u);
  // The derived marks now drive the same jump/pin rules the static ones
  // did: occupancy 1600 jumps to the cap, 100 pins single pops — both far
  // from the static thresholds (1024 / 64) a cap-derived guess would use.
  g_fake_now += 1'000'000'000;
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{1600}), 64u);
  g_fake_now += 1'000'000'000;
  EXPECT_EQ(ctl.next_claim(FakeOccupancy{100}), 1u);
}

TEST(QueueOccupancy, ReportsBackendSizeWhenPresent) {
  struct WithSize {
    [[nodiscard]] std::size_t size() const { return 7; }
  } backend;
  EXPECT_EQ(QueueOccupancy<WithSize>{&backend}.size(), 7u);
}

TEST(QueueOccupancy, UnknownWithoutBackendSize) {
  struct NoSize {
  } backend;
  EXPECT_EQ(QueueOccupancy<NoSize>{&backend}.size(), std::nullopt);
}

}  // namespace
}  // namespace relax::sched
