// Tests for the small concurrency utilities: spinlock mutual exclusion,
// parallel_for coverage, padded alignment, timers, thread pinning.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/padded.h"
#include "util/parallel_for.h"
#include "util/spinlock.h"
#include "util/thread_pin.h"
#include "util/timer.h"

namespace relax::util {
namespace {

TEST(Spinlock, MutualExclusion) {
  Spinlock lock;
  std::uint64_t counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 8, kIters = 20000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          lock.lock();
          ++counter;
          lock.unlock();
        }
      });
    }
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Spinlock, TryLockSemantics) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());  // already held
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, WorksWithLockGuard) {
  Spinlock lock;
  {
    std::lock_guard<Spinlock> guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Padded, CacheLineAlignment) {
  EXPECT_GE(alignof(Padded<int>), kCacheLine);
  EXPECT_GE(sizeof(Padded<int>), kCacheLine);
  std::vector<Padded<std::atomic<int>>> v(4);
  for (std::size_t i = 1; i < v.size(); ++i) {
    const auto gap = reinterpret_cast<char*>(&v[i]) -
                     reinterpret_cast<char*>(&v[i - 1]);
    EXPECT_GE(gap, static_cast<std::ptrdiff_t>(kCacheLine));
  }
}

TEST(Padded, ForwardsConstructorAndAccess) {
  Padded<std::pair<int, int>> p(3, 4);
  EXPECT_EQ(p->first, 3);
  EXPECT_EQ((*p).second, 4);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::uint64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(0, kN, 8, [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int count = 0;
  parallel_for(5, 5, 4, [&](std::uint64_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(10, 11, 4, [&](std::uint64_t i) {
    EXPECT_EQ(i, 10u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelChunks, ChunksPartitionTheRange) {
  std::atomic<std::uint64_t> total{0};
  parallel_chunks(100, 100100, 8, [&](std::uint64_t lo, std::uint64_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 100000u);
}

TEST(ParallelChunksIndexed, SlotsAreDistinct) {
  std::vector<std::atomic<int>> slot_hits(8);
  for (auto& s : slot_hits) s.store(0);
  parallel_chunks_indexed(
      0, 1 << 20, 8,
      [&](unsigned slot, std::uint64_t, std::uint64_t) {
        slot_hits[slot].fetch_add(1);
      });
  for (auto& s : slot_hits) EXPECT_LE(s.load(), 1);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(ThreadPin, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ThreadPin, PinningDoesNotCrash) {
  // Pinning may fail in restricted environments; it must never crash and
  // the modulo wrap must accept any cpu index.
  (void)pin_thread_to_cpu(0);
  (void)pin_thread_to_cpu(hardware_threads() + 100);
}

TEST(CpuRelax, Callable) {
  cpu_relax();  // smoke: must compile and not crash on this platform
}

}  // namespace
}  // namespace relax::util
