#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace relax::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, VerticesWithoutEdges) {
  const Graph g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, TriangleBasics) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, DuplicateEdgesRemoved) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {0, 1}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, SelfLoopsDropped) {
  const std::vector<Edge> edges{{0, 0}, {1, 1}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, NeighborsSortedAscending) {
  const std::vector<Edge> edges{{2, 0}, {2, 3}, {2, 1}, {2, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const auto nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, EdgeListRoundTrip) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {3, 4}, {0, 4}};
  const Graph g = Graph::from_edges(5, edges);
  auto listed = g.edge_list();
  EXPECT_EQ(listed.size(), 4u);
  for (const auto& [u, v] : listed) {
    EXPECT_LT(u, v);  // canonical orientation
    EXPECT_TRUE(g.has_edge(u, v));
  }
  const Graph g2 = Graph::from_edges(5, listed);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g2.degree(v), g.degree(v));
}

TEST(Graph, HasEdgeNegativeCases) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}});
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Graph, MaxDegree) {
  const Graph g =
      Graph::from_edges(5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, ArcTargetsMatchNeighbors) {
  const Graph g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}});
  for (Vertex v = 0; v < 4; ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t j = 0; j < nb.size(); ++j)
      EXPECT_EQ(g.arc_target(g.arc_offset(v) + j), nb[j]);
  }
}

TEST(Graph, ParallelConstructionMatchesSequential) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < 500; ++u)
    for (Vertex v = u + 1; v < u + 20 && v < 500; ++v)
      edges.emplace_back(u, v);
  const Graph seq = Graph::from_edges(500, edges, 1);
  const Graph par = Graph::from_edges(500, edges, 8);
  ASSERT_EQ(seq.num_edges(), par.num_edges());
  for (Vertex v = 0; v < 500; ++v) {
    const auto a = seq.neighbors(v);
    const auto b = par.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(LineGraph, PathBecomesPath) {
  // Path 0-1-2-3 has edges e0={0,1}, e1={1,2}, e2={2,3}; L(G) is the path
  // e0-e1-e2.
  const Graph g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  std::vector<Edge> index;
  const Graph lg = line_graph(g, &index);
  EXPECT_EQ(lg.num_vertices(), 3u);
  EXPECT_EQ(lg.num_edges(), 2u);
  ASSERT_EQ(index.size(), 3u);
}

TEST(LineGraph, TriangleBecomesTriangle) {
  const Graph g =
      Graph::from_edges(3, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  const Graph lg = line_graph(g);
  EXPECT_EQ(lg.num_vertices(), 3u);
  EXPECT_EQ(lg.num_edges(), 3u);
}

TEST(LineGraph, StarBecomesClique) {
  // K_{1,4}: all 4 edges share the hub, so L(G) = K_4.
  const Graph g = Graph::from_edges(
      5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const Graph lg = line_graph(g);
  EXPECT_EQ(lg.num_vertices(), 4u);
  EXPECT_EQ(lg.num_edges(), 6u);
}

TEST(LineGraph, AdjacencyMeansSharedEndpoint) {
  const Graph g = Graph::from_edges(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {2, 3}});
  std::vector<Edge> index;
  const Graph lg = line_graph(g, &index);
  for (Vertex e = 0; e < lg.num_vertices(); ++e) {
    for (const Vertex f : lg.neighbors(e)) {
      const auto [a, b] = index[e];
      const auto [c, d] = index[f];
      EXPECT_TRUE(a == c || a == d || b == c || b == d);
    }
  }
}

}  // namespace
}  // namespace relax::graph
