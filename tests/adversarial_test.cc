// Adversarial-scheduler and failure-injection tests.
//
// Definition 1 bounds what a relaxed scheduler may do *probabilistically*;
// the framework's determinism, however, must survive ANY schedule. These
// tests drive the executors with schedulers crafted to be as hostile as a
// rank bound allows — always returning the worst (largest-label) element
// of the top-k, delaying targeted labels, or flipping between extremes —
// and assert the output still equals the sequential execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/mis.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "sched/scheduler.h"

namespace relax {
namespace {

using graph::Graph;
using sched::Priority;

/// Always serves the *largest* label among the k smallest present — the
/// adversarially maximal choice permitted by a strict k-rank bound. Unlike
/// KBoundedScheduler it has no fairness valve, so it is usable only for
/// problems whose dependency orientation guarantees that some element of
/// every k-window is processable (true for label-oriented frameworks: the
/// window always contains the global minimum after k-1 hostile serves).
class WorstOfTopK {
 public:
  explicit WorstOfTopK(std::uint32_t k) : k_(std::max(k, 1u)) {}

  void insert(Priority p) { present_.insert(p); }

  std::optional<Priority> approx_get_min() {
    if (present_.empty()) return std::nullopt;
    // After a failed serve the element is re-inserted; to guarantee
    // progress we rotate which of the top-k we serve, reaching position 0
    // (the exact minimum) at least once every k pops.
    auto it = present_.begin();
    const std::size_t window =
        std::min<std::size_t>(k_, present_.size());
    const std::size_t pos = window - 1 - (tick_++ % window);
    std::advance(it, pos);
    const Priority p = *it;
    present_.erase(it);
    return p;
  }

  [[nodiscard]] bool empty() const { return present_.empty(); }
  [[nodiscard]] std::size_t size() const { return present_.size(); }

 private:
  std::uint32_t k_;
  std::uint64_t tick_ = 0;
  std::set<Priority> present_;
};

static_assert(sched::SequentialScheduler<WorstOfTopK>);

/// Serves the minimum except for a targeted label, which it starves for
/// `delay` pops (bounded starvation — an extreme fairness-bound stress).
class StarveOne {
 public:
  StarveOne(Priority victim, std::uint32_t delay)
      : victim_(victim), delay_(delay) {}

  void insert(Priority p) { present_.insert(p); }

  std::optional<Priority> approx_get_min() {
    if (present_.empty()) return std::nullopt;
    auto it = present_.begin();
    if (*it == victim_ && starved_ < delay_ && present_.size() > 1) {
      ++starved_;
      ++it;  // skip the victim; serve the second-smallest
    }
    const Priority p = *it;
    present_.erase(it);
    return p;
  }

  [[nodiscard]] bool empty() const { return present_.empty(); }
  [[nodiscard]] std::size_t size() const { return present_.size(); }

 private:
  Priority victim_;
  std::uint32_t delay_;
  std::uint32_t starved_ = 0;
  std::set<Priority> present_;
};

static_assert(sched::SequentialScheduler<StarveOne>);

/// FIFO of re-inserted elements first, then strictly ascending — models a
/// scheduler that always re-serves failed tasks immediately (maximum
/// failed-delete pressure on the same dependency edge).
class ReserveFailedFirst {
 public:
  void insert(Priority p) {
    if (seen_.contains(p)) {
      retry_.push_back(p);  // re-insertion: serve before anything else
    } else {
      seen_.insert(p);
      fresh_.insert(p);
    }
  }

  std::optional<Priority> approx_get_min() {
    if (!retry_.empty()) {
      const Priority p = retry_.front();
      retry_.pop_front();
      return p;
    }
    if (fresh_.empty()) return std::nullopt;
    const Priority p = *fresh_.begin();
    fresh_.erase(fresh_.begin());
    return p;
  }

  [[nodiscard]] bool empty() const {
    return retry_.empty() && fresh_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return retry_.size() + fresh_.size();
  }

 private:
  std::set<Priority> seen_;
  std::set<Priority> fresh_;
  std::deque<Priority> retry_;
};

static_assert(sched::SequentialScheduler<ReserveFailedFirst>);

TEST(Adversarial, WorstOfTopKMisIsDeterministic) {
  for (const std::uint32_t k : {2u, 7u, 32u, 301u}) {
    const Graph g = graph::gnm(400, 2400, k);
    const auto pri = graph::random_priorities(400, k + 5);
    const auto expected = algorithms::sequential_greedy_mis(g, pri);
    algorithms::MisProblem problem(g, pri);
    WorstOfTopK sched(k);
    const auto stats = core::run_sequential(problem, pri, sched);
    EXPECT_EQ(problem.result(), expected) << "k=" << k;
    EXPECT_EQ(stats.processed + stats.dead_skips, 400u);
  }
}

TEST(Adversarial, WorstOfTopKColoringOnClique) {
  // Clique + hostile scheduler: the tightness example of Theorem 1. Every
  // pop that is not the current minimum fails.
  const Graph g = graph::clique(60);
  const auto pri = graph::random_priorities(60, 3);
  algorithms::ColoringProblem problem(g, pri);
  WorstOfTopK sched(8);
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.colors(), algorithms::sequential_greedy_coloring(g, pri));
  // Hostile serves waste ~ (k-1)/k of pops: check the Theta(nk) shape.
  EXPECT_GT(stats.failed_deletes, 60u * 4);
}

TEST(Adversarial, StarvedVertexStillDecidedCorrectly) {
  const Graph g = graph::gnm(300, 1500, 11);
  const auto pri = graph::random_priorities(300, 13);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  // Starve each of several victims in turn, including label 0 (the global
  // minimum — the worst case for dependency waiting).
  for (const Priority victim : {0u, 1u, 150u, 299u}) {
    algorithms::MisProblem problem(g, pri);
    StarveOne sched(victim, /*delay=*/5000);
    core::run_sequential(problem, pri, sched);
    EXPECT_EQ(problem.result(), expected) << "victim=" << victim;
  }
}

TEST(Adversarial, ImmediateRetryStormConverges) {
  // Re-serving failed tasks immediately maximizes repeated failed deletes
  // on the same edge; the run must converge with the exact output anyway.
  const Graph g = graph::gnm(500, 4000, 17);
  const auto pri = graph::random_priorities(500, 19);
  const auto expected = algorithms::sequential_greedy_coloring(g, pri);
  algorithms::ColoringProblem problem(g, pri);
  ReserveFailedFirst sched;
  const auto stats = core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.colors(), expected);
  EXPECT_EQ(stats.processed, 500u);
}

TEST(Adversarial, FullUniverseRelaxationIsStillCorrect) {
  // k = n: the scheduler may return anything. MIS must still match.
  const Graph g = graph::barabasi_albert(350, 4, 23);
  const auto pri = graph::random_priorities(350, 29);
  const auto expected = algorithms::sequential_greedy_mis(g, pri);
  algorithms::MisProblem problem(g, pri);
  WorstOfTopK sched(350);
  core::run_sequential(problem, pri, sched);
  EXPECT_EQ(problem.result(), expected);
}

TEST(Adversarial, WastedWorkGrowsWithK) {
  // Failed deletes should be monotone-ish in the relaxation k on a fixed
  // dense input (Theorem 2's poly(k), tested at the adversarial extreme).
  const Graph g = graph::gnm(600, 18000, 31);
  const auto pri = graph::random_priorities(600, 37);
  std::uint64_t last = 0;
  for (const std::uint32_t k : {1u, 8u, 64u}) {
    algorithms::MisProblem problem(g, pri);
    WorstOfTopK sched(k);
    const auto stats = core::run_sequential(problem, pri, sched);
    EXPECT_GE(stats.failed_deletes + 8, last)
        << "waste dropped sharply at k=" << k;
    last = stats.failed_deletes;
  }
  EXPECT_GT(last, 0u);
}

}  // namespace
}  // namespace relax
