// obs::Histogram / obs::AtomicHistogram — bucket boundaries, percentile
// math on known distributions, merge, and the atomic snapshot/merge_from
// paths the registry hot loops rely on.
#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace relax::obs {
namespace {

TEST(BucketScheme, BoundariesArePowersOfTwo) {
  EXPECT_EQ(bucket_index(0), 0u);
  EXPECT_EQ(bucket_index(1), 1u);
  EXPECT_EQ(bucket_index(2), 2u);
  EXPECT_EQ(bucket_index(3), 2u);
  EXPECT_EQ(bucket_index(4), 3u);
  EXPECT_EQ(bucket_index(7), 3u);
  EXPECT_EQ(bucket_index(8), 4u);
  EXPECT_EQ(bucket_index(~std::uint64_t{0}), 64u);
  for (unsigned b = 0; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(bucket_index(bucket_floor(b)), b) << "floor of bucket " << b;
    EXPECT_EQ(bucket_index(bucket_ceil(b)), b) << "ceil of bucket " << b;
  }
  // Floors and ceils tile uint64 with no gaps.
  for (unsigned b = 1; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(bucket_floor(b), bucket_ceil(b - 1) + 1);
  }
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(Histogram, CountSumMaxMean) {
  Histogram h;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 10u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 16.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(1), 1u);  // {1}
  EXPECT_EQ(h.bucket(2), 2u);  // {2,3}
  EXPECT_EQ(h.bucket(4), 1u);  // {8..15}
}

// Single-value buckets make small-value percentiles exact.
TEST(Histogram, PercentileExactOnZerosAndOnes) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.record(0);
  for (int i = 0; i < 50; ++i) h.record(1);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(25.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(75.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1.0);
}

// Wider buckets are correct to within their power-of-two span, and the
// boundary interpolation is monotone in p.
TEST(Histogram, PercentileWithinBucketEnvelope) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double exact = p / 100.0 * 1000.0;
    const double got = h.percentile(p);
    EXPECT_GE(got, exact / 2.0) << "p=" << p;
    EXPECT_LE(got, exact * 2.0) << "p=" << p;
    EXPECT_GE(got, prev) << "p=" << p << " (monotonicity)";
    prev = got;
  }
  // The top percentile interpolates toward the observed max, never past it.
  EXPECT_LE(h.percentile(99.9), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
}

TEST(Histogram, PercentileSingleSample) {
  Histogram h;
  h.record(777);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 512.0);  // bucket floor
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 777.0);
  // Any interior percentile stays inside [floor, max].
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 777.0);
}

TEST(Histogram, MergeMatchesCombinedStream) {
  Histogram a, b, all;
  for (std::uint64_t v = 0; v < 200; ++v) {
    (v % 2 == 0 ? a : b).record(v * 3);
    all.record(v * 3);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.max(), all.max());
  for (unsigned bkt = 0; bkt < kHistogramBuckets; ++bkt)
    EXPECT_EQ(a.bucket(bkt), all.bucket(bkt)) << "bucket " << bkt;
  for (double p : {10.0, 50.0, 95.0, 99.0})
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p));
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.record(5);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.max(), 5u);
}

TEST(AtomicHistogram, SnapshotMatchesPlainRecording) {
  AtomicHistogram atomic;
  Histogram plain;
  for (std::uint64_t v = 0; v < 500; ++v) {
    atomic.record(v * 7);
    plain.record(v * 7);
  }
  const Histogram snap = atomic.snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.sum(), plain.sum());
  EXPECT_EQ(snap.max(), plain.max());
  for (double p : {50.0, 95.0, 99.0})
    EXPECT_DOUBLE_EQ(snap.percentile(p), plain.percentile(p));
}

// The hot-loop path: accumulate locally, flush once via merge_from.
TEST(AtomicHistogram, MergeFromEqualsDirectRecording) {
  AtomicHistogram direct, batched;
  Histogram local;
  for (std::uint64_t v : {1u, 1u, 2u, 8u, 100u, 100000u}) {
    direct.record(v);
    local.record(v);
  }
  batched.merge_from(local);
  batched.merge_from(Histogram{});  // empty flush is a no-op
  const Histogram a = direct.snapshot();
  const Histogram b = batched.snapshot();
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.max(), b.max());
  for (unsigned bkt = 0; bkt < kHistogramBuckets; ++bkt)
    EXPECT_EQ(a.bucket(bkt), b.bucket(bkt));
}

}  // namespace
}  // namespace relax::obs
