// util/topology + sched/stripe_map — the placement layer: sysfs socket
// discovery (with graceful flat fallback), the deterministic virtual
// split, worker planning, and the StripeMap block partition / steal
// schedule the backends sample through.
#include "util/topology.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sched/stripe_map.h"
#include "util/rng.h"

namespace relax {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- spec

TEST(TopologySpec, ParsesTheThreeModes) {
  const auto off = util::TopologySpec::parse("off");
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->mode, util::TopologyMode::kOff);
  EXPECT_FALSE(off->enabled());
  EXPECT_EQ(off->label(), "off");

  const auto aut = util::TopologySpec::parse("auto");
  ASSERT_TRUE(aut.has_value());
  EXPECT_EQ(aut->mode, util::TopologyMode::kAuto);
  EXPECT_TRUE(aut->enabled());
  EXPECT_EQ(aut->label(), "auto");

  const auto virt = util::TopologySpec::parse("virtual:4");
  ASSERT_TRUE(virt.has_value());
  EXPECT_EQ(virt->mode, util::TopologyMode::kVirtual);
  EXPECT_EQ(virt->domains, 4u);
  EXPECT_EQ(virt->label(), "virtual:4");
}

TEST(TopologySpec, RejectsEverythingElse) {
  // CLI layers turn nullopt into exit 2; none of these may slip through.
  for (const char* bad : {"", "on", "numa", "Off", "virtual", "virtual:",
                          "virtual:0", "virtual:-1", "virtual:2x",
                          "virtual:x", "auto:2"}) {
    EXPECT_FALSE(util::TopologySpec::parse(bad).has_value()) << bad;
  }
}

// ------------------------------------------------------------ topology

TEST(Topology, FlatIsOneDomainCoveringEverySlot) {
  const auto t = util::Topology::flat(6);
  EXPECT_EQ(t.num_domains, 1u);
  ASSERT_EQ(t.cpu_domain.size(), 6u);
  for (const unsigned d : t.cpu_domain) EXPECT_EQ(d, 0u);
  // Degenerate input still yields a usable (single-slot) topology.
  EXPECT_EQ(util::Topology::flat(0).cpu_domain.size(), 1u);
}

TEST(Topology, VirtualSplitIsContiguousAndExhaustive) {
  const auto t = util::Topology::virtual_split(8, 2);
  EXPECT_EQ(t.num_domains, 2u);
  EXPECT_EQ(t.cpu_domain,
            (std::vector<unsigned>{0, 0, 0, 0, 1, 1, 1, 1}));

  // Non-dividing split: contiguous non-decreasing blocks, every domain
  // non-empty, first slot in domain 0 and last in domain k-1.
  const auto odd = util::Topology::virtual_split(5, 2);
  EXPECT_EQ(odd.cpu_domain, (std::vector<unsigned>{0, 0, 0, 1, 1}));
  for (unsigned n : {1u, 2u, 3u, 7u, 16u, 33u}) {
    for (unsigned k : {1u, 2u, 3u, 5u, 8u}) {
      const auto v = util::Topology::virtual_split(n, k);
      const unsigned d = std::min(k, n);  // k is clamped into [1, n]
      EXPECT_EQ(v.num_domains, d);
      std::set<unsigned> seen;
      unsigned prev = 0;
      for (const unsigned dom : v.cpu_domain) {
        EXPECT_GE(dom, prev);
        EXPECT_LT(dom, d);
        seen.insert(dom);
        prev = dom;
      }
      EXPECT_EQ(seen.size(), d) << "empty domain at n=" << n << " k=" << k;
    }
  }
}

TEST(Topology, VirtualSplitClampsDegenerateRequests) {
  EXPECT_EQ(util::Topology::virtual_split(4, 0).num_domains, 1u);
  EXPECT_EQ(util::Topology::virtual_split(4, 99).num_domains, 4u);
}

/// Sysfs fixture tree: <root>/cpu<N>/topology/physical_package_id per CPU.
class SysfsFixture {
 public:
  SysfsFixture() {
    root_ = fs::temp_directory_path() /
            ("relax_topology_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~SysfsFixture() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void add_cpu(unsigned cpu, const std::string& package_id) {
    const fs::path dir = root_ / ("cpu" + std::to_string(cpu)) / "topology";
    fs::create_directories(dir);
    std::FILE* f =
        std::fopen((dir / "physical_package_id").string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(package_id.c_str(), f);
    std::fclose(f);
  }

  [[nodiscard]] std::string root() const { return root_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path root_;
};

TEST(Topology, DiscoversTwoSocketsFromSysfs) {
  SysfsFixture fx;
  // Non-dense package ids (3 and 7, the way real firmware numbers them):
  // must remap to dense domains ordered by package id.
  fx.add_cpu(0, "3\n");
  fx.add_cpu(1, "3\n");
  fx.add_cpu(2, "7\n");
  fx.add_cpu(3, "7\n");
  const auto t = util::Topology::discover_from(fx.root(), {0, 1, 2, 3});
  EXPECT_EQ(t.num_domains, 2u);
  EXPECT_EQ(t.cpu_domain, (std::vector<unsigned>{0, 0, 1, 1}));
}

TEST(Topology, SingleSocketDiscoveryFallsBackToFlat) {
  SysfsFixture fx;
  for (unsigned c = 0; c < 4; ++c) fx.add_cpu(c, "0\n");
  const auto t = util::Topology::discover_from(fx.root(), {0, 1, 2, 3});
  EXPECT_EQ(t.num_domains, 1u);
  EXPECT_EQ(t.cpu_domain, (std::vector<unsigned>{0, 0, 0, 0}));
}

TEST(Topology, UnreadablePackageIdFallsBackToFlat) {
  SysfsFixture fx;
  fx.add_cpu(0, "0\n");
  fx.add_cpu(1, "1\n");
  // cpu2 has no topology files at all — a host that doesn't expose them.
  const auto t = util::Topology::discover_from(fx.root(), {0, 1, 2});
  EXPECT_EQ(t.num_domains, 1u);
  EXPECT_EQ(t.cpu_domain.size(), 3u);
}

TEST(Topology, NonNumericPackageIdFallsBackToFlat) {
  SysfsFixture fx;
  fx.add_cpu(0, "0\n");
  fx.add_cpu(1, "garbage\n");
  EXPECT_EQ(util::Topology::discover_from(fx.root(), {0, 1}).num_domains, 1u);
}

TEST(Topology, RespectsTheAllowedCpuList) {
  SysfsFixture fx;
  fx.add_cpu(0, "0\n");
  fx.add_cpu(1, "0\n");
  fx.add_cpu(4, "1\n");  // restricted cpuset: slots map to cpus {0, 4}
  const auto t = util::Topology::discover_from(fx.root(), {0, 4});
  EXPECT_EQ(t.num_domains, 2u);
  EXPECT_EQ(t.cpu_domain, (std::vector<unsigned>{0, 1}));
}

// ------------------------------------------------------- plan_workers

TEST(PlanWorkers, OffIsIdentityAndSingleDomain) {
  const auto p = util::plan_workers(
      util::TopologySpec{util::TopologyMode::kOff, 1}, 4);
  EXPECT_EQ(p.num_domains, 1u);
  EXPECT_EQ(p.pin_slot, (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(p.domain, (std::vector<unsigned>{0, 0, 0, 0}));
}

TEST(PlanWorkers, VirtualSplitsWorkersIntoBlocks) {
  const auto p = util::plan_workers(
      util::TopologySpec{util::TopologyMode::kVirtual, 2}, 4);
  EXPECT_EQ(p.num_domains, 2u);
  // Identity pinning (the host really is flat), block-split domains.
  EXPECT_EQ(p.pin_slot, (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(p.domain, (std::vector<unsigned>{0, 0, 1, 1}));
}

TEST(PlanWorkers, VirtualClampsToTheWorkerCount) {
  const auto p = util::plan_workers(
      util::TopologySpec{util::TopologyMode::kVirtual, 16}, 3);
  EXPECT_EQ(p.num_domains, 3u);
  EXPECT_EQ(p.domain, (std::vector<unsigned>{0, 1, 2}));
}

TEST(PlanWorkers, AutoYieldsAConsistentPlacementOnAnyHost) {
  // Host-independent invariants: whatever discover() finds (flat in CI
  // containers, real sockets on big boxes), the placement must be usable.
  const auto p = util::plan_workers(
      util::TopologySpec{util::TopologyMode::kAuto, 1}, 6);
  ASSERT_EQ(p.pin_slot.size(), 6u);
  ASSERT_EQ(p.domain.size(), 6u);
  EXPECT_GE(p.num_domains, 1u);
  for (const unsigned d : p.domain) EXPECT_LT(d, p.num_domains);
}

// ----------------------------------------------------------- StripeMap

TEST(StripeMap, BlockPartitionIsExactAndInvertible) {
  for (const std::size_t stripes : {1u, 2u, 7u, 8u, 16u, 33u}) {
    for (const unsigned domains : {1u, 2u, 3u, 4u, 8u}) {
      const sched::StripeMap map(stripes, domains);
      const unsigned d = map.domains();
      EXPECT_LE(d, stripes);  // clamped: every domain non-empty
      std::size_t covered = 0;
      for (unsigned dom = 0; dom < d; ++dom) {
        EXPECT_EQ(map.domain_begin(dom), covered);
        EXPECT_GE(map.domain_size(dom), 1u);
        covered += map.domain_size(dom);
      }
      EXPECT_EQ(covered, stripes);
      for (std::size_t i = 0; i < stripes; ++i) {
        const unsigned owner = map.domain_of_stripe(i);
        EXPECT_GE(i, map.domain_begin(owner));
        EXPECT_LT(i, map.domain_begin(owner) + map.domain_size(owner));
      }
    }
  }
}

TEST(StripeMap, DegenerateRequestsClampToUsableValues) {
  EXPECT_EQ(sched::StripeMap(0, 0).stripes(), 1u);
  EXPECT_EQ(sched::StripeMap(0, 0).domains(), 1u);
  EXPECT_EQ(sched::StripeMap(4, 9).domains(), 4u);
}

TEST(StripeMap, StealScheduleCyclesEveryForeignDomain) {
  const sched::StripeMap map(16, 4);
  for (unsigned d = 0; d < 4; ++d) {
    std::set<unsigned> targets;
    for (std::uint64_t attempt = 0; attempt < 9; ++attempt) {
      const unsigned victim = map.steal_domain(d, attempt);
      EXPECT_NE(victim, d);  // stealing from yourself is not stealing
      EXPECT_LT(victim, 4u);
      targets.insert(victim);
    }
    // Every other domain reachable: no stripe can be starved forever.
    EXPECT_EQ(targets.size(), 3u) << "from domain " << d;
  }
}

/// Peek policy over a plain head array (nullopt == empty stripe) — the
/// same shape the MultiQueues adapt for sampling.h.
struct HeadPolicy {
  std::vector<std::optional<int>> heads;
  [[nodiscard]] std::size_t count() const { return heads.size(); }
  [[nodiscard]] std::optional<int> peek(std::size_t i) const {
    return heads[i];
  }
};

TEST(StripeMap, StripedClaimsPreferTheOwnBlockAndStealOnSchedule) {
  const sched::StripeMap map(8, 2);  // domain 0: [0,4), domain 1: [4,8)
  HeadPolicy policy{{1, 2, 3, 4, 5, 6, 7, 8}};  // everything nonempty
  sched::StripeContext ctx;
  ctx.domain = 0;
  util::Rng rng(42);

  constexpr int kClaims = 800;
  std::vector<int> hits(8, 0);
  for (int i = 0; i < kClaims; ++i) {
    const auto got = sched::sampling::select_and_claim_striped(
        policy, map, ctx, rng, /*choices=*/2, /*probe_limit=*/4,
        std::optional<std::size_t>{},
        [](std::size_t stripe) { return std::optional<std::size_t>{stripe}; });
    ASSERT_TRUE(got.has_value());
    ++hits[*got];
  }
  // Every claim succeeds on the first sample, so exactly one sample in
  // kStealPeriod targets the foreign block.
  EXPECT_EQ(ctx.local_claims + ctx.steal_claims,
            static_cast<std::uint64_t>(kClaims));
  EXPECT_EQ(ctx.steal_claims,
            static_cast<std::uint64_t>(kClaims) / sched::StripeMap::kStealPeriod);
  // Stolen claims landed in the foreign block, everything else at home.
  int foreign = 0;
  for (int s = 4; s < 8; ++s) foreign += hits[s];
  EXPECT_EQ(static_cast<std::uint64_t>(foreign), ctx.steal_claims);
}

TEST(StripeMap, StealReachesAnOtherwiseStarvedDomain) {
  // Only a foreign stripe holds work: the steal schedule must reach it
  // without waiting for the probe-limit fallback every time.
  const sched::StripeMap map(8, 2);
  HeadPolicy policy{{std::nullopt, std::nullopt, std::nullopt, std::nullopt,
                     std::nullopt, std::nullopt, 9, std::nullopt}};
  sched::StripeContext ctx;
  ctx.domain = 0;
  util::Rng rng(7);
  const auto got = sched::sampling::select_and_claim_striped(
      policy, map, ctx, rng, 2, /*probe_limit=*/1000,
      std::optional<std::size_t>{},
      [](std::size_t stripe) { return std::optional<std::size_t>{stripe}; });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 6u);
  EXPECT_EQ(ctx.steal_claims, 1u);
  EXPECT_EQ(ctx.local_claims, 0u);
}

TEST(StripeMap, DisabledStealStillFindsForeignWorkViaTheGlobalScan) {
  // steal_period 0: domain-local sampling only. The probe-limit fallback
  // is a GLOBAL scan, so observed-empty keeps its flat meaning and the
  // foreign stripe is still reachable — just slowly (the starved-domain
  // quality leg measures the rank cost of exactly this configuration).
  const sched::StripeMap map(8, 2, /*steal_period=*/0);
  HeadPolicy policy{{std::nullopt, std::nullopt, std::nullopt, std::nullopt,
                     5, std::nullopt, std::nullopt, std::nullopt}};
  sched::StripeContext ctx;
  ctx.domain = 0;
  util::Rng rng(3);
  const auto got = sched::sampling::select_and_claim_striped(
      policy, map, ctx, rng, 2, /*probe_limit=*/4,
      std::optional<std::size_t>{},
      [](std::size_t stripe) { return std::optional<std::size_t>{stripe}; });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 4u);
}

TEST(StripeMap, StripedClaimReportsEmptyOnlyAfterAGlobalScan) {
  const sched::StripeMap map(8, 2);
  HeadPolicy policy{std::vector<std::optional<int>>(8, std::nullopt)};
  sched::StripeContext ctx;
  ctx.domain = 1;
  util::Rng rng(5);
  const auto got = sched::sampling::select_and_claim_striped(
      policy, map, ctx, rng, 2, /*probe_limit=*/4,
      std::optional<std::size_t>{},
      [](std::size_t stripe) { return std::optional<std::size_t>{stripe}; });
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(ctx.local_claims + ctx.steal_claims, 0u);
}

TEST(StripeMap, DomainInsertsStayInTheOwnBlock) {
  const sched::StripeMap map(10, 2);  // blocks [0,5) and [5,10)
  HeadPolicy policy{std::vector<std::optional<int>>(10, 1)};
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::size_t t0 =
        sched::sampling::pick_uniform_in_domain(policy, map, 0, rng);
    EXPECT_LT(t0, 5u);
    const std::size_t t1 =
        sched::sampling::pick_uniform_in_domain(policy, map, 1, rng);
    EXPECT_GE(t1, 5u);
    EXPECT_LT(t1, 10u);
  }
}

}  // namespace
}  // namespace relax
