// End-to-end tests for the networked job server (src/server/server.h):
// loopback round trips for every problem kind, deterministic BUSY shedding
// at admission, error responses for bad requests, connection teardown on
// corrupt streams, and the in-process submit_local path.
#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "graph/permutation.h"
#include "obs/metrics.h"

namespace protocol = relax::server::protocol;
using relax::server::GraphSpec;
using relax::server::JobServer;
using relax::server::ServerOptions;

namespace {

/// Problem whose tasks spin on a shared gate — holds engine slots open
/// deterministically so admission-full states can be scripted.
class GatedProblem {
 public:
  GatedProblem(std::uint32_t n, const std::atomic<bool>& gate)
      : n_(n), gate_(&gate) {}
  [[nodiscard]] std::uint32_t num_tasks() const { return n_; }
  relax::core::Outcome try_process(relax::core::Task /*t*/) {
    return gate_->load(std::memory_order_acquire)
               ? relax::core::Outcome::kProcessed
               : relax::core::Outcome::kNotReady;
  }

 private:
  std::uint32_t n_;
  const std::atomic<bool>* gate_;
};

ServerOptions small_server_options() {
  ServerOptions opts;
  opts.engine.num_threads = 2;
  opts.graphs = {GraphSpec{200, 600, 1}};  // small: tests stay fast
  return opts;
}

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Blocking-reads one response frame off the socket; nullopt on EOF.
std::optional<protocol::Response> read_response(int fd,
                                                protocol::FrameReader& r) {
  for (;;) {
    if (auto payload = r.next())
      return protocol::decode_response(
          std::span<const std::uint8_t>(*payload));
    std::uint8_t buf[1024];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) return std::nullopt;
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    r.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    if (r.corrupt()) return std::nullopt;
  }
}

std::optional<protocol::Response> call(int fd, protocol::FrameReader& r,
                                       const protocol::Request& req) {
  std::vector<std::uint8_t> wire;
  protocol::encode(req, wire);
  if (!send_all(fd, wire)) return std::nullopt;
  return read_response(fd, r);
}

/// RAII: run() on a background thread, stopped and joined on destruction.
class Serving {
 public:
  explicit Serving(JobServer& server)
      : server_(server), thread_([this] { server_.run(); }) {}
  ~Serving() {
    server_.request_stop();
    thread_.join();
  }

 private:
  JobServer& server_;
  std::thread thread_;
};

}  // namespace

TEST(JobServer, LoopbackRoundTripEveryKind) {
  JobServer server(small_server_options());
  Serving serving(server);
  const int fd = dial(server.port());
  ASSERT_GE(fd, 0);
  protocol::FrameReader reader;

  std::uint64_t id = 100;
  for (const auto kind :
       {protocol::Kind::kMis, protocol::Kind::kColoring,
        protocol::Kind::kMatching}) {
    protocol::Request req;
    req.id = ++id;
    req.kind = kind;
    req.audit = true;  // exercise the Definition 1 monitor over the wire
    const auto resp = call(fd, reader, req);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->id, id);
    EXPECT_EQ(resp->status, protocol::Status::kOk);
    EXPECT_EQ(resp->error, protocol::ErrorCode::kNone);
    EXPECT_GT(resp->iterations, 0u);
    EXPECT_GT(resp->processed, 0u);
    EXPECT_GT(resp->latency_ns, 0u);
    EXPECT_GT(resp->rank_samples, 0u) << "audit was requested";
  }
  ::close(fd);
}

TEST(JobServer, PipelinedRequestsAllComplete) {
  ServerOptions opts = small_server_options();
  opts.engine.max_in_flight = 4;
  opts.engine.max_pending = 64;
  relax::obs::MetricsRegistry registry;
  opts.metrics = &registry;
  JobServer server(std::move(opts));
  Serving serving(server);
  const int fd = dial(server.port());
  ASSERT_GE(fd, 0);

  // Fire 16 requests without reading, then collect: responses may arrive
  // in any order (the engine multiplexes), ids are the correlation.
  constexpr int kRequests = 16;
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < kRequests; ++i) {
    protocol::Request req;
    req.id = static_cast<std::uint64_t>(i) + 1;
    req.kind = static_cast<protocol::Kind>(i % 3);
    req.seed = static_cast<std::uint64_t>(i) + 1;
    protocol::encode(req, wire);
  }
  ASSERT_TRUE(send_all(fd, wire));

  protocol::FrameReader reader;
  std::vector<bool> seen(kRequests + 1, false);
  for (int i = 0; i < kRequests; ++i) {
    const auto resp = read_response(fd, reader);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, protocol::Status::kOk);
    ASSERT_GE(resp->id, 1u);
    ASSERT_LE(resp->id, static_cast<std::uint64_t>(kRequests));
    EXPECT_FALSE(seen[resp->id]) << "duplicate response id " << resp->id;
    seen[resp->id] = true;
  }
  ::close(fd);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.server.requests_accepted, kRequests);
  EXPECT_EQ(snap.server.requests_completed, kRequests);
  EXPECT_EQ(snap.server.requests_rejected, 0u);
  EXPECT_EQ(snap.server.request_latency_ns.count(), kRequests);
}

// Deterministic BUSY: gate jobs fill max_in_flight + max_pending, so the
// next request MUST be shed with an explicit BUSY response — bounded
// admission made visible on the wire.
TEST(JobServer, ShedsBusyWhenAdmissionIsFull) {
  ServerOptions opts = small_server_options();
  opts.engine.max_in_flight = 1;
  opts.engine.max_pending = 1;
  relax::obs::MetricsRegistry registry;
  opts.metrics = &registry;
  JobServer server(std::move(opts));
  Serving serving(server);

  std::atomic<bool> gate{false};
  GatedProblem j1(64, gate), j2(64, gate);
  const auto pri = relax::graph::identity_priorities(64);
  auto t1 = server.engine().submit_relaxed(j1, pri, {});  // active, gated
  auto t2 = server.engine().submit_relaxed(j2, pri, {});  // fills the queue

  const int fd = dial(server.port());
  ASSERT_GE(fd, 0);
  protocol::FrameReader reader;
  protocol::Request req;
  req.id = 7;
  const auto busy = call(fd, reader, req);
  ASSERT_TRUE(busy.has_value());
  EXPECT_EQ(busy->id, 7u);
  EXPECT_EQ(busy->status, protocol::Status::kBusy);

  gate.store(true, std::memory_order_release);
  t1.wait();
  t2.wait();

  // Capacity is back: the same request now completes on the same
  // connection — BUSY is a retryable state, not a connection error.
  req.id = 8;
  const auto ok = call(fd, reader, req);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->id, 8u);
  EXPECT_EQ(ok->status, protocol::Status::kOk);
  ::close(fd);

  const auto snap = registry.snapshot();
  EXPECT_GE(snap.server.requests_rejected, 1u);
}

TEST(JobServer, RejectsBadGraphAndBadBackend) {
  JobServer server(small_server_options());
  Serving serving(server);
  const int fd = dial(server.port());
  ASSERT_GE(fd, 0);
  protocol::FrameReader reader;

  protocol::Request req;
  req.id = 1;
  req.graph_id = 42;  // only graph 0 is resident
  auto resp = call(fd, reader, req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, protocol::Status::kError);
  EXPECT_EQ(resp->error, protocol::ErrorCode::kBadGraph);

  req.graph_id = 0;
  req.id = 2;
  req.backend = "no-such-backend";
  resp = call(fd, reader, req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->id, 2u);
  EXPECT_EQ(resp->status, protocol::Status::kError);
  EXPECT_EQ(resp->error, protocol::ErrorCode::kBadBackend);

  // The connection survived both rejections.
  req.id = 3;
  req.backend.clear();
  resp = call(fd, reader, req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, protocol::Status::kOk);
  ::close(fd);
}

TEST(JobServer, AnswersUndecodablePayloadAndKeepsConnection) {
  JobServer server(small_server_options());
  Serving serving(server);
  const int fd = dial(server.port());
  ASSERT_GE(fd, 0);
  protocol::FrameReader reader;

  // Well-framed garbage: correct length prefix, meaningless payload.
  const std::vector<std::uint8_t> frame = {6, 0, 0, 0,  // length 6
                                           9, 9, 9, 9, 9, 9};
  ASSERT_TRUE(send_all(fd, frame));
  const auto resp = read_response(fd, reader);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->id, 0u) << "an undecodable request has no usable id";
  EXPECT_EQ(resp->status, protocol::Status::kError);
  EXPECT_EQ(resp->error, protocol::ErrorCode::kBadFrame);

  // Framing was never broken, so the stream is still usable.
  protocol::Request req;
  req.id = 11;
  const auto ok = call(fd, reader, req);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->id, 11u);
  EXPECT_EQ(ok->status, protocol::Status::kOk);
  ::close(fd);
}

TEST(JobServer, ClosesConnectionOnOversizedLengthPrefix) {
  JobServer server(small_server_options());
  Serving serving(server);
  const int fd = dial(server.port());
  ASSERT_GE(fd, 0);

  const std::uint32_t len = protocol::kMaxFrameBytes + 1;
  const std::vector<std::uint8_t> prefix = {
      static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len >> 16),
      static_cast<std::uint8_t>(len >> 24)};
  ASSERT_TRUE(send_all(fd, prefix));

  // No resync is possible past a bad length: the server must drop us.
  std::uint8_t buf[64];
  ssize_t n;
  do {
    n = ::read(fd, buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  EXPECT_EQ(n, 0) << "expected EOF after a corrupt length prefix";
  ::close(fd);
}

TEST(JobServer, SubmitLocalDrivesTheSamePath) {
  ServerOptions opts = small_server_options();
  opts.listen = false;  // in-process mode: no sockets at all
  JobServer server(std::move(opts));
  EXPECT_EQ(server.num_graphs(), 1u);

  for (const auto kind :
       {protocol::Kind::kMis, protocol::Kind::kColoring,
        protocol::Kind::kMatching}) {
    protocol::Request req;
    req.id = 5;
    req.kind = kind;
    std::promise<protocol::Response> done;
    auto fut = done.get_future();
    protocol::Response immediate;
    const auto status = server.submit_local(
        req, [&done](const protocol::Response& r) { done.set_value(r); },
        &immediate);
    ASSERT_EQ(status, protocol::Status::kOk);
    const auto resp = fut.get();
    EXPECT_EQ(resp.id, 5u);
    EXPECT_EQ(resp.status, protocol::Status::kOk);
    EXPECT_GT(resp.processed, 0u);
  }

  // Validation errors surface synchronously in *immediate.
  protocol::Request bad;
  bad.id = 6;
  bad.graph_id = 9;
  protocol::Response immediate;
  const auto status = server.submit_local(
      bad, [](const protocol::Response&) { FAIL() << "must not deliver"; },
      &immediate);
  EXPECT_EQ(status, protocol::Status::kError);
  EXPECT_EQ(immediate.id, 6u);
  EXPECT_EQ(immediate.error, protocol::ErrorCode::kBadGraph);
}
