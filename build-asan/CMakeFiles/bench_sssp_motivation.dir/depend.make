# Empty dependencies file for bench_sssp_motivation.
# This may be replaced when dependencies are built.
