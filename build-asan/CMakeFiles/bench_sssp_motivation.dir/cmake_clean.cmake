file(REMOVE_RECURSE
  "CMakeFiles/bench_sssp_motivation.dir/bench/sssp_motivation.cc.o"
  "CMakeFiles/bench_sssp_motivation.dir/bench/sssp_motivation.cc.o.d"
  "bench_sssp_motivation"
  "bench_sssp_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sssp_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
