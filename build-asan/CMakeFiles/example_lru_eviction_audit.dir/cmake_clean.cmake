file(REMOVE_RECURSE
  "CMakeFiles/example_lru_eviction_audit.dir/examples/lru_eviction_audit.cpp.o"
  "CMakeFiles/example_lru_eviction_audit.dir/examples/lru_eviction_audit.cpp.o.d"
  "example_lru_eviction_audit"
  "example_lru_eviction_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lru_eviction_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
