# Empty dependencies file for example_lru_eviction_audit.
# This may be replaced when dependencies are built.
