# Empty dependencies file for concurrent_multiqueue_test.
# This may be replaced when dependencies are built.
