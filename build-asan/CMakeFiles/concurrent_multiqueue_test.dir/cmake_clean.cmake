file(REMOVE_RECURSE
  "CMakeFiles/concurrent_multiqueue_test.dir/tests/concurrent_multiqueue_test.cc.o"
  "CMakeFiles/concurrent_multiqueue_test.dir/tests/concurrent_multiqueue_test.cc.o.d"
  "concurrent_multiqueue_test"
  "concurrent_multiqueue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_multiqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
