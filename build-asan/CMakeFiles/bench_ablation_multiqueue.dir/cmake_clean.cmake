file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiqueue.dir/bench/ablation_multiqueue.cc.o"
  "CMakeFiles/bench_ablation_multiqueue.dir/bench/ablation_multiqueue.cc.o.d"
  "bench_ablation_multiqueue"
  "bench_ablation_multiqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
