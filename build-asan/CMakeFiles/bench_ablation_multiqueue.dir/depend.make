# Empty dependencies file for bench_ablation_multiqueue.
# This may be replaced when dependencies are built.
