# Empty compiler generated dependencies file for example_road_network_sssp.
# This may be replaced when dependencies are built.
