file(REMOVE_RECURSE
  "CMakeFiles/example_road_network_sssp.dir/examples/road_network_sssp.cpp.o"
  "CMakeFiles/example_road_network_sssp.dir/examples/road_network_sssp.cpp.o.d"
  "example_road_network_sssp"
  "example_road_network_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_road_network_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
