file(REMOVE_RECURSE
  "CMakeFiles/determinism_property_test.dir/tests/determinism_property_test.cc.o"
  "CMakeFiles/determinism_property_test.dir/tests/determinism_property_test.cc.o.d"
  "determinism_property_test"
  "determinism_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
