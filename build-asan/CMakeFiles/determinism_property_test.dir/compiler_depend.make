# Empty compiler generated dependencies file for determinism_property_test.
# This may be replaced when dependencies are built.
