file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_concurrent_mis.dir/bench/fig2_concurrent_mis.cc.o"
  "CMakeFiles/bench_fig2_concurrent_mis.dir/bench/fig2_concurrent_mis.cc.o.d"
  "bench_fig2_concurrent_mis"
  "bench_fig2_concurrent_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_concurrent_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
