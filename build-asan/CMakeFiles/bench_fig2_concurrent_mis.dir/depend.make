# Empty dependencies file for bench_fig2_concurrent_mis.
# This may be replaced when dependencies are built.
