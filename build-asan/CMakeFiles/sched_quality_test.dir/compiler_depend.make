# Empty compiler generated dependencies file for sched_quality_test.
# This may be replaced when dependencies are built.
