file(REMOVE_RECURSE
  "CMakeFiles/sched_quality_test.dir/tests/sched_quality_test.cc.o"
  "CMakeFiles/sched_quality_test.dir/tests/sched_quality_test.cc.o.d"
  "sched_quality_test"
  "sched_quality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
