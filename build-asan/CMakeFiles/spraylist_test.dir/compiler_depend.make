# Empty compiler generated dependencies file for spraylist_test.
# This may be replaced when dependencies are built.
