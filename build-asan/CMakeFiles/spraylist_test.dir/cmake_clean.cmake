file(REMOVE_RECURSE
  "CMakeFiles/spraylist_test.dir/tests/spraylist_test.cc.o"
  "CMakeFiles/spraylist_test.dir/tests/spraylist_test.cc.o.d"
  "spraylist_test"
  "spraylist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spraylist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
