# Empty compiler generated dependencies file for bench_edge_cost_metric.
# This may be replaced when dependencies are built.
