file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_cost_metric.dir/bench/edge_cost_metric.cc.o"
  "CMakeFiles/bench_edge_cost_metric.dir/bench/edge_cost_metric.cc.o.d"
  "bench_edge_cost_metric"
  "bench_edge_cost_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_cost_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
