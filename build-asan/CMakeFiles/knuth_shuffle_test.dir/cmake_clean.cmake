file(REMOVE_RECURSE
  "CMakeFiles/knuth_shuffle_test.dir/tests/knuth_shuffle_test.cc.o"
  "CMakeFiles/knuth_shuffle_test.dir/tests/knuth_shuffle_test.cc.o.d"
  "knuth_shuffle_test"
  "knuth_shuffle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knuth_shuffle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
