# Empty compiler generated dependencies file for knuth_shuffle_test.
# This may be replaced when dependencies are built.
