file(REMOVE_RECURSE
  "CMakeFiles/mis_test.dir/tests/mis_test.cc.o"
  "CMakeFiles/mis_test.dir/tests/mis_test.cc.o.d"
  "mis_test"
  "mis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
