file(REMOVE_RECURSE
  "CMakeFiles/sched_conformance_test.dir/tests/sched_conformance_test.cc.o"
  "CMakeFiles/sched_conformance_test.dir/tests/sched_conformance_test.cc.o.d"
  "sched_conformance_test"
  "sched_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
