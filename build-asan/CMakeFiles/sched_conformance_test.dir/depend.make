# Empty dependencies file for sched_conformance_test.
# This may be replaced when dependencies are built.
