file(REMOVE_RECURSE
  "CMakeFiles/util_concurrency_test.dir/tests/util_concurrency_test.cc.o"
  "CMakeFiles/util_concurrency_test.dir/tests/util_concurrency_test.cc.o.d"
  "util_concurrency_test"
  "util_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
