# Empty compiler generated dependencies file for sched_sequential_test.
# This may be replaced when dependencies are built.
