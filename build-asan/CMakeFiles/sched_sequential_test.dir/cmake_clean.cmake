file(REMOVE_RECURSE
  "CMakeFiles/sched_sequential_test.dir/tests/sched_sequential_test.cc.o"
  "CMakeFiles/sched_sequential_test.dir/tests/sched_sequential_test.cc.o.d"
  "sched_sequential_test"
  "sched_sequential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
