file(REMOVE_RECURSE
  "CMakeFiles/bench_clique_coloring_tightness.dir/bench/clique_coloring_tightness.cc.o"
  "CMakeFiles/bench_clique_coloring_tightness.dir/bench/clique_coloring_tightness.cc.o.d"
  "bench_clique_coloring_tightness"
  "bench_clique_coloring_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clique_coloring_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
