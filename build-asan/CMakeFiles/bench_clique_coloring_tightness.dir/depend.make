# Empty dependencies file for bench_clique_coloring_tightness.
# This may be replaced when dependencies are built.
