# Empty compiler generated dependencies file for example_social_network_mis.
# This may be replaced when dependencies are built.
