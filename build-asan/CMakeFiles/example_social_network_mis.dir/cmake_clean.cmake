file(REMOVE_RECURSE
  "CMakeFiles/example_social_network_mis.dir/examples/social_network_mis.cpp.o"
  "CMakeFiles/example_social_network_mis.dir/examples/social_network_mis.cpp.o.d"
  "example_social_network_mis"
  "example_social_network_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_network_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
