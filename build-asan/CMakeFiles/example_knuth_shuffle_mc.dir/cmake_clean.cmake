file(REMOVE_RECURSE
  "CMakeFiles/example_knuth_shuffle_mc.dir/examples/knuth_shuffle_mc.cpp.o"
  "CMakeFiles/example_knuth_shuffle_mc.dir/examples/knuth_shuffle_mc.cpp.o.d"
  "example_knuth_shuffle_mc"
  "example_knuth_shuffle_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_knuth_shuffle_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
