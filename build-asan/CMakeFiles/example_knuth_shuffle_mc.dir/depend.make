# Empty dependencies file for example_knuth_shuffle_mc.
# This may be replaced when dependencies are built.
