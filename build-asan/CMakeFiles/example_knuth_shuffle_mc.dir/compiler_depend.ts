# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_knuth_shuffle_mc.
