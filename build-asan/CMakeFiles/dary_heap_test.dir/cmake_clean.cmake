file(REMOVE_RECURSE
  "CMakeFiles/dary_heap_test.dir/tests/dary_heap_test.cc.o"
  "CMakeFiles/dary_heap_test.dir/tests/dary_heap_test.cc.o.d"
  "dary_heap_test"
  "dary_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dary_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
