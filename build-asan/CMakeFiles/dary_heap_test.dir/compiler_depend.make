# Empty compiler generated dependencies file for dary_heap_test.
# This may be replaced when dependencies are built.
