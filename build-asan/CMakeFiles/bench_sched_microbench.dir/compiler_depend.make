# Empty compiler generated dependencies file for bench_sched_microbench.
# This may be replaced when dependencies are built.
