file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_microbench.dir/bench/sched_microbench.cc.o"
  "CMakeFiles/bench_sched_microbench.dir/bench/sched_microbench.cc.o.d"
  "bench_sched_microbench"
  "bench_sched_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
