# Empty compiler generated dependencies file for order_stat_test.
# This may be replaced when dependencies are built.
