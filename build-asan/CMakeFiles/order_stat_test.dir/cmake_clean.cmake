file(REMOVE_RECURSE
  "CMakeFiles/order_stat_test.dir/tests/order_stat_test.cc.o"
  "CMakeFiles/order_stat_test.dir/tests/order_stat_test.cc.o.d"
  "order_stat_test"
  "order_stat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_stat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
