file(REMOVE_RECURSE
  "CMakeFiles/example_register_allocation_coloring.dir/examples/register_allocation_coloring.cpp.o"
  "CMakeFiles/example_register_allocation_coloring.dir/examples/register_allocation_coloring.cpp.o.d"
  "example_register_allocation_coloring"
  "example_register_allocation_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_register_allocation_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
