# Empty compiler generated dependencies file for example_register_allocation_coloring.
# This may be replaced when dependencies are built.
