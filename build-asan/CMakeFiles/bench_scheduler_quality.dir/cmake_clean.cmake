file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduler_quality.dir/bench/scheduler_quality.cc.o"
  "CMakeFiles/bench_scheduler_quality.dir/bench/scheduler_quality.cc.o.d"
  "bench_scheduler_quality"
  "bench_scheduler_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
