# Empty dependencies file for bench_scheduler_quality.
# This may be replaced when dependencies are built.
