file(REMOVE_RECURSE
  "CMakeFiles/theorem_bounds_test.dir/tests/theorem_bounds_test.cc.o"
  "CMakeFiles/theorem_bounds_test.dir/tests/theorem_bounds_test.cc.o.d"
  "theorem_bounds_test"
  "theorem_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
