# Empty dependencies file for theorem_bounds_test.
# This may be replaced when dependencies are built.
