file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_relaxation_quality.dir/bench/concurrent_relaxation_quality.cc.o"
  "CMakeFiles/bench_concurrent_relaxation_quality.dir/bench/concurrent_relaxation_quality.cc.o.d"
  "bench_concurrent_relaxation_quality"
  "bench_concurrent_relaxation_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_relaxation_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
