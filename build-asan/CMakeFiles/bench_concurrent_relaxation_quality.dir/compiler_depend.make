# Empty compiler generated dependencies file for bench_concurrent_relaxation_quality.
# This may be replaced when dependencies are built.
