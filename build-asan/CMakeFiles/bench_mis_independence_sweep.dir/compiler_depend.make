# Empty compiler generated dependencies file for bench_mis_independence_sweep.
# This may be replaced when dependencies are built.
