file(REMOVE_RECURSE
  "CMakeFiles/bench_mis_independence_sweep.dir/bench/mis_independence_sweep.cc.o"
  "CMakeFiles/bench_mis_independence_sweep.dir/bench/mis_independence_sweep.cc.o.d"
  "bench_mis_independence_sweep"
  "bench_mis_independence_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mis_independence_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
