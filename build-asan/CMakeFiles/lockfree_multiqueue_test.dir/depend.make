# Empty dependencies file for lockfree_multiqueue_test.
# This may be replaced when dependencies are built.
