file(REMOVE_RECURSE
  "CMakeFiles/lockfree_multiqueue_test.dir/tests/lockfree_multiqueue_test.cc.o"
  "CMakeFiles/lockfree_multiqueue_test.dir/tests/lockfree_multiqueue_test.cc.o.d"
  "lockfree_multiqueue_test"
  "lockfree_multiqueue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockfree_multiqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
