
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/coloring.cc" "CMakeFiles/relax.dir/src/algorithms/coloring.cc.o" "gcc" "CMakeFiles/relax.dir/src/algorithms/coloring.cc.o.d"
  "/root/repo/src/algorithms/knuth_shuffle.cc" "CMakeFiles/relax.dir/src/algorithms/knuth_shuffle.cc.o" "gcc" "CMakeFiles/relax.dir/src/algorithms/knuth_shuffle.cc.o.d"
  "/root/repo/src/algorithms/list_contraction.cc" "CMakeFiles/relax.dir/src/algorithms/list_contraction.cc.o" "gcc" "CMakeFiles/relax.dir/src/algorithms/list_contraction.cc.o.d"
  "/root/repo/src/algorithms/matching.cc" "CMakeFiles/relax.dir/src/algorithms/matching.cc.o" "gcc" "CMakeFiles/relax.dir/src/algorithms/matching.cc.o.d"
  "/root/repo/src/algorithms/mis.cc" "CMakeFiles/relax.dir/src/algorithms/mis.cc.o" "gcc" "CMakeFiles/relax.dir/src/algorithms/mis.cc.o.d"
  "/root/repo/src/algorithms/sssp.cc" "CMakeFiles/relax.dir/src/algorithms/sssp.cc.o" "gcc" "CMakeFiles/relax.dir/src/algorithms/sssp.cc.o.d"
  "/root/repo/src/core/execution_stats.cc" "CMakeFiles/relax.dir/src/core/execution_stats.cc.o" "gcc" "CMakeFiles/relax.dir/src/core/execution_stats.cc.o.d"
  "/root/repo/src/engine/engine.cc" "CMakeFiles/relax.dir/src/engine/engine.cc.o" "gcc" "CMakeFiles/relax.dir/src/engine/engine.cc.o.d"
  "/root/repo/src/engine/worker_pool.cc" "CMakeFiles/relax.dir/src/engine/worker_pool.cc.o" "gcc" "CMakeFiles/relax.dir/src/engine/worker_pool.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/relax.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/relax.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/relax.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/relax.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "CMakeFiles/relax.dir/src/graph/io.cc.o" "gcc" "CMakeFiles/relax.dir/src/graph/io.cc.o.d"
  "/root/repo/src/sched/backend_registry.cc" "CMakeFiles/relax.dir/src/sched/backend_registry.cc.o" "gcc" "CMakeFiles/relax.dir/src/sched/backend_registry.cc.o.d"
  "/root/repo/src/sched/sched.cc" "CMakeFiles/relax.dir/src/sched/sched.cc.o" "gcc" "CMakeFiles/relax.dir/src/sched/sched.cc.o.d"
  "/root/repo/src/sched/spraylist.cc" "CMakeFiles/relax.dir/src/sched/spraylist.cc.o" "gcc" "CMakeFiles/relax.dir/src/sched/spraylist.cc.o.d"
  "/root/repo/src/util/cli.cc" "CMakeFiles/relax.dir/src/util/cli.cc.o" "gcc" "CMakeFiles/relax.dir/src/util/cli.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/relax.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/relax.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/thread_pin.cc" "CMakeFiles/relax.dir/src/util/thread_pin.cc.o" "gcc" "CMakeFiles/relax.dir/src/util/thread_pin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
