file(REMOVE_RECURSE
  "librelax.a"
)
