# Empty dependencies file for relax.
# This may be replaced when dependencies are built.
