# Empty compiler generated dependencies file for faa_array_queue_test.
# This may be replaced when dependencies are built.
