file(REMOVE_RECURSE
  "CMakeFiles/faa_array_queue_test.dir/tests/faa_array_queue_test.cc.o"
  "CMakeFiles/faa_array_queue_test.dir/tests/faa_array_queue_test.cc.o.d"
  "faa_array_queue_test"
  "faa_array_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faa_array_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
