# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for faa_array_queue_test.
