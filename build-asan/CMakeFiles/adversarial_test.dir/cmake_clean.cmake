file(REMOVE_RECURSE
  "CMakeFiles/adversarial_test.dir/tests/adversarial_test.cc.o"
  "CMakeFiles/adversarial_test.dir/tests/adversarial_test.cc.o.d"
  "adversarial_test"
  "adversarial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
