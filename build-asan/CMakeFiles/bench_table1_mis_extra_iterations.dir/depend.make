# Empty dependencies file for bench_table1_mis_extra_iterations.
# This may be replaced when dependencies are built.
