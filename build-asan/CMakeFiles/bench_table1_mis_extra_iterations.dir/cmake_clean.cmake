file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mis_extra_iterations.dir/bench/table1_mis_extra_iterations.cc.o"
  "CMakeFiles/bench_table1_mis_extra_iterations.dir/bench/table1_mis_extra_iterations.cc.o.d"
  "bench_table1_mis_extra_iterations"
  "bench_table1_mis_extra_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mis_extra_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
