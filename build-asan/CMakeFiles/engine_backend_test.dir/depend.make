# Empty dependencies file for engine_backend_test.
# This may be replaced when dependencies are built.
