file(REMOVE_RECURSE
  "CMakeFiles/engine_backend_test.dir/tests/engine_backend_test.cc.o"
  "CMakeFiles/engine_backend_test.dir/tests/engine_backend_test.cc.o.d"
  "engine_backend_test"
  "engine_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
