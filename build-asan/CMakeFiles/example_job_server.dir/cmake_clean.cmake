file(REMOVE_RECURSE
  "CMakeFiles/example_job_server.dir/examples/job_server.cpp.o"
  "CMakeFiles/example_job_server.dir/examples/job_server.cpp.o.d"
  "example_job_server"
  "example_job_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_job_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
