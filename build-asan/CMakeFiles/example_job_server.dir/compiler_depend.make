# Empty compiler generated dependencies file for example_job_server.
# This may be replaced when dependencies are built.
