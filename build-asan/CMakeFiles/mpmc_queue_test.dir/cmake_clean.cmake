file(REMOVE_RECURSE
  "CMakeFiles/mpmc_queue_test.dir/tests/mpmc_queue_test.cc.o"
  "CMakeFiles/mpmc_queue_test.dir/tests/mpmc_queue_test.cc.o.d"
  "mpmc_queue_test"
  "mpmc_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpmc_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
