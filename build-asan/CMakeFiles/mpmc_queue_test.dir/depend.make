# Empty dependencies file for mpmc_queue_test.
# This may be replaced when dependencies are built.
