# Empty compiler generated dependencies file for bench_theorem1_generic_overhead.
# This may be replaced when dependencies are built.
