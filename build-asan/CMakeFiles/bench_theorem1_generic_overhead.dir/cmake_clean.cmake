file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1_generic_overhead.dir/bench/theorem1_generic_overhead.cc.o"
  "CMakeFiles/bench_theorem1_generic_overhead.dir/bench/theorem1_generic_overhead.cc.o.d"
  "bench_theorem1_generic_overhead"
  "bench_theorem1_generic_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_generic_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
