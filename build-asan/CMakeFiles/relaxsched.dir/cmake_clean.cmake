file(REMOVE_RECURSE
  "CMakeFiles/relaxsched.dir/tools/relaxsched.cc.o"
  "CMakeFiles/relaxsched.dir/tools/relaxsched.cc.o.d"
  "relaxsched"
  "relaxsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
