# Empty compiler generated dependencies file for relaxsched.
# This may be replaced when dependencies are built.
