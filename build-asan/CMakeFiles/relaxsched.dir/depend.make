# Empty dependencies file for relaxsched.
# This may be replaced when dependencies are built.
