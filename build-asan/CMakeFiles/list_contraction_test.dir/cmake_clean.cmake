file(REMOVE_RECURSE
  "CMakeFiles/list_contraction_test.dir/tests/list_contraction_test.cc.o"
  "CMakeFiles/list_contraction_test.dir/tests/list_contraction_test.cc.o.d"
  "list_contraction_test"
  "list_contraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_contraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
