# Empty dependencies file for list_contraction_test.
# This may be replaced when dependencies are built.
