// Scenario: selecting a maximal set of mutually non-adjacent users in a
// social network — e.g. seeding an A/B test where no two treated users may
// be friends (interference-free experiment design).
//
// Social graphs are power-law: a few hubs with enormous degree. This is
// the regime where the paper's Theorem 2 matters — the relaxation cost of
// MIS does not depend on the skewed structure — and where the relaxed
// scheduler's scalability advantage over an exact queue shows up, because
// dequeue cost is not amortized by per-task work on low-degree vertices.
//
// The example runs sequential, exact-parallel and relaxed-parallel MIS on a
// Barabasi-Albert graph, checks all three agree, and reports timings.
//
// Usage: social_network_mis [--users=2000000] [--friends=8] [--threads=0]
#include <cstdio>

#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto users = static_cast<std::uint32_t>(
      cli.get_int("users", 2000000));
  const auto friends =
      static_cast<std::uint32_t>(cli.get_int("friends", 8));
  relax::core::ParallelOptions opts;
  opts.num_threads = static_cast<unsigned>(cli.get_int("threads", 0));

  std::printf("building a power-law social network (%u users, ~%u initial "
              "friendships each)...\n", users, friends);
  const auto g = relax::graph::barabasi_albert(users, friends, 1);
  std::printf("  -> %llu friendships, max degree %u\n",
              static_cast<unsigned long long>(g.num_edges()), g.max_degree());

  const auto pri = relax::graph::random_priorities(users, 2);

  relax::util::Timer timer;
  const auto reference = relax::algorithms::sequential_greedy_mis(g, pri);
  const double seq_time = timer.seconds();
  std::uint64_t mis_size = 0;
  for (const auto f : reference) mis_size += f;
  std::printf("sequential greedy:        %.3fs (seed set: %llu users)\n",
              seq_time, static_cast<unsigned long long>(mis_size));

  {
    relax::algorithms::AtomicMisProblem problem(g, pri);
    const auto stats = relax::core::run_parallel_exact(problem, pri, opts);
    std::printf("parallel exact scheduler: %.3fs (%.1fx) — output %s\n",
                stats.seconds, seq_time / stats.seconds,
                problem.result() == reference ? "identical" : "MISMATCH");
  }
  {
    relax::algorithms::AtomicMisProblem problem(g, pri);
    const auto stats = relax::core::run_parallel_relaxed(problem, pri, opts);
    std::printf("parallel relaxed (MultiQueue): %.3fs (%.1fx) — output %s, "
                "wasted steps %llu (%.2f%% of tasks)\n",
                stats.seconds, seq_time / stats.seconds,
                problem.result() == reference ? "identical" : "MISMATCH",
                static_cast<unsigned long long>(stats.failed_deletes),
                100.0 * static_cast<double>(stats.failed_deletes) / users);
  }
  return 0;
}
