// Monte-Carlo permutation sampling with a parallel, *reproducible* Knuth
// shuffle.
//
// Scenario: a simulation needs many independent uniformly random
// permutations (bootstrap resampling, permutation tests, randomized
// experiment assignment). The Fisher-Yates swap sequence is inherently
// sequential — task i must swap after every conflicting earlier task — but
// its dependency structure is sparse (paper §3.1), so the relaxed framework
// parallelizes it with only poly(k) wasted work, and the output is exactly
// the permutation the sequential pass would produce: every run with the
// same seeds gives the same samples, regardless of thread count.
//
// This example draws permutations in parallel and uses them for a small
// permutation test: does a (synthetically shifted) treatment group differ
// from control? The p-value is reproducible bit-for-bit across runs.
//
// Build & run: ./examples/knuth_shuffle_mc [--n=200000] [--rounds=20]
#include <cstdio>
#include <numeric>
#include <vector>

#include "algorithms/knuth_shuffle.h"
#include "core/parallel_executor.h"
#include "graph/permutation.h"
#include "util/cli.h"

namespace {

/// One parallel shuffle: returns the permutation of 0..n-1 fixed by
/// (target_seed, pi_seed) — identical for every thread count.
std::vector<std::uint32_t> draw_permutation(std::uint32_t n,
                                            std::uint64_t target_seed,
                                            std::uint64_t pi_seed) {
  const auto targets = relax::algorithms::shuffle_targets(n, target_seed);
  const auto pri = relax::graph::random_priorities(n, pi_seed);
  const relax::algorithms::PositionIndex index(targets, pri);
  relax::algorithms::AtomicKnuthShuffleProblem problem(targets, index);
  relax::core::run_parallel_relaxed(problem, pri);
  return problem.array();
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 200000));
  const int rounds = static_cast<int>(cli.get_int("rounds", 20));

  // Synthetic outcome data: first half "treatment" (shifted by +0.5),
  // second half control. Values are a deterministic function of the index.
  std::vector<double> outcome(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    outcome[i] = (i * 2654435761u % 1000) / 1000.0 +
                 (i < n / 2 ? 0.5 : 0.0);
  }
  const auto group_diff = [&](const std::vector<std::uint32_t>& assign) {
    // Mean(outcome of indices assigned to first half) - mean(second half).
    double a = 0, b = 0;
    for (std::uint32_t i = 0; i < n; ++i)
      (assign[i] < n / 2 ? a : b) += outcome[i];
    return a / (n / 2) - b / (n - n / 2);
  };

  std::vector<std::uint32_t> identity(n);
  std::iota(identity.begin(), identity.end(), 0u);
  const double observed = group_diff(identity);

  int extreme = 0;
  for (int r = 0; r < rounds; ++r) {
    const auto perm = draw_permutation(n, /*target_seed=*/100 + r,
                                       /*pi_seed=*/200 + r);
    if (group_diff(perm) >= observed) ++extreme;
  }
  std::printf("observed treatment effect: %.4f\n", observed);
  std::printf("permutation rounds: %d, as-extreme: %d\n", rounds, extreme);
  std::printf("p-value estimate: %.3f (reproducible across thread counts)\n",
              (extreme + 1.0) / (rounds + 1.0));
  return 0;
}
