// Minimal job-server demo: one persistent SchedulingEngine serving a
// request loop, the service-shaped way to use this library.
//
// A "request" names a framework problem (greedy MIS, coloring, or maximal
// matching) over one of a few resident graphs. The server keeps a bounded
// window of requests in flight (submission blocks on engine backpressure
// beyond that, so a burst can never exhaust memory), completes them in
// order, and reports per-request latency. Every `audit` -th request opts
// into relaxation monitoring, so scheduler quality (Definition 1 rank
// error / inversions) is sampled continuously in production without paying
// the audit cost on every request.
//
// --backend selects the scheduler backend (any registry name from
// sched/backend_registry.h) every request runs on; --backend=mix rotates
// requests across the whole registry, so one server multiplexes MultiQueue,
// SprayList, and deterministic k-bounded jobs on the same pool.
//
// --pop-batch selects how many labels each worker claims per scheduler
// touch (default 1). Batching amortizes the per-pop sample/lock round trip
// — the audit requests report the matching O(pop_batch * q) rank-error
// envelope, so the latency/quality trade is visible in the output.
//
// --metrics=<path|-> attaches an engine-wide obs::MetricsRegistry and dumps
// it after the serving loop drains — the service "stats command": per-worker
// slice/claim/park counters and latency percentiles in Prometheus text form
// (JSON when the path ends in .json, stdout with '-').
//
// --numa selects topology-aware placement (off | auto | virtual:<K>): the
// pool pins socket-by-socket and every scalable backend the jobs stand up
// is striped per domain (util/topology.h).
//
// Build & run:  ./examples/job_server [--requests=32] [--threads=0]
//                                     [--inflight=4] [--audit=8]
//                                     [--pop-batch=1|auto[:max]]
//                                     [--backend=multiqueue-c2|...|mix]
//                                     [--numa=off|auto|virtual:<K>]
//                                     [--metrics=<path|->]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/matching.h"
#include "algorithms/mis.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "obs/metrics.h"
#include "sched/backend_registry.h"
#include "util/cli.h"
#include "util/timer.h"
#include "util/topology.h"

namespace {

struct Request {
  const char* kind;
  const relax::sched::BackendInfo* backend;
  relax::engine::JobTicket ticket;
  double submitted_at;
  // Problem storage (exactly one is set, matching `kind`).
  std::unique_ptr<relax::algorithms::AtomicMisProblem> mis;
  std::unique_ptr<relax::algorithms::AtomicColoringProblem> coloring;
  std::unique_ptr<relax::algorithms::AtomicMatchingProblem> matching;
};

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const int requests = static_cast<int>(cli.get_int("requests", 32));
  const int inflight =
      std::max(1, static_cast<int>(cli.get_int("inflight", 4)));
  const int audit_every = static_cast<int>(cli.get_int("audit", 8));
  const std::string pop_batch_value = cli.get_string("pop-batch", "1");
  const auto pb = relax::engine::parse_pop_batch_flag(pop_batch_value);
  if (!pb.valid) {
    std::fprintf(stderr,
                 "error: invalid --pop-batch '%s': expected a positive "
                 "integer, 'auto', or 'auto:<max>'\n",
                 pop_batch_value.c_str());
    return 2;
  }
  const std::uint32_t pop_batch = pb.batch;

  // Resolve the backend rotation: one fixed registry backend, or the whole
  // registry round-robin with --backend=mix.
  const std::string backend_flag = cli.get_string(
      "backend", std::string(relax::sched::default_backend().name));
  std::vector<const relax::sched::BackendInfo*> backends;
  if (backend_flag == "mix") {
    for (const auto& info : relax::sched::backend_registry())
      backends.push_back(&info);
  } else if (const auto* info = relax::sched::find_backend(backend_flag)) {
    backends.push_back(info);
  } else {
    std::fprintf(stderr,
                 "unknown --backend '%s'; valid: mix, %s\n",
                 backend_flag.c_str(),
                 relax::sched::backend_names().c_str());
    return 2;
  }

  // Resident data: a service would load these once at startup.
  const auto g = relax::graph::gnm(4000, 24000, 1);
  const auto pri = relax::graph::random_priorities(4000, 2);
  const relax::algorithms::EdgeIncidence incidence(g);
  const auto edge_pri =
      relax::graph::random_priorities(incidence.num_edges(), 3);

  // Telemetry sink outliving the engine; attached only when requested, so
  // the default run pays no metric traffic at all.
  const std::string metrics_path = cli.get_string("metrics", "");
  relax::obs::MetricsRegistry registry;

  relax::engine::EngineOptions opts;
  opts.num_threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opts.max_in_flight = static_cast<unsigned>(inflight);
  const std::string numa_value = cli.get_string("numa", "off");
  const auto numa_spec = relax::util::TopologySpec::parse(numa_value);
  if (!numa_spec) {
    std::fprintf(stderr,
                 "error: invalid --numa '%s': expected 'off', 'auto', or "
                 "'virtual:<K>' with K >= 1\n",
                 numa_value.c_str());
    return 2;
  }
  opts.topology = *numa_spec;
  if (!metrics_path.empty()) opts.metrics = &registry;
  relax::engine::SchedulingEngine engine(opts);
  std::printf(
      "job_server: %u workers, %d jobs in flight, %d requests, pop-batch "
      "%u%s\n",
      engine.width(), inflight, requests, pop_batch,
      pb.adaptive ? " (adaptive)" : "");

  relax::util::Timer clock;
  std::vector<Request> window;
  double latency_sum = 0.0;
  int completed = 0;

  const auto complete_oldest = [&] {
    Request req = std::move(window.front());
    window.erase(window.begin());
    const auto stats = req.ticket.wait();
    const double latency_ms = (clock.seconds() - req.submitted_at) * 1e3;
    latency_sum += latency_ms;
    ++completed;
    std::printf("  #%-3d %-8s %-20s %7.2f ms  iters=%llu wasted=%llu",
                completed, req.kind,
                std::string(req.backend->name).c_str(), latency_ms,
                static_cast<unsigned long long>(stats.iterations),
                static_cast<unsigned long long>(stats.failed_deletes));
    if (stats.rank_samples > 0) {
      relax::sched::BackendParams bp;
      bp.threads = engine.width();
      const auto envelope =
          relax::sched::batched_rank_bound(*req.backend, bp, pop_batch);
      std::printf("  [audit: mean rank err %.2f, max %llu, envelope %llu]",
                  stats.mean_rank_error,
                  static_cast<unsigned long long>(stats.max_rank_error),
                  static_cast<unsigned long long>(envelope));
    }
    std::printf("\n");
  };

  for (int r = 0; r < requests; ++r) {
    if (window.size() >= static_cast<std::size_t>(inflight))
      complete_oldest();

    Request req;
    req.submitted_at = clock.seconds();
    req.backend = backends[static_cast<std::size_t>(r) % backends.size()];
    relax::engine::JobConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(r) + 1;
    cfg.pop_batch = pop_batch;
    cfg.pop_batch_auto = pb.adaptive;
    cfg.monitor_relaxation = audit_every > 0 && r % audit_every == 0;
    switch (r % 3) {
      case 0:
        req.kind = "mis";
        req.mis = std::make_unique<relax::algorithms::AtomicMisProblem>(g, pri);
        req.ticket =
            engine.submit_relaxed_backend(*req.mis, pri, *req.backend, cfg);
        break;
      case 1:
        req.kind = "coloring";
        req.coloring =
            std::make_unique<relax::algorithms::AtomicColoringProblem>(g, pri);
        req.ticket = engine.submit_relaxed_backend(*req.coloring, pri,
                                                   *req.backend, cfg);
        break;
      default:
        req.kind = "matching";
        req.matching =
            std::make_unique<relax::algorithms::AtomicMatchingProblem>(
                incidence, edge_pri);
        req.ticket = engine.submit_relaxed_backend(*req.matching, edge_pri,
                                                   *req.backend, cfg);
        break;
    }
    window.push_back(std::move(req));
  }
  while (!window.empty()) complete_oldest();

  const double total = clock.seconds();
  std::printf(
      "served %d requests in %.3fs (%.1f req/s), mean latency %.2f ms\n",
      completed, total,
      total > 0.0 ? static_cast<double>(completed) / total : 0.0,
      completed > 0 ? latency_sum / completed : 0.0);

  if (!metrics_path.empty()) {
    const bool json = metrics_path.size() >= 5 &&
                      metrics_path.compare(metrics_path.size() - 5, 5,
                                           ".json") == 0;
    const std::string text =
        json ? registry.to_json() : registry.to_prometheus();
    if (metrics_path == "-") {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("metrics written to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write '%s'\n",
                   metrics_path.c_str());
    }
  }
  return 0;
}
