// Minimal job-server demo — now a thin wrapper over the real subsystem.
//
// The serving machinery lives in src/server/ (the networked relax_server
// binary runs the same code over TCP); this example drives it in-process
// via ServerOptions::listen = false + JobServer::submit_local, so the demo
// and the production server share one admission / completion path. What
// used to be a hand-rolled ticket window here is now the engine's own
// bounded admission: submissions beyond the --inflight window come back
// BUSY and the demo waits for a completion before retrying — the same
// backpressure a network client sees.
//
// A "request" names a framework problem (greedy MIS, coloring, or maximal
// matching) over the server's resident graph. Every `audit`-th request
// opts into relaxation monitoring, so scheduler quality (Definition 1 rank
// error / inversions) is sampled continuously without paying the audit
// cost on every request.
//
// --backend selects the scheduler backend (any registry name from
// sched/backend_registry.h) every request runs on; --backend=mix rotates
// requests across the whole registry, so one server multiplexes MultiQueue,
// SprayList, and deterministic k-bounded jobs on the same pool.
//
// --pop-batch selects how many labels each worker claims per scheduler
// touch (default 1; 'auto' or 'auto:<max>' enables the adaptive
// controller). Batching amortizes the per-pop sample/lock round trip — the
// audit requests report the matching O(pop_batch * q) rank-error envelope,
// so the latency/quality trade is visible in the output.
//
// --metrics=<path|-> attaches an obs::MetricsRegistry and dumps it after
// the serving loop drains: per-worker engine counters plus the server's
// request counts and request-latency histogram (Prometheus text form,
// JSON when the path ends in .json, stdout with '-').
//
// --numa selects topology-aware placement (off | auto | virtual:<K>): the
// pool pins socket-by-socket and every scalable backend the jobs stand up
// is striped per domain (util/topology.h).
//
// Build & run:  ./examples/job_server [--requests=32] [--threads=0]
//                                     [--inflight=4] [--audit=8]
//                                     [--pop-batch=1|auto[:max]]
//                                     [--backend=multiqueue-c2|...|mix]
//                                     [--numa=off|auto|virtual:<K>]
//                                     [--metrics=<path|->]
#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "sched/backend_registry.h"
#include "server/server.h"
#include "server/server_cli.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

namespace protocol = relax::server::protocol;

/// What the submit loop remembers about an in-flight request, keyed by
/// protocol id (completions arrive in engine order, not submission order).
struct Pending {
  const char* kind;
  const relax::sched::BackendInfo* backend;
  std::uint32_t pop_batch;
};

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const int requests = static_cast<int>(cli.get_int("requests", 32));
  const int inflight =
      std::max(1, static_cast<int>(cli.get_int("inflight", 4)));
  const int audit_every = static_cast<int>(cli.get_int("audit", 8));

  const auto pb =
      relax::server::cli::parse_pop_batch(cli.get_string("pop-batch", "1"));
  if (!pb) return 2;

  const auto backends = relax::server::cli::resolve_backends(cli.get_string(
      "backend", std::string(relax::sched::default_backend().name)));
  if (backends.empty()) return 2;

  const auto numa =
      relax::server::cli::parse_numa(cli.get_string("numa", "off"));
  if (!numa) return 2;

  const std::string metrics_path = cli.get_string("metrics", "");
  relax::obs::MetricsRegistry registry;

  relax::server::ServerOptions opts;
  opts.listen = false;  // in-process: submit_local only, no sockets
  opts.engine.num_threads =
      static_cast<unsigned>(cli.get_int("threads", 0));
  opts.engine.max_in_flight = static_cast<unsigned>(inflight);
  opts.engine.max_pending = static_cast<std::size_t>(inflight);
  opts.engine.topology = *numa;
  opts.default_pop_batch = pb->batch;
  opts.default_pop_batch_auto = pb->adaptive;
  if (!metrics_path.empty()) opts.metrics = &registry;
  relax::server::JobServer server(std::move(opts));

  std::printf(
      "job_server: %u workers, %d jobs in flight, %d requests, pop-batch "
      "%u%s\n",
      server.engine().width(), inflight, requests, pb->batch,
      pb->adaptive ? " (adaptive)" : "");

  // Completion channel for the demo: submit_local's deliver callback runs
  // on an engine worker; the main thread drains and prints.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<protocol::Response> done;
  const auto deliver = [&](const protocol::Response& resp) {
    {
      std::lock_guard<std::mutex> guard(mu);
      done.push_back(resp);
    }
    cv.notify_one();
  };

  std::unordered_map<std::uint64_t, Pending> pending;
  relax::util::Timer clock;
  double latency_sum = 0.0;
  int completed = 0;
  int in_flight = 0;

  const auto complete_one = [&] {
    protocol::Response resp;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return !done.empty(); });
      resp = std::move(done.front());
      done.pop_front();
    }
    --in_flight;
    const Pending meta = pending.at(resp.id);
    pending.erase(resp.id);
    const double latency_ms =
        static_cast<double>(resp.latency_ns) / 1e6;
    latency_sum += latency_ms;
    ++completed;
    std::printf("  #%-3d %-8s %-20s %7.2f ms  iters=%llu wasted=%llu",
                completed, meta.kind,
                std::string(meta.backend->name).c_str(), latency_ms,
                static_cast<unsigned long long>(resp.iterations),
                static_cast<unsigned long long>(resp.failed_deletes));
    if (resp.rank_samples > 0) {
      relax::sched::BackendParams bp;
      bp.threads = server.engine().width();
      const auto envelope = relax::sched::batched_rank_bound(
          *meta.backend, bp, meta.pop_batch);
      std::printf("  [audit: mean rank err %.2f, max %llu, envelope %llu]",
                  resp.mean_rank_error,
                  static_cast<unsigned long long>(resp.max_rank_error),
                  static_cast<unsigned long long>(envelope));
    }
    std::printf("\n");
  };

  static const char* const kKindNames[3] = {"mis", "coloring", "matching"};
  for (int r = 0; r < requests; ++r) {
    protocol::Request req;
    req.id = static_cast<std::uint64_t>(r) + 1;
    req.kind = static_cast<protocol::Kind>(r % 3);
    req.seed = static_cast<std::uint64_t>(r) + 1;
    req.pop_batch = pb->batch;
    req.pop_batch_auto = pb->adaptive;
    req.audit = audit_every > 0 && r % audit_every == 0;
    const auto* backend =
        backends[static_cast<std::size_t>(r) % backends.size()];
    req.backend = std::string(backend->name);
    pending.emplace(req.id, Pending{kKindNames[r % 3], backend, pb->batch});

    // Bounded window: admission overflow comes back BUSY; completing one
    // request always frees a slot, so the retry loop makes progress.
    for (;;) {
      protocol::Response immediate;
      const auto status = server.submit_local(req, deliver, &immediate);
      if (status == protocol::Status::kOk) break;
      if (status == protocol::Status::kBusy) {
        complete_one();
        continue;
      }
      std::fprintf(stderr, "request #%d rejected: %s\n", r,
                   immediate.message.c_str());
      pending.erase(req.id);
      return 1;
    }
    ++in_flight;
  }
  while (in_flight > 0) complete_one();

  const double total = clock.seconds();
  std::printf(
      "served %d requests in %.3fs (%.1f req/s), mean latency %.2f ms\n",
      completed, total,
      total > 0.0 ? static_cast<double>(completed) / total : 0.0,
      completed > 0 ? latency_sum / completed : 0.0);

  relax::server::cli::dump_metrics(registry, metrics_path);
  return 0;
}
