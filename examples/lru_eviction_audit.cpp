// Deterministic parallel bulk eviction from an intrusive doubly-linked
// list, with a replayable audit trace (List Contraction, paper §2.3).
//
// Scenario: a cache keeps entries on an intrusive LRU list. A maintenance
// pass must evict a large batch of entries. Unlinking is the textbook
// two-pointer swing — exactly the paper's List Contraction task — and
// neighboring unlinks conflict, so naive parallel eviction is racy and
// non-reproducible. The relaxed framework evicts in parallel while
// producing, for every thread count and scheduler, the *same* audit trace
// {(prev, next) at unlink time} as a sequential pass in priority order:
// an auditor can replay the sequential algorithm and verify the log
// bit-for-bit.
//
// The dependency structure has only n-1 edges, so by Theorem 1 the wasted
// work is O(poly(k)) — independent of the batch size.
//
// Build & run: ./examples/lru_eviction_audit [--n=1000000] [--threads=0]
#include <cstdio>
#include <numeric>
#include <vector>

#include "algorithms/list_contraction.h"
#include "core/parallel_executor.h"
#include "graph/permutation.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 1000000));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));

  // The LRU list: cache entries in (shuffled) recency order. Node ids are
  // cache slots; arrangement[i] is the slot at list position i.
  relax::util::Rng rng(7);
  std::vector<std::uint32_t> lru_order =
      relax::util::random_permutation(n, rng);

  // Eviction priorities (e.g. by staleness score). The permutation fixes
  // the audit trace completely.
  const auto pri = relax::graph::random_priorities(n, 11);

  relax::core::ParallelOptions opts;
  opts.num_threads = threads;
  relax::algorithms::AtomicListContractionProblem problem(lru_order, pri);
  const auto stats = relax::core::run_parallel_relaxed(problem, pri, opts);

  std::printf("evicted %u entries in %.3fs (%.1f M evictions/s)\n", n,
              stats.seconds, n / stats.seconds / 1e6);
  std::printf("wasted scheduler queries: %llu (%.3f%% of n)\n",
              static_cast<unsigned long long>(stats.failed_deletes),
              100.0 * static_cast<double>(stats.failed_deletes) / n);

  // The audit: replay sequentially and compare traces.
  const auto replay =
      relax::algorithms::sequential_list_contraction(lru_order, pri);
  const bool match = problem.trace() == replay;
  std::printf("audit replay: %s\n",
              match ? "MATCH (deterministic trace)" : "MISMATCH");

  // Show the first few audit records.
  for (std::uint32_t i = 0; i < 3 && i < n; ++i) {
    const auto slot = pri.order[i];
    const auto& [prev, next] = problem.trace()[slot];
    std::printf("  audit[%u]: evict slot %u (between %d and %d)\n", i, slot,
                prev == relax::algorithms::kNilNode ? -1
                                                    : static_cast<int>(prev),
                next == relax::algorithms::kNilNode
                    ? -1
                    : static_cast<int>(next));
  }
  return match ? 0 : 1;
}
