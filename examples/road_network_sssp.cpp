// Scenario: shortest travel times on a road network.
//
// Road networks are near-planar grids. This example runs the classic
// *non-deterministic* use of relaxed schedulers — parallel Dijkstra /
// label-correcting SSSP (the paper's §1 motivating example) — on a grid
// "city" with synthetic congestion weights, and quantifies the relaxation
// trade-off: wasted (stale) pops versus parallel speedup, with exactness
// of the distances verified against sequential Dijkstra.
//
// Usage: road_network_sssp [--side=1200] [--threads=0] [--pop-batch=1]
#include <cstdio>

#include "algorithms/sssp.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/thread_pin.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto side = static_cast<std::uint32_t>(cli.get_int("side", 1200));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const auto pop_batch = static_cast<unsigned>(cli.get_int("pop-batch", 1));

  std::printf("building a %ux%u road grid...\n", side, side);
  const auto g = relax::graph::grid(side, side);
  const auto weights = relax::algorithms::synthetic_edge_weights(g, 11, 60);
  const relax::graph::Vertex depot = 0;

  relax::util::Timer timer;
  const auto reference = relax::algorithms::dijkstra(g, weights, depot);
  const double seq_time = timer.seconds();
  std::printf("sequential Dijkstra:  %.3fs\n", seq_time);

  relax::algorithms::SsspStats stats;
  const auto dist = relax::algorithms::parallel_relaxed_sssp(
      g, weights, depot, threads, /*queue_factor=*/4, /*seed=*/3, pop_batch,
      &stats);
  std::printf("relaxed parallel SSSP: %.3fs (%.1fx)\n", stats.seconds,
              seq_time / stats.seconds);
  std::printf("  pops: %llu, stale (wasted): %llu (%.2f%%), relaxations: "
              "%llu\n",
              static_cast<unsigned long long>(stats.pops),
              static_cast<unsigned long long>(stats.stale_pops),
              100.0 * static_cast<double>(stats.stale_pops) /
                  static_cast<double>(stats.pops),
              static_cast<unsigned long long>(stats.relaxations));
  std::printf("distances exact: %s\n",
              dist == reference ? "yes" : "NO (bug!)");

  // A couple of sample routes for flavour.
  const relax::graph::Vertex corners[] = {side - 1, side * (side - 1),
                                          side * side - 1};
  for (const auto c : corners)
    std::printf("  travel time depot -> node %u: %u\n", c, dist[c]);
  return 0;
}
