// Quickstart: compute a greedy Maximal Independent Set with the relaxed
// scheduling framework in ~30 lines.
//
//   1. Build (or load) a graph.
//   2. Pick a random priority permutation pi — this fixes the output.
//   3. Run the problem adapter through a parallel relaxed executor.
//
// The result is deterministic: identical to the sequential greedy MIS under
// pi, regardless of thread count, scheduler relaxation, or timing.
//
// Build & run:  ./examples/quickstart [--n=100000] [--m=1000000]
#include <cstdio>

#include "algorithms/mis.h"
#include "core/parallel_executor.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 100000));
  const auto m = static_cast<std::uint64_t>(cli.get_int("m", 1000000));

  // 1. A random graph (swap in graph::read_edge_list for your own data).
  const auto g = relax::graph::gnm(n, m, /*seed=*/1);

  // 2. The priority permutation: fixes which MIS the greedy algorithm finds.
  const auto pri = relax::graph::random_priorities(n, /*seed=*/2);

  // 3. Run Algorithm 4 over a concurrent MultiQueue with default options
  //    (all hardware threads, 4 sub-queues per thread).
  relax::algorithms::AtomicMisProblem problem(g, pri);
  const auto stats = relax::core::run_parallel_relaxed(problem, pri);

  const auto mis = problem.result();
  std::uint64_t size = 0;
  for (const auto f : mis) size += f;

  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("MIS size: %llu\n", static_cast<unsigned long long>(size));
  std::printf("valid: %s\n",
              relax::algorithms::verify_mis(g, mis) ? "yes" : "NO");
  std::printf("time: %.3fs, scheduler queries: %llu (wasted: %llu)\n",
              stats.seconds,
              static_cast<unsigned long long>(stats.iterations),
              static_cast<unsigned long long>(stats.failed_deletes));
  return 0;
}
