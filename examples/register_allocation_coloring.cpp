// Scenario: register allocation by interference-graph coloring.
//
// A compiler models variables as intervals of "live ranges"; two variables
// interfere when their ranges overlap and must live in different registers.
// Greedy coloring in a fixed priority order is the classic linear-scan
// flavour — and because the framework is deterministic, the parallel run
// assigns *exactly* the registers the sequential compiler pass would,
// making the parallelization a drop-in replacement (same binary output).
//
// We synthesize a program of `vars` live ranges over a virtual timeline,
// build the interference graph, color it with the relaxed framework, and
// report the register count and how it compares to the interval-graph
// optimum (max overlap = clique number = chromatic number for intervals).
//
// Usage: register_allocation_coloring [--vars=200000] [--span=400]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algorithms/coloring.h"
#include "core/parallel_executor.h"
#include "graph/graph.h"
#include "graph/permutation.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  const auto vars = static_cast<std::uint32_t>(cli.get_int("vars", 200000));
  const auto span = static_cast<std::uint32_t>(cli.get_int("span", 400));

  // Synthesize live ranges: start uniform over a timeline 16x the variable
  // count; length geometric-ish up to `span`.
  relax::util::Rng rng(7);
  const std::uint64_t timeline = static_cast<std::uint64_t>(vars) * 16;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges(vars);
  for (auto& [lo, hi] : ranges) {
    lo = relax::util::bounded(rng, timeline);
    hi = lo + 1 + relax::util::bounded(rng, span);
  }

  // Interference graph via sweep line over range endpoints.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> events;
  events.reserve(vars);
  for (std::uint32_t v = 0; v < vars; ++v) events.push_back({ranges[v].first, v});
  std::sort(events.begin(), events.end());
  std::vector<relax::graph::Edge> edges;
  std::vector<std::uint32_t> active;
  std::uint32_t max_pressure = 0;
  for (const auto& [start, v] : events) {
    std::erase_if(active, [&](std::uint32_t u) {
      return ranges[u].second <= start;
    });
    for (const std::uint32_t u : active) edges.push_back({u, v});
    active.push_back(v);
    max_pressure = std::max(
        max_pressure, static_cast<std::uint32_t>(active.size()));
  }
  const auto g = relax::graph::Graph::from_edges(vars, edges);
  std::printf("interference graph: %u vars, %llu conflicts, peak register "
              "pressure %u\n",
              vars, static_cast<unsigned long long>(g.num_edges()),
              max_pressure);

  const auto pri = relax::graph::random_priorities(vars, 3);
  relax::algorithms::AtomicColoringProblem problem(g, pri);
  const auto stats = relax::core::run_parallel_relaxed(problem, pri);
  const auto colors = problem.colors();
  const std::uint32_t registers =
      *std::max_element(colors.begin(), colors.end()) + 1;

  std::printf("parallel deterministic coloring: %.3fs, %llu wasted steps\n",
              stats.seconds,
              static_cast<unsigned long long>(stats.failed_deletes));
  std::printf("registers used: %u (lower bound from pressure: %u)\n",
              registers, max_pressure);
  std::printf("proper coloring: %s\n",
              relax::algorithms::verify_coloring(g, colors) ? "yes" : "NO");
  std::printf("matches sequential pass exactly: %s\n",
              colors == relax::algorithms::sequential_greedy_coloring(g, pri)
                  ? "yes"
                  : "NO");
  return 0;
}
