// relaxsched — command-line front-end to the relaxed-scheduling framework.
//
// The paper's future work calls for using the framework "in the context of
// more general graph processing packages"; this tool is the package-style
// entry point: pick a graph (generated or loaded), an algorithm, a
// scheduler, thread and relaxation parameters, and get the output summary
// plus the paper's work accounting (iterations / failed deletes / dead
// skips) and a correctness check against the sequential baseline.
//
// Examples:
//   relaxsched --algo=mis --graph=gnm --n=1000000 --m=10000000 --threads=8
//   relaxsched --algo=coloring --graph=file --path=web.el --mode=seq-relaxed
//       --sched=multiqueue --k=16
//   relaxsched --algo=sssp --graph=rmat --n=1048576 --m=8000000
//   relaxsched --algo=matching --graph=ba --n=200000 --threads=24 --verify=1
//
// Modes:
//   parallel     (default) concurrent relaxed MultiQueue executor
//   exact        concurrent exact executor (FAA dispenser + backoff-wait)
//   seq          sequential baseline only
//   seq-relaxed  sequential framework with a simulated relaxed scheduler
//                (--sched=multiqueue|spray|topk|kbounded, --k=<relaxation>)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/knuth_shuffle.h"
#include "algorithms/list_contraction.h"
#include "algorithms/matching.h"
#include "algorithms/mis.h"
#include "algorithms/sssp.h"
#include "core/parallel_executor.h"
#include "core/sequential_executor.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "sched/backend_registry.h"
#include "sched/exact_heap.h"
#include "sched/kbounded.h"
#include "sched/sim_multiqueue.h"
#include "sched/sim_spraylist.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "sched/topk_uniform.h"
#include "util/cli.h"
#include "util/thread_pin.h"
#include "util/timer.h"
#include "util/topology.h"

namespace {

using relax::core::ExecutionStats;
using relax::graph::Graph;

[[noreturn]] void usage_and_exit(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(relaxsched — relaxed-scheduler graph algorithms

  --algo=mis|coloring|matching|listcontract|shuffle|sssp   (required)
  --graph=gnm|gnp|rmat|ba|grid|clique|star|file            [gnm]
  --n=<vertices> --m=<edges> --p=<prob> --path=<edge list file>
  --mode=parallel|exact|seq|seq-relaxed                    [parallel]
  --threads=<t>            worker threads (parallel modes)  [hw]
  --backend=<name>         concurrent scheduler backend for --mode=parallel
                           (any registry name; see list below)
                                                           [multiqueue-c2]
  --queue-factor=<c>       MultiQueue sub-queues per thread [4]
  --pop-batch=<k>|auto[:max]  labels claimed per scheduler touch (parallel
                           mode, including --algo=sssp; k>1 amortizes
                           lock/sample cost at an O(k*q) rank-error
                           envelope; auto adapts per worker between 1 near
                           drain and the max — 64 unless given — from
                           claim feedback + global occupancy; 0 and
                           non-numeric values are rejected)       [1]
  --numa=off|auto|virtual:<K>  topology-aware placement (parallel modes,
                           including --algo=sssp): auto discovers sockets
                           from sysfs (flat fallback in containers that
                           hide them), virtual:K splits the workers into K
                           synthetic domains for deterministic testing.
                           Workers pin socket-by-socket and scalable
                           backends prefer same-domain sub-queues with a
                           bounded cross-domain steal                 [off]
  --sched=multiqueue|spray|topk|kbounded   (seq-relaxed)    [multiqueue]
  --k=<relaxation>         relaxation factor (seq-relaxed,
                           and kbounded-family backends)    [8]
  --seed=<s>               permutation + scheduler seed     [1]
  --weight=<w>             QoS tenant weight for the submitted job
                           (engine/qos.h). A one-shot run owns the pool,
                           so it always gets the full slice budget; the
                           flag matters when comparing against server-side
                           multi-tenant runs with the same config  [1]
  --verify=0|1             check against sequential output  [1]
  --metrics=<path|->       dump engine telemetry after the run: per-worker
                           counters + slice/claim/park histograms with
                           p50/p95/p99. Prometheus text exposition, or JSON
                           when the path ends in .json; '-' writes to
                           stdout. Engine modes only (parallel / exact /
                           shuffle / listcontract).
  --trace=<path>           write a Chrome trace-event JSON file (open in
                           chrome://tracing or ui.perfetto.dev): one lane
                           per worker with slice/park spans and
                           claim/regime instants. Engine modes only.

backends (--backend, concurrent modes; sssp always uses its own
64-bit-key MultiQueue):
)");
  for (const auto& info : relax::sched::backend_registry()) {
    std::fprintf(stderr, "  %-20s %s\n",
                 std::string(info.name).c_str(),
                 std::string(info.description).c_str());
  }
  std::exit(error != nullptr ? 2 : 0);
}

Graph make_graph(const relax::util::CommandLine& cli) {
  const std::string kind = cli.get_string("graph", "gnm");
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 100000));
  const auto m = static_cast<std::uint64_t>(cli.get_int("m", 1000000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (kind == "gnm") return relax::graph::gnm(n, m, seed);
  if (kind == "gnp")
    return relax::graph::gnp(n, cli.get_double("p", 0.001), seed);
  if (kind == "rmat") {
    std::uint32_t pow2 = 1;
    while (pow2 < n) pow2 <<= 1;
    return relax::graph::rmat(pow2, m, 0.57, 0.19, 0.19, seed);
  }
  if (kind == "ba") return relax::graph::barabasi_albert(n, 5, seed);
  if (kind == "grid") {
    std::uint32_t side = 1;
    while (side * side < n) ++side;
    return relax::graph::grid(side, side);
  }
  if (kind == "clique") return relax::graph::clique(n);
  if (kind == "star") return relax::graph::star(n);
  if (kind == "file") {
    const std::string path = cli.get_string("path", "");
    if (path.empty()) usage_and_exit("--graph=file requires --path");
    return relax::graph::read_edge_list(path);
  }
  usage_and_exit("unknown --graph kind");
}

/// Resolves the --backend flag, exiting with the valid list on a bad name.
const relax::sched::BackendInfo& backend_from_cli(
    const relax::util::CommandLine& cli) {
  const std::string name =
      cli.get_string("backend", std::string(relax::sched::default_backend().name));
  const auto* info = relax::sched::find_backend(name);
  if (info == nullptr) {
    std::fprintf(stderr, "error: unknown --backend '%s'\nvalid backends: %s\n",
                 name.c_str(), relax::sched::backend_names().c_str());
    std::exit(2);
  }
  return *info;
}

/// Engine telemetry sinks for --metrics / --trace. File-scope because the
/// one-shot run_parallel_* wrappers destroy their engine before returning —
/// the sinks must outlive it so the dump after the run still sees the data.
struct Telemetry {
  std::string metrics_path;  // empty = off; '-' = stdout; *.json = JSON form
  std::string trace_path;    // empty = off
  relax::obs::MetricsRegistry registry;
  relax::obs::TraceRing ring;
};
Telemetry g_telemetry;

void init_telemetry(const relax::util::CommandLine& cli) {
  g_telemetry.metrics_path = cli.get_string("metrics", "");
  g_telemetry.trace_path = cli.get_string("trace", "");
}

/// seq / seq-relaxed / sssp bypass the engine, so the sinks stay empty.
void warn_telemetry_unsupported(const char* mode) {
  if (g_telemetry.metrics_path.empty() && g_telemetry.trace_path.empty())
    return;
  std::fprintf(stderr,
               "warning: --metrics/--trace record engine telemetry; mode "
               "'%s' does not run through the engine, nothing to dump\n",
               mode);
}

void write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write '%s'\n", path.c_str());
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

/// Runs after the engine run completes (ticket waited, engine destroyed):
/// the registry/ring are quiescent, so exporting here is race-free.
void dump_telemetry() {
  if (!g_telemetry.metrics_path.empty()) {
    const std::string& p = g_telemetry.metrics_path;
    const bool json =
        p.size() >= 5 && p.compare(p.size() - 5, 5, ".json") == 0;
    write_text(p, json ? g_telemetry.registry.to_json()
                       : g_telemetry.registry.to_prometheus());
  }
  if (!g_telemetry.trace_path.empty()) {
    if (g_telemetry.trace_path == "-") {
      write_text("-", g_telemetry.ring.to_chrome_json());
    } else if (!g_telemetry.ring.write_chrome_json(g_telemetry.trace_path)) {
      std::fprintf(stderr, "warning: cannot write trace '%s'\n",
                   g_telemetry.trace_path.c_str());
    }
  }
}

relax::core::ParallelOptions parallel_opts(
    const relax::util::CommandLine& cli) {
  relax::core::ParallelOptions opts;
  if (!g_telemetry.metrics_path.empty())
    opts.metrics = &g_telemetry.registry;
  if (!g_telemetry.trace_path.empty()) opts.trace = &g_telemetry.ring;
  opts.num_threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opts.queue_factor = static_cast<unsigned>(cli.get_int("queue-factor", 4));
  const std::string pop_batch_value = cli.get_string("pop-batch", "1");
  const auto pb = relax::engine::parse_pop_batch_flag(pop_batch_value);
  if (!pb.valid) {
    std::fprintf(stderr,
                 "error: invalid --pop-batch '%s': expected a positive "
                 "integer, 'auto', or 'auto:<max>'\n\n",
                 pop_batch_value.c_str());
    std::exit(2);
  }
  opts.pop_batch = pb.batch;
  opts.pop_batch_auto = pb.adaptive;
  if (cli.has("k"))
    opts.relaxation_k = static_cast<std::uint32_t>(cli.get_int("k", 0));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::int64_t weight = cli.get_int("weight", 1);
  if (weight < 1 ||
      weight >
          static_cast<std::int64_t>(relax::engine::JobConfig::kMaxWeight)) {
    std::fprintf(stderr, "error: --weight must be in [1, %u]\n\n",
                 relax::engine::JobConfig::kMaxWeight);
    std::exit(2);
  }
  opts.weight = static_cast<std::uint32_t>(weight);
  const std::string numa_value = cli.get_string("numa", "off");
  const auto spec = relax::util::TopologySpec::parse(numa_value);
  if (!spec) {
    std::fprintf(stderr,
                 "error: invalid --numa '%s': expected 'off', 'auto', or "
                 "'virtual:<K>' with K >= 1\n\n",
                 numa_value.c_str());
    std::exit(2);
  }
  opts.topology = *spec;
  return opts;
}

/// seq / seq-relaxed run one thread with no placement to speak of.
void warn_numa_unsupported(const relax::util::CommandLine& cli,
                           const char* mode) {
  if (!cli.has("numa") || cli.get_string("numa", "off") == "off") return;
  std::fprintf(stderr,
               "warning: --numa places pool workers; mode '%s' is "
               "single-threaded, flag ignored\n",
               mode);
}

void print_stats(const char* what, const ExecutionStats& stats) {
  std::printf(
      "%s: %.4f s | iterations=%llu processed=%llu failed_deletes=%llu "
      "dead_skips=%llu empty_polls=%llu\n",
      what, stats.seconds,
      static_cast<unsigned long long>(stats.iterations),
      static_cast<unsigned long long>(stats.processed),
      static_cast<unsigned long long>(stats.failed_deletes),
      static_cast<unsigned long long>(stats.dead_skips),
      static_cast<unsigned long long>(stats.empty_polls));
  if (stats.slices > 0) {
    std::printf("  slices=%llu latency p50=%.1fus p95=%.1fus p99=%.1fus\n",
                static_cast<unsigned long long>(stats.slices),
                stats.slice_percentile_us(50), stats.slice_percentile_us(95),
                stats.slice_percentile_us(99));
  }
}

/// Runs `problem` through the sequential framework with the chosen
/// simulated relaxed scheduler.
template <typename Problem>
ExecutionStats run_seq_relaxed(Problem& problem,
                               const relax::graph::Priorities& pri,
                               const relax::util::CommandLine& cli) {
  const std::string sched = cli.get_string("sched", "multiqueue");
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1)) + 99;
  if (sched == "multiqueue") {
    relax::sched::SimMultiQueue s(k, seed);
    return relax::core::run_sequential(problem, pri, s);
  }
  if (sched == "spray") {
    auto s = relax::sched::make_sim_spraylist(problem.num_tasks(), k, seed);
    return relax::core::run_sequential(problem, pri, s);
  }
  if (sched == "topk") {
    relax::sched::TopKUniformScheduler s(problem.num_tasks(), k, seed);
    return relax::core::run_sequential(problem, pri, s);
  }
  if (sched == "kbounded") {
    relax::sched::KBoundedScheduler s(k);
    return relax::core::run_sequential(problem, pri, s);
  }
  usage_and_exit("unknown --sched");
}

/// Dispatches one graph problem family through the chosen mode. Baseline
/// and Problem factories keep the mode plumbing in one place.
template <typename MakeSeq, typename MakeProblem, typename MakeAtomic,
          typename Extract, typename ExtractAtomic>
int run_graph_problem(const relax::util::CommandLine& cli,
                      const relax::graph::Priorities& pri, MakeSeq make_seq,
                      MakeProblem make_problem, MakeAtomic make_atomic,
                      Extract extract, ExtractAtomic extract_atomic) {
  const std::string mode = cli.get_string("mode", "parallel");
  const bool verify = cli.get_bool("verify", true);
  if (mode == "seq") {
    warn_telemetry_unsupported("seq");
    warn_numa_unsupported(cli, "seq");
    relax::util::Timer timer;
    const auto result = make_seq();
    std::printf("sequential: %.4f s\n", timer.seconds());
    (void)result;
    return 0;
  }
  if (mode == "seq-relaxed") {
    warn_telemetry_unsupported("seq-relaxed");
    warn_numa_unsupported(cli, "seq-relaxed");
    auto problem = make_problem();
    const auto stats = run_seq_relaxed(problem, pri, cli);
    print_stats("seq-relaxed", stats);
    if (verify && extract(problem) != make_seq()) {
      std::fprintf(stderr, "VERIFY FAILED: output differs from baseline\n");
      return 1;
    }
    if (verify) std::printf("verify: OK (deterministic output)\n");
    return 0;
  }
  const relax::core::ParallelOptions opts = parallel_opts(cli);
  auto problem = make_atomic();
  ExecutionStats stats;
  std::string what = mode;
  if (mode == "parallel") {
    const auto& backend = backend_from_cli(cli);
    stats = relax::core::run_parallel_relaxed_backend(
        problem, pri, backend.name, opts);
    what += std::string("[") + std::string(backend.name) + "]";
  } else if (mode == "exact") {
    stats = relax::core::run_parallel_exact(problem, pri, opts);
  } else {
    usage_and_exit("unknown --mode");
  }
  print_stats(what.c_str(), stats);
  dump_telemetry();
  if (verify && extract_atomic(problem) != make_seq()) {
    std::fprintf(stderr, "VERIFY FAILED: output differs from baseline\n");
    return 1;
  }
  if (verify) std::printf("verify: OK (deterministic output)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  if (cli.has("help")) usage_and_exit(nullptr);
  if (cli.has("backend")) backend_from_cli(cli);  // reject bad names early
  init_telemetry(cli);
  const std::string algo = cli.get_string("algo", "");
  if (algo.empty()) usage_and_exit("--algo is required");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  if (algo == "shuffle") {
    const auto n = static_cast<std::uint32_t>(cli.get_int("n", 100000));
    const auto targets = relax::algorithms::shuffle_targets(n, seed);
    const auto pri = relax::graph::random_priorities(n, seed + 7);
    const relax::algorithms::PositionIndex index(targets, pri);
    relax::algorithms::AtomicKnuthShuffleProblem problem(targets, index);
    relax::core::ParallelOptions opts = parallel_opts(cli);
    opts.seed = seed;
    const auto stats = relax::core::run_parallel_relaxed_backend(
        problem, pri, backend_from_cli(cli).name, opts);
    print_stats("shuffle", stats);
    dump_telemetry();
    if (cli.get_bool("verify", true)) {
      if (problem.array() !=
          relax::algorithms::sequential_knuth_shuffle(targets, pri)) {
        std::fprintf(stderr, "VERIFY FAILED\n");
        return 1;
      }
      std::printf("verify: OK (deterministic output)\n");
    }
    return 0;
  }
  if (algo == "listcontract") {
    const auto n = static_cast<std::uint32_t>(cli.get_int("n", 100000));
    std::vector<std::uint32_t> arrangement(n);
    std::iota(arrangement.begin(), arrangement.end(), 0u);
    const auto pri = relax::graph::random_priorities(n, seed + 7);
    relax::algorithms::AtomicListContractionProblem problem(arrangement,
                                                            pri);
    relax::core::ParallelOptions opts = parallel_opts(cli);
    opts.seed = seed;
    const auto stats = relax::core::run_parallel_relaxed_backend(
        problem, pri, backend_from_cli(cli).name, opts);
    print_stats("listcontract", stats);
    dump_telemetry();
    if (cli.get_bool("verify", true)) {
      if (problem.trace() !=
          relax::algorithms::sequential_list_contraction(arrangement, pri)) {
        std::fprintf(stderr, "VERIFY FAILED\n");
        return 1;
      }
      std::printf("verify: OK (deterministic output)\n");
    }
    return 0;
  }

  const Graph g = make_graph(cli);
  std::printf("graph: n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  if (algo == "sssp") {
    warn_telemetry_unsupported("sssp (standalone executor)");
    const auto weights =
        relax::algorithms::synthetic_edge_weights(g, seed + 3);
    relax::algorithms::SsspStats stats;
    // One parsing path for --pop-batch (parallel_opts); auto is honored
    // end to end — SSSP's standalone executor runs the same occupancy-
    // aware BatchController as the engine jobs.
    const relax::core::ParallelOptions popts = parallel_opts(cli);
    relax::algorithms::SsspOptions sssp_opts;
    sssp_opts.num_threads = popts.num_threads;
    sssp_opts.queue_factor = popts.queue_factor;
    sssp_opts.seed = seed;
    sssp_opts.pop_batch = popts.pop_batch;
    sssp_opts.pop_batch_auto = popts.pop_batch_auto;
    sssp_opts.topology = popts.topology;
    const auto dist = relax::algorithms::parallel_relaxed_sssp(
        g, weights, 0, sssp_opts, &stats);
    std::printf(
        "sssp: %.4f s | pops=%llu stale=%llu relaxations=%llu batches=%llu "
        "claims=[%llu..%llu]%s\n",
        stats.seconds, static_cast<unsigned long long>(stats.pops),
        static_cast<unsigned long long>(stats.stale_pops),
        static_cast<unsigned long long>(stats.relaxations),
        static_cast<unsigned long long>(stats.batches),
        static_cast<unsigned long long>(stats.min_claim),
        static_cast<unsigned long long>(stats.max_claim),
        sssp_opts.pop_batch_auto ? " (adaptive)" : "");
    if (cli.get_bool("verify", true)) {
      if (dist != relax::algorithms::dijkstra(g, weights, 0)) {
        std::fprintf(stderr, "VERIFY FAILED vs Dijkstra\n");
        return 1;
      }
      std::printf("verify: OK (exact distances)\n");
    }
    return 0;
  }

  const auto pri = relax::graph::random_priorities(g.num_vertices(),
                                                   seed + 7);
  if (algo == "mis") {
    return run_graph_problem(
        cli, pri,
        [&] { return relax::algorithms::sequential_greedy_mis(g, pri); },
        [&] { return relax::algorithms::MisProblem(g, pri); },
        [&] { return relax::algorithms::AtomicMisProblem(g, pri); },
        [](const auto& p) { return p.result(); },
        [](const auto& p) { return p.result(); });
  }
  if (algo == "coloring") {
    return run_graph_problem(
        cli, pri,
        [&] {
          return relax::algorithms::sequential_greedy_coloring(g, pri);
        },
        [&] { return relax::algorithms::ColoringProblem(g, pri); },
        [&] { return relax::algorithms::AtomicColoringProblem(g, pri); },
        [](const auto& p) { return p.colors(); },
        [](const auto& p) { return p.colors(); });
  }
  if (algo == "matching") {
    const relax::algorithms::EdgeIncidence inc(g);
    const auto epri =
        relax::graph::random_priorities(inc.num_edges(), seed + 11);
    return run_graph_problem(
        cli, epri,
        [&] {
          return relax::algorithms::sequential_greedy_matching(inc, epri);
        },
        [&] { return relax::algorithms::MatchingProblem(inc, epri); },
        [&] { return relax::algorithms::AtomicMatchingProblem(inc, epri); },
        [](const auto& p) { return p.result(); },
        [](const auto& p) { return p.result(); });
  }
  usage_and_exit("unknown --algo");
}
