#!/usr/bin/env python3
"""Compare two BENCH_backend_matrix.json snapshots cell by cell.

Closes the perf-trajectory loop: CI uploads one BENCH_backend_matrix.json
artifact per commit (bench/backend_matrix.cc --json=...), and this script
diffs the current snapshot against the previous run's, flagging every
backend x workload x threads x pop-batch cell whose throughput
(tasks_per_s) dropped by more than --max-drop (default 25%).

Cells are keyed by (workload, backend, threads, pop_batch, pop_batch_auto);
cells present in only one snapshot are reported informationally and never
fail the check (axes legitimately grow and shrink across commits).

Exit status: 0 when clean or when the baseline is missing/unreadable (first
run on a branch must not fail CI); 1 when regressions were found AND --fail
was given. Without --fail, regressions are emitted as GitHub Actions
::warning annotations — shared CI runners are noisy enough that a hard gate
on a single run would mostly catch scheduler jitter, so the default is a
loud warning; flip on --fail for a quiet dedicated perf box.

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json [--max-drop=0.25] [--fail]

No dependencies beyond the Python 3 standard library.
"""

import argparse
import json
import sys


def cell_key(row):
    return (
        row.get("workload"),
        row.get("backend"),
        row.get("threads"),
        row.get("pop_batch"),
        bool(row.get("pop_batch_auto", False)),
    )


def fmt_key(key):
    workload, backend, threads, batch, auto = key
    batch_s = f"auto:{batch}" if auto else str(batch)
    return f"{workload} x {backend} @ t={threads} batch={batch_s}"


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    cells = {}
    for row in rows:
        key = cell_key(row)
        # Duplicate keys would silently shadow each other; keep the best
        # run, matching how a human reads repeated bench rows.
        prev = cells.get(key)
        if prev is None or row.get("tasks_per_s", 0) > prev.get(
            "tasks_per_s", 0
        ):
            cells[key] = row
    return cells


def main():
    parser = argparse.ArgumentParser(
        description="Diff two backend_matrix JSON snapshots for throughput "
        "regressions."
    )
    parser.add_argument("baseline", help="previous run's JSON artifact")
    parser.add_argument("current", help="this run's JSON artifact")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.25,
        help="relative throughput drop that counts as a regression "
        "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--fail",
        action="store_true",
        help="exit 1 on regressions (default: ::warning annotations only)",
    )
    parser.add_argument(
        "--emit-ok",
        metavar="PATH",
        help="create PATH iff no regression was found (also when the "
        "baseline was missing). Lets CI promote the current snapshot to "
        "baseline only on clean runs, so a regressed run keeps being "
        "compared against the last good baseline instead of being "
        "normalized — without it, two consecutive sub-threshold drops "
        "compound invisibly.",
    )
    args = parser.parse_args()

    def emit_ok():
        if args.emit_ok:
            with open(args.emit_ok, "w", encoding="utf-8") as f:
                f.write("ok\n")

    try:
        baseline = load_rows(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"no usable baseline ({e}); skipping bench diff")
        emit_ok()  # nothing to regress against: seed the baseline
        return 0
    try:
        current = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"::error::cannot read current bench snapshot: {e}")
        return 1

    regressions = []
    improvements = []
    for key, row in sorted(current.items()):
        old = baseline.get(key)
        if old is None:
            print(f"new cell (no baseline): {fmt_key(key)}")
            continue
        old_tps = old.get("tasks_per_s") or 0.0
        new_tps = row.get("tasks_per_s") or 0.0
        if old_tps <= 0.0:
            continue
        change = (new_tps - old_tps) / old_tps
        if change < -args.max_drop:
            regressions.append((key, old_tps, new_tps, change))
        elif change > args.max_drop:
            improvements.append((key, old_tps, new_tps, change))
    for key in sorted(baseline.keys() - current.keys()):
        print(f"cell dropped from matrix: {fmt_key(key)}")

    for key, old_tps, new_tps, change in improvements:
        print(
            f"improvement: {fmt_key(key)}: {old_tps:.0f} -> {new_tps:.0f} "
            f"tasks/s ({change:+.1%})"
        )
    level = "error" if args.fail else "warning"
    for key, old_tps, new_tps, change in regressions:
        print(
            f"::{level}::throughput regression: {fmt_key(key)}: "
            f"{old_tps:.0f} -> {new_tps:.0f} tasks/s ({change:+.1%}, "
            f"threshold -{args.max_drop:.0%})"
        )
    print(
        f"bench diff: {len(current)} cells compared, "
        f"{len(regressions)} regression(s) beyond {args.max_drop:.0%}, "
        f"{len(improvements)} improvement(s)"
    )
    if not regressions:
        emit_ok()
    return 1 if regressions and args.fail else 0


if __name__ == "__main__":
    sys.exit(main())
