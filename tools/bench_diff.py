#!/usr/bin/env python3
"""Compare two bench JSON snapshots cell by cell.

Closes the perf-trajectory loop: CI uploads one JSON artifact per commit
per harness (bench/backend_matrix.cc and bench/steady_state.cc, both via
--json=...), and this script diffs the current snapshot against the
previous run's, flagging every cell whose throughput (tasks_per_s)
dropped by more than --max-drop (default 25%).

Cells are keyed by (workload, backend, threads, pop_batch, pop_batch_auto,
policy, distribution, numa); policy/distribution are None for
backend_matrix rows, and numa="off" folds into None so pre-topology
baselines (no numa field) keep matching current flat rows. That keeps
legacy keys stable while newer rows — which sweep insert policies,
key distributions, and topology placement (--numa) — stay distinct per
combination. Unknown per-row fields (e.g. the steady harness's
throughput-over-time "buckets" array) are ignored entirely: only
tasks_per_s is compared, so old baselines without them diff cleanly.

Cells present only in the current snapshot are informational (axes
legitimately grow). Cells present only in the BASELINE are their own
annotation class: a silently vanished cell usually means a harness flag
or sweep loop broke, so each one gets a ::warning — loud in the PR view,
but never an exit-1 even under --fail, since axes also legitimately
shrink.

Exit status: 0 when clean or when the baseline is missing/unreadable (first
run on a branch must not fail CI); 1 when regressions were found AND --fail
was given. Without --fail, regressions are emitted as GitHub Actions
::warning annotations — shared CI runners are noisy enough that a hard gate
on a single run would mostly catch scheduler jitter, so the default is a
loud warning; flip on --fail for a quiet dedicated perf box.

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json [--max-drop=0.25] [--fail]
  tools/bench_diff.py --self-test

--self-test runs an internal schema-compatibility check (no files needed):
an old-schema snapshot (without the per-cell latency fields backend_matrix
now emits, e.g. slice_p99_us) must diff cleanly against a new-schema one —
cell keys line up, unknown/null fields are ignored, and equal throughput
yields zero regressions. It also checks that steady_state rows differing
only in policy/distribution get distinct keys, and that baseline-only
cells are classified as missing rather than folded into regressions. CI
runs this so a schema change that would break the first diff against a
pre-change baseline fails loudly in the PR that makes it.

No dependencies beyond the Python 3 standard library.
"""

import argparse
import json
import sys
import tempfile


def cell_key(row):
    return (
        row.get("workload"),
        row.get("backend"),
        row.get("threads"),
        row.get("pop_batch"),
        bool(row.get("pop_batch_auto", False)),
        # steady_state axes; None on legacy backend_matrix rows, so old
        # baselines keep producing identical keys.
        row.get("policy"),
        row.get("distribution"),
        # Topology placement axis. "off" (the flat default every new
        # snapshot emits) folds into None so pre---numa baselines keep
        # diffing against current default rows; only auto/virtual:K rows
        # get distinct keys.
        row.get("numa") if row.get("numa") != "off" else None,
    )


def sort_key(key):
    """Total order over cell keys whose optional fields mix None and str
    (e.g. a flat row keyed numa=None next to numa='virtual:2')."""
    return tuple((x is None, x) for x in key)


def fmt_key(key):
    workload, backend, threads, batch, auto, policy, dist, numa = key
    batch_s = f"auto:{batch}" if auto else str(batch)
    out = f"{workload} x {backend} @ t={threads} batch={batch_s}"
    if policy is not None:
        out += f" policy={policy}"
    if dist is not None:
        out += f" dist={dist}"
    if numa is not None:
        out += f" numa={numa}"
    return out


def report_missing(baseline, current, annotate=True):
    """Annotates cells present in the baseline but absent from the current
    snapshot. Returns the missing keys (sorted) for callers that count
    them; annotation-only — missing cells never affect the exit status.
    annotate=False skips the printing (the self-test classifies without
    planting ::warning lines in CI logs)."""
    missing = sorted(baseline.keys() - current.keys(), key=sort_key)
    if annotate:
        for key in missing:
            print(
                f"::warning::cell missing from current snapshot: "
                f"{fmt_key(key)} (harness flag or sweep loop change?)"
            )
    return missing


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    cells = {}
    for row in rows:
        key = cell_key(row)
        # Duplicate keys would silently shadow each other; keep the best
        # run, matching how a human reads repeated bench rows.
        prev = cells.get(key)
        if prev is None or row.get("tasks_per_s", 0) > prev.get(
            "tasks_per_s", 0
        ):
            cells[key] = row
    return cells


def diff_cells(baseline, current, max_drop):
    """Classifies shared cells: returns (regressions, improvements), each a
    list of (key, old_tps, new_tps, relative_change)."""
    regressions = []
    improvements = []
    for key, row in sorted(current.items(), key=lambda kv: sort_key(kv[0])):
        old = baseline.get(key)
        if old is None:
            continue
        old_tps = old.get("tasks_per_s") or 0.0
        new_tps = row.get("tasks_per_s") or 0.0
        if old_tps <= 0.0:
            continue
        change = (new_tps - old_tps) / old_tps
        if change < -max_drop:
            regressions.append((key, old_tps, new_tps, change))
        elif change > max_drop:
            improvements.append((key, old_tps, new_tps, change))
    return regressions, improvements


def self_test():
    """Old-schema baseline vs new-schema current must compare cleanly."""
    base_cell = {
        "workload": "mis",
        "backend": "multiqueue-c2",
        "threads": 4,
        "pop_batch": 8,
        "pop_batch_auto": False,
        "seconds": 0.5,
        "tasks_per_s": 1000.0,
        "iters_per_task": 1.1,
        "wasted_frac": 0.01,
        "mean_rank": None,
        "max_rank": None,
    }
    old_rows = [base_cell, dict(base_cell, workload="sssp")]
    # The new schema adds per-cell latency fields (number or null).
    new_rows = [
        dict(base_cell, slice_p99_us=42.5),
        dict(base_cell, workload="sssp", slice_p99_us=None),
    ]

    def roundtrip(rows):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8"
        ) as f:
            json.dump(rows, f)
            path = f.name
        return load_rows(path)

    baseline = roundtrip(old_rows)
    current = roundtrip(new_rows)
    failures = []
    if set(baseline) != set(current):
        failures.append(
            "cell keys diverge between schemas: "
            f"{set(baseline) ^ set(current)}"
        )
    regressions, improvements = diff_cells(baseline, current, 0.25)
    if regressions:
        failures.append(f"spurious regressions: {regressions}")
    if improvements:
        failures.append(f"spurious improvements: {improvements}")
    # And a genuine drop must still be caught across schemas.
    dropped = {
        k: dict(v, tasks_per_s=(v.get("tasks_per_s") or 0.0) * 0.5)
        for k, v in current.items()
    }
    regressions, _ = diff_cells(baseline, dropped, 0.25)
    if len(regressions) != len(baseline):
        failures.append(
            f"expected {len(baseline)} regressions at -50%, "
            f"got {len(regressions)}"
        )

    # Steady-state rows differing only in policy/distribution must key to
    # distinct cells; a legacy row (no such fields) must key as (None, None).
    steady_cell = dict(
        base_cell,
        workload="steady",
        policy="uniform",
        distribution="dijkstra",
        runs=3,
    )
    steady_rows = [
        steady_cell,
        dict(steady_cell, policy="split"),
        dict(steady_cell, distribution="ascending"),
    ]
    steady = roundtrip(steady_rows)
    if len(steady) != 3:
        failures.append(
            f"policy/distribution collapse: expected 3 distinct steady "
            f"cells, got {len(steady)}"
        )
    if cell_key(base_cell)[-2:] != (None, None):
        failures.append("legacy row did not key as policy/distribution=None")

    # Topology axis compatibility: a pre---numa baseline row (no numa
    # field) must key identically to a current numa="off" row — including
    # one that also carries the steady harness's buckets array, which is
    # not a compared metric — while numa="virtual:2" rows stay distinct.
    numa_rows = roundtrip(
        [
            dict(steady_cell, numa="off", buckets=[500, 500]),
            dict(steady_cell, numa="virtual:2", buckets=[250, 250]),
        ]
    )
    if len(numa_rows) != 2:
        failures.append(
            f"numa axis collapse: expected 2 distinct cells, got "
            f"{len(numa_rows)}"
        )
    legacy_steady = roundtrip([steady_cell])
    regressions, improvements = diff_cells(legacy_steady, numa_rows, 0.25)
    if regressions or improvements:
        failures.append(
            f"numa=off row did not diff cleanly against legacy baseline: "
            f"{regressions} {improvements}"
        )
    if report_missing(legacy_steady, numa_rows, annotate=False):
        failures.append(
            "legacy (no-numa) baseline cell not matched by numa=off row"
        )
    if cell_key(dict(steady_cell, numa="off"))[-1] is not None:
        failures.append("numa=off did not fold into the legacy None key")

    # Baseline-only cells are their own class: never regressions, and
    # report_missing must surface exactly the vanished keys.
    shrunk = dict(steady)
    gone = cell_key(steady_rows[1])
    del shrunk[gone]
    regressions, _ = diff_cells(steady, shrunk, 0.25)
    if regressions:
        failures.append(f"missing cell misclassified as regression: "
                        f"{regressions}")
    missing = report_missing(steady, shrunk, annotate=False)
    if missing != [gone]:
        failures.append(
            f"expected missing cells [{gone}], got {missing}"
        )

    for failure in failures:
        print(f"::error::bench_diff self-test: {failure}")
    if not failures:
        print("bench_diff self-test: OK (old-schema baseline diffs cleanly "
              "against new-schema snapshot)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two backend_matrix JSON snapshots for throughput "
        "regressions."
    )
    parser.add_argument(
        "baseline", nargs="?", help="previous run's JSON artifact"
    )
    parser.add_argument(
        "current", nargs="?", help="this run's JSON artifact"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the internal schema-compatibility check and exit",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.25,
        help="relative throughput drop that counts as a regression "
        "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--fail",
        action="store_true",
        help="exit 1 on regressions (default: ::warning annotations only)",
    )
    parser.add_argument(
        "--emit-ok",
        metavar="PATH",
        help="create PATH iff no regression was found (also when the "
        "baseline was missing). Lets CI promote the current snapshot to "
        "baseline only on clean runs, so a regressed run keeps being "
        "compared against the last good baseline instead of being "
        "normalized — without it, two consecutive sub-threshold drops "
        "compound invisibly.",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current are required unless --self-test")

    def emit_ok():
        if args.emit_ok:
            with open(args.emit_ok, "w", encoding="utf-8") as f:
                f.write("ok\n")

    try:
        baseline = load_rows(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"no usable baseline ({e}); skipping bench diff")
        emit_ok()  # nothing to regress against: seed the baseline
        return 0
    try:
        current = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"::error::cannot read current bench snapshot: {e}")
        return 1

    for key in sorted(current.keys() - baseline.keys(), key=sort_key):
        print(f"new cell (no baseline): {fmt_key(key)}")
    regressions, improvements = diff_cells(baseline, current, args.max_drop)
    missing = report_missing(baseline, current)

    for key, old_tps, new_tps, change in improvements:
        print(
            f"improvement: {fmt_key(key)}: {old_tps:.0f} -> {new_tps:.0f} "
            f"tasks/s ({change:+.1%})"
        )
    level = "error" if args.fail else "warning"
    for key, old_tps, new_tps, change in regressions:
        print(
            f"::{level}::throughput regression: {fmt_key(key)}: "
            f"{old_tps:.0f} -> {new_tps:.0f} tasks/s ({change:+.1%}, "
            f"threshold -{args.max_drop:.0%})"
        )
    print(
        f"bench diff: {len(current)} cells compared, "
        f"{len(regressions)} regression(s) beyond {args.max_drop:.0%}, "
        f"{len(improvements)} improvement(s), {len(missing)} missing cell(s)"
    )
    if not regressions:
        emit_ok()
    return 1 if regressions and args.fail else 0


if __name__ == "__main__":
    sys.exit(main())
