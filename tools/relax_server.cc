// relax_server: the networked job server (src/server/server.h) as a
// standalone binary.
//
// Binds a TCP endpoint, loads resident graphs, and serves the
// length-prefixed protocol (docs/PROTOCOL.md) until SIGTERM/SIGINT. Prints
// "listening on <host>:<port>" once ready — with --port=0 this is how the
// bound ephemeral port is discovered (CI and scripts parse this line).
// Admission is bounded: when the engine queue is full, requests are
// answered BUSY instead of queueing, so the --pending knob is the server's
// entire overload policy.
//
// On shutdown the telemetry sinks are dumped: --metrics counts accepted /
// rejected / completed requests plus the request-latency histogram next to
// the per-worker engine metrics; --trace captures slice-level timelines.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "server/server.h"
#include "server/server_cli.h"
#include "util/cli.h"

namespace {

[[noreturn]] void usage_and_exit(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: relax_server [flags]\n"
      "\n"
      "  --host=<addr>            listen address (default 127.0.0.1)\n"
      "  --port=<p>               listen port; 0 binds an ephemeral port\n"
      "                           and prints it (default 0)\n"
      "  --threads=<n>            engine worker threads (0 = hardware)\n"
      "  --inflight=<n>           jobs multiplexed at once (default 4)\n"
      "  --pending=<n>            admission queue bound; overflow is\n"
      "                           answered BUSY (default 64)\n"
      "  --backend=<name>|mix     default scheduler backend for requests\n"
      "                           that don't name one (default: registry\n"
      "                           default); 'mix' rotates defaulted\n"
      "                           requests round-robin through the whole\n"
      "                           registry — a heterogeneous multi-tenant\n"
      "                           pool\n"
      "  --default-weight=<w>     QoS weight for requests that send\n"
      "                           weight 0; old clients without the field\n"
      "                           stay at weight 1 (default 1, max 1024)\n"
      "  --pop-batch=<k>|auto[:max]\n"
      "                           default labels per scheduler touch;\n"
      "                           'auto' adapts per worker up to max\n"
      "                           (default 1)\n"
      "  --numa=off|auto|virtual:<K>\n"
      "                           topology-aware placement: pin workers\n"
      "                           socket-by-socket and stripe backends per\n"
      "                           domain (default off)\n"
      "  --graphs=<n>             resident graphs to generate; requests\n"
      "                           pick one by graph_id (default 1)\n"
      "  --graph-n=<v> --graph-m=<e>\n"
      "                           size of each resident G(n,m) graph\n"
      "                           (default 4000 / 24000)\n"
      "  --metrics=<path|->       dump request + engine metrics on exit:\n"
      "                           Prometheus text, JSON if path ends in\n"
      "                           .json, stdout with '-'\n"
      "  --trace=<path|->         write a Chrome trace-event JSON file\n"
      "                           (open in chrome://tracing) on exit\n"
      "  --help                   this text\n"
      "\n"
      "Stops cleanly on SIGTERM/SIGINT: stops accepting, closes\n"
      "connections, drains in-flight jobs, dumps telemetry, exits 0.\n");
  std::exit(error != nullptr ? 2 : 0);
}

relax::server::JobServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // async-signal-safe
}

}  // namespace

int main(int argc, char** argv) {
  const relax::util::CommandLine cli(argc, argv);
  if (cli.has("help")) usage_and_exit(nullptr);

  relax::server::ServerOptions opts;
  opts.host = cli.get_string("host", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  opts.engine.num_threads =
      static_cast<unsigned>(cli.get_int("threads", 0));
  opts.engine.max_in_flight = static_cast<unsigned>(
      std::max<std::int64_t>(1, cli.get_int("inflight", 4)));
  opts.engine.max_pending = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("pending", 64)));

  const std::string backend_flag = cli.get_string("backend", "");
  if (!backend_flag.empty()) {
    if (backend_flag == "mix") {
      // Server-side rotation: defaulted requests cycle through the whole
      // registry, one heterogeneous multi-tenant pool (the QoS governor
      // keeps the mix fair). Requests that name a backend still win.
      for (const auto* info : relax::server::cli::resolve_backends("mix"))
        opts.backend_rotation.push_back(std::string(info->name));
    } else if (relax::sched::find_backend(backend_flag) == nullptr) {
      std::fprintf(stderr, "unknown --backend '%s'; valid: %s\n",
                   backend_flag.c_str(),
                   relax::sched::backend_names().c_str());
      return 2;
    } else {
      opts.default_backend = backend_flag;
    }
  }

  const std::int64_t default_weight = cli.get_int("default-weight", 1);
  if (default_weight < 1 ||
      default_weight >
          static_cast<std::int64_t>(relax::engine::JobConfig::kMaxWeight)) {
    std::fprintf(stderr, "--default-weight must be in [1, %u]\n",
                 relax::engine::JobConfig::kMaxWeight);
    return 2;
  }
  opts.default_weight = static_cast<std::uint32_t>(default_weight);

  const auto pb =
      relax::server::cli::parse_pop_batch(cli.get_string("pop-batch", "1"));
  if (!pb) return 2;
  opts.default_pop_batch = pb->batch;
  opts.default_pop_batch_auto = pb->adaptive;

  const auto numa =
      relax::server::cli::parse_numa(cli.get_string("numa", "off"));
  if (!numa) return 2;
  opts.engine.topology = *numa;

  const auto num_graphs = std::max<std::int64_t>(1, cli.get_int("graphs", 1));
  const auto graph_n =
      std::max<std::int64_t>(2, cli.get_int("graph-n", 4000));
  const auto graph_m =
      std::max<std::int64_t>(1, cli.get_int("graph-m", 24000));
  opts.graphs.clear();
  for (std::int64_t i = 0; i < num_graphs; ++i) {
    relax::server::GraphSpec spec;
    spec.n = static_cast<std::uint32_t>(graph_n);
    spec.m = static_cast<std::uint64_t>(graph_m);
    spec.seed = static_cast<std::uint64_t>(i) + 1;
    opts.graphs.push_back(spec);
  }

  const std::string metrics_path = cli.get_string("metrics", "");
  const std::string trace_path = cli.get_string("trace", "");
  relax::obs::MetricsRegistry registry;
  relax::obs::TraceRing ring;
  if (!metrics_path.empty()) opts.metrics = &registry;
  if (!trace_path.empty()) opts.engine.trace = &ring;

  auto server = std::make_unique<relax::server::JobServer>(std::move(opts));
  g_server = server.get();
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf(
      "relax_server: %u workers, %zu resident graphs, backend %s, "
      "default weight %u\n",
      server->engine().width(), server->num_graphs(),
      backend_flag.empty()
          ? "(registry default)"
          : (backend_flag == "mix" ? "mix (registry rotation)"
                                   : backend_flag.c_str()),
      static_cast<unsigned>(default_weight));
  std::printf("listening on %s:%u\n",
              cli.get_string("host", "127.0.0.1").c_str(),
              static_cast<unsigned>(server->port()));
  std::fflush(stdout);

  server->run();

  std::printf("relax_server: shutting down, draining in-flight jobs\n");
  std::fflush(stdout);
  g_server = nullptr;

  // Destroy the server before exporting telemetry: teardown drains every
  // in-flight job, so the registry and trace ring are quiescent here.
  server.reset();
  relax::server::cli::dump_metrics(registry, metrics_path);
  if (!trace_path.empty()) {
    if (trace_path == "-") {
      const std::string text = ring.to_chrome_json();
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else if (!ring.write_chrome_json(trace_path)) {
      std::fprintf(stderr, "warning: cannot write trace '%s'\n",
                   trace_path.c_str());
    }
  }
  return 0;
}
