#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "graph/generators.h"
#include "sched/backend_registry.h"

namespace relax::server {

namespace {

[[nodiscard]] std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

JobServer::JobServer(ServerOptions opts) : opts_(std::move(opts)) {
  graphs_.reserve(opts_.graphs.size());
  for (const GraphSpec& spec : opts_.graphs) {
    graph::Graph g = graph::gnm(spec.n, spec.m, spec.seed);
    graph::Priorities vertex_pri =
        graph::random_priorities(spec.n, spec.seed + 1);
    algorithms::EdgeIncidence incidence(g);
    graph::Priorities edge_pri =
        graph::random_priorities(incidence.num_edges(), spec.seed + 2);
    graphs_.push_back(ResidentGraph{std::move(g), std::move(vertex_pri),
                                    std::move(incidence),
                                    std::move(edge_pri)});
  }
  if (opts_.engine.metrics == nullptr) opts_.engine.metrics = opts_.metrics;
  engine_.emplace(opts_.engine);

  if (!opts_.listen) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("invalid listen host: " + opts_.host);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(listen_fd_, 128) != 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0)
    throw_errno("getsockname");
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listen sentinel
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0)
    throw_errno("epoll_ctl(listen)");
  ev.data.u64 = 1;  // wake sentinel
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0)
    throw_errno("epoll_ctl(wake)");
}

JobServer::~JobServer() {
  // Drain in-flight jobs first: their completion callbacks still push onto
  // the (alive) channel and write the (alive) eventfd; nobody reads either
  // again, which is fine — the connections are going away regardless.
  engine_.reset();
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void JobServer::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  wake();
}

void JobServer::wake() noexcept {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // write(2) is async-signal-safe; a short/failed write only means the
  // loop was already awake (eventfd add never short-writes in practice).
  [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
}

void JobServer::run() {
  if (!opts_.listen)
    throw std::logic_error("JobServer::run() in in-process mode");
  std::array<epoll_event, 64> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      const std::uint64_t tag = ev.data.u64;
      if (tag == 0) {
        handle_accept();
        continue;
      }
      if (tag == 1) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) ==
               static_cast<ssize_t>(sizeof(drained))) {
        }
        drain_completions();
        continue;
      }
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(tag);
        continue;
      }
      if ((ev.events & EPOLLIN) != 0) {
        auto it = conns_.find(tag);
        if (it != conns_.end()) handle_readable(it->second);
      }
      if ((ev.events & EPOLLOUT) != 0) {
        auto it = conns_.find(tag);  // re-find: the read may have closed it
        if (it != conns_.end()) handle_writable(it->second);
      }
    }
  }
  // Stop: drop every connection. In-flight jobs keep running (the engine
  // owns them); their completions land on the channel and are dropped with
  // it — by then no client is listening.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) close_connection(id);
}

void JobServer::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    if (opts_.metrics != nullptr)
      opts_.metrics->server().connections_opened.add();
  }
}

void JobServer::handle_readable(Connection& conn) {
  const std::uint64_t id = conn.id;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::read(conn.fd, buf, sizeof(buf));
    if (r > 0) {
      conn.reader.feed(
          std::span<const std::uint8_t>(buf, static_cast<std::size_t>(r)));
      if (conn.reader.corrupt()) {
        // A bad length prefix is unrecoverable — there is no frame
        // boundary to resync on. Count it and drop the stream.
        if (opts_.metrics != nullptr)
          opts_.metrics->server().request_errors.add();
        close_connection(id);
        return;
      }
      while (auto payload = conn.reader.next()) {
        handle_frame(conn, std::span<const std::uint8_t>(*payload));
        if (conns_.find(id) == conns_.end()) return;  // frame closed us
      }
      continue;
    }
    if (r == 0) {  // orderly client close
      close_connection(id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(id);
    return;
  }
}

void JobServer::handle_writable(Connection& conn) { flush_writes(conn); }

void JobServer::handle_frame(Connection& conn,
                             std::span<const std::uint8_t> payload) {
  const auto req = protocol::decode_request(payload);
  if (!req) {
    // Framing was intact but the payload is not a request we understand:
    // answer (id 0 — an undecodable request has no trustworthy id) and
    // keep the connection; the next frame may be fine.
    if (opts_.metrics != nullptr)
      opts_.metrics->server().request_errors.add();
    protocol::Response resp;
    resp.status = protocol::Status::kError;
    resp.error = protocol::ErrorCode::kBadFrame;
    resp.message = "undecodable request payload";
    queue_response(conn, resp);
    return;
  }
  const std::uint64_t conn_id = conn.id;
  protocol::Response immediate;
  const protocol::Status status = admit_request(
      *req,
      [this, conn_id](const protocol::Response& resp) {
        {
          std::lock_guard<std::mutex> guard(completions_mu_);
          completions_.push_back(Completion{conn_id, resp});
        }
        wake();
      },
      &immediate);
  if (status != protocol::Status::kOk) queue_response(conn, immediate);
}

protocol::Status JobServer::admit_request(
    const protocol::Request& req,
    std::function<void(const protocol::Response&)> deliver,
    protocol::Response* immediate) {
  const auto reject = [&](protocol::ErrorCode code, std::string msg) {
    if (opts_.metrics != nullptr)
      opts_.metrics->server().request_errors.add();
    *immediate = protocol::Response{};
    immediate->id = req.id;
    immediate->status = protocol::Status::kError;
    immediate->error = code;
    immediate->message = std::move(msg);
    return protocol::Status::kError;
  };
  if (req.graph_id >= graphs_.size())
    return reject(protocol::ErrorCode::kBadGraph,
                  "graph_id names no resident graph");
  const sched::BackendInfo* backend = nullptr;
  if (req.backend.empty()) {
    if (!opts_.backend_rotation.empty()) {
      // Defaulted requests round-robin through the rotation (the
      // --backend=mix multi-tenant pool); a request that names a backend
      // bypasses it below.
      const std::uint64_t at =
          rotation_next_.fetch_add(1, std::memory_order_relaxed);
      backend = sched::find_backend(
          opts_.backend_rotation[at % opts_.backend_rotation.size()]);
    } else {
      backend = opts_.default_backend.empty()
                    ? &sched::default_backend()
                    : sched::find_backend(opts_.default_backend);
    }
  } else {
    backend = sched::find_backend(req.backend);
  }
  if (backend == nullptr)
    return reject(protocol::ErrorCode::kBadBackend,
                  "unknown backend '" + req.backend + "'");

  engine::JobConfig cfg;
  cfg.seed = req.seed;
  if (req.pop_batch == 0 && !req.pop_batch_auto) {
    cfg.pop_batch = opts_.default_pop_batch;
    cfg.pop_batch_auto = opts_.default_pop_batch_auto;
  } else {
    cfg.pop_batch = std::clamp<std::uint32_t>(
        req.pop_batch == 0 ? engine::JobConfig::kDefaultAutoPopBatch
                           : req.pop_batch,
        1, engine::JobConfig::kMaxPopBatch);
    cfg.pop_batch_auto = req.pop_batch_auto;
  }
  cfg.monitor_relaxation = req.audit;
  // QoS weight: 0 on the wire means "server default" (--default-weight);
  // pre-weight clients decode as 1 and keep their historical share.
  cfg.weight = std::clamp<std::uint32_t>(
      req.weight == 0 ? opts_.default_weight : req.weight, 1,
      engine::JobConfig::kMaxWeight);

  // Per-request problem storage, owned by the completion callback: the
  // engine is done with the job before the callback fires (CompletionFn
  // contract), so the holder's destruction there is the earliest safe
  // point — and on BUSY it dies right here, nothing was admitted.
  struct Holder {
    std::unique_ptr<algorithms::AtomicMisProblem> mis;
    std::unique_ptr<algorithms::AtomicColoringProblem> coloring;
    std::unique_ptr<algorithms::AtomicMatchingProblem> matching;
  };
  auto holder = std::make_shared<Holder>();
  const std::uint64_t start_ns = now_ns();
  obs::MetricsRegistry* metrics = opts_.metrics;
  engine::CompletionFn on_complete =
      [deliver = std::move(deliver), holder, id = req.id, start_ns,
       metrics](const core::ExecutionStats& stats) {
        protocol::Response resp;
        resp.id = id;
        resp.status = protocol::Status::kOk;
        resp.iterations = stats.iterations;
        resp.processed = stats.processed;
        resp.failed_deletes = stats.failed_deletes;
        resp.latency_ns = now_ns() - start_ns;
        resp.rank_samples = stats.rank_samples;
        resp.mean_rank_error = stats.mean_rank_error;
        resp.max_rank_error = stats.max_rank_error;
        if (metrics != nullptr) {
          metrics->server().requests_completed.add();
          metrics->server().request_latency_ns.record(resp.latency_ns);
        }
        deliver(resp);
      };

  ResidentGraph& rg = graphs_[req.graph_id];
  std::optional<engine::JobTicket> ticket;
  switch (req.kind) {
    case protocol::Kind::kMis:
      holder->mis = std::make_unique<algorithms::AtomicMisProblem>(
          rg.g, rg.vertex_pri);
      ticket = engine_->try_submit_relaxed_backend(
          *holder->mis, rg.vertex_pri, *backend, cfg, std::move(on_complete));
      break;
    case protocol::Kind::kColoring:
      holder->coloring = std::make_unique<algorithms::AtomicColoringProblem>(
          rg.g, rg.vertex_pri);
      ticket = engine_->try_submit_relaxed_backend(
          *holder->coloring, rg.vertex_pri, *backend, cfg,
          std::move(on_complete));
      break;
    case protocol::Kind::kMatching:
      holder->matching = std::make_unique<algorithms::AtomicMatchingProblem>(
          rg.incidence, rg.edge_pri);
      ticket = engine_->try_submit_relaxed_backend(
          *holder->matching, rg.edge_pri, *backend, cfg,
          std::move(on_complete));
      break;
  }
  if (!ticket) {  // admission full: shed with BUSY, never queue unboundedly
    if (opts_.metrics != nullptr)
      opts_.metrics->server().requests_rejected.add();
    *immediate = protocol::Response{};
    immediate->id = req.id;
    immediate->status = protocol::Status::kBusy;
    return protocol::Status::kBusy;
  }
  if (opts_.metrics != nullptr)
    opts_.metrics->server().requests_accepted.add();
  return protocol::Status::kOk;
}

protocol::Status JobServer::submit_local(
    const protocol::Request& req,
    std::function<void(const protocol::Response&)> deliver,
    protocol::Response* immediate) {
  return admit_request(req, std::move(deliver), immediate);
}

void JobServer::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> guard(completions_mu_);
    batch.swap(completions_);
  }
  for (const Completion& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // connection gone; reply unread
    queue_response(it->second, done.response);
  }
}

void JobServer::queue_response(Connection& conn,
                               const protocol::Response& resp) {
  protocol::encode(resp, conn.out);
  flush_writes(conn);
}

bool JobServer::flush_writes(Connection& conn) {
  const std::uint64_t id = conn.id;
  while (conn.out_pos < conn.out.size()) {
    const ssize_t w = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (w > 0) {
      conn.out_pos += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(id);
    return false;
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
    if (conn.want_write) update_epoll(conn, false);
    return true;
  }
  // Bounded buffering: a reader slower than its own response stream gets
  // closed instead of growing the buffer without limit.
  if (conn.out.size() - conn.out_pos > opts_.max_out_buffer) {
    close_connection(id);
    return false;
  }
  if (!conn.want_write) update_epoll(conn, true);
  return true;
}

void JobServer::update_epoll(Connection& conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
    conn.want_write = want_write;
}

void JobServer::close_connection(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  if (opts_.metrics != nullptr)
    opts_.metrics->server().connections_closed.add();
}

}  // namespace relax::server
