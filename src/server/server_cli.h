// Shared flag-handling helpers for the server-shaped front-ends
// (tools/relax_server.cc, examples/job_server.cpp, bench/server_load.cc).
//
// Every binary used to re-implement the same four chores — backend
// rotation incl. the "mix" pseudo-name, --pop-batch / --numa validation
// with the exact same error wording, and the metrics dump with its .json
// suffix sniffing. They live here once; the parse_* helpers print the
// canonical error to stderr and return nullopt/empty so callers just
// `return 2`.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "engine/job.h"
#include "obs/metrics.h"
#include "sched/backend_registry.h"
#include "util/topology.h"

namespace relax::server::cli {

/// Resolves a --backend flag into the rotation it names: a single registry
/// backend, the whole registry for "mix", or the registry default for "".
/// Unknown names print the valid set to stderr and return an empty vector.
[[nodiscard]] std::vector<const sched::BackendInfo*> resolve_backends(
    const std::string& flag);

/// Validates a --pop-batch value ("<n>", "auto", "auto:<max>"). Invalid
/// input prints the canonical error and returns nullopt.
[[nodiscard]] std::optional<engine::PopBatchFlag> parse_pop_batch(
    const std::string& value);

/// Validates a --numa value ("off", "auto", "virtual:<K>"). Invalid input
/// prints the canonical error and returns nullopt.
[[nodiscard]] std::optional<util::TopologySpec> parse_numa(
    const std::string& value);

/// Writes the registry snapshot to `path`: '-' = stdout, a path ending in
/// .json gets JSON, anything else Prometheus text. Empty path is a no-op.
/// Returns false (with a stderr warning) when the file cannot be written.
bool dump_metrics(const obs::MetricsRegistry& registry,
                  const std::string& path);

}  // namespace relax::server::cli
