#include "server/protocol.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace relax::server::protocol {

namespace {

// Little-endian scalar append/read. The cursor-based Reader returns false
// on underrun so decoders degrade to nullopt instead of reading garbage.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = data_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (pos_ + 2 > data_.size()) return false;
    v = static_cast<std::uint16_t>(data_[pos_] |
                                   (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return true;
  }
  bool str(std::size_t len, std::string& v) {
    if (pos_ + len > data_.size()) return false;
    v.assign(reinterpret_cast<const char*>(data_.data()) + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Reserves the 4-byte length slot, returns its offset.
std::size_t begin_frame(std::vector<std::uint8_t>& out) {
  const std::size_t at = out.size();
  put_u32(out, 0);
  return at;
}

/// Backfills the length prefix with the payload size written since
/// begin_frame.
void end_frame(std::vector<std::uint8_t>& out, std::size_t at) {
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - at - 4);
  for (int i = 0; i < 4; ++i)
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
}

}  // namespace

void encode(const Request& msg, std::vector<std::uint8_t>& out) {
  const std::size_t frame = begin_frame(out);
  put_u8(out, kVersion);
  put_u8(out, kRequestType);
  put_u8(out, static_cast<std::uint8_t>(msg.kind));
  std::uint8_t flags = 0;
  if (msg.audit) flags |= 0x01;
  if (msg.pop_batch_auto) flags |= 0x02;
  put_u8(out, flags);
  put_u32(out, msg.graph_id);
  put_u32(out, msg.pop_batch);
  put_u64(out, msg.id);
  put_u64(out, msg.seed);
  const std::size_t blen = std::min<std::size_t>(msg.backend.size(), 255);
  put_u8(out, static_cast<std::uint8_t>(blen));
  out.insert(out.end(), msg.backend.begin(),
             msg.backend.begin() + static_cast<std::ptrdiff_t>(blen));
  // Trailing v1 field (additive evolution): QoS weight. Always written by
  // this encoder; absent in pre-weight frames, which decode as weight 1.
  put_u32(out, msg.weight);
  end_frame(out, frame);
}

void encode(const Response& msg, std::vector<std::uint8_t>& out) {
  const std::size_t frame = begin_frame(out);
  put_u8(out, kVersion);
  put_u8(out, kResponseType);
  put_u8(out, static_cast<std::uint8_t>(msg.status));
  put_u8(out, static_cast<std::uint8_t>(msg.error));
  put_u64(out, msg.id);
  put_u64(out, msg.iterations);
  put_u64(out, msg.processed);
  put_u64(out, msg.failed_deletes);
  put_u64(out, msg.latency_ns);
  put_u64(out, msg.rank_samples);
  put_u64(out, msg.max_rank_error);
  put_u64(out, std::bit_cast<std::uint64_t>(msg.mean_rank_error));
  const std::size_t mlen = std::min<std::size_t>(msg.message.size(), 65535);
  put_u16(out, static_cast<std::uint16_t>(mlen));
  out.insert(out.end(), msg.message.begin(),
             msg.message.begin() + static_cast<std::ptrdiff_t>(mlen));
  end_frame(out, frame);
}

std::optional<Request> decode_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  std::uint8_t version = 0, type = 0, kind = 0, flags = 0, blen = 0;
  Request msg;
  if (!r.u8(version) || version != kVersion) return std::nullopt;
  if (!r.u8(type) || type != kRequestType) return std::nullopt;
  if (!r.u8(kind) || kind > static_cast<std::uint8_t>(Kind::kMatching))
    return std::nullopt;
  if (!r.u8(flags) || !r.u32(msg.graph_id) || !r.u32(msg.pop_batch) ||
      !r.u64(msg.id) || !r.u64(msg.seed) || !r.u8(blen) ||
      !r.str(blen, msg.backend))
    return std::nullopt;
  msg.kind = static_cast<Kind>(kind);
  msg.audit = (flags & 0x01) != 0;
  msg.pop_batch_auto = (flags & 0x02) != 0;
  // Trailing weight field: optional for compatibility with pre-weight
  // encoders. Absent -> 1 (the historical per-job share), NOT 0 — an old
  // client never asked for the server's default-weight override.
  std::uint32_t weight = 0;
  msg.weight = r.u32(weight) ? weight : 1;
  return msg;
}

std::optional<Response> decode_response(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  std::uint8_t version = 0, type = 0, status = 0, error = 0;
  std::uint16_t mlen = 0;
  std::uint64_t mean_bits = 0;
  Response msg;
  if (!r.u8(version) || version != kVersion) return std::nullopt;
  if (!r.u8(type) || type != kResponseType) return std::nullopt;
  if (!r.u8(status) || status > static_cast<std::uint8_t>(Status::kError))
    return std::nullopt;
  if (!r.u8(error) || !r.u64(msg.id) || !r.u64(msg.iterations) ||
      !r.u64(msg.processed) || !r.u64(msg.failed_deletes) ||
      !r.u64(msg.latency_ns) || !r.u64(msg.rank_samples) ||
      !r.u64(msg.max_rank_error) || !r.u64(mean_bits) || !r.u16(mlen) ||
      !r.str(mlen, msg.message))
    return std::nullopt;
  msg.status = static_cast<Status>(status);
  msg.error = static_cast<ErrorCode>(error);
  msg.mean_rank_error = std::bit_cast<double>(mean_bits);
  return msg;
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  if (corrupt_) return;  // sticky: nothing past a bad prefix is trustworthy
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  std::size_t pos = 0;
  while (buffer_.size() - pos >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= std::uint32_t{buffer_[pos + static_cast<std::size_t>(i)]}
             << (8 * i);
    if (len == 0 || len > kMaxFrameBytes) {
      corrupt_ = true;
      buffer_.clear();
      return;
    }
    if (buffer_.size() - pos - 4 < len) break;  // frame incomplete
    const auto* begin = buffer_.data() + pos + 4;
    ready_.emplace_back(begin, begin + len);
    pos += 4 + len;
  }
  if (pos > 0)
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  if (ready_.empty()) return std::nullopt;
  std::vector<std::uint8_t> payload = std::move(ready_.front());
  ready_.pop_front();
  return payload;
}

}  // namespace relax::server::protocol
