#include "server/server_cli.h"

#include <cstdio>

namespace relax::server::cli {

std::vector<const sched::BackendInfo*> resolve_backends(
    const std::string& flag) {
  std::vector<const sched::BackendInfo*> backends;
  if (flag.empty()) {
    backends.push_back(&sched::default_backend());
  } else if (flag == "mix") {
    for (const auto& info : sched::backend_registry())
      backends.push_back(&info);
  } else if (const auto* info = sched::find_backend(flag)) {
    backends.push_back(info);
  } else {
    std::fprintf(stderr, "unknown --backend '%s'; valid: mix, %s\n",
                 flag.c_str(), sched::backend_names().c_str());
  }
  return backends;
}

std::optional<engine::PopBatchFlag> parse_pop_batch(
    const std::string& value) {
  const auto pb = engine::parse_pop_batch_flag(value);
  if (!pb.valid) {
    std::fprintf(stderr,
                 "error: invalid --pop-batch '%s': expected a positive "
                 "integer, 'auto', or 'auto:<max>'\n",
                 value.c_str());
    return std::nullopt;
  }
  return pb;
}

std::optional<util::TopologySpec> parse_numa(const std::string& value) {
  const auto spec = util::TopologySpec::parse(value);
  if (!spec) {
    std::fprintf(stderr,
                 "error: invalid --numa '%s': expected 'off', 'auto', or "
                 "'virtual:<K>' with K >= 1\n",
                 value.c_str());
    return std::nullopt;
  }
  return spec;
}

bool dump_metrics(const obs::MetricsRegistry& registry,
                  const std::string& path) {
  if (path.empty()) return true;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string text =
      json ? registry.to_json() : registry.to_prometheus();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
    return true;
  }
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("metrics written to %s\n", path.c_str());
    return true;
  }
  std::fprintf(stderr, "warning: cannot write '%s'\n", path.c_str());
  return false;
}

}  // namespace relax::server::cli
