// Networked job server: an async epoll front-end over SchedulingEngine.
//
// This is the "millions of users" story made concrete: one JobServer owns
// one engine pool plus a set of resident graphs, listens on a TCP socket,
// and serves the length-prefixed binary protocol in src/server/protocol.h.
// The design is a single event-loop thread plus the engine's worker pool,
// glued by a completion channel:
//
//   epoll thread   accept()s connections, reassembles frames
//                  (protocol::FrameReader), decodes requests, and admits
//                  jobs through the engine's *non-blocking* admission
//                  (SchedulingEngine::try_submit). It never blocks: when
//                  the admission queue is full the request is answered
//                  with an explicit BUSY response instead of queueing
//                  unboundedly — bounded admission becomes visible
//                  backpressure on the wire.
//   engine workers run the job slices exactly as for in-process callers;
//                  the reaping worker fires the submission's completion
//                  callback (engine::CompletionFn).
//   completion     the callback does no I/O: it stamps the request
//   channel        latency, builds the protocol::Response, pushes it onto
//                  a mutex-guarded queue and writes an eventfd — the
//                  lightweight channel / deferred-call handoff. The epoll
//                  thread wakes, drains the queue, and writes responses on
//                  the owning connections (dropping completions whose
//                  connection is gone — the job still ran; only the
//                  reply had no reader).
//
// Every request therefore gets exactly one response — OK with stats, BUSY,
// or ERROR — unless its connection closed first; nothing is silently
// dropped and nothing buffers without bound (per-connection write buffers
// are capped; a reader slower than its own response stream is closed).
//
// Telemetry: with ServerOptions::metrics attached, the server records
// accepted / rejected / completed / error request counts, connection
// open/close counts, and an accept-to-completion request-latency histogram
// into the registry's server block (obs::ServerMetrics), next to the
// engine's per-worker counters — one Prometheus scrape covers the whole
// stack.
//
// In-process mode (ServerOptions::listen = false) skips the sockets
// entirely: submit_local() drives the same validation + admission +
// completion path with a caller-supplied delivery callback. This is what
// examples/job_server.cpp runs on — the demo and the network server are
// one code path from admission down.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/matching.h"
#include "algorithms/mis.h"
#include "engine/engine.h"
#include "graph/graph.h"
#include "graph/permutation.h"
#include "server/protocol.h"

namespace relax::server {

/// One resident graph the server loads at startup (requests reference it
/// by index — protocol::Request::graph_id).
struct GraphSpec {
  std::uint32_t n = 4000;
  std::uint64_t m = 24000;
  std::uint64_t seed = 1;
};

struct ServerOptions {
  /// Listening endpoint. port 0 binds an ephemeral port (see port()).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// false = in-process mode: no sockets, submit_local() only.
  bool listen = true;

  /// Engine pool shape; EngineOptions::max_pending is the admission bound
  /// whose overflow becomes BUSY responses.
  engine::EngineOptions engine;

  /// Defaults applied when a request leaves the field at 0 / "".
  std::string default_backend;  // "" = registry default
  std::uint32_t default_pop_batch = 1;
  bool default_pop_batch_auto = false;
  /// QoS weight applied when a request carries weight 0 ("use the server
  /// default"). Requests that predate the weight field decode as 1 and
  /// never take this value. Clamped to [1, JobConfig::kMaxWeight].
  std::uint32_t default_weight = 1;

  /// Backend rotation for requests that name no backend. Empty keeps the
  /// historical behaviour (every defaulted request runs default_backend);
  /// nonempty makes defaulted requests round-robin through these registry
  /// names — `relax_server --backend=mix` fills it with the whole
  /// registry, turning one server into a deliberately heterogeneous
  /// multi-tenant pool (the QoS governor's cost normalization is what
  /// keeps such a mix comparable). Requests that *name* a backend bypass
  /// the rotation entirely.
  std::vector<std::string> backend_rotation;

  /// Resident data, generated at startup.
  std::vector<GraphSpec> graphs = {GraphSpec{}};

  /// Per-connection write-buffer cap: a connection whose unread responses
  /// exceed this is closed (slow or absent reader — unbounded buffering is
  /// the failure mode this server exists to not have).
  std::size_t max_out_buffer = 1u << 20;

  /// Optional telemetry sink (server block + engine per-worker metrics).
  /// Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The server. Construct, then either run() the event loop (network mode;
/// blocking — run it on a dedicated thread or the process main) or drive
/// submit_local() (in-process mode). request_stop() is async-signal-safe
/// in network mode, so a SIGTERM handler may call it directly.
class JobServer {
 public:
  explicit JobServer(ServerOptions opts);

  /// Stops accepting, closes connections, and drains every in-flight job
  /// (engine teardown blocks until its jobs finish). run() must have
  /// returned (or never been called) before destruction.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// The bound port (network mode; resolves ephemeral --port=0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Event loop: accept/read/decode/admit/respond until request_stop().
  /// Network mode only; call at most once.
  void run();

  /// Requests run() to exit. Safe from any thread and from a signal
  /// handler (a single eventfd write).
  void request_stop() noexcept;

  /// Validates and admits one request without sockets. Returns kOk and
  /// later invokes `deliver` exactly once from an engine worker thread
  /// (CompletionFn contract: keep it light); or returns kBusy / kError —
  /// then `deliver` is never invoked and the rejection Response is written
  /// to *immediate instead.
  protocol::Status submit_local(
      const protocol::Request& req,
      std::function<void(const protocol::Response&)> deliver,
      protocol::Response* immediate);

  /// The underlying engine (tests saturate admission through it).
  [[nodiscard]] engine::SchedulingEngine& engine() { return *engine_; }

  [[nodiscard]] std::size_t num_graphs() const noexcept {
    return graphs_.size();
  }

 private:
  /// Resident problem inputs, one per GraphSpec: the graph with vertex
  /// priorities (MIS, coloring) and its edge incidence with edge
  /// priorities (matching) — a service loads these once, requests only
  /// name them.
  struct ResidentGraph {
    graph::Graph g;
    graph::Priorities vertex_pri;
    algorithms::EdgeIncidence incidence;
    graph::Priorities edge_pri;
  };

  /// One client connection owned by the epoll loop. Keyed by a
  /// never-reused id so a completion can never be delivered to a
  /// connection that replaced a closed one on the same fd.
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    protocol::FrameReader reader;
    std::vector<std::uint8_t> out;  // encoded, unwritten response bytes
    std::size_t out_pos = 0;        // already-written prefix of `out`
    bool want_write = false;        // EPOLLOUT currently armed
  };

  /// A finished job on its way back to the epoll thread.
  struct Completion {
    std::uint64_t conn_id = 0;
    protocol::Response response;
  };

  /// Shared admission path (network + local). On kOk, `deliver` fires
  /// exactly once from an engine worker with the completed Response; on
  /// kBusy/kError nothing was admitted and *immediate carries the
  /// rejection response.
  protocol::Status admit_request(
      const protocol::Request& req,
      std::function<void(const protocol::Response&)> deliver,
      protocol::Response* immediate);

  void handle_accept();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  void handle_frame(Connection& conn, std::span<const std::uint8_t> payload);
  void drain_completions();
  void queue_response(Connection& conn, const protocol::Response& resp);
  /// Flushes conn.out as far as the socket allows; arms/disarms EPOLLOUT.
  /// Returns false when the connection died (already closed here).
  bool flush_writes(Connection& conn);
  void close_connection(std::uint64_t conn_id);
  void update_epoll(Connection& conn, bool want_write);
  void wake() noexcept;

  ServerOptions opts_;
  std::vector<ResidentGraph> graphs_;

  // Completion channel. Declared before engine_ so engine teardown (which
  // may still fire callbacks into it) never touches a destroyed member.
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::unordered_map<std::uint64_t, Connection> conns_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listen sentinel, 1 = wake sentinel
  /// Round-robin cursor into opts_.backend_rotation. Atomic because
  /// submit_local may be driven from several caller threads, unlike the
  /// single epoll thread.
  std::atomic<std::uint64_t> rotation_next_{0};

  // Last member: destroyed first, draining in-flight jobs while the
  // channel above still exists.
  std::optional<engine::SchedulingEngine> engine_;
};

}  // namespace relax::server
