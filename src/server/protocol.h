// Wire protocol for the networked job server (src/server/server.h).
//
// Framing: every message is one frame — a 4-byte little-endian payload
// length followed by the payload. The length covers the payload only, must
// be nonzero, and is clamped at kMaxFrameBytes: a stream carrying a larger
// prefix is corrupt (there is no way to resync a length-prefixed stream
// past a bad length), so FrameReader latches a sticky error and the server
// closes the connection. Within a payload all integers are little-endian
// and fields are packed in declaration order, no padding.
//
// Payloads self-describe with a two-byte header: version (kVersion) then a
// message type (kRequestType / kResponseType). Versioning rule: the codec
// rejects frames whose version it does not know; additive evolution happens
// by appending fields (decoders accept longer-than-known payloads of their
// own version and ignore the tail), breaking changes bump kVersion. See
// docs/PROTOCOL.md for the byte-exact layout.
//
// The codec is deliberately dependency-free (no engine/, no sockets): the
// server, the open-loop load client (bench/server_load.cc), and the tests
// all share exactly this code, so an encode/decode disagreement is
// impossible by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace relax::server::protocol {

inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint8_t kRequestType = 0;
inline constexpr std::uint8_t kResponseType = 1;

/// Upper bound on a frame payload. Far above any real message (requests
/// are ~30 bytes plus a backend name, responses ~80 plus an error string);
/// this exists so a garbage length prefix cannot make the reader buffer
/// gigabytes before noticing the stream is broken.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 16;

/// Problem families a request may name (the same set examples/job_server
/// has always served). Values are wire-stable: never renumber.
enum class Kind : std::uint8_t { kMis = 0, kColoring = 1, kMatching = 2 };

enum class Status : std::uint8_t {
  kOk = 0,     // job ran to completion; stats fields are valid
  kBusy = 1,   // shed at admission (engine queue full) — retry later
  kError = 2,  // request was invalid; see error / message
};

enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kBadVersion = 1,   // unknown protocol version
  kBadKind = 2,      // Kind value outside the enum
  kBadGraph = 3,     // graph_id names no resident graph
  kBadBackend = 4,   // backend name not in the registry
  kBadFrame = 5,     // payload failed to decode as a request
  kShutdown = 6,     // server is stopping; request not admitted
};

/// One job request. `id` is chosen by the client and echoed verbatim in
/// the response — responses complete out of submission order (requests are
/// pipelined; the engine multiplexes), so the id is the only correlation.
struct Request {
  std::uint64_t id = 0;
  Kind kind = Kind::kMis;
  std::uint32_t graph_id = 0;
  std::uint32_t pop_batch = 0;   // labels per scheduler touch; 0 = server
                                 // default, values clamped server-side
  bool pop_batch_auto = false;   // pop_batch becomes the adaptive cap
  bool audit = false;            // run under the Definition 1 monitor
  std::uint64_t seed = 1;        // scheduler randomness (determinism knob)
  std::string backend;           // registry name; "" = server default
  std::uint32_t weight = 0;      // QoS tenant weight, trailing v1 field:
                                 // 0 = use the server's --default-weight;
                                 // ABSENT on the wire (a pre-weight
                                 // encoder) decodes as 1, so old clients
                                 // keep their historical fixed share
};

/// One job completion (or rejection). Stats fields are meaningful only for
/// kOk; rank fields only when the request asked for an audit
/// (rank_samples > 0). latency_ns is the server-side accept-to-completion
/// time — the client measures its own end-to-end latency around it.
struct Response {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  ErrorCode error = ErrorCode::kNone;
  std::uint64_t iterations = 0;
  std::uint64_t processed = 0;
  std::uint64_t failed_deletes = 0;
  std::uint64_t latency_ns = 0;
  std::uint64_t rank_samples = 0;
  std::uint64_t max_rank_error = 0;
  double mean_rank_error = 0.0;
  std::string message;  // human-readable error detail, "" otherwise
};

/// Appends the complete frame (length prefix + payload) for `msg` to
/// `out`. Strings longer than their length field (255 for backend, 65535
/// for message) are truncated — nothing a well-formed caller ever hits.
void encode(const Request& msg, std::vector<std::uint8_t>& out);
void encode(const Response& msg, std::vector<std::uint8_t>& out);

/// Decodes one frame *payload* (the bytes after the length prefix).
/// nullopt when the payload is truncated, carries an unknown version or
/// the wrong message type, or declares a string that runs past its end.
/// Extra trailing bytes are accepted (additive evolution, see header).
[[nodiscard]] std::optional<Request> decode_request(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<Response> decode_response(
    std::span<const std::uint8_t> payload);

/// Incremental frame assembly over an arbitrary-chunked byte stream (what
/// a socket delivers). feed() bytes as they arrive; next() yields complete
/// payloads in order. A zero or oversized length prefix latches the sticky
/// corrupt state: next() returns nothing more and the owner should drop
/// the stream.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> bytes);

  /// The next complete frame payload, FIFO; nullopt when none is buffered
  /// (or the stream is corrupt).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

  /// Bytes buffered but not yet returned (diagnostics / tests).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }

 private:
  std::vector<std::uint8_t> buffer_;  // undecoded stream tail
  std::deque<std::vector<std::uint8_t>> ready_;
  bool corrupt_ = false;
};

}  // namespace relax::server::protocol
