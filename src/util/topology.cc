#include "util/topology.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <numeric>

#include "util/thread_pin.h"

namespace relax::util {

namespace {

/// Reads a small non-negative integer from a sysfs attribute file. nullopt
/// on any failure (missing file, empty, non-numeric) — discovery treats
/// that as "this host doesn't expose topology" and falls back to flat.
std::optional<unsigned> read_sysfs_uint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  char buf[32];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return std::nullopt;
  buf[n] = '\0';
  unsigned value = 0;
  const auto [ptr, ec] = std::from_chars(buf, buf + n, value);
  if (ec != std::errc{} || ptr == buf) return std::nullopt;
  return value;
}

}  // namespace

std::optional<TopologySpec> TopologySpec::parse(std::string_view text) {
  if (text == "off") return TopologySpec{TopologyMode::kOff, 1};
  if (text == "auto") return TopologySpec{TopologyMode::kAuto, 1};
  constexpr std::string_view kVirtualPrefix = "virtual:";
  if (text.substr(0, kVirtualPrefix.size()) == kVirtualPrefix) {
    const std::string_view arg = text.substr(kVirtualPrefix.size());
    unsigned k = 0;
    const auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), k);
    if (ec != std::errc{} || ptr != arg.data() + arg.size() || k == 0)
      return std::nullopt;
    return TopologySpec{TopologyMode::kVirtual, k};
  }
  return std::nullopt;
}

std::string TopologySpec::label() const {
  switch (mode) {
    case TopologyMode::kOff:
      return "off";
    case TopologyMode::kAuto:
      return "auto";
    case TopologyMode::kVirtual:
      return "virtual:" + std::to_string(domains);
  }
  return "off";
}

Topology Topology::flat(unsigned num_cpus) {
  Topology t;
  t.cpu_domain.assign(std::max(num_cpus, 1u), 0);
  t.num_domains = 1;
  return t;
}

Topology Topology::discover() {
  return discover_from("/sys/devices/system/cpu", allowed_cpu_ids());
}

Topology Topology::discover_from(const std::string& sysfs_root,
                                 const std::vector<unsigned>& cpu_ids) {
  const unsigned n = static_cast<unsigned>(cpu_ids.size());
  if (n == 0) return flat(1);
  // Package id per slot, then remapped to dense domain indices ordered by
  // package id (so domain 0 is the lowest-numbered socket, matching the
  // socket-fill pin order the paper uses).
  std::vector<unsigned> package(n);
  for (unsigned slot = 0; slot < n; ++slot) {
    const std::string path = sysfs_root + "/cpu" +
                             std::to_string(cpu_ids[slot]) +
                             "/topology/physical_package_id";
    const auto id = read_sysfs_uint(path);
    if (!id) return flat(n);  // unreadable host: graceful flat fallback
    package[slot] = *id;
  }
  std::vector<unsigned> distinct = package;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (distinct.size() <= 1) return flat(n);  // single socket: flat
  Topology t;
  t.cpu_domain.resize(n);
  t.num_domains = static_cast<unsigned>(distinct.size());
  for (unsigned slot = 0; slot < n; ++slot) {
    t.cpu_domain[slot] = static_cast<unsigned>(
        std::lower_bound(distinct.begin(), distinct.end(), package[slot]) -
        distinct.begin());
  }
  return t;
}

Topology Topology::virtual_split(unsigned num_cpus, unsigned k) {
  const unsigned n = std::max(num_cpus, 1u);
  const unsigned d = std::clamp(k, 1u, n);
  Topology t;
  t.cpu_domain.resize(n);
  t.num_domains = d;
  for (unsigned i = 0; i < n; ++i)
    t.cpu_domain[i] = static_cast<unsigned>(
        (static_cast<std::uint64_t>(i) * d) / n);
  return t;
}

WorkerPlacement plan_workers(const TopologySpec& spec, unsigned num_workers) {
  const unsigned workers = std::max(num_workers, 1u);
  WorkerPlacement p;
  p.pin_slot.resize(workers);
  p.domain.assign(workers, 0);
  std::iota(p.pin_slot.begin(), p.pin_slot.end(), 0u);
  p.num_domains = 1;

  switch (spec.mode) {
    case TopologyMode::kOff:
      return p;  // identity slots, one domain: the historical layout

    case TopologyMode::kVirtual: {
      // Deterministic pretend topology: identity pinning (the host is
      // genuinely flat), workers block-split into K contiguous domains.
      const unsigned d = std::clamp(spec.domains, 1u, workers);
      p.num_domains = d;
      for (unsigned w = 0; w < workers; ++w)
        p.domain[w] = static_cast<unsigned>(
            (static_cast<std::uint64_t>(w) * d) / workers);
      return p;
    }

    case TopologyMode::kAuto: {
      const Topology t = Topology::discover();
      if (t.num_domains <= 1) return p;  // flat host: same as off
      // Socket-fill order: all of domain 0's slots, then domain 1's, ...
      // (stable within a domain, preserving slot order). Worker w takes
      // the w-th slot of that order, wrapping when the pool is wider than
      // the machine.
      const unsigned n = static_cast<unsigned>(t.cpu_domain.size());
      std::vector<unsigned> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::stable_sort(order.begin(), order.end(),
                       [&](unsigned a, unsigned b) {
                         return t.cpu_domain[a] < t.cpu_domain[b];
                       });
      p.num_domains = t.num_domains;
      for (unsigned w = 0; w < workers; ++w) {
        const unsigned slot = order[w % n];
        p.pin_slot[w] = slot;
        p.domain[w] = t.cpu_domain[slot];
      }
      return p;
    }
  }
  return p;
}

}  // namespace relax::util
