// Cache-line padding wrapper to prevent false sharing between per-thread /
// per-queue hot data. std::hardware_destructive_interference_size is 64 on
// x86-64 but we pad to 128 to also defeat adjacent-line prefetching.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace relax::util {

inline constexpr std::size_t kCacheLine = 128;

template <typename T>
struct alignas(kCacheLine) Padded {
  T value;

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace relax::util
