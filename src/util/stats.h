// Small statistics toolkit: online mean/variance (Welford), min/max,
// fixed-bucket and exponential histograms, and run-summary helpers used by
// the benchmark harnesses to report paper-style numbers (avg over trials,
// error bars as min/max).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace relax::util {

/// Welford online accumulator: numerically stable mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void merge(const OnlineStats& other) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over non-negative integer values with power-of-two buckets:
/// bucket b counts values v with 2^b <= v+1 < 2^(b+1) (so value 0 lands in
/// bucket 0). Used to validate the exponential tail bounds of Definition 1.
class ExponentialHistogram {
 public:
  void add(std::uint64_t value) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  /// Fraction of samples with value >= threshold (exact, via raw tail sums
  /// maintained per bucket boundary; conservative within the boundary
  /// bucket).
  [[nodiscard]] double tail_fraction_at_least(std::uint64_t threshold) const;
  /// The p-th percentile (p in [0, 100]). Exact while the raw-sample
  /// reservoir still covers every added value (<= 2^16 samples); beyond
  /// that, linear interpolation inside the boundary power-of-two bucket —
  /// exact for bucket 0 ({0}) and within a factor of two elsewhere, which
  /// is the resolution rank-error reporting needs. 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  /// Maximum value ever added.
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_; }
  /// Exact mean over all added values (0 when empty).
  [[nodiscard]] double mean() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(total_);
  }
  void merge(const ExponentialHistogram& other);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::vector<std::uint64_t> raw_;  // sampled raw values (capped reservoir)
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Simple dense histogram for small integer domains (e.g. color counts).
class DenseHistogram {
 public:
  void add(std::size_t value);
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t at(std::size_t value) const noexcept {
    return value < counts_.size() ? counts_[value] : 0;
  }
  [[nodiscard]] std::size_t max_value() const noexcept {
    return counts_.empty() ? 0 : counts_.size() - 1;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Percentile from an unsorted sample (copies + sorts; for bench reporting).
[[nodiscard]] double percentile(std::vector<double> sample, double p);

}  // namespace relax::util
