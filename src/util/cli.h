// Tiny command-line flag parser for benches and examples.
//
// Supports --name=value and --name value forms, typed lookups with defaults,
// and --help text assembled from registered flags. Deliberately minimal — no
// external dependency, no global state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace relax::util {

class CommandLine {
 public:
  /// Parses argv. Unknown flags are kept (so binaries can share parsers);
  /// positional arguments are collected in order.
  CommandLine(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Comma-separated integer list, e.g. --ks=4,8,16.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program_name() const { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Splits a comma-separated list flag value ("a,b,c" -> {"a","b","c"}).
/// Strict: an empty value, a leading/trailing comma, or a doubled comma
/// all yield an empty token, and empty tokens are rejected wholesale
/// (nullopt) — letting "" flow onward turns `--backends=mq,` into a
/// baffling registry lookup failure and `--pop-batch=8,` into a parse
/// error pointing at nothing. CLI front-ends report the flag and exit 2.
[[nodiscard]] std::optional<std::vector<std::string>> split_csv(
    const std::string& value);

}  // namespace relax::util
