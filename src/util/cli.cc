#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>

namespace relax::util {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> CommandLine::raw(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

bool CommandLine::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CommandLine::get_string(const std::string& name,
                                    const std::string& def) const {
  return raw(name).value_or(def);
}

std::int64_t CommandLine::get_int(const std::string& name,
                                  std::int64_t def) const {
  const auto v = raw(name);
  if (!v) return def;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double CommandLine::get_double(const std::string& name, double def) const {
  const auto v = raw(name);
  if (!v) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool CommandLine::get_bool(const std::string& name, bool def) const {
  const auto v = raw(name);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::int64_t> CommandLine::get_int_list(
    const std::string& name, std::vector<std::int64_t> def) const {
  const auto v = raw(name);
  if (!v) return def;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < v->size()) {
    auto comma = v->find(',', pos);
    if (comma == std::string::npos) comma = v->size();
    out.push_back(std::strtoll(v->substr(pos, comma - pos).c_str(), nullptr,
                               10));
    pos = comma + 1;
  }
  return out;
}

std::optional<std::vector<std::string>> split_csv(const std::string& value) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end == pos) return std::nullopt;  // empty token
    tokens.push_back(value.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (tokens.empty()) return std::nullopt;  // empty value
  return tokens;
}

}  // namespace relax::util
