// Minimal wall-clock timing helper used by benches and examples.
#pragma once

#include <chrono>

namespace relax::util {

/// Wall-clock stopwatch based on steady_clock. Started on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace relax::util
