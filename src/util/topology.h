// CPU topology discovery and worker placement — the "which socket is this
// stripe on" half of topology-aware scheduling (sched/stripe_map.h is the
// "which stripes does this worker prefer" half).
//
// Real discovery reads each allowed CPU's physical_package_id from sysfs
// and degrades to a flat single-domain view whenever the files are missing
// or every CPU shares a package — so on the single-socket containers CI
// runs in, `--numa=auto` is exactly `--numa=off`. Because that makes the
// interesting code paths unreachable on most dev boxes, a *virtual*
// topology (`Topology::virtual_split(k)`, CLI `--numa=virtual:K`) carves
// the flat CPU list into k pretend domains: the locality logic — domain
//-restricted sampling, bounded cross-domain steal, socket-fill pinning —
// runs deterministically on any host, which is what the conformance and
// quality suites pin.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace relax::util {

enum class TopologyMode : std::uint8_t {
  kOff,      // flat: one domain, identity pinning (the historical behavior)
  kAuto,     // discover sockets from sysfs; flat fallback
  kVirtual,  // pretend the flat CPU list is `domains` sockets
};

/// A parsed `--numa=` value: off | auto | virtual:K.
struct TopologySpec {
  TopologyMode mode = TopologyMode::kOff;
  unsigned domains = 1;  // kVirtual only: the requested split factor

  /// Parses "off", "auto", or "virtual:K" (K >= 1). nullopt on anything
  /// else — CLI layers turn that into exit 2 with a usage message.
  static std::optional<TopologySpec> parse(std::string_view text);

  /// Canonical label for bench JSON / log lines: "off", "auto",
  /// "virtual:K".
  [[nodiscard]] std::string label() const;

  [[nodiscard]] bool enabled() const noexcept {
    return mode != TopologyMode::kOff;
  }
};

/// The machine's (or a pretend machine's) CPU-to-domain map. Slot i refers
/// to the i-th *allowed* CPU (util::allowed_cpu_ids() order), the same
/// index space pin_thread_to_cpu uses — not raw CPU ids, so restricted
/// cpusets keep working.
struct Topology {
  std::vector<unsigned> cpu_domain;  // domain of CPU slot i
  unsigned num_domains = 1;

  /// One domain holding every slot — the fallback everything degrades to.
  static Topology flat(unsigned num_cpus);

  /// Sysfs discovery over this process's allowed CPUs. Falls back to
  /// flat() whenever any package id is unreadable or only one package is
  /// present.
  static Topology discover();

  /// Discovery against an explicit sysfs root and CPU id list — the test
  /// seam: topology_test writes fixture trees
  /// (<root>/cpu<N>/topology/physical_package_id) and checks the parse.
  static Topology discover_from(const std::string& sysfs_root,
                                const std::vector<unsigned>& cpu_ids);

  /// Virtual override: slot i belongs to domain i*k/n (contiguous blocks,
  /// every domain non-empty when k <= n; k is clamped into [1, n]).
  static Topology virtual_split(unsigned num_cpus, unsigned k);
};

/// Where each worker of a pool runs and which domain it belongs to.
/// pin_slot[w] is the argument WorkerPool passes to pin_thread_to_cpu for
/// worker w; domain[w] feeds the worker's scheduler-session handles (and
/// through them sched::StripeMap's preferred-stripe choice).
struct WorkerPlacement {
  std::vector<unsigned> pin_slot;  // CPU slot per worker (identity when flat)
  std::vector<unsigned> domain;    // topology domain per worker
  unsigned num_domains = 1;
};

/// Resolves a TopologySpec into a concrete placement for `num_workers`
/// workers:
///   off      identity slots, one domain (exactly the pre-topology layout);
///   auto     sysfs discovery + socket-fill order per the paper (all of
///            domain 0's slots first, then domain 1's, ...), so co-domain
///            workers land on co-socket CPUs; degrades to off when
///            discovery finds a single package;
///   virtual  identity slots with workers block-split into K domains
///            (worker w -> domain w*K/W), deterministic on any host.
[[nodiscard]] WorkerPlacement plan_workers(const TopologySpec& spec,
                                           unsigned num_workers);

}  // namespace relax::util
