#include "util/thread_pin.h"

#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace relax::util {

namespace {

#if defined(__linux__)
// Logical CPU ids this process may run on, captured once at first use. In a
// restricted cgroup/cpuset the allowed ids need not start at 0 or be
// contiguous, so pinning to `cpu % hardware_concurrency` can target a CPU
// outside the mask (the affinity call fails and the thread runs unpinned).
// Indexing into this list always yields a CPU the scheduler accepts, and
// requesting more workers than CPUs wraps instead of pinning to nonexistent
// ids.
const std::vector<unsigned>& allowed_cpus() noexcept {
  static const std::vector<unsigned> cpus = [] {
    std::vector<unsigned> out;
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
      for (unsigned c = 0; c < CPU_SETSIZE; ++c)
        if (CPU_ISSET(c, &set)) out.push_back(c);
    }
    if (out.empty()) {
      const unsigned n = std::thread::hardware_concurrency();
      for (unsigned c = 0; c < (n == 0 ? 1 : n); ++c) out.push_back(c);
    }
    return out;
  }();
  return cpus;
}
#endif

}  // namespace

unsigned hardware_threads() noexcept {
#if defined(__linux__)
  return static_cast<unsigned>(allowed_cpus().size());
#else
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
#endif
}

std::vector<unsigned> allowed_cpu_ids() {
#if defined(__linux__)
  return allowed_cpus();
#else
  const unsigned n = hardware_threads();
  std::vector<unsigned> out;
  out.reserve(n);
  for (unsigned c = 0; c < n; ++c) out.push_back(c);
  return out;
#endif
}

bool pin_thread_to_cpu(unsigned cpu) noexcept {
#if defined(__linux__)
  const auto& cpus = allowed_cpus();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpus[cpu % cpus.size()], &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace relax::util
