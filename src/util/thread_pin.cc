#include "util/thread_pin.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace relax::util {

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_thread_to_cpu(unsigned cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hardware_threads(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace relax::util
