#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace relax::util {

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void ExponentialHistogram::add(std::uint64_t value) noexcept {
  const unsigned bucket = std::bit_width(value + 1) - 1;
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  ++total_;
  sum_ += value;
  max_ = std::max(max_, value);
  if (raw_.size() < 1u << 16) raw_.push_back(value);
}

double ExponentialHistogram::tail_fraction_at_least(
    std::uint64_t threshold) const {
  if (total_ == 0) return 0.0;
  // Exact over the sampled reservoir when it covers everything.
  if (raw_.size() == total_) {
    std::uint64_t c = 0;
    for (std::uint64_t v : raw_)
      if (v >= threshold) ++c;
    return static_cast<double>(c) / static_cast<double>(total_);
  }
  // Otherwise conservative via buckets: count whole buckets whose minimum
  // value (2^b - 1) is >= threshold, plus the straddling bucket entirely.
  std::uint64_t c = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t bucket_max = (2ULL << b) - 2;  // max value in bucket b
    if (bucket_max >= threshold) c += buckets_[b];
  }
  return static_cast<double>(c) / static_cast<double>(total_);
}

double ExponentialHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  // Exact over the sampled reservoir when it covers everything.
  if (raw_.size() == total_) {
    std::vector<double> sample(raw_.begin(), raw_.end());
    return util::percentile(std::move(sample), clamped);
  }
  // Bucket walk: find the bucket holding the target rank, interpolate
  // linearly between the bucket's value bounds [2^b - 1, 2^(b+1) - 2].
  const double target =
      clamped / 100.0 * static_cast<double>(total_ - 1);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t in_bucket = buckets_[b];
    if (in_bucket == 0) continue;
    if (target < static_cast<double>(before + in_bucket)) {
      const double lo = static_cast<double>((1ULL << b) - 1);
      const double hi = static_cast<double>(
          std::min<std::uint64_t>((2ULL << b) - 2, max_));
      const double frac = in_bucket == 1
                              ? 0.0
                              : (target - static_cast<double>(before)) /
                                    static_cast<double>(in_bucket - 1);
      return lo + frac * (hi - lo);
    }
    before += in_bucket;
  }
  return static_cast<double>(max_);
}

void ExponentialHistogram::merge(const ExponentialHistogram& other) {
  if (other.buckets_.size() > buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t b = 0; b < other.buckets_.size(); ++b)
    buckets_[b] += other.buckets_[b];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  for (std::uint64_t v : other.raw_) {
    if (raw_.size() >= 1u << 16) break;
    raw_.push_back(v);
  }
}

std::string ExponentialHistogram::to_string() const {
  std::ostringstream os;
  os << "total=" << total_ << " max=" << max_;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    os << " [" << ((1ULL << b) - 1) << ".." << ((2ULL << b) - 2)
       << "]=" << buckets_[b];
  }
  return os.str();
}

void DenseHistogram::add(std::size_t value) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  ++counts_[value];
  ++total_;
}

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(sample.begin(), sample.end());
  const double idx = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

}  // namespace relax::util
