// Deterministic, fast pseudo-random number generation.
//
// Every randomized component of the library (graph generators, permutations,
// relaxed schedulers) takes an explicit seed so that experiments and tests are
// reproducible. We provide:
//
//   * SplitMix64  — tiny stateless-ish stream generator, used for seeding.
//   * Xoshiro256StarStar — the main engine (satisfies
//     std::uniform_random_bit_generator), 2^256-1 period, excellent speed.
//
// plus convenience helpers for bounded integers (Lemire's unbiased multiply-
// shift rejection method) and Fisher-Yates shuffling.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace relax::util {

/// SplitMix64: used to expand a single 64-bit seed into larger state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed). Main engine for all randomized components.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64, as recommended by the
  /// authors. A zero seed is fine (SplitMix64 output is never all-zero four
  /// times in a row).
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed = 1) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); used to derive independent
  /// per-thread streams from one seed.
  constexpr void long_jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x76e15d3efefdcbbfULL,
                                       0xc5004e441c522fb3ULL,
                                       0x77710069854ee241ULL,
                                       0x39109bb02acbe635ULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (void)(*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Default engine alias used across the library.
using Rng = Xoshiro256StarStar;

/// Unbiased uniform integer in [0, bound). bound must be > 0.
/// Lemire's multiply-shift with rejection (no modulo in the common path).
template <typename Engine>
constexpr std::uint64_t bounded(Engine& rng, std::uint64_t bound) noexcept {
  using u128 = unsigned __int128;
  std::uint64_t x = rng();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = rng();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform integer in the inclusive range [lo, hi].
template <typename Engine>
constexpr std::uint64_t uniform_in(Engine& rng, std::uint64_t lo,
                                   std::uint64_t hi) noexcept {
  return lo + bounded(rng, hi - lo + 1);
}

/// Uniform double in [0, 1) with 53 bits of randomness.
template <typename Engine>
constexpr double uniform_double(Engine& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// In-place Fisher-Yates shuffle.
template <typename Engine, typename T>
void shuffle(std::span<T> data, Engine& rng) {
  for (std::size_t i = data.size(); i > 1; --i) {
    const std::size_t j = bounded(rng, i);
    using std::swap;
    swap(data[i - 1], data[j]);
  }
}

/// Identity permutation 0..n-1 shuffled uniformly at random.
template <typename Engine>
std::vector<std::uint32_t> random_permutation(std::uint32_t n, Engine& rng) {
  std::vector<std::uint32_t> pi(n);
  for (std::uint32_t i = 0; i < n; ++i) pi[i] = i;
  shuffle(std::span<std::uint32_t>(pi), rng);
  return pi;
}

}  // namespace relax::util
