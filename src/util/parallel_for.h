// Fork-join parallel loop over an index range, used by graph construction
// and generators. Spawns std::jthreads per call; call sites are coarse
// (graph-sized) so thread-creation cost is negligible. Not a work-stealing
// runtime on purpose — the paper's point is that the *scheduler data
// structure* provides the parallelism for the algorithms themselves.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/thread_pin.h"

namespace relax::util {

/// Invokes fn(begin, end) on roughly equal chunks of [begin, end) across
/// `threads` workers (0 = hardware concurrency). fn must be thread-safe.
template <typename Fn>
void parallel_chunks(std::uint64_t begin, std::uint64_t end, unsigned threads,
                     Fn&& fn) {
  const std::uint64_t total = end > begin ? end - begin : 0;
  if (threads == 0) threads = hardware_threads();
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, std::max<std::uint64_t>(total, 1)));
  if (threads <= 1 || total < 4096) {
    fn(begin, end);
    return;
  }
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  const std::uint64_t chunk = (total + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::uint64_t lo = begin + static_cast<std::uint64_t>(t) * chunk;
    const std::uint64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
}

/// Like parallel_chunks, but fn also receives the worker index:
/// fn(worker, lo, hi). Always uses exactly `threads` slots (workers with an
/// empty range are not invoked). Returns the number of slots.
template <typename Fn>
unsigned parallel_chunks_indexed(std::uint64_t begin, std::uint64_t end,
                                 unsigned threads, Fn&& fn) {
  const std::uint64_t total = end > begin ? end - begin : 0;
  if (threads == 0) threads = hardware_threads();
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, std::max<std::uint64_t>(total, 1)));
  if (threads <= 1) {
    fn(0u, begin, end);
    return 1;
  }
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  const std::uint64_t chunk = (total + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::uint64_t lo = begin + static_cast<std::uint64_t>(t) * chunk;
    const std::uint64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&fn, t, lo, hi] { fn(t, lo, hi); });
  }
  return threads;
}

/// Element-wise parallel for: fn(i) for i in [begin, end).
template <typename Fn>
void parallel_for(std::uint64_t begin, std::uint64_t end, unsigned threads,
                  Fn&& fn) {
  parallel_chunks(begin, end, threads, [&fn](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace relax::util
