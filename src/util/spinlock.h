// Test-and-test-and-set spinlock with exponential backoff.
//
// Used by the concurrent MultiQueue: critical sections are a handful of heap
// operations, so a futex-based mutex would pay syscall overhead for nothing.
// Satisfies the Lockable named requirement (usable with std::lock_guard).
#pragma once

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace relax::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class Spinlock {
 public:
  Spinlock() noexcept = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    int spins = 1;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Test-and-test-and-set: spin on a plain load to keep the line shared.
      while (flag_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < spins; ++i) cpu_relax();
        if (spins < 1024) spins <<= 1;
      }
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace relax::util
