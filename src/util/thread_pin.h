// Thread-affinity helper. The paper pins threads to fill sockets one at a
// time; util/topology.h computes that socket-fill order (WorkerPlacement)
// and callers pass the resulting CPU *slot* here — slot i is the i-th CPU
// this process may run on, so restricted cpusets and multi-socket hosts
// both work. With topology off the slot is just the worker index, which
// reproduces the historical pin-thread-i-to-CPU-i layout.
#pragma once

#include <vector>

namespace relax::util {

/// Pins the calling thread to the given logical CPU slot (modulo the
/// number of CPUs available). Returns true on success; failure is harmless
/// and the benchmarks proceed unpinned.
bool pin_thread_to_cpu(unsigned cpu) noexcept;

/// Number of logical CPUs usable by this process.
unsigned hardware_threads() noexcept;

/// The logical CPU ids this process may run on, in slot order — the id
/// pin_thread_to_cpu(slot) actually pins to is allowed_cpu_ids()[slot %
/// size]. Topology discovery reads per-CPU sysfs attributes keyed by these
/// ids.
std::vector<unsigned> allowed_cpu_ids();

}  // namespace relax::util
