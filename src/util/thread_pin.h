// Thread-affinity helper. The paper pins threads to fill sockets one at a
// time; on our single-socket container we pin thread i to logical CPU i,
// which avoids migrations and stabilizes the thread-sweep benchmarks.
#pragma once

namespace relax::util {

/// Pins the calling thread to the given logical CPU (modulo the number of
/// CPUs available). Returns true on success; failure is harmless and the
/// benchmarks proceed unpinned.
bool pin_thread_to_cpu(unsigned cpu) noexcept;

/// Number of logical CPUs usable by this process.
unsigned hardware_threads() noexcept;

}  // namespace relax::util
