// Sequential execution engines (paper Algorithms 1, 2 and 4).
//
// run_sequential drives a Problem through any SequentialScheduler:
//
//   * with ExactHeapScheduler it is Algorithm 1 — the reference execution
//     (in an exact run try_process never returns kNotReady, because tasks
//     arrive in strict priority order and all predecessors are processed);
//   * with a relaxed scheduler and a generic Problem it is Algorithm 2;
//   * with a relaxed scheduler and the MIS problem adapter (which returns
//     kRetired for dead vertices) it is Algorithm 4.
//
// The determinism guarantee of the framework — output identical to
// Algorithm 1 regardless of scheduler and k — is a consequence of problems
// only processing dependency-free tasks; tests/determinism_test.cc checks
// it exhaustively.
#pragma once

#include "core/execution_stats.h"
#include "core/problem.h"
#include "graph/permutation.h"
#include "sched/scheduler.h"
#include "util/timer.h"

namespace relax::core {

/// Loads all tasks into `scheduler` (in pi order) and runs the framework
/// loop until the scheduler drains. Returns work statistics; algorithm
/// output lives inside the problem adapter.
template <Problem P, sched::SequentialScheduler S>
ExecutionStats run_sequential(P& problem, const graph::Priorities& pri,
                              S& scheduler) {
  ExecutionStats stats;
  util::Timer timer;
  const std::uint32_t n = problem.num_tasks();
  for (std::uint32_t label = 0; label < n; ++label) scheduler.insert(label);

  while (auto label = scheduler.approx_get_min()) {
    ++stats.iterations;
    const Task task = pri.order[*label];
    switch (problem.try_process(task)) {
      case Outcome::kProcessed:
        ++stats.processed;
        break;
      case Outcome::kNotReady:
        ++stats.failed_deletes;
        scheduler.insert(*label);  // paper: Q.insert(v_t, pi(v_t))
        break;
      case Outcome::kRetired:
        ++stats.dead_skips;
        break;
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace relax::core
