// Work accounting in the paper's cost model: one "iteration" per scheduler
// query; extra iterations beyond n are failed deletes (re-insertions) plus,
// for Algorithm 4, pops of dead vertices. Table 1 reports failed deletes.
#pragma once

#include <cstdint>
#include <string>

namespace relax::core {

struct ExecutionStats {
  std::uint64_t iterations = 0;      // scheduler pops that returned a task
  std::uint64_t processed = 0;       // successful steps
  std::uint64_t failed_deletes = 0;  // kNotReady -> re-insert (wasted steps)
  std::uint64_t dead_skips = 0;      // kRetired pops (Algorithm 4 dead hits)
  std::uint64_t empty_polls = 0;     // pops that returned nullopt (parallel)
  double seconds = 0.0;  // wall time, job admission through completion

  // Relaxation quality, populated only when a job runs with
  // engine::JobConfig::monitor_relaxation (Definition 1 sampling via
  // sched::RelaxationMonitor). rank_samples == 0 means "not measured".
  std::uint64_t rank_samples = 0;      // monitored pops
  double mean_rank_error = 0.0;        // avg rank of popped element (0=exact)
  std::uint64_t max_rank_error = 0;
  std::uint64_t inversion_samples = 0; // tracked elements retired
  double mean_inversions = 0.0;        // avg priority inversions per element

  /// Iterations beyond the unavoidable n (the paper's "cost of relaxation"
  /// equals failed_deletes; dead skips are part of the n for Algorithm 4
  /// because every vertex is popped-decided exactly once).
  [[nodiscard]] std::uint64_t extra_iterations() const noexcept {
    return failed_deletes;
  }

  ExecutionStats& operator+=(const ExecutionStats& o) noexcept {
    iterations += o.iterations;
    processed += o.processed;
    failed_deletes += o.failed_deletes;
    dead_skips += o.dead_skips;
    empty_polls += o.empty_polls;
    seconds += o.seconds;  // caller overrides with wall time when merging
    if (o.rank_samples > 0) {
      mean_rank_error =
          (mean_rank_error * static_cast<double>(rank_samples) +
           o.mean_rank_error * static_cast<double>(o.rank_samples)) /
          static_cast<double>(rank_samples + o.rank_samples);
      rank_samples += o.rank_samples;
      if (o.max_rank_error > max_rank_error) max_rank_error = o.max_rank_error;
    }
    if (o.inversion_samples > 0) {
      mean_inversions =
          (mean_inversions * static_cast<double>(inversion_samples) +
           o.mean_inversions * static_cast<double>(o.inversion_samples)) /
          static_cast<double>(inversion_samples + o.inversion_samples);
      inversion_samples += o.inversion_samples;
    }
    return *this;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace relax::core
