// Work accounting in the paper's cost model: one "iteration" per scheduler
// query; extra iterations beyond n are failed deletes (re-insertions) plus,
// for Algorithm 4, pops of dead vertices. Table 1 reports failed deletes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace relax::core {

struct ExecutionStats {
  std::uint64_t iterations = 0;      // scheduler pops that returned a task
  std::uint64_t processed = 0;       // successful steps
  std::uint64_t failed_deletes = 0;  // kNotReady -> re-insert (wasted steps)
  std::uint64_t dead_skips = 0;      // kRetired pops (Algorithm 4 dead hits)
  std::uint64_t empty_polls = 0;     // pops that returned nullopt (parallel)
  double seconds = 0.0;  // wall time, job admission through completion

  // Slice telemetry (engine jobs): every run_slice visit that got past the
  // finished() check records its wall latency here. For the merged job
  // stats this is the per-job starvation metric — how long this job's turns
  // on the pool took, p50/p95/p99 via slice_latency_ns.percentile(). Always
  // on (two clock reads per ~slice_budget iterations; the obs overhead
  // guard test pins the total cost).
  std::uint64_t slices = 0;            // run_slice visits recorded
  obs::Histogram slice_latency_ns;     // per-slice wall latency

  // Per-worker breakdown, populated by engine jobs' collect() on the merged
  // result (empty on the per-worker stripes themselves). Entry w holds
  // worker w's share of every counter above; its `seconds` is that worker's
  // BUSY time (sum of its slice latencies), unlike the merged top-level
  // `seconds`, which is wall time.
  std::vector<ExecutionStats> per_worker;

  // Relaxation quality, populated only when a job runs with
  // engine::JobConfig::monitor_relaxation (Definition 1 sampling via
  // sched::RelaxationMonitor). rank_samples == 0 means "not measured".
  std::uint64_t rank_samples = 0;      // monitored pops
  double mean_rank_error = 0.0;        // avg rank of popped element (0=exact)
  std::uint64_t max_rank_error = 0;
  std::uint64_t inversion_samples = 0; // tracked elements retired
  double mean_inversions = 0.0;        // avg priority inversions per element

  /// Iterations beyond the unavoidable n (the paper's "cost of relaxation"
  /// equals failed_deletes; dead skips are part of the n for Algorithm 4
  /// because every vertex is popped-decided exactly once).
  [[nodiscard]] std::uint64_t extra_iterations() const noexcept {
    return failed_deletes;
  }

  /// Accumulates `o` into *this. Counters add; maxima merge unconditionally
  /// (a stripe can carry a max_rank_error without rank_samples when its
  /// mean was recorded elsewhere — the max must never be dropped); means
  /// are sample-weighted. `seconds` ADDS, which is CPU-time semantics: when
  /// merging per-worker stripes of one parallel run the sum is busy time,
  /// not wall time — use merged_wall() for that case, which encodes the
  /// wall-clock override as API instead of caller folklore.
  ExecutionStats& operator+=(const ExecutionStats& o) {
    iterations += o.iterations;
    processed += o.processed;
    failed_deletes += o.failed_deletes;
    dead_skips += o.dead_skips;
    empty_polls += o.empty_polls;
    seconds += o.seconds;
    slices += o.slices;
    slice_latency_ns.merge(o.slice_latency_ns);
    if (!o.per_worker.empty()) {
      if (per_worker.size() < o.per_worker.size())
        per_worker.resize(o.per_worker.size());
      for (std::size_t w = 0; w < o.per_worker.size(); ++w)
        per_worker[w] += o.per_worker[w];
    }
    if (o.max_rank_error > max_rank_error) max_rank_error = o.max_rank_error;
    if (o.rank_samples > 0) {
      mean_rank_error =
          (mean_rank_error * static_cast<double>(rank_samples) +
           o.mean_rank_error * static_cast<double>(o.rank_samples)) /
          static_cast<double>(rank_samples + o.rank_samples);
      rank_samples += o.rank_samples;
    }
    if (o.inversion_samples > 0) {
      mean_inversions =
          (mean_inversions * static_cast<double>(inversion_samples) +
           o.mean_inversions * static_cast<double>(o.inversion_samples)) /
          static_cast<double>(inversion_samples + o.inversion_samples);
      inversion_samples += o.inversion_samples;
    }
    return *this;
  }

  /// Merges per-worker stripes of ONE parallel execution: counters and
  /// histograms accumulate via operator+=, and `seconds` is then OVERRIDDEN
  /// with the run's wall clock (the stripes' own seconds, if any, are busy
  /// time and must not masquerade as elapsed time). This is the
  /// caller-override contract operator+= documents, as code.
  [[nodiscard]] static ExecutionStats merged_wall(
      std::span<const ExecutionStats> stripes, double wall_seconds) {
    ExecutionStats total;
    for (const ExecutionStats& s : stripes) total += s;
    total.seconds = wall_seconds;
    return total;
  }

  /// Slice-latency percentile in microseconds (0 when no slices recorded).
  [[nodiscard]] double slice_percentile_us(double p) const noexcept {
    return slice_latency_ns.percentile(p) / 1e3;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace relax::core
