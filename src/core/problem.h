// The problem-adapter interface consumed by the execution framework.
//
// A *problem* exposes the iterative algorithm's tasks to the scheduler
// framework (paper §2.2). Tasks are dense uint32 ids; the priority
// permutation pi lives outside the problem (graph::Priorities). The single
// entry point is try_process:
//
//   kProcessed  the task had no unprocessed higher-priority dependency and
//               was executed (paper: "successful step");
//   kNotReady   the task has an unprocessed predecessor; the framework
//               re-inserts it with its original priority (paper: "failed
//               delete" / "wasted step");
//   kRetired    the task no longer needs processing and must not be
//               re-inserted — e.g. an MIS vertex already marked dead
//               (Algorithm 4's "if v_t marked dead then continue").
//
// Sequential problems may keep plain state; problems passed to the parallel
// executor must make try_process linearizable (atomic status arrays — see
// algorithms/*_parallel adapters) such that the decided outcome for every
// task equals the sequential execution under the same pi, for any schedule.
#pragma once

#include <concepts>
#include <cstdint>

namespace relax::core {

using Task = std::uint32_t;

enum class Outcome : std::uint8_t {
  kProcessed,
  kNotReady,
  kRetired,
};

template <typename P>
concept Problem = requires(P p, Task t) {
  { p.num_tasks() } -> std::convertible_to<std::uint32_t>;
  { p.try_process(t) } -> std::same_as<Outcome>;
};

}  // namespace relax::core
