#include "core/execution_stats.h"

#include <sstream>

namespace relax::core {

std::string ExecutionStats::to_string() const {
  std::ostringstream os;
  os << "iterations=" << iterations << " processed=" << processed
     << " failed_deletes=" << failed_deletes << " dead_skips=" << dead_skips
     << " empty_polls=" << empty_polls << " seconds=" << seconds;
  return os.str();
}

}  // namespace relax::core
