#include "core/execution_stats.h"

#include <sstream>

namespace relax::core {

std::string ExecutionStats::to_string() const {
  std::ostringstream os;
  os << "iterations=" << iterations << " processed=" << processed
     << " failed_deletes=" << failed_deletes << " dead_skips=" << dead_skips
     << " empty_polls=" << empty_polls << " seconds=" << seconds;
  if (rank_samples > 0) {
    os << " mean_rank_error=" << mean_rank_error
       << " max_rank_error=" << max_rank_error;
  }
  if (inversion_samples > 0) os << " mean_inversions=" << mean_inversions;
  return os.str();
}

}  // namespace relax::core
