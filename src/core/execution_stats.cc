#include "core/execution_stats.h"

#include <sstream>

namespace relax::core {

std::string ExecutionStats::to_string() const {
  // Every field the struct carries is rendered (zero-valued optional
  // sections are elided as "not measured", never silently dropped when
  // nonzero) — tests/stats_test.cc asserts this stays true.
  std::ostringstream os;
  os << "iterations=" << iterations << " processed=" << processed
     << " failed_deletes=" << failed_deletes << " dead_skips=" << dead_skips
     << " empty_polls=" << empty_polls << " seconds=" << seconds;
  if (slices > 0) {
    os << " slices=" << slices
       << " slice_p50_us=" << slice_percentile_us(50.0)
       << " slice_p95_us=" << slice_percentile_us(95.0)
       << " slice_p99_us=" << slice_percentile_us(99.0);
  }
  if (!per_worker.empty()) os << " workers=" << per_worker.size();
  if (rank_samples > 0 || max_rank_error > 0) {
    os << " mean_rank_error=" << mean_rank_error
       << " max_rank_error=" << max_rank_error;
  }
  if (inversion_samples > 0) os << " mean_inversions=" << mean_inversions;
  return os.str();
}

}  // namespace relax::core
