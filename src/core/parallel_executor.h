// Concurrent execution engines (paper §4).
//
// run_parallel_relaxed — the paper's concurrent framework: every thread
// loops { ApproxGetMin; check dependencies; process or re-insert } against
// a shared ConcurrentMultiQueue. Problems must be thread-safe (see
// core/problem.h). Determinism is preserved: a task is processed only once
// its predecessors are decided, so the decided outcome equals the
// sequential execution under the same pi for every schedule.
//
// run_parallel_exact — the paper's exact baseline: tasks pre-loaded in
// strict priority order into a wait-free FAA ticket dispenser (our
// FaaArrayQueue stand-in for the wait-free queue of [27]); a thread that
// dequeues a task with an unprocessed predecessor *waits* for the
// predecessor instead of re-inserting ("we elect to use a backoff scheme
// wherein if an unprocessed predecessor is encountered, we wait for the
// predecessor to process").
// Deadlock-free: the globally smallest-labelled undecided task is always
// processable, so some thread always makes progress.
//
// Termination uses retirement counting, not queue emptiness: every task's
// *final* pop yields kProcessed or kRetired exactly once, so the number of
// such outcomes reaching num_tasks() is an exact termination criterion even
// with re-insertions in flight. The count is striped per thread (a single
// global counter RMW'd per task serializes the run through one cache line
// and flattens the Figure 2 thread sweep); each worker sums the stripes
// only periodically and on empty pops, then raises a shared done flag. The
// sum is monotone and eventually exact, so the flag is raised after the
// last retirement and never before — the lag costs a few empty polls, not
// correctness.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "core/execution_stats.h"
#include "core/problem.h"
#include "graph/permutation.h"
#include "sched/concurrent_multiqueue.h"
#include "sched/faa_array_queue.h"
#include "util/spinlock.h"
#include "util/thread_pin.h"
#include "util/timer.h"

namespace relax::core {

struct ParallelOptions {
  unsigned num_threads = 0;      // 0 = hardware concurrency
  unsigned queue_factor = 4;     // MultiQueue sub-queues per thread (paper: 4)
  unsigned choices = 2;          // sampled sub-queues per pop (ablation knob)
  std::uint64_t seed = 1;        // scheduler randomness
  bool pin_threads = true;

  [[nodiscard]] unsigned threads() const {
    return num_threads == 0 ? util::hardware_threads() : num_threads;
  }
};

/// Iterations between termination-sum checks in the relaxed executor. The
/// cost of a late exit is at most kCheckInterval wasted pops per thread.
inline constexpr std::uint32_t kCheckInterval = 512;

using Priority = sched::Priority;

/// Relaxed concurrent execution over a caller-supplied scheduler. The
/// scheduler must expose get_handle() returning per-thread handles with
/// insert / approx_get_min (ConcurrentMultiQueue and SprayList both do).
/// Tasks are pre-loaded by the caller or left to this function? — this
/// overload loads all n labels itself before spawning workers.
template <typename P, typename Queue>
ExecutionStats run_parallel_relaxed_on(P& problem,
                                       const graph::Priorities& pri,
                                       Queue& queue,
                                       const ParallelOptions& opts = {}) {
  const std::uint32_t n = problem.num_tasks();
  const unsigned threads = opts.threads();
  if constexpr (requires { queue.bulk_load(std::span<const Priority>{}); }) {
    std::vector<Priority> labels(n);
    for (std::uint32_t label = 0; label < n; ++label) labels[label] = label;
    queue.bulk_load(labels);
  } else {
    auto handle = queue.get_handle();
    for (std::uint32_t label = 0; label < n; ++label) handle.insert(label);
  }

  // Retirement stripes: one padded slot per worker; summed periodically.
  std::vector<util::Padded<std::atomic<std::uint32_t>>> retired(threads);
  std::atomic<bool> done{n == 0};
  const auto check_done = [&] {
    std::uint64_t sum = 0;
    for (const auto& slot : retired)
      sum += slot->load(std::memory_order_acquire);
    if (sum >= n) done.store(true, std::memory_order_release);
  };

  std::vector<ExecutionStats> per_thread(threads);
  util::Timer timer;
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        if (opts.pin_threads) util::pin_thread_to_cpu(t);
        auto handle = queue.get_handle();
        // Stack-local stats: the per_thread vector is written once at the
        // end, so counter updates never false-share across workers.
        ExecutionStats stats;
        auto& my_retired = *retired[t];
        std::uint32_t since_check = 0;
        while (!done.load(std::memory_order_acquire)) {
          if (++since_check >= kCheckInterval) {
            since_check = 0;
            check_done();
          }
          const auto label = handle.approx_get_min();
          if (!label) {
            ++stats.empty_polls;
            check_done();
            util::cpu_relax();
            continue;
          }
          ++stats.iterations;
          const Task task = pri.order[*label];
          switch (problem.try_process(task)) {
            case Outcome::kProcessed:
              ++stats.processed;
              my_retired.fetch_add(1, std::memory_order_release);
              break;
            case Outcome::kNotReady:
              ++stats.failed_deletes;
              handle.insert(*label);
              break;
            case Outcome::kRetired:
              ++stats.dead_skips;
              my_retired.fetch_add(1, std::memory_order_release);
              break;
          }
        }
        per_thread[t] = stats;
      });
    }
  }
  ExecutionStats total;
  for (const auto& s : per_thread) total += s;
  total.seconds = timer.seconds();
  return total;
}

/// Relaxed concurrent execution over a freshly built ConcurrentMultiQueue
/// with the paper's parameters (queue_factor sub-queues per thread,
/// two-choice sampling). This is the default entry point.
template <typename P>
ExecutionStats run_parallel_relaxed(P& problem, const graph::Priorities& pri,
                                    const ParallelOptions& opts = {}) {
  sched::ConcurrentMultiQueue queue(opts.queue_factor * opts.threads(),
                                    opts.seed, opts.choices);
  return run_parallel_relaxed_on(problem, pri, queue, opts);
}

/// Exact concurrent execution: FAA FIFO over the priority-sorted task array
/// plus backoff-waiting (never re-inserts).
template <typename P>
ExecutionStats run_parallel_exact(P& problem, const graph::Priorities& pri,
                                  const ParallelOptions& opts = {}) {
  const std::uint32_t n = problem.num_tasks();
  const unsigned threads = opts.threads();
  std::vector<std::uint32_t> labels(n);
  for (std::uint32_t label = 0; label < n; ++label) labels[label] = label;
  sched::FaaArrayQueue<std::uint32_t> queue(std::move(labels));

  std::vector<ExecutionStats> per_thread(threads);
  util::Timer timer;
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        if (opts.pin_threads) util::pin_thread_to_cpu(t);
        ExecutionStats stats;
        for (;;) {
          const auto label = queue.try_dequeue();
          if (!label) break;  // drained: every task delivered exactly once
          ++stats.iterations;
          const Task task = pri.order[*label];
          // Backoff-wait until the task is decided; kNotReady here means
          // "predecessor still in flight on another thread". Every retry
          // re-scans the task's dependencies (O(degree)), so the pause
          // between retries grows exponentially (capped) — without it, 24
          // waiting threads hammering rescans anti-scale the whole sweep.
          unsigned pause = 1;
          for (;;) {
            const Outcome outcome = problem.try_process(task);
            if (outcome == Outcome::kProcessed) {
              ++stats.processed;
              break;
            }
            if (outcome == Outcome::kRetired) {
              ++stats.dead_skips;
              break;
            }
            ++stats.failed_deletes;  // counted as wasted work while waiting
            for (unsigned i = 0; i < pause; ++i) util::cpu_relax();
            if (pause < 4096) pause <<= 1;
          }
        }
        per_thread[t] = stats;
      });
    }
  }
  ExecutionStats total;
  for (const auto& s : per_thread) total += s;
  total.seconds = timer.seconds();
  return total;
}

}  // namespace relax::core
