// Concurrent execution entry points (paper §4) — thin wrappers over the
// persistent scheduling engine.
//
// run_parallel_relaxed — the paper's concurrent framework: every worker
// loops { ApproxGetMin; check dependencies; process or re-insert } against
// a shared ConcurrentMultiQueue. Problems must be thread-safe (see
// core/problem.h). Determinism is preserved: a task is processed only once
// its predecessors are decided, so the decided outcome equals the
// sequential execution under the same pi for every schedule.
//
// run_parallel_exact — the paper's exact baseline: tasks pre-loaded in
// strict priority order into a wait-free FAA ticket dispenser (our
// FaaArrayQueue stand-in for the wait-free queue of [27]); a thread that
// dequeues a task with an unprocessed predecessor *waits* for the
// predecessor instead of re-inserting. Deadlock-free: the globally
// smallest-labelled undecided task is always processable, so some worker
// always makes progress.
//
// These functions keep the original one-shot shape — run one problem to
// termination, return its stats — but since the engine refactor they are
// implemented by standing up a single-job engine::SchedulingEngine,
// submitting, and waiting on the ticket. The worker loop, batched
// admission, striped retirement-count termination, and backoff policies all
// live in engine/job.h now; services that execute many problems should keep
// one engine alive and stream jobs through it instead of paying pool setup
// per call (see engine/engine.h, examples/job_server.cpp).
#pragma once

#include <string_view>

#include "core/execution_stats.h"
#include "core/problem.h"
#include "engine/engine.h"
#include "graph/permutation.h"
#include "sched/backend_registry.h"
#include "sched/concurrent_multiqueue.h"
#include "util/thread_pin.h"
#include "util/topology.h"

namespace relax::core {

struct ParallelOptions {
  unsigned num_threads = 0;      // 0 = hardware concurrency
  unsigned queue_factor = 4;     // MultiQueue sub-queues per thread (paper: 4)
  unsigned choices = 2;          // sampled sub-queues per pop (ablation knob;
                                 // run_parallel_relaxed only — backend names
                                 // pin their own sampling width)
  std::uint32_t relaxation_k = 0;  // k for window/sim backends (0 = derive)
  std::uint32_t pop_batch = 1;   // labels claimed per scheduler touch
                                 // (batched acquisition; rank cost scales
                                 // to O(pop_batch * q), see
                                 // sched::batched_rank_bound)
  bool pop_batch_auto = false;   // adaptive claim size: pop_batch becomes
                                 // the cap, each worker's
                                 // sched::BatchController scales between 1
                                 // (near drain) and the cap (under load)
                                 // from claim feedback + the backend's
                                 // striped size(); honored by the engine
                                 // jobs AND by SSSP's standalone executor
                                 // (algorithms::SsspOptions mirrors it)
  std::uint64_t seed = 1;        // scheduler randomness
  std::uint32_t weight = 1;      // QoS tenant weight (engine/qos.h);
                                 // meaningful when the job shares an
                                 // engine with others — these one-shot
                                 // wrappers run solo (full budget), so it
                                 // mostly flows through for API symmetry
                                 // with the server path
  bool pin_threads = true;
  util::TopologySpec topology;   // --numa: off (flat, default), auto
                                 // (sysfs sockets, flat fallback), or
                                 // virtual:K (synthetic domains). Flows
                                 // into EngineOptions::topology; see
                                 // util/topology.h
  obs::MetricsRegistry* metrics = nullptr;  // optional caller-owned telemetry
  obs::TraceRing* trace = nullptr;          // sinks, resized by the engine;
                                            // they outlive the one-shot run,
                                            // so snapshots/export happen
                                            // after the call returns

  [[nodiscard]] unsigned threads() const {
    return num_threads == 0 ? util::hardware_threads() : num_threads;
  }
};

using Priority = sched::Priority;

namespace detail {

inline engine::EngineOptions single_job_engine(const ParallelOptions& opts) {
  engine::EngineOptions eo;
  eo.num_threads = opts.threads();
  eo.pin_threads = opts.pin_threads;
  eo.max_in_flight = 1;
  eo.topology = opts.topology;
  eo.metrics = opts.metrics;
  eo.trace = opts.trace;
  return eo;
}

inline engine::JobConfig job_config(const ParallelOptions& opts) {
  engine::JobConfig cfg;
  cfg.queue_factor = opts.queue_factor;
  cfg.choices = opts.choices;
  cfg.relaxation_k = opts.relaxation_k;
  cfg.pop_batch = opts.pop_batch;
  cfg.pop_batch_auto = opts.pop_batch_auto;
  cfg.seed = opts.seed;
  cfg.weight = opts.weight;
  return cfg;
}

}  // namespace detail

/// Relaxed concurrent execution over a caller-supplied scheduler: anything
/// with per-thread handles exposing insert / approx_get_min
/// (ConcurrentMultiQueue, SprayList, LockFreeMultiQueue) or a plain
/// sched::ConcurrentScheduler surface. The initial task load is admitted in
/// batches by the engine workers themselves.
template <typename P, typename Queue>
ExecutionStats run_parallel_relaxed_on(P& problem,
                                       const graph::Priorities& pri,
                                       Queue& queue,
                                       const ParallelOptions& opts = {}) {
  engine::SchedulingEngine eng(detail::single_job_engine(opts));
  return eng.submit_relaxed_on(problem, pri, queue, detail::job_config(opts))
      .wait();
}

/// Relaxed concurrent execution over a named backend from the registry
/// (sched/backend_registry.h): the engine stands up a fresh instance of
/// that backend sized for the thread count. Throws std::invalid_argument
/// (listing the valid names) for unknown backends.
template <typename P>
ExecutionStats run_parallel_relaxed_backend(P& problem,
                                            const graph::Priorities& pri,
                                            std::string_view backend,
                                            const ParallelOptions& opts = {}) {
  engine::SchedulingEngine eng(detail::single_job_engine(opts));
  return eng
      .submit_relaxed_backend(problem, pri, backend, detail::job_config(opts))
      .wait();
}

/// Relaxed concurrent execution over a freshly built ConcurrentMultiQueue
/// with the paper's parameters (queue_factor sub-queues per thread,
/// two-choice sampling). This is the default entry point.
template <typename P>
ExecutionStats run_parallel_relaxed(P& problem, const graph::Priorities& pri,
                                    const ParallelOptions& opts = {}) {
  sched::ConcurrentMultiQueue queue(opts.queue_factor * opts.threads(),
                                    opts.seed, opts.choices);
  return run_parallel_relaxed_on(problem, pri, queue, opts);
}

/// Exact concurrent execution: FAA FIFO over the priority-sorted task array
/// plus backoff-waiting (never re-inserts).
template <typename P>
ExecutionStats run_parallel_exact(P& problem, const graph::Priorities& pri,
                                  const ParallelOptions& opts = {}) {
  engine::SchedulingEngine eng(detail::single_job_engine(opts));
  return eng.submit_exact(problem, pri, detail::job_config(opts)).wait();
}

}  // namespace relax::core
