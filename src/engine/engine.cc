#include "engine/engine.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "util/spinlock.h"
#include "util/thread_pin.h"
#include "util/timer.h"

namespace relax::engine {

unsigned EngineOptions::threads() const {
  return num_threads == 0 ? util::hardware_threads() : num_threads;
}

namespace {

// Telemetry sinks must cover every worker id BEFORE the first worker runs
// (pool workers park immediately and record park metrics); these run in the
// pool_ member initializer, i.e. strictly before any thread is spawned.
obs::MetricsRegistry* prepared_metrics(const EngineOptions& opts) {
  if (opts.metrics != nullptr) opts.metrics->resize(opts.threads());
  return opts.metrics;
}

obs::TraceRing* prepared_trace(const EngineOptions& opts) {
  if (opts.trace != nullptr) opts.trace->resize(opts.threads());
  return opts.trace;
}

}  // namespace

core::ExecutionStats JobTicket::wait() {
  if (!state_)
    throw std::logic_error("JobTicket::wait() on a ticket with no job");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->stats;
}

bool JobTicket::ready() const {
  if (!state_) return false;  // empty ticket: no job, never ready
  std::lock_guard<std::mutex> guard(state_->mu);
  return state_->done;
}

SchedulingEngine::SchedulingEngine(EngineOptions opts)
    : opts_(opts),
      placement_(util::plan_workers(opts.topology, opts.threads())),
      worker_caches_(opts.threads()),
      pool_(opts.threads(), opts.pin_threads,
            [this](unsigned worker) { return work(worker); },
            prepared_metrics(opts), prepared_trace(opts),
            placement_.pin_slot) {
  if (opts_.max_in_flight == 0) opts_.max_in_flight = 1;
  if (opts_.max_pending == 0) opts_.max_pending = 1;
  if (opts_.slice_budget == 0) opts_.slice_budget = 1;
  // Safe after the pool spawned: workers only consult the governor through
  // Admitted::tenant, and no job can be admitted before this returns.
  qos_.configure(opts_.slice_budget, opts_.metrics);
}

SchedulingEngine::~SchedulingEngine() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return completed_ == submitted_; });
  }
  pool_.stop();
}

JobTicket SchedulingEngine::submit(std::shared_ptr<Job> job,
                                   CompletionFn on_complete) {
  auto state = std::make_shared<JobTicket::State>();
  state->on_complete = std::move(on_complete);
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock,
                   [&] { return pending_.size() < opts_.max_pending; });
    ++submitted_;
    pending_.push_back(Admitted{std::move(job), state, submitted_});
    admit(lock);
  }
  if (opts_.metrics != nullptr) opts_.metrics->jobs_submitted().add();
  pool_.notify();
  return JobTicket(std::move(state));
}

std::optional<JobTicket> SchedulingEngine::try_submit(
    std::shared_ptr<Job> job, CompletionFn on_complete) {
  auto state = std::make_shared<JobTicket::State>();
  state->on_complete = std::move(on_complete);
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Same bound the blocking submit waits on; rejecting here instead of
    // waiting is the whole point — the caller sheds load explicitly.
    if (pending_.size() >= opts_.max_pending) return std::nullopt;
    ++submitted_;
    pending_.push_back(Admitted{std::move(job), state, submitted_});
    admit(lock);
  }
  if (opts_.metrics != nullptr) opts_.metrics->jobs_submitted().add();
  pool_.notify();
  return JobTicket(std::move(state));
}

void SchedulingEngine::admit(std::unique_lock<std::mutex>& lock) {
  // activating_ reserves the in-flight slot while the lock is dropped, so
  // concurrent admitters can neither over-admit nor reorder the queue (each
  // takes the front under the lock).
  while (active_.size() + activating_ < opts_.max_in_flight &&
         !pending_.empty()) {
    Admitted admitted = std::move(pending_.front());
    pending_.pop_front();
    ++activating_;
    space_cv_.notify_one();  // one admission-queue slot freed
    lock.unlock();
    admitted.job->activate(pool_.size());
    lock.lock();
    --activating_;
    // Register the tenant under mu_ (the governor's aggregate counters are
    // serialized here) before publication, so every worker-cache copy of
    // this entry carries the ledger.
    admitted.tenant = qos_.admit(admitted.id, admitted.job->weight());
    active_.push_back(std::move(admitted));
    active_version_.fetch_add(1, std::memory_order_release);
  }
}

bool SchedulingEngine::work(unsigned worker) {
  // Refresh this worker's snapshot of the active set only when the version
  // stamp moved; steady-state passes cost one shared atomic read, not a
  // mutex + shared_ptr copies. A stale snapshot is harmless: reaped jobs
  // are sealed (slices skip them) and newly admitted jobs bump the version.
  auto& cache = *worker_caches_[worker];
  const std::uint64_t version =
      active_version_.load(std::memory_order_acquire);
  if (cache.seen_version != version) {
    std::lock_guard<std::mutex> guard(mu_);
    cache.jobs = active_;
    cache.seen_version = version;
  }
  const std::vector<Admitted>& jobs = cache.jobs;
  if (jobs.empty()) return false;  // park until the next submit
  bool any = false;
  const std::size_t k = jobs.size();
  // Slice timing lives here, not in the jobs: the engine sees every slice
  // of every job type through one choke point, so one timer covers them
  // all and an unobserved engine pays nothing.
  const bool observing = opts_.metrics != nullptr || opts_.trace != nullptr;
  for (std::size_t i = 0; i < k; ++i) {
    // Rotate by worker id so the pool fans out over jobs instead of
    // convoying on the first one.
    const Admitted& admitted = jobs[(worker + i) % k];
    // Slice entry protocol (all seq_cst, paired with finish()): register in
    // in_slice BEFORE checking the seal. Either this registration is
    // ordered before the reaper's quiescence scan — then the reaper waits
    // for the slice — or the scan came first, in which case the seal is
    // already visible here and the slice is skipped. Both ways no slice can
    // write stat stripes concurrently with collect().
    admitted.state->in_slice.fetch_add(1);
    if (!admitted.state->sealed.load()) {
      // Budget grant through the QoS governor — the one choke point where
      // fixed slice_budget became per-tenant policy. Jobs submitted before
      // the governor existed in a cache snapshot (tenant == nullptr only
      // for entries admitted by older engines' caches; defensively keep
      // the fixed budget there).
      const std::uint32_t budget = admitted.tenant != nullptr
                                       ? qos_.grant(*admitted.tenant)
                                       : opts_.slice_budget;
      if (!observing) {
        const SliceResult r = admitted.job->run_slice(worker, budget);
        if (admitted.tenant != nullptr)
          qos_.report(*admitted.tenant, budget, r.iterations, /*slice_ns=*/0);
        if (r.progress) any = true;
      } else {
        const std::uint64_t start_ns =
            opts_.trace != nullptr ? opts_.trace->now_ns() : 0;
        util::Timer slice_timer;
        const SliceResult r = admitted.job->run_slice(worker, budget);
        const bool progress = r.progress;
        const std::uint64_t dur_ns =
            static_cast<std::uint64_t>(slice_timer.seconds() * 1e9);
        if (admitted.tenant != nullptr)
          qos_.report(*admitted.tenant, budget, r.iterations, dur_ns);
        if (opts_.metrics != nullptr && worker < opts_.metrics->width()) {
          auto& wm = opts_.metrics->worker(worker);
          if (progress) {
            wm.slices.add();
            wm.slice_ns.record(dur_ns);
          } else {
            wm.idle_visits.add();
          }
        }
        // Trace only slices that made progress: a starved multi-job engine
        // emits thousands of microsecond-scale empty polls per second, and
        // letting them churn the ring would evict the slices worth seeing.
        if (progress && opts_.trace != nullptr &&
            worker < opts_.trace->width()) {
          opts_.trace->record(worker, obs::EventKind::kSlice, start_ns,
                              dur_ns, admitted.id);
        }
        if (progress) any = true;
      }
    }
    admitted.state->in_slice.fetch_sub(1);
    if (admitted.job->finished()) finish(admitted);
  }
  // All active jobs are momentarily starved (queues empty, work in flight
  // elsewhere): back off briefly but keep polling — completion detection
  // needs the pops.
  if (!any) {
    for (int i = 0; i < 64; ++i) util::cpu_relax();
  }
  return true;
}

void SchedulingEngine::finish(const Admitted& admitted) {
  if (admitted.state->reaped.exchange(true, std::memory_order_acq_rel))
    return;  // another worker is reaping this job
  // Seal, then wait for in-flight slices to retire (see work() for the
  // pairing argument). Slices observe finished() and return quickly, so
  // this spin is short; afterwards every per-worker stat stripe is
  // quiescent and collect() is race-free.
  admitted.state->sealed.store(true);
  while (admitted.state->in_slice.load() != 0) util::cpu_relax();
  // Quiescent: tear down the job's per-worker scheduler sessions (cached
  // handles into a possibly caller-owned queue) before the ticket is
  // fulfilled — a waiter returning from wait() may destroy that queue
  // immediately, and no handle may outlive it.
  admitted.job->retire();
  const core::ExecutionStats stats = admitted.job->collect();
  // Retire the job from the engine BEFORE fulfilling the ticket: a waiter
  // that returns from wait() must observe jobs_completed() counting this
  // job (and may immediately destroy problem/queue it owns — nothing may
  // touch the job afterwards).
  {
    std::unique_lock<std::mutex> lock(mu_);
    active_.erase(std::find_if(active_.begin(), active_.end(),
                               [&](const Admitted& a) {
                                 return a.state == admitted.state;
                               }));
    active_version_.fetch_add(1, std::memory_order_release);
    ++completed_;
    // Drop the tenant from the governor's aggregates under the same lock
    // that registered it; the remaining tenants' shares widen immediately.
    if (admitted.tenant != nullptr) qos_.release(*admitted.tenant);
    admit(lock);
  }
  if (opts_.metrics != nullptr) opts_.metrics->jobs_completed().add();
  {
    std::lock_guard<std::mutex> guard(admitted.state->mu);
    admitted.state->stats = stats;
    admitted.state->done = true;
  }
  admitted.state->cv.notify_all();
  drain_cv_.notify_all();
  pool_.notify();  // wake parked workers for any newly admitted jobs
  // Callback completion, strictly after the ticket: a waiter woken by the
  // notify above and the callback both observe the same fulfilled state,
  // and the callback may free job-borrowed resources (see CompletionFn).
  if (admitted.state->on_complete) admitted.state->on_complete(stats);
}

std::uint64_t SchedulingEngine::jobs_submitted() const {
  std::lock_guard<std::mutex> guard(mu_);
  return submitted_;
}

std::uint64_t SchedulingEngine::jobs_completed() const {
  std::lock_guard<std::mutex> guard(mu_);
  return completed_;
}

}  // namespace relax::engine
