// Multi-tenant job layer: type-erased units of work for SchedulingEngine.
//
// A Job wraps one framework execution — a core::Problem, its priority
// permutation pi, and a scheduler — behind a uniform slice interface so a
// pool of persistent workers can multiplex many jobs:
//
//   activate(width)          engine admits the job; size per-worker stripes
//   run_slice(worker, b)     run up to b scheduler iterations for `worker`
//   finished()               retirement count reached num_tasks()
//   collect()                merged ExecutionStats (only after finished())
//
// Slices keep every worker responsive: instead of looping to termination as
// core/parallel_executor.h's executors did, a worker runs a bounded burst,
// returns, and visits the other in-flight jobs. Determinism is untouched —
// the framework property (decided outcome == sequential execution under pi
// for any schedule, paper §2.2) covers arbitrary interleaving, including
// interleaving with unrelated jobs.
//
// Admission is batched and cooperative: the submitting thread does not load
// the n initial labels. Workers claim chunks of the label range from an
// atomic cursor inside run_slice and push them through BatchInserter, so a
// large job's admission is spread over the pool and overlaps both its own
// execution and other jobs. Termination via striped retirement counting is
// unaffected: a task can only retire after its final pop, hence after its
// insert, so retired == n implies admission completed too.
//
// Task acquisition is batched as well (JobConfig::pop_batch): run_slice
// claims up to k labels per scheduler touch via sched::pop_batch — the
// backend's native batched claim where one exists, a one-at-a-time shim
// elsewhere — into a worker-local buffer. The buffer is always fully
// drained before the next termination check or slice return, and a
// buffered label is its task's only live pop, so retirement counting can
// never reach n while labels sit buffered.
//
// Re-insertion is batched symmetrically: each touch's kNotReady labels
// accumulate in a worker-local buffer and flush through
// sched::insert_batch (the backend's native batched insert where one
// exists) once per scheduler touch — one batched claim out, one batched
// insert back. Flushing per touch (not per slice) keeps the captivity
// window short: a buffered label is invisible to every other worker, and
// holding a dependency chain across a whole slice lets an ill-timed OS
// preemption stall the peers into failed-delete churn. A buffered
// re-insertion is an unretired task, so the retirement sum cannot reach n
// while it sits here; a defensive flush at slice end guarantees no label
// ever outlives its slice outside the scheduler.
//
// Scheduler access is organized as per-worker *sessions*: each worker's
// first slice for a job creates that worker's handle via sched::make_handle
// and parks it in WorkerState; every later slice reuses it, so a job costs
// at most one handle construction per worker instead of one per slice. The
// session is torn down by retire(), which the engine calls exactly once
// after the job finishes and all slices have returned — no handle ever
// outlives the job's execution, so a caller may destroy a caller-owned
// queue as soon as the ticket's wait() returns, exactly as before. The
// caching is sound because a worker id maps to one pool thread for the
// pool's whole lifetime (engine/worker_pool.h), so a cached handle is only
// ever driven by the thread that created it.
//
// With JobConfig::pop_batch_auto the claimed batch size adapts per worker
// through a sched::BatchController session: a full batch doubles the next
// claim (up to the pop_batch cap — sustained load), a short or empty claim
// resets it to 1 (the chosen sub-structure is running dry; near drain,
// large batches only buy rank error, see sched::batched_rank_bound), and
// every few dozen claims the controller consults the backend's striped
// size() to set the claim from *global* occupancy — a deep backlog jumps
// straight to the cap, a near-drained scheduler pins single pops.
//
// Variants:
//   RelaxedJob<P, Queue>        relaxed loop over a caller-owned scheduler
//                               (anything with per-thread handles or a plain
//                               sched::ConcurrentScheduler surface)
//   OwningRelaxedJob<P, Queue>  owns its scheduler, constructed in place
//                               from forwarded args — this is how the
//                               backend registry (sched/backend_registry.h,
//                               engine/backend_jobs.h) stands up any
//                               registered backend per job
//   MonitoredRelaxedJob<P, Q>   opt-in audit mode over any owned backend:
//                               every scheduler op goes through a
//                               lock-serialized RelaxationMonitor, and
//                               collect() reports Definition 1 rank-error /
//                               inversion statistics in ExecutionStats
//   ExactJob<P>                 the exact baseline (FAA ticket dispenser +
//                               bounded backoff-wait, never re-inserts)
#pragma once

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/execution_stats.h"
#include "core/problem.h"
#include "engine/batch_inserter.h"
#include "graph/permutation.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "sched/batch_controller.h"
#include "sched/concurrent_multiqueue.h"
#include "sched/faa_array_queue.h"
#include "sched/handles.h"
#include "sched/relaxation_monitor.h"
#include "sched/scheduler.h"
#include "util/padded.h"
#include "util/spinlock.h"
#include "util/timer.h"

namespace relax::engine {

/// Per-job knobs. queue_factor/choices/seed mirror core::ParallelOptions and
/// parameterize schedulers the job owns; they are ignored for caller-owned
/// queues (submit_relaxed_on).
struct JobConfig {
  /// Ceiling on QoS weights; far above any sensible tenant ratio, this
  /// only bounds the weighted-share arithmetic against nonsense values.
  static constexpr std::uint32_t kMaxWeight = 1024;
  /// Multi-tenant QoS weight (engine/qos.h). Under contention a weight-2
  /// tenant receives ~2x the slice budget of a weight-1 tenant; solo
  /// tenants always get the full budget. Clamped to [1, kMaxWeight] by
  /// the jobs; 0 is treated as 1.
  std::uint32_t weight = 1;
  unsigned queue_factor = 4;       // MultiQueue sub-queues per pool worker
  unsigned choices = 2;            // sampled sub-queues per pop; only the
                                   // default submit_relaxed MultiQueue path
                                   // reads it — registry backends pin their
                                   // own sampling (multiqueue-c2/-c4/-c8)
  std::uint64_t seed = 1;          // scheduler randomness
  std::uint32_t relaxation_k = 0;  // k for window/sim backends (0 = derive
                                   // queue_factor * pool width)
  std::uint32_t admission_batch = 1024;  // labels admitted per claimed chunk
  /// Upper bound on pop_batch (64Ki labels = 256 KiB of worker buffer).
  /// Far above any useful batch — the rank envelope scales with k — this
  /// only bounds memory against nonsense values. RelaxedJob clamps to it;
  /// CLI front-ends clamp at parse time so reported == effective.
  static constexpr std::uint32_t kMaxPopBatch = 1u << 16;
  std::uint32_t pop_batch = 1;     // labels claimed per scheduler touch: k>1
                                   // amortizes the sample/lock/CAS round
                                   // trip over k pops at an O(k * q) rank
                                   // cost (see sched::batched_rank_bound)
  /// Adaptive batch sizing (CLI: --pop-batch=auto[:max]): pop_batch becomes
  /// the cap and each worker's sched::BatchController picks its claim size
  /// from observed occupancy — full batches double the next claim toward
  /// the cap, short or empty claims (the sampled sub-structure ran dry: the
  /// near-drain signal) reset it to 1 so a draining queue is not charged
  /// the O(k*q) rank cost for throughput it can no longer deliver, and an
  /// occasional consult of the backend's striped size() jumps straight to
  /// the cap under a deep backlog (or pins 1 when the whole scheduler is
  /// near drain, whatever the per-worker feedback says).
  bool pop_batch_auto = false;
  /// Cap used by --pop-batch=auto when no explicit max is given.
  static constexpr std::uint32_t kDefaultAutoPopBatch = 64;
  bool monitor_relaxation = false;  // audit mode: serialize + measure quality
  std::uint32_t monitor_stride = 64;  // inversion tracking sample stride

  /// Topology placement, normally injected by the engine from its own
  /// WorkerPlacement (SchedulingEngine::with_observability) — callers leave
  /// both at their defaults. numa_domains > 1 makes the job configure any
  /// owned/attached backend that supports it with a sched::StripeMap during
  /// activate() (the queue is quiescent there) and open each worker's
  /// session with that worker's domain, so same-domain stripes are
  /// preferred and cross-domain traffic becomes the bounded steal schedule.
  /// worker_domains maps pool worker id -> domain and must outlive the job
  /// when set (the engine's placement table does); when null, workers fall
  /// back to a contiguous block split over numa_domains.
  unsigned numa_domains = 1;
  const std::vector<unsigned>* worker_domains = nullptr;

  /// Telemetry sinks. Normally left null by callers and injected by the
  /// engine from EngineOptions (SchedulingEngine::with_observability), so
  /// every job submitted to an observed engine reports into the same
  /// registry; a caller-set sink wins over the engine's. The hot path
  /// accumulates into worker-locals and flushes once per slice, so an
  /// attached registry costs a handful of relaxed adds per ~slice_budget
  /// iterations (pinned by the obs overhead guard test). Both sinks must be
  /// sized for the pool (width() >= pool width) and outlive the job.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* trace = nullptr;
};

/// Parsed form of a --pop-batch CLI value. `batch` is the fixed size, or
/// the adaptive cap when `adaptive` is set. `valid` is false when the
/// input was unparseable or an explicit zero — `batch` still carries a
/// safe degraded value (1, or the default auto cap) so library callers
/// keep working, but CLI front-ends must reject the flag with a clear
/// error instead of silently running a batch size the user never asked
/// for (a zero cap flowing into the batch controller was satellite bug
/// territory; see tools/relaxsched.cc and examples/job_server.cpp).
struct PopBatchFlag {
  std::uint32_t batch = 1;
  bool adaptive = false;
  bool valid = true;
};

/// Parses --pop-batch=<k>|auto|auto:<max>. Unparseable or zero values
/// degrade to the unbatched default (batch 1, or the default auto cap)
/// with `valid` cleared; in-range numbers above kMaxPopBatch are clamped
/// (and stay valid) so reported == effective.
inline PopBatchFlag parse_pop_batch_flag(std::string_view value) {
  PopBatchFlag flag;
  if (value == "auto") {
    return PopBatchFlag{JobConfig::kDefaultAutoPopBatch, true, true};
  }
  if (value.starts_with("auto:")) {
    flag.adaptive = true;
    value.remove_prefix(5);
  }
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size() ||
      parsed == 0) {
    return PopBatchFlag{flag.adaptive ? JobConfig::kDefaultAutoPopBatch : 1,
                        flag.adaptive, /*valid=*/false};
  }
  flag.batch = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(parsed, JobConfig::kMaxPopBatch));
  return flag;
}

/// What one run_slice visit accomplished. `iterations` is the scheduler
/// iterations actually consumed of the granted budget — the QoS governor
/// settles the tenant's deficit ledger from it; `progress` keeps the old
/// boolean meaning (popped a task or admitted labels) the engine's
/// idle-backoff reads.
struct SliceResult {
  std::uint32_t iterations = 0;
  bool progress = false;
};

class Job {
 public:
  virtual ~Job() = default;

  /// Called once, by the engine, when the job becomes active; `pool_width`
  /// is the number of workers that may call run_slice. No slice runs before
  /// activation returns.
  virtual void activate(unsigned pool_width) = 0;

  /// Runs up to `budget` scheduler iterations on behalf of `worker`
  /// (a stable id < pool_width). Reports the iterations consumed and
  /// whether the slice made progress (popped a task or admitted labels;
  /// false lets the caller back off).
  virtual SliceResult run_slice(unsigned worker, std::uint32_t budget) = 0;

  /// The job's QoS weight (JobConfig::weight), read once at admission by
  /// the engine's QosGovernor. Virtual because the type-erased
  /// submit(shared_ptr<Job>) path never sees a JobConfig.
  [[nodiscard]] virtual std::uint32_t weight() const noexcept { return 1; }

  [[nodiscard]] virtual bool finished() const noexcept = 0;

  /// Called exactly once by the engine when the job is reaped: after
  /// finished() is true and after every in-flight slice has returned, but
  /// before the ticket is fulfilled. Jobs release their per-worker
  /// scheduler sessions here (cached handles into a possibly caller-owned
  /// queue), so no handle outlives the job's execution — the submitter may
  /// destroy the queue the moment wait() returns.
  virtual void retire() noexcept {}

  /// Merged statistics. Valid only after finished() is true and all slices
  /// have returned (the engine guarantees both before reaping).
  virtual core::ExecutionStats collect() = 0;
};

/// Shared machinery for jobs over the task framework: per-worker stat and
/// retirement stripes, the striped-sum termination check, and wall-time
/// stamping of the admit -> done interval.
class TaskJobBase : public Job {
 public:
  void activate(unsigned pool_width) override {
    retired_ = std::vector<util::Padded<std::atomic<std::uint32_t>>>(
        pool_width);
    stats_ = std::vector<util::Padded<core::ExecutionStats>>(pool_width);
    timer_.reset();
    if (n_ == 0) {
      done_seconds_ = 0.0;
      done_.store(true, std::memory_order_release);
    }
  }

  [[nodiscard]] bool finished() const noexcept override {
    return done_.load(std::memory_order_acquire);
  }

  core::ExecutionStats collect() override {
    // Stripes carry busy time (the sum of that worker's slice latencies) in
    // `seconds`; merged_wall() accumulates everything and then overrides
    // the total's seconds with the job's wall clock — the contract its name
    // encodes. The stripes themselves become the per-worker breakdown.
    std::vector<core::ExecutionStats> stripes;
    stripes.reserve(stats_.size());
    for (const auto& s : stats_) {
      stripes.push_back(*s);
      stripes.back().seconds =
          static_cast<double>(stripes.back().slice_latency_ns.sum()) / 1e9;
    }
    core::ExecutionStats total = core::ExecutionStats::merged_wall(
        std::span<const core::ExecutionStats>(stripes), done_seconds_);
    total.per_worker = std::move(stripes);
    return total;
  }

 protected:
  explicit TaskJobBase(std::uint32_t num_tasks) : n_(num_tasks) {}

  /// Sums the retirement stripes; the first thread to observe the sum reach
  /// n stamps the wall time and raises the done flag (the release store
  /// orders the stamp before any acquire load that sees the flag).
  void check_done() noexcept {
    std::uint64_t sum = 0;
    for (const auto& slot : retired_)
      sum += slot->load(std::memory_order_acquire);
    if (sum < n_ || done_.load(std::memory_order_relaxed)) return;
    std::lock_guard<util::Spinlock> guard(finish_lock_);
    if (!done_.load(std::memory_order_relaxed)) {
      done_seconds_ = timer_.seconds();
      done_.store(true, std::memory_order_release);
    }
  }

  const std::uint32_t n_;
  std::vector<util::Padded<std::atomic<std::uint32_t>>> retired_;
  std::vector<util::Padded<core::ExecutionStats>> stats_;
  std::atomic<bool> done_{false};
  util::Spinlock finish_lock_;
  util::Timer timer_;
  double done_seconds_ = 0.0;
};

/// The paper's relaxed concurrent loop (§4) as a multiplexable job. The
/// problem, priorities and queue are caller-owned and must outlive the job.
template <core::Problem P, typename Queue>
class RelaxedJob : public TaskJobBase {
 public:
  /// The per-worker scheduler access point: the backend's own handle when
  /// it has one, a DirectHandle shim otherwise (sched/handles.h). Cached
  /// in WorkerState for the job's lifetime — one make_handle per
  /// (worker, job), not per slice.
  using Handle = decltype(sched::make_handle(std::declval<Queue&>()));

  RelaxedJob(P& problem, const graph::Priorities& pri, Queue& queue,
             const JobConfig& cfg = {})
      : TaskJobBase(problem.num_tasks()),
        problem_(&problem),
        pri_(&pri),
        queue_(&queue),
        batch_(cfg.admission_batch == 0 ? 1 : cfg.admission_batch),
        // Clamp defensively: a negative CLI value cast to uint32 would
        // otherwise make activate() reserve a multi-GiB buffer per worker.
        // The slice budget caps the effective batch per claim anyway.
        pop_batch_(std::clamp<std::uint32_t>(cfg.pop_batch, 1,
                                             JobConfig::kMaxPopBatch)),
        adaptive_(cfg.pop_batch_auto),
        weight_(std::clamp<std::uint32_t>(cfg.weight, 1,
                                          JobConfig::kMaxWeight)),
        numa_domains_(std::max(cfg.numa_domains, 1u)),
        worker_domains_(cfg.worker_domains),
        metrics_(cfg.metrics),
        trace_(cfg.trace) {}

  void activate(unsigned pool_width) override {
    TaskJobBase::activate(pool_width);
    // Worker-local session state. Popped labels only ever live in `popped`
    // between a pop_batch claim and the processing loop a few lines below
    // it — never across a run_slice return. kNotReady labels accumulate in
    // `reinsert` and are always flushed back into the scheduler before the
    // slice returns. The handle slot starts empty; each worker fills its
    // own on its first slice (activation runs on the submitting thread,
    // which must not construct handles the pool threads will drive).
    pool_width_ = pool_width;
    workers_ = std::vector<util::Padded<WorkerState>>(pool_width);
    for (auto& ws : workers_) {
      ws->popped.reserve(pop_batch_);
      ws->reinsert.reserve(pop_batch_);
      // Watermarks scale with the pool: occupancy is global, and
      // pool_width workers drain up to width * cap labels per claim round.
      // Measured mode re-derives them from the observed drain rate once a
      // consult window of claim feedback exists; the static width-scaled
      // marks remain the cold-start values.
      ws->controller = sched::BatchController(
          pop_batch_, adaptive_, /*high_watermark=*/0,
          sched::BatchController::kDefaultConsultPeriod, pool_width,
          /*measured_watermarks=*/true);
    }
    // Topology-aware striping: when the engine placed workers into more
    // than one domain and the backend partitions into sub-queues, hand it
    // the matching StripeMap now — activation runs before any slice, so
    // the quiescence requirement on set_stripe_map holds even for
    // caller-owned queues. Backends without the surface (SprayList's is a
    // documented no-op; monitors/wrappers lack it entirely) stay flat.
    if constexpr (requires(Queue& q, const sched::StripeMap& m) {
                    q.num_queues();
                    q.set_stripe_map(m);
                  }) {
      if (numa_domains_ > 1) {
        queue_->set_stripe_map(sched::StripeMap(
            static_cast<std::size_t>(queue_->num_queues()), numa_domains_));
      }
    }
    // Schedulers with a quiescent bulk_load but no live bulk_insert
    // (LockFreeMultiQueue, whose sorted sub-lists degrade to O(n) per
    // ascending insert) get their whole initial load here, while the job is
    // still unpublished and the queue guaranteed quiescent. Everything else
    // is loaded cooperatively by the workers via admit_chunk.
    if constexpr (requires(Queue& q, std::span<const sched::Priority> s) {
                    q.bulk_load(s);
                  } && !requires(Handle h, std::span<const sched::Priority> s) {
                    h.bulk_insert(s);
                  }) {
      std::vector<sched::Priority> labels(n_);
      std::iota(labels.begin(), labels.end(), 0u);
      queue_->bulk_load(std::span<const sched::Priority>(labels));
      load_cursor_.store(n_, std::memory_order_release);
    }
  }

  /// Session teardown: drops every worker's cached handle (and with it the
  /// last pointer a worker holds into a caller-owned queue). Called by the
  /// engine after all slices have returned, so no handle is in use.
  void retire() noexcept override {
    for (auto& ws : workers_) ws->handle.reset();
  }

  [[nodiscard]] std::uint32_t weight() const noexcept override {
    return weight_;
  }

  SliceResult run_slice(unsigned worker, std::uint32_t budget) override {
    if (finished()) return {};
    util::Timer slice_timer;  // slice latency -> this worker's stripe
    auto& ws = *workers_[worker];
    // First slice for this worker: open its session. Later slices reuse
    // the cached handle — handle construction off the per-slice path.
    if (!ws.handle) {
      ws.handle.emplace(sched::make_handle(*queue_));
      // Session state carries the worker's topology domain: every claim
      // and batched insert this handle issues prefers that domain's
      // stripes (engine placement table when present, contiguous block
      // split otherwise). Flat (single-domain) jobs skip the call — the
      // backends treat domain 0 of a 1-domain map as the flat path anyway.
      if constexpr (requires(Handle& h) { h.set_domain(0u); }) {
        if (numa_domains_ > 1) {
          ws.handle->set_domain(
              worker_domains_ != nullptr &&
                      worker < worker_domains_->size()
                  ? (*worker_domains_)[worker]
                  : worker * numa_domains_ / std::max(pool_width_, 1u));
        }
      }
    }
    auto& handle = *ws.handle;
    bool progress = admit_chunk(handle);
    auto& stats = *stats_[worker];
    auto& my_retired = *retired_[worker];
    auto& buffer = ws.popped;
    // Telemetry is accumulated in plain locals and flushed once per slice
    // (see flush_metrics) so the per-claim cost with a registry attached is
    // plain-integer arithmetic, not atomics. Snapshot the stripe counters
    // and controller tally now; the deltas at slice end are this slice's
    // contribution.
    obs::WorkerMetrics* wm =
        metrics_ != nullptr && worker < metrics_->width()
            ? &metrics_->worker(worker)
            : nullptr;
    obs::TraceRing* trace =
        trace_ != nullptr && worker < trace_->width() ? trace_ : nullptr;
    const std::uint64_t processed0 = stats.processed;
    const std::uint64_t failed0 = stats.failed_deletes;
    const std::uint64_t dead0 = stats.dead_skips;
    const std::uint64_t empty0 = stats.empty_polls;
    const sched::BatchController::Transitions trans0 =
        ws.controller.transitions();
    // Stripe-placement tallies live in the handle's session context (plain
    // uint64s — the handle is worker-private); snapshot them so the slice's
    // delta can be flushed into the registry like every other counter.
    sched::StripeStats stripe0{};
    if constexpr (requires(Handle& h) { h.stripe_stats(); }) {
      stripe0 = handle.stripe_stats();
    }
    std::uint64_t claims_made = 0;
    std::uint64_t labels_claimed = 0;
    obs::Histogram claim_sizes;  // worker-local; merged into wm at slice end
    std::uint32_t last_regime_claim = ws.controller.current();
    std::uint32_t iters = 0;
    while (!done_.load(std::memory_order_acquire) && iters < budget) {
      // Claim up to pop_batch labels (or the session controller's adaptive
      // size — claim feedback plus an occasional striped-size() occupancy
      // consult) in one scheduler touch, capped by the remaining budget so
      // the buffer is always fully drained before the slice returns.
      buffer.clear();
      const std::uint32_t want =
          ws.controller.next_claim(sched::QueueOccupancy<Queue>{queue_});
      const std::uint32_t claim = std::min<std::uint32_t>(want, budget - iters);
      const std::size_t got = sched::pop_batch(handle, claim, buffer);
      ws.controller.feedback(claim, static_cast<std::uint32_t>(got));
      ++claims_made;
      if (got > 0) {
        labels_claimed += got;
        claim_sizes.record(got);
      }
      if (trace != nullptr) {
        trace->record(worker, obs::EventKind::kClaim, trace->now_ns(), 0,
                      static_cast<std::uint32_t>(got));
        const std::uint32_t regime_claim = ws.controller.current();
        if (regime_claim != last_regime_claim) {
          trace->record(worker, obs::EventKind::kRegime, trace->now_ns(), 0,
                        regime_claim);
          last_regime_claim = regime_claim;
        }
      }
      if (buffer.empty()) {
        ++stats.empty_polls;
        check_done();
        // Prefer feeding the queue over spinning when admission is still
        // in flight; otherwise yield the worker to other jobs.
        if (admit_chunk(handle)) {
          progress = true;
          continue;
        }
        break;
      }
      progress = true;
      // Process the whole buffer before the next done_/budget check. A
      // buffered label is its task's only live pop (labels are unique in
      // the scheduler), so that task cannot retire elsewhere and the
      // retirement sum cannot reach n — termination can never fire while
      // labels sit here, provided none survive this loop. The same holds
      // for ws.reinsert: a buffered re-insertion is an unretired task.
      for (const sched::Priority label : buffer) {
        ++iters;
        ++stats.iterations;
        const core::Task task = pri_->order[label];
        switch (problem_->try_process(task)) {
          case core::Outcome::kProcessed:
            ++stats.processed;
            my_retired.fetch_add(1, std::memory_order_release);
            break;
          case core::Outcome::kNotReady:
            ++stats.failed_deletes;
            ws.reinsert.push_back(label);
            break;
          case core::Outcome::kRetired:
            ++stats.dead_skips;
            my_retired.fetch_add(1, std::memory_order_release);
            break;
        }
      }
      // Flush the touch's kNotReady run before the next claim: one batched
      // insert per batched pop (the symmetric round trip). Holding the run
      // any longer makes those labels invisible to every other worker —
      // on an oversubscribed host a descheduled worker mid-slice would
      // hold dependency chains captive for a scheduler quantum while its
      // peers churn failed deletes against them.
      flush_reinserts(handle, ws);
    }
    // A no-op today (every touch flushed above), but the invariant — no
    // label may ever outlive its slice outside the scheduler — must hold
    // even if flushing ever becomes conditional, so drain defensively
    // before the final termination check and the slice return.
    flush_reinserts(handle, ws);
    check_done();
    // Slice telemetry: always into this worker's stripe (per-job slice
    // latency percentiles — the starvation metric), and the slice's deltas
    // into the engine registry when one is attached.
    const std::uint64_t slice_ns =
        static_cast<std::uint64_t>(slice_timer.seconds() * 1e9);
    ++stats.slices;
    stats.slice_latency_ns.record(slice_ns);
    if (wm != nullptr) {
      wm->claims.add(claims_made);
      wm->pops.add(labels_claimed);
      wm->claim_size.merge_from(claim_sizes);
      wm->processed.add(stats.processed - processed0);
      wm->failed_deletes.add(stats.failed_deletes - failed0);
      wm->dead_skips.add(stats.dead_skips - dead0);
      wm->empty_polls.add(stats.empty_polls - empty0);
      // Every kNotReady label was flushed back exactly once this slice.
      wm->reinserts.add(stats.failed_deletes - failed0);
      const sched::BatchController::Transitions& tr =
          ws.controller.transitions();
      wm->regime_ramps.add(tr.ramps - trans0.ramps);
      wm->regime_resets.add(tr.resets - trans0.resets);
      wm->regime_backlog_jumps.add(tr.backlog_jumps - trans0.backlog_jumps);
      wm->regime_drain_pins.add(tr.drain_pins - trans0.drain_pins);
      if constexpr (requires(Handle& h) { h.stripe_stats(); }) {
        const sched::StripeStats stripe = handle.stripe_stats();
        wm->numa_local_claims.add(stripe.local_claims - stripe0.local_claims);
        wm->numa_steal_claims.add(stripe.steal_claims - stripe0.steal_claims);
      }
      wm->current_claim.set(ws.controller.current());
    }
    return {iters, progress};
  }

 private:
  /// One worker's scheduler session for this job: the cached handle, the
  /// batched-path buffers, and the adaptive claim controller. Owned by the
  /// job, keyed by the pool's stable worker id, and only ever touched by
  /// that worker's thread (run_slice) or by the reaper after quiescence
  /// (retire).
  struct WorkerState {
    std::optional<Handle> handle;           // created on first slice,
                                            // dropped by retire()
    std::vector<sched::Priority> popped;    // batched-pop landing buffer
    std::vector<sched::Priority> reinsert;  // kNotReady labels awaiting flush
    sched::BatchController controller;      // claim sizing (auto mode)
  };

  /// Flushes the worker's buffered kNotReady labels back into the
  /// scheduler as one batched insert (the backend's native path where one
  /// exists; singleton runs take the plain insert — see
  /// sched::insert_batch).
  template <typename Handle>
  void flush_reinserts(Handle& handle, WorkerState& ws) {
    if (ws.reinsert.empty()) return;
    sched::insert_batch(handle,
                        std::span<const sched::Priority>(ws.reinsert));
    ws.reinsert.clear();
  }

  /// Claims one chunk of the initial label range and inserts it. Multiple
  /// workers admit concurrently; the queue is live throughout.
  template <typename Handle>
  bool admit_chunk(Handle& handle) {
    if (load_cursor_.load(std::memory_order_relaxed) >= n_) return false;
    const std::uint64_t lo =
        load_cursor_.fetch_add(batch_, std::memory_order_acq_rel);
    if (lo >= n_) return false;
    const std::uint32_t hi = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(n_, lo + batch_));
    BatchInserter<Handle> inserter(handle, hi - static_cast<std::uint32_t>(lo));
    for (std::uint32_t label = static_cast<std::uint32_t>(lo); label < hi;
         ++label)
      inserter.push(label);
    return true;
  }

  P* problem_;
  const graph::Priorities* pri_;
  Queue* queue_;
  std::uint32_t batch_;
  std::uint32_t pop_batch_;
  bool adaptive_;
  std::uint32_t weight_;           // QoS tenant weight (clamped)
  unsigned numa_domains_;          // > 1 enables topology-aware striping
  const std::vector<unsigned>* worker_domains_;  // engine placement table
  unsigned pool_width_ = 0;        // set by activate()
  obs::MetricsRegistry* metrics_;  // optional engine telemetry sink
  obs::TraceRing* trace_;          // optional Chrome-trace event ring
  std::vector<util::Padded<WorkerState>> workers_;
  std::atomic<std::uint64_t> load_cursor_{0};
};

/// Relaxed job that owns its scheduler, constructed in place from the
/// forwarded constructor arguments. Backend-generic: any registered backend
/// (ConcurrentMultiQueue, LockFreeMultiQueue, SprayList, LockedScheduler
/// wrappers, ...) becomes a first-class engine job through this one class —
/// the engine's default submit_relaxed is just the ConcurrentMultiQueue
/// instantiation, and engine/backend_jobs.h instantiates it for every
/// registry entry.
template <core::Problem P, typename Queue>
class OwningRelaxedJob : public Job {
 public:
  template <typename... QueueArgs>
  OwningRelaxedJob(P& problem, const graph::Priorities& pri,
                   const JobConfig& cfg, QueueArgs&&... queue_args)
      : queue_(std::forward<QueueArgs>(queue_args)...),
        job_(problem, pri, queue_, cfg) {}

  void activate(unsigned pool_width) override { job_.activate(pool_width); }
  SliceResult run_slice(unsigned worker, std::uint32_t budget) override {
    return job_.run_slice(worker, budget);
  }
  void retire() noexcept override { job_.retire(); }
  [[nodiscard]] std::uint32_t weight() const noexcept override {
    return job_.weight();
  }
  [[nodiscard]] bool finished() const noexcept override {
    return job_.finished();
  }
  core::ExecutionStats collect() override { return job_.collect(); }

 private:
  Queue queue_;
  RelaxedJob<P, Queue> job_;
};

/// Opt-in production quality sampling (JobConfig::monitor_relaxation): the
/// job's owned backend is driven through a RelaxationMonitor so every pop's
/// rank error and the sampled per-element inversion counts (Definition 1)
/// are measured in situ, then reported in ExecutionStats. The monitor's
/// exact order-statistics mirror requires serializing scheduler ops through
/// one lock, so this mode trades scalability for observability — use it on
/// a sampled subset of production jobs, not all of them. Works for any
/// backend whose single-threaded convenience API satisfies
/// sched::SequentialView's needs (all registry backends qualify).
template <core::Problem P, typename Queue = sched::ConcurrentMultiQueue>
class MonitoredRelaxedJob : public Job {
 public:
  using Monitor = sched::RelaxationMonitor<sched::SequentialView<Queue>>;

  template <typename... QueueArgs>
  MonitoredRelaxedJob(P& problem, const graph::Priorities& pri,
                      const JobConfig& cfg, QueueArgs&&... queue_args)
      : queue_(std::forward<QueueArgs>(queue_args)...),
        monitored_(Monitor(sched::SequentialView<Queue>(queue_),
                           problem.num_tasks(), cfg.monitor_stride)),
        job_(problem, pri, monitored_, cfg) {}

  void activate(unsigned pool_width) override { job_.activate(pool_width); }
  SliceResult run_slice(unsigned worker, std::uint32_t budget) override {
    return job_.run_slice(worker, budget);
  }
  void retire() noexcept override { job_.retire(); }
  [[nodiscard]] std::uint32_t weight() const noexcept override {
    return job_.weight();
  }
  [[nodiscard]] bool finished() const noexcept override {
    return job_.finished();
  }

  core::ExecutionStats collect() override {
    auto total = job_.collect();
    auto& monitor = monitored_.inner();
    const auto& ranks = monitor.rank_histogram();
    const auto& inversions = monitor.inversion_histogram();
    total.rank_samples = ranks.total();
    total.mean_rank_error = ranks.mean();
    total.max_rank_error = ranks.max_value();
    total.inversion_samples = inversions.total();
    total.mean_inversions = inversions.mean();
    return total;
  }

 private:
  Queue queue_;
  sched::LockedScheduler<Monitor> monitored_;
  RelaxedJob<P, sched::LockedScheduler<Monitor>> job_;
};

/// The exact baseline (§4) as a job: tasks pre-loaded in strict priority
/// order into a wait-free FAA ticket dispenser. A dequeued task whose
/// predecessor is still undecided is *held* by the dequeuing worker (never
/// re-inserted) with exponential backoff; unlike the one-shot executor, the
/// backoff is bounded per slice so the worker stays available to other
/// in-flight jobs and retries the held task on its next visit.
template <core::Problem P>
class ExactJob : public TaskJobBase {
 public:
  ExactJob(P& problem, const graph::Priorities& pri,
           const JobConfig& cfg = {})
      : TaskJobBase(problem.num_tasks()),
        problem_(&problem),
        pri_(&pri),
        weight_(std::clamp<std::uint32_t>(cfg.weight, 1,
                                          JobConfig::kMaxWeight)) {}

  [[nodiscard]] std::uint32_t weight() const noexcept override {
    return weight_;
  }

  void activate(unsigned pool_width) override {
    // Load inside activation, after the timer reset in the base activate:
    // the n-label load is charged to the timed window exactly like the
    // relaxed jobs' batched admission — keeping relaxed-vs-exact wall-time
    // comparisons symmetric.
    TaskJobBase::activate(pool_width);
    std::vector<std::uint32_t> labels(n_);
    std::iota(labels.begin(), labels.end(), 0u);
    queue_.load(std::move(labels));
    slots_ = std::vector<util::Padded<Slot>>(pool_width);
  }

  SliceResult run_slice(unsigned worker, std::uint32_t budget) override {
    if (finished()) return {};
    util::Timer slice_timer;  // slice latency -> this worker's stripe
    auto& stats = *stats_[worker];
    auto& my_retired = *retired_[worker];
    auto& slot = *slots_[worker];
    bool progress = false;
    std::uint32_t iters = 0;
    while (iters < budget) {
      if (!slot.has_pending) {
        const auto label = queue_.try_dequeue();
        if (!label) break;  // drained; held tasks may still be in flight
        slot.pending = *label;
        slot.has_pending = true;
        slot.pause = 1;
        ++stats.iterations;
        ++iters;
      }
      const core::Task task = pri_->order[slot.pending];
      const core::Outcome outcome = problem_->try_process(task);
      if (outcome == core::Outcome::kNotReady) {
        ++stats.failed_deletes;  // wasted work while waiting
        for (unsigned i = 0; i < slot.pause; ++i) util::cpu_relax();
        if (slot.pause >= kMaxPause) break;  // hold the task, free the worker
        slot.pause <<= 1;
        continue;
      }
      if (outcome == core::Outcome::kProcessed) {
        ++stats.processed;
      } else {
        ++stats.dead_skips;
      }
      my_retired.fetch_add(1, std::memory_order_release);
      slot.has_pending = false;
      progress = true;
    }
    check_done();
    ++stats.slices;
    stats.slice_latency_ns.record(
        static_cast<std::uint64_t>(slice_timer.seconds() * 1e9));
    return {iters, progress};
  }

 private:
  static constexpr unsigned kMaxPause = 4096;

  struct Slot {
    std::uint32_t pending = 0;
    bool has_pending = false;
    unsigned pause = 1;
  };

  P* problem_;
  const graph::Priorities* pri_;
  std::uint32_t weight_;  // QoS tenant weight (clamped)
  sched::FaaArrayQueue<std::uint32_t> queue_;
  std::vector<util::Padded<Slot>> slots_;
};

}  // namespace relax::engine
