// Batched admission into a live scheduler.
//
// Loading a job's n initial labels one handle.insert() at a time pays a
// sub-queue lock + heap sift per label — measurable at admission rates of
// many jobs per second. BatchInserter buffers labels and flushes them with
// the scheduler handle's bulk_insert (one lock + one merge per chunk; see
// ConcurrentMultiQueue::bulk_insert) when the handle supports it, falling
// back to per-label inserts for schedulers without a batched path (SprayList,
// LockedScheduler wrappers — including the RelaxationMonitor audit path,
// whose mirror must observe every individual insert anyway).
//
// The flush target is *live*: pops and inserts from other workers may be in
// flight, which is what lets the engine overlap a job's admission with its
// execution (and with other jobs entirely).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sched/scheduler.h"

namespace relax::engine {

template <typename Handle>
class BatchInserter {
 public:
  explicit BatchInserter(Handle& handle, std::size_t capacity = 1024)
      : handle_(&handle), capacity_(capacity == 0 ? 1 : capacity) {
    buffer_.reserve(capacity_);
  }

  ~BatchInserter() { flush(); }

  BatchInserter(const BatchInserter&) = delete;
  BatchInserter& operator=(const BatchInserter&) = delete;

  void push(sched::Priority p) {
    buffer_.push_back(p);
    if (buffer_.size() >= capacity_) flush();
  }

  void flush() {
    if (buffer_.empty()) return;
    if constexpr (requires(Handle h, std::span<const sched::Priority> s) {
                    h.bulk_insert(s);
                  }) {
      handle_->bulk_insert(std::span<const sched::Priority>(buffer_));
    } else {
      for (const auto p : buffer_) handle_->insert(p);
    }
    buffer_.clear();
  }

 private:
  Handle* handle_;
  std::size_t capacity_;
  std::vector<sched::Priority> buffer_;
};

}  // namespace relax::engine
