// Batched admission into a live scheduler.
//
// Loading a job's n initial labels one handle.insert() at a time pays a
// sub-queue lock + heap sift per label — measurable at admission rates of
// many jobs per second. BatchInserter buffers labels and flushes them
// through sched::insert_batch — the backend's native batched insert where
// one exists (the MultiQueue's chunked sorted merge, the lock-free list's
// CAS-spliced run, the SprayList's one-descent forward-linked run, one
// lock acquisition for LockedScheduler adapters), per-label inserts
// elsewhere. The RelaxedJob's kNotReady re-insertion buffer drains through
// the same primitive, so admission and re-insertion share one batched
// insert path.
//
// The flush target is *live*: pops and inserts from other workers may be in
// flight, which is what lets the engine overlap a job's admission with its
// execution (and with other jobs entirely).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sched/scheduler.h"

namespace relax::engine {

template <typename Handle>
class BatchInserter {
 public:
  explicit BatchInserter(Handle& handle, std::size_t capacity = 1024)
      : handle_(&handle), capacity_(capacity == 0 ? 1 : capacity) {
    buffer_.reserve(capacity_);
  }

  ~BatchInserter() { flush(); }

  BatchInserter(const BatchInserter&) = delete;
  BatchInserter& operator=(const BatchInserter&) = delete;

  void push(sched::Priority p) {
    buffer_.push_back(p);
    if (buffer_.size() >= capacity_) flush();
  }

  void flush() {
    if (buffer_.empty()) return;
    sched::insert_batch(*handle_, std::span<const sched::Priority>(buffer_));
    buffer_.clear();
  }

 private:
  Handle* handle_;
  std::size_t capacity_;
  std::vector<sched::Priority> buffer_;
};

}  // namespace relax::engine
