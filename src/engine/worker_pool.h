// Long-lived pinned worker pool — the thread substrate of the scheduling
// engine.
//
// The per-run executors in core/parallel_executor.h historically spawned a
// fresh set of std::jthreads for every execution and tore them down at the
// end; fine for one-shot experiments, hostile to a service multiplexing a
// stream of jobs (thread creation, first-touch faults and re-warming the
// pinned caches dominate short jobs). WorkerPool keeps `size()` workers
// alive for its whole lifetime:
//
//   * each worker is pinned to the i-th *allowed* CPU (wrapping, see
//     util/thread_pin.cc), so oversubscription or a restricted cpuset never
//     targets a nonexistent CPU;
//   * workers repeatedly call the owner-supplied work function with their
//     stable worker id; returning false means "no work visible" and parks
//     the worker on a condition variable until notify() — idle pools burn
//     no CPU, unlike the executors' spin loops. A worker id maps to ONE
//     OS thread for the pool's entire lifetime; this identity is what lets
//     jobs key per-worker scheduler sessions (cached thread-private
//     handles, engine/job.h) off the id without any further
//     synchronization;
//   * notify() is cheap enough to call on every state change (epoch bump +
//     notify_all); the epoch protocol means a wakeup between the work scan
//     and the wait can never be lost.
//
// The pool knows nothing about jobs or schedulers; SchedulingEngine supplies
// the work function.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relax::obs {
class MetricsRegistry;
class TraceRing;
}  // namespace relax::obs

namespace relax::engine {

class WorkerPool {
 public:
  /// The work function is invoked repeatedly with the worker's id in
  /// [0, size()). Return true after doing (or finding) work, false to park
  /// until the next notify(). Must be safe to call from all workers at once.
  using WorkFn = std::function<bool(unsigned worker)>;

  /// num_threads is a resolved worker count (owners resolve 0 == "all
  /// hardware" themselves, see EngineOptions::threads(); 0 here is clamped
  /// to 1, not re-resolved). `metrics` / `trace` are optional telemetry
  /// sinks (already sized to >= num_threads workers by the owner): when
  /// set, each park is counted and its duration recorded on the parking
  /// worker's own lane — the pool's only observability cost, paid at the
  /// park boundary, never on the work path.
  ///
  /// `pin_slots` reorders pinning without touching worker identity: worker
  /// w is pinned to allowed-CPU slot pin_slots[w] instead of slot w, which
  /// is how topology-aware placement (util/topology.h, WorkerPlacement)
  /// lays workers out socket-by-socket. Empty (the default) means the
  /// identity order — exactly the historical behavior. Workers beyond the
  /// vector's length fall back to their own id.
  WorkerPool(unsigned num_threads, bool pin_threads, WorkFn work,
             obs::MetricsRegistry* metrics = nullptr,
             obs::TraceRing* trace = nullptr,
             std::vector<unsigned> pin_slots = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Unparks every worker. Call after publishing new work.
  void notify();

  /// Asks all workers to exit and joins them. Idempotent; also run by the
  /// destructor.
  void stop();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_main(unsigned worker);

  WorkFn work_;
  bool pin_threads_;
  std::vector<unsigned> pin_slots_;  // empty = identity (slot == worker id)
  obs::MetricsRegistry* metrics_;  // optional, owner-owned
  obs::TraceRing* trace_;          // optional, owner-owned
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;  // bumped by notify(); guarded by mu_
  bool stop_ = false;        // guarded by mu_
  std::vector<std::jthread> workers_;  // last: joins before members die
};

}  // namespace relax::engine
