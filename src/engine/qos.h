// QosGovernor — the multi-tenant slice-budget policy layer.
//
// Until this layer existed, every job visit ran run_slice(worker,
// EngineOptions::slice_budget): one fixed constant for every tenant, so
// with several jobs in flight (--backend=mix, the networked server) a
// heavy tenant and a light tenant got identical slice time and the pool
// shared capacity 1:1 regardless of what the operator wanted. The
// governor converts that constant into measured, per-tenant policy — the
// same hoisting move sched::BatchController made for claim sizing: one
// choke point (SchedulingEngine::work), worker-local hot path, global
// inputs consulted occasionally.
//
// Policy = deficit-style weighted round robin over slice iterations:
//
//   quantum_j = full * w_j / sum(w)    per visit, clamped to
//                                      [full/16, full]
//   deficit_j += quantum_j             banked credit (burst-capped at
//                                      4*full so an idle tenant cannot
//                                      hoard unbounded catch-up)
//   grant_j    = clamp(deficit_j, full/16, full)
//   deficit_j -= iterations used       reported after the slice
//
// so under contention a weight-2 tenant accumulates credit twice as fast
// as a weight-1 tenant and runs ~2x the slice iterations, while the
// deficit bank smooths the integer truncation of small quanta across
// visits. A solo tenant (active count <= 1) bypasses the ledger entirely
// and receives the full budget — single-job behaviour is bit-identical to
// the fixed-budget engine.
//
// Two measured feedbacks refine the raw weighted share, both riding the
// PR 6 telemetry:
//
//   idle expansion   every kConsultPeriod grants the governor reads the
//                    pool-wide idle-visit / progress-slice counters from
//                    obs::MetricsRegistry. When idle visits dominate
//                    (jobs cannot fill their shares — admission tails,
//                    drained queues) the share multiplier doubles toward
//                    kMaxExpandPct so whoever still has work expands
//                    toward the full slice; when progress dominates it
//                    halves back toward 1x. This is what "budgets grow
//                    when one job effectively owns the pool" means even
//                    while several jobs are nominally in flight.
//   cost normalization
//                    report() maintains an EWMA of each tenant's ns per
//                    iteration (from the engine's slice timing) plus a
//                    global mean. A tenant whose iterations are 4x more
//                    expensive gets proportionally fewer of them
//                    (factor clamped to [1/4, 4]), so weighted fairness
//                    is in slice *time*, not iteration count —
//                    heterogeneous problem kinds on one pool stay
//                    comparable.
//
// Concurrency: admit()/release() run under the engine's mu_ (job
// admission is already serialized there) and maintain the aggregate
// active count / weight sum. grant()/report() are the per-visit hot path
// and touch only relaxed atomics — no locks, no allocation; racy reads of
// the aggregates are monitoring-consistent in exactly the way the striped
// size() consults are. Telemetry lands in the registry's QoS tenant slots
// (obs::QosTenantMetrics), which outlive the job so shutdown dumps still
// show every tenant's granted/used ledger.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/metrics.h"

namespace relax::engine {

/// Per-job ledger the governor arbitrates over. Created by admit() when
/// the engine activates the job, shared by every worker visiting it
/// (relaxed atomics only), released when the job is reaped. The obs slot
/// pointer is stable for the registry's lifetime — slots persist after
/// release so post-run exports still carry the tenant's totals.
struct TenantState {
  std::uint64_t job_id = 0;
  std::uint32_t weight = 1;
  /// Banked slice-iteration credit (DRR deficit counter). Grows by the
  /// weighted quantum per visit, shrinks by iterations actually used;
  /// clamped to the burst cap by grant().
  std::atomic<std::int64_t> deficit{0};
  /// EWMA nanoseconds per iteration for this tenant (0 = unmeasured).
  std::atomic<std::uint64_t> cost_ns{0};
  obs::QosTenantMetrics* obs = nullptr;  // nullptr when the engine runs bare
};

class QosGovernor {
 public:
  /// Grants per idle-feedback consult; same spirit (and magnitude) as
  /// BatchController::kDefaultConsultPeriod — the read is width * 2
  /// relaxed loads, noise next to the slices it spans.
  static constexpr std::uint32_t kConsultPeriod = 64;
  /// Minimum budget divisor: no tenant is ever granted less than
  /// full/kMinShareDiv iterations, so even a weight-1 tenant among many
  /// heavy ones makes progress every visit (starvation freedom).
  static constexpr std::uint32_t kMinShareDiv = 16;
  /// Deficit burst cap in multiples of the full budget.
  static constexpr std::int64_t kBurstFactor = 4;
  /// Idle-expansion multiplier bounds, in percent of the raw share.
  static constexpr std::uint64_t kMaxExpandPct = 800;

  QosGovernor() = default;

  /// Binds the governor to the engine's full slice budget and (optional)
  /// telemetry registry. Called once from the engine constructor, before
  /// any worker runs.
  void configure(std::uint32_t full_budget, obs::MetricsRegistry* metrics) {
    full_ = std::max<std::uint32_t>(full_budget, 1);
    min_ = std::max<std::uint32_t>(full_ / kMinShareDiv, 1);
    metrics_ = metrics;
  }

  /// Registers a tenant (engine admission path, serialized by the
  /// engine's mutex). Claims a registry QoS slot when telemetry is on.
  [[nodiscard]] std::shared_ptr<TenantState> admit(std::uint64_t job_id,
                                                   std::uint32_t weight);

  /// Unregisters a tenant (engine reap path, serialized by the engine's
  /// mutex). The obs slot keeps its totals.
  void release(const TenantState& tenant);

  /// The slice budget for one visit to `tenant`. Hot path: relaxed
  /// atomics only.
  [[nodiscard]] std::uint32_t grant(TenantState& tenant);

  /// Settles a finished slice: `used` iterations consumed of `granted`,
  /// in `slice_ns` wall time (0 = untimed, skips cost normalization
  /// updates). Hot path: relaxed atomics only.
  void report(TenantState& tenant, std::uint32_t granted, std::uint32_t used,
              std::uint64_t slice_ns);

  [[nodiscard]] std::uint32_t full_budget() const noexcept { return full_; }
  [[nodiscard]] std::uint32_t min_budget() const noexcept { return min_; }
  [[nodiscard]] unsigned active_tenants() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  void maybe_consult_idle();

  std::uint32_t full_ = 256;
  std::uint32_t min_ = 16;
  obs::MetricsRegistry* metrics_ = nullptr;

  // Aggregates maintained under the engine's mutex (admit/release), read
  // racily on the grant path — a one-visit-stale share is harmless.
  std::atomic<unsigned> active_{0};
  std::atomic<std::uint64_t> total_weight_{0};

  // Cross-tenant mean iteration cost (EWMA, ns; 0 = unmeasured).
  std::atomic<std::uint64_t> mean_cost_ns_{0};

  // Idle-visit feedback: share multiplier in percent, [100, kMaxExpandPct].
  std::atomic<std::uint64_t> expand_pct_{100};
  std::atomic<std::uint64_t> grants_{0};
  std::atomic<std::uint64_t> seen_idle_{0};
  std::atomic<std::uint64_t> seen_slices_{0};
};

}  // namespace relax::engine
