#include "engine/worker_pool.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "util/thread_pin.h"
#include "util/timer.h"

namespace relax::engine {

WorkerPool::WorkerPool(unsigned num_threads, bool pin_threads, WorkFn work,
                       obs::MetricsRegistry* metrics, obs::TraceRing* trace,
                       std::vector<unsigned> pin_slots)
    : work_(std::move(work)),
      pin_threads_(pin_threads),
      pin_slots_(std::move(pin_slots)),
      metrics_(metrics),
      trace_(trace) {
  const unsigned n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::notify() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    ++epoch_;
  }
  cv_.notify_all();
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void WorkerPool::worker_main(unsigned worker) {
  // `worker` is this thread's identity for the pool's whole lifetime —
  // never reassigned, never shared — so owner-side state keyed by it
  // (engine worker caches, per-worker scheduler sessions in jobs) needs no
  // locking against other workers.
  if (pin_threads_) {
    // Placement may reorder which allowed-CPU slot a worker lands on
    // (socket-fill order under --numa=auto); the worker id itself — the
    // identity everything above is keyed by — is untouched.
    util::pin_thread_to_cpu(
        worker < pin_slots_.size() ? pin_slots_[worker] : worker);
  }
  for (;;) {
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (stop_) return;
      // Capture the epoch *before* scanning for work: a notify() that lands
      // after an empty scan bumps the epoch past `seen`, so the wait below
      // falls through instead of sleeping past the new work.
      seen = epoch_;
    }
    if (work_(worker)) continue;
    // Telemetry at the park boundary only: count the park and, once woken,
    // record how long this worker slept (its own padded slot / trace lane —
    // no cross-worker traffic, and zero cost when no sink is attached).
    const std::uint64_t park_start_ns =
        trace_ != nullptr ? trace_->now_ns() : 0;
    util::Timer parked;
    const bool observing = metrics_ != nullptr || trace_ != nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
    }
    if (observing) {
      const std::uint64_t park_ns =
          static_cast<std::uint64_t>(parked.seconds() * 1e9);
      if (metrics_ != nullptr && worker < metrics_->width()) {
        auto& wm = metrics_->worker(worker);
        wm.parks.add();
        wm.park_ns.record(park_ns);
      }
      if (trace_ != nullptr && worker < trace_->width()) {
        trace_->record(worker, obs::EventKind::kPark, park_start_ns, park_ns,
                       0);
      }
    }
  }
}

}  // namespace relax::engine
