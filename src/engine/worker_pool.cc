#include "engine/worker_pool.h"

#include <utility>

#include "util/thread_pin.h"

namespace relax::engine {

WorkerPool::WorkerPool(unsigned num_threads, bool pin_threads, WorkFn work)
    : work_(std::move(work)), pin_threads_(pin_threads) {
  const unsigned n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::notify() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    ++epoch_;
  }
  cv_.notify_all();
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void WorkerPool::worker_main(unsigned worker) {
  // `worker` is this thread's identity for the pool's whole lifetime —
  // never reassigned, never shared — so owner-side state keyed by it
  // (engine worker caches, per-worker scheduler sessions in jobs) needs no
  // locking against other workers.
  if (pin_threads_) util::pin_thread_to_cpu(worker);
  for (;;) {
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (stop_) return;
      // Capture the epoch *before* scanning for work: a notify() that lands
      // after an empty scan bumps the epoch past `seen`, so the wait below
      // falls through instead of sleeping past the new work.
      seen = epoch_;
    }
    if (work_(worker)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
  }
}

}  // namespace relax::engine
