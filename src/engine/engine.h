// SchedulingEngine — a persistent, multi-tenant execution service over the
// relaxed-scheduling framework.
//
// One engine owns one pinned WorkerPool for its whole lifetime and
// multiplexes a stream of independent jobs over it:
//
//   submit(job) -> JobTicket      bounded admission queue; BLOCKS when
//                                 max_pending jobs are already waiting
//                                 (backpressure, never drops)
//   JobTicket::wait()             blocks until that job completes, returns
//                                 its ExecutionStats
//
// Up to max_in_flight admitted jobs are active at once; every worker visits
// each active job round-robin (rotated by worker id so workers start on
// different jobs) and runs a bounded slice of its scheduler loop. Workers
// park when no job is active and are woken by the next submission — an idle
// engine burns no CPU, unlike the one-shot executors' spin loops.
//
// The per-run entry points in core/parallel_executor.h are now thin
// wrappers: they stand up a single-job engine, submit, and wait. Services
// should instead keep one engine alive and stream jobs through it (see
// examples/job_server.cpp and bench/engine_throughput.cc).
//
// Lifetime: the problem, priorities, and any caller-owned queue passed to a
// submit call must stay alive until that job's ticket is waited on (or the
// engine is destroyed — the destructor drains all submitted jobs first).
// Jobs hold per-worker scheduler *sessions* (cached handles, see
// engine/job.h); the reap path calls Job::retire() after the last slice
// returns and before the ticket is fulfilled, so no session outlives the
// wait() that releases the caller's queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "core/execution_stats.h"
#include "core/problem.h"
#include "engine/backend_jobs.h"
#include "engine/job.h"
#include "engine/qos.h"
#include "engine/worker_pool.h"
#include "graph/permutation.h"
#include "sched/backend_registry.h"
#include "util/padded.h"
#include "util/topology.h"

namespace relax::engine {

struct EngineOptions {
  unsigned num_threads = 0;      // 0 = all available hardware threads
  bool pin_threads = true;       // pin worker i to the i-th allowed CPU
  std::size_t max_pending = 64;  // admission queue bound (submit blocks)
  unsigned max_in_flight = 4;    // jobs multiplexed over the pool at once
  std::uint32_t slice_budget = 256;  // scheduler iterations per job visit

  /// Topology-aware placement (util/topology.h). kOff (the default) keeps
  /// the historical flat layout: worker i pinned to the i-th allowed CPU,
  /// every scheduler treated as one domain. kAuto discovers sockets from
  /// sysfs (flat fallback when the container hides them), pins workers in
  /// socket-fill order, and stripes every owned scheduler by domain.
  /// kVirtual (--numa=virtual:K) splits the workers into K synthetic
  /// domains regardless of hardware — same placement code paths, fully
  /// deterministic, which is what CI exercises.
  util::TopologySpec topology;

  /// Optional engine-wide telemetry sinks, caller-owned and off by default
  /// (nullptr == zero overhead on every hot path). The engine resizes both
  /// to its worker count before the pool starts, threads them into the
  /// pool's park instrumentation, times every job slice into the registry
  /// and trace ring, and injects them into each submitted job's JobConfig
  /// (unless the caller already set per-job sinks there — caller wins).
  /// Both must outlive the engine.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* trace = nullptr;

  [[nodiscard]] unsigned threads() const;
};

class SchedulingEngine;

/// Completion callback attached to a submission (the callback-completion
/// alternative to blocking on JobTicket::wait()). Invoked exactly once, by
/// the worker that reaps the job, after the ticket is fulfilled — so a
/// concurrent wait() on the same job is guaranteed to return. Runs on an
/// engine worker thread: it must be lightweight (hand the stats off to
/// another thread — a channel, a queue, an eventfd — rather than doing real
/// work), must not call wait() on any ticket of the same engine, and must
/// not call the blocking submit() (both can deadlock the pool against
/// itself). Resources the job borrows (problem storage, caller-owned
/// queues) may be released from inside the callback: the engine is done
/// with the job before it fires.
using CompletionFn = std::function<void(const core::ExecutionStats&)>;

/// Handle to one submitted job. Copyable; wait() may be called from any
/// thread except the engine's own workers, any number of times.
class JobTicket {
 public:
  JobTicket() = default;

  /// Blocks until the job completes; returns its merged stats.
  core::ExecutionStats wait();

  [[nodiscard]] bool ready() const;

 private:
  friend class SchedulingEngine;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;                    // guarded by mu
    core::ExecutionStats stats;           // guarded by mu
    std::atomic<bool> reaped{false};      // reaper election
    std::atomic<bool> sealed{false};      // no new slices may start
    std::atomic<unsigned> in_slice{0};    // workers currently inside a slice
    CompletionFn on_complete;             // set before publication, fired by
                                          // the reaper after the ticket
  };

  explicit JobTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class SchedulingEngine {
 public:
  explicit SchedulingEngine(EngineOptions opts = {});

  /// Drains every submitted job, then stops and joins the pool.
  ~SchedulingEngine();

  SchedulingEngine(const SchedulingEngine&) = delete;
  SchedulingEngine& operator=(const SchedulingEngine&) = delete;

  /// Submits a type-erased job. Blocks while the admission queue holds
  /// max_pending jobs (backpressure; nothing is ever dropped). With a
  /// callback, completion additionally fires `on_complete` (see
  /// CompletionFn for the threading contract) — the ticket stays valid
  /// either way, so callers may mix both completion styles.
  JobTicket submit(std::shared_ptr<Job> job, CompletionFn on_complete = {});

  /// Non-blocking admission: like submit(), but when the admission queue
  /// already holds max_pending jobs it returns nullopt immediately instead
  /// of blocking — the caller decides what backpressure means (the network
  /// front-end in src/server/ sheds load with an explicit BUSY response).
  /// Never drops an accepted job: a returned ticket is a submitted job.
  std::optional<JobTicket> try_submit(std::shared_ptr<Job> job,
                                      CompletionFn on_complete = {});

  /// Non-blocking, callback-completed form of submit_relaxed_backend — the
  /// request path of the network front-end. nullopt == admission full
  /// (nothing was enqueued; the problem may be freed immediately).
  template <core::Problem P>
  std::optional<JobTicket> try_submit_relaxed_backend(
      P& problem, const graph::Priorities& pri,
      const sched::BackendInfo& backend, const JobConfig& cfg,
      CompletionFn on_complete) {
    return try_submit(
        make_backend_job(backend, problem, pri, width(),
                         with_observability(cfg)),
        std::move(on_complete));
  }

  /// Relaxed execution over an engine-owned ConcurrentMultiQueue sized
  /// cfg.queue_factor sub-queues per worker — the production default. With
  /// cfg.monitor_relaxation the job runs in audit mode and its stats carry
  /// Definition 1 rank-error / inversion measurements.
  template <core::Problem P>
  JobTicket submit_relaxed(P& problem, const graph::Priorities& pri,
                           const JobConfig& cfg = {}) {
    const JobConfig jc = with_observability(cfg);
    const std::uint32_t queues = jc.queue_factor * width();
    if (jc.monitor_relaxation) {
      return submit(
          std::make_shared<MonitoredRelaxedJob<P, sched::ConcurrentMultiQueue>>(
              problem, pri, jc, queues, jc.seed, jc.choices));
    }
    return submit(
        std::make_shared<OwningRelaxedJob<P, sched::ConcurrentMultiQueue>>(
            problem, pri, jc, queues, jc.seed, jc.choices));
  }

  /// Relaxed execution over any backend in the registry
  /// (sched/backend_registry.h): the job owns a fresh instance of the named
  /// backend sized for this pool. With cfg.monitor_relaxation the backend
  /// is additionally driven through a RelaxationMonitor and the stats carry
  /// Definition 1 quality measurements.
  template <core::Problem P>
  JobTicket submit_relaxed_backend(P& problem, const graph::Priorities& pri,
                                   const sched::BackendInfo& backend,
                                   const JobConfig& cfg = {}) {
    return submit(
        make_backend_job(backend, problem, pri, width(), with_observability(cfg)));
  }

  /// Name-based form; throws std::invalid_argument (listing the valid
  /// names) when `backend_name` is not in the registry.
  template <core::Problem P>
  JobTicket submit_relaxed_backend(P& problem, const graph::Priorities& pri,
                                   std::string_view backend_name,
                                   const JobConfig& cfg = {}) {
    return submit_relaxed_backend(problem, pri,
                                  sched::backend_or_throw(backend_name), cfg);
  }

  /// Relaxed execution over a caller-owned scheduler (MultiQueue, SprayList,
  /// LockFreeMultiQueue, or any sched::ConcurrentScheduler such as a
  /// LockedScheduler-wrapped KBoundedScheduler).
  template <core::Problem P, typename Queue>
  JobTicket submit_relaxed_on(P& problem, const graph::Priorities& pri,
                              Queue& queue, const JobConfig& cfg = {}) {
    return submit(std::make_shared<RelaxedJob<P, Queue>>(
        problem, pri, queue, with_observability(cfg)));
  }

  /// Exact-baseline execution (FAA ticket dispenser + bounded backoff-wait).
  template <core::Problem P>
  JobTicket submit_exact(P& problem, const graph::Priorities& pri,
                         const JobConfig& cfg = {}) {
    return submit(
        std::make_shared<ExactJob<P>>(problem, pri, with_observability(cfg)));
  }

  /// Number of pool workers.
  [[nodiscard]] unsigned width() const noexcept { return pool_.size(); }

  [[nodiscard]] std::uint64_t jobs_submitted() const;
  [[nodiscard]] std::uint64_t jobs_completed() const;

 private:
  struct Admitted {
    std::shared_ptr<Job> job;
    std::shared_ptr<JobTicket::State> state;
    std::uint64_t id = 0;  // 1-based submission order; trace-event job label
    /// QoS ledger, attached at activation (admit()) and shared by every
    /// worker-cache copy of this entry; workers consult it for each
    /// slice's budget grant.
    std::shared_ptr<TenantState> tenant;
  };

  /// Fills unset per-job telemetry sinks from the engine-wide ones in
  /// EngineOptions, and injects the engine's topology placement (domain
  /// count + per-worker domain table) so every submitted job stripes its
  /// scheduler the way the pool is actually pinned; a caller-provided
  /// JobConfig value always wins.
  [[nodiscard]] JobConfig with_observability(JobConfig cfg) const {
    if (cfg.metrics == nullptr) cfg.metrics = opts_.metrics;
    if (cfg.trace == nullptr) cfg.trace = opts_.trace;
    if (cfg.numa_domains <= 1 && cfg.worker_domains == nullptr) {
      cfg.numa_domains = placement_.num_domains;
      cfg.worker_domains = &placement_.domain;
    }
    return cfg;
  }

  /// WorkerPool work function: visit every active job once.
  bool work(unsigned worker);

  /// Promotes pending jobs into the active set up to max_in_flight.
  /// Requires `lock` held on mu_; releases it around each job's activate()
  /// so an O(n) activation (e.g. ExactJob's label load) never stalls
  /// submitters or the workers' active-set refresh.
  void admit(std::unique_lock<std::mutex>& lock);

  /// Reaps a finished job exactly once: waits for in-flight slices to
  /// retire, collects stats, fulfills the ticket, frees its active slot.
  void finish(const Admitted& admitted);

  /// Per-worker cached copy of the active set, refreshed only when
  /// active_version_ says it changed. Without this every work-loop pass of
  /// every worker would re-take mu_ and copy shared_ptrs — one mutex and a
  /// refcount cache line serializing the whole pool, exactly the
  /// scalability failure the striped designs in sched/ exist to avoid.
  struct WorkerCache {
    std::uint64_t seen_version = ~0ULL;  // != 0 so the first pass refreshes
    std::vector<Admitted> jobs;
  };

  EngineOptions opts_;
  /// Where each worker goes and which topology domain it belongs to —
  /// computed once from opts_.topology (flat under kOff), referenced by
  /// every with_observability-injected JobConfig. Declared before pool_ so
  /// it exists before any worker thread spawns.
  util::WorkerPlacement placement_;
  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // submit backpressure
  std::condition_variable drain_cv_;  // destructor drain
  std::deque<Admitted> pending_;      // guarded by mu_
  std::vector<Admitted> active_;      // guarded by mu_
  unsigned activating_ = 0;  // jobs mid-activate outside the lock; mu_
  std::atomic<std::uint64_t> active_version_{0};  // bumped under mu_
  std::uint64_t submitted_ = 0;       // guarded by mu_
  std::uint64_t completed_ = 0;       // guarded by mu_
  /// Slice-budget policy (engine/qos.h): admit()/finish() register tenants
  /// under mu_; work() consults it lock-free for every budget grant.
  /// Declared before pool_ so it exists before any worker thread spawns.
  QosGovernor qos_;
  std::vector<util::Padded<WorkerCache>> worker_caches_;
  WorkerPool pool_;  // last member: workers touch the state above
};

}  // namespace relax::engine
