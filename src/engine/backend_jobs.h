// Registry-driven job construction: the bridge between the backend
// registry (sched/backend_registry.h) and the engine's type-erased Job
// boundary.
//
// make_backend_job resolves a BackendInfo into a concrete scheduler type
// via dispatch_backend, stands the scheduler up *inside* an
// OwningRelaxedJob (or a MonitoredRelaxedJob when the config opts into the
// Definition 1 audit), and returns the type-erased handle the engine
// multiplexes. This is the "factory closure" per backend name: everything
// past this point — admission batching, slice execution, retirement
// counting — is backend-agnostic.
//
// Sizing: the backend sees the engine's pool width as its thread count, so
// MultiQueues get queue_factor * width sub-queues and the SprayList sprays
// for p = width, exactly as the one-shot executors sized them.
#pragma once

#include <memory>
#include <utility>

#include "core/problem.h"
#include "engine/job.h"
#include "graph/permutation.h"
#include "sched/backend_registry.h"

namespace relax::engine {

/// Backend instantiation parameters for a job of `num_tasks` tasks running
/// on a pool of `pool_width` workers. Note cfg.choices is deliberately NOT
/// forwarded: a registry name pins its own sampling width (that is what
/// distinguishes multiqueue-c2 from multiqueue-c8), so the backend path
/// takes choices from BackendInfo, never from the job config.
inline sched::BackendParams backend_params(const JobConfig& cfg,
                                           unsigned pool_width,
                                           std::uint32_t num_tasks) {
  sched::BackendParams params;
  params.threads = pool_width;
  params.queue_factor = cfg.queue_factor;
  params.seed = cfg.seed;
  params.kbound = cfg.relaxation_k;
  params.capacity = num_tasks;
  return params;
}

/// Builds a relaxed job over the backend `info` describes. The returned job
/// owns its scheduler; with cfg.monitor_relaxation it runs in audit mode
/// and its stats carry Definition 1 rank-error / inversion measurements.
template <core::Problem P>
std::shared_ptr<Job> make_backend_job(const sched::BackendInfo& info,
                                      P& problem,
                                      const graph::Priorities& pri,
                                      unsigned pool_width,
                                      const JobConfig& cfg = {}) {
  const auto params = backend_params(cfg, pool_width, problem.num_tasks());
  return sched::dispatch_backend(
      info, params,
      [&](auto tag, auto&&... queue_args) -> std::shared_ptr<Job> {
        using Queue = typename decltype(tag)::type;
        if (cfg.monitor_relaxation) {
          return std::make_shared<MonitoredRelaxedJob<P, Queue>>(
              problem, pri, cfg,
              std::forward<decltype(queue_args)>(queue_args)...);
        }
        return std::make_shared<OwningRelaxedJob<P, Queue>>(
            problem, pri, cfg,
            std::forward<decltype(queue_args)>(queue_args)...);
      });
}

}  // namespace relax::engine
