#include "engine/qos.h"

namespace relax::engine {

std::shared_ptr<TenantState> QosGovernor::admit(std::uint64_t job_id,
                                                std::uint32_t weight) {
  auto tenant = std::make_shared<TenantState>();
  tenant->job_id = job_id;
  // Same ceiling as JobConfig::kMaxWeight (not included here to keep the
  // governor independent of the job layer).
  tenant->weight = std::clamp<std::uint32_t>(weight, 1, 1024);
  if (metrics_ != nullptr)
    tenant->obs = metrics_->claim_qos_slot(job_id, tenant->weight);
  active_.fetch_add(1, std::memory_order_relaxed);
  total_weight_.fetch_add(tenant->weight, std::memory_order_relaxed);
  return tenant;
}

void QosGovernor::release(const TenantState& tenant) {
  active_.fetch_sub(1, std::memory_order_relaxed);
  total_weight_.fetch_sub(tenant.weight, std::memory_order_relaxed);
}

std::uint32_t QosGovernor::grant(TenantState& tenant) {
  maybe_consult_idle();

  std::uint32_t budget = full_;
  const unsigned k = active_.load(std::memory_order_relaxed);
  if (k <= 1) {
    // Solo tenant: fixed-budget behaviour, and the ledger resets so a
    // burst banked during a past contention phase cannot distort the
    // next one.
    tenant.deficit.store(0, std::memory_order_relaxed);
  } else {
    const std::uint64_t total =
        std::max<std::uint64_t>(total_weight_.load(std::memory_order_relaxed),
                                tenant.weight);
    // Raw weighted share of the full slice, widened by the idle-feedback
    // multiplier when the pool is visibly undercommitted.
    std::uint64_t share = static_cast<std::uint64_t>(full_) * tenant.weight *
                          expand_pct_.load(std::memory_order_relaxed) /
                          (total * 100);
    // Cost normalization: a tenant whose iterations are pricier than the
    // cross-tenant mean gets proportionally fewer of them, so the share
    // is of slice *time*. Both EWMAs start at 0 (unmeasured) — skip.
    const std::uint64_t mine = tenant.cost_ns.load(std::memory_order_relaxed);
    const std::uint64_t mean = mean_cost_ns_.load(std::memory_order_relaxed);
    if (mine > 0 && mean > 0) {
      const std::uint64_t lo = std::max<std::uint64_t>(mean / 4, 1);
      share = share * mean / std::clamp(mine, lo, mean * 4);
    }
    const std::uint64_t quantum =
        std::clamp<std::uint64_t>(share, min_, full_);
    // DRR: bank the quantum (burst-capped), grant the clamped balance.
    const std::int64_t cap = kBurstFactor * static_cast<std::int64_t>(full_);
    std::int64_t bank =
        tenant.deficit.load(std::memory_order_relaxed) +
        static_cast<std::int64_t>(quantum);
    bank = std::min(bank, cap);
    tenant.deficit.store(bank, std::memory_order_relaxed);
    budget = static_cast<std::uint32_t>(std::clamp<std::int64_t>(
        bank, static_cast<std::int64_t>(min_),
        static_cast<std::int64_t>(full_)));
  }

  if (tenant.obs != nullptr) {
    tenant.obs->grants.add(1);
    tenant.obs->granted_iterations.add(budget);
    tenant.obs->budget.set(budget);
  }
  return budget;
}

void QosGovernor::report(TenantState& tenant, std::uint32_t granted,
                         std::uint32_t used, std::uint64_t slice_ns) {
  (void)granted;
  if (used > 0) {
    tenant.deficit.fetch_sub(static_cast<std::int64_t>(used),
                             std::memory_order_relaxed);
    if (slice_ns > 0) {
      // Per-tenant and cross-tenant ns/iteration EWMAs (alpha = 1/2 —
      // coarse is fine, the grant clamp bounds the influence anyway).
      const std::uint64_t cost = std::max<std::uint64_t>(slice_ns / used, 1);
      const std::uint64_t prev = tenant.cost_ns.load(std::memory_order_relaxed);
      tenant.cost_ns.store(prev == 0 ? cost : (prev + cost) / 2,
                           std::memory_order_relaxed);
      const std::uint64_t gprev =
          mean_cost_ns_.load(std::memory_order_relaxed);
      mean_cost_ns_.store(gprev == 0 ? cost : (gprev + cost) / 2,
                          std::memory_order_relaxed);
    }
  }
  if (tenant.obs != nullptr) {
    tenant.obs->used_iterations.add(used);
    const std::int64_t bank = tenant.deficit.load(std::memory_order_relaxed);
    tenant.obs->deficit.set(bank > 0 ? static_cast<std::uint64_t>(bank) : 0);
  }
}

void QosGovernor::maybe_consult_idle() {
  if (metrics_ == nullptr) return;
  const std::uint64_t n = grants_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % kConsultPeriod != 0) return;
  // Sum the per-worker idle/progress counters directly off the live
  // registry (a full snapshot() would clone every histogram — far too
  // heavy for a hot-path consult).
  std::uint64_t idle = 0;
  std::uint64_t slices = 0;
  const unsigned width = metrics_->width();
  for (unsigned w = 0; w < width; ++w) {
    idle += metrics_->worker(w).idle_visits.value();
    slices += metrics_->worker(w).slices.value();
  }
  const std::uint64_t d_idle = idle - seen_idle_.load(std::memory_order_relaxed);
  const std::uint64_t d_slices =
      slices - seen_slices_.load(std::memory_order_relaxed);
  seen_idle_.store(idle, std::memory_order_relaxed);
  seen_slices_.store(slices, std::memory_order_relaxed);
  // Idle visits dominating the window means the tenants cannot fill even
  // their shrunken shares — widen everyone's share toward the full slice.
  // Progress dominating means contention is real — fall back toward the
  // strict weighted split. Doubling/halving mirrors BatchController's ramp.
  const std::uint64_t pct = expand_pct_.load(std::memory_order_relaxed);
  if (d_idle > d_slices) {
    expand_pct_.store(std::min<std::uint64_t>(pct * 2, kMaxExpandPct),
                      std::memory_order_relaxed);
  } else if (pct > 100) {
    expand_pct_.store(std::max<std::uint64_t>(pct / 2, 100),
                      std::memory_order_relaxed);
  }
}

}  // namespace relax::engine
