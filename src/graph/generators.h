// Random and structured graph generators for the experiment workloads.
//
// The paper evaluates on uniform random graphs: Table 1 uses fixed (n, m)
// pairs, Figure 2 uses G(n, p) classes of fixed density. We provide:
//
//   * gnm(n, m)        — m uniform edge samples (duplicates removed during
//                        CSR construction; for sparse graphs the edge-count
//                        deficit is vanishingly small). Parallel.
//   * gnm_exact(n, m)  — exactly m distinct edges via rejection hashing;
//                        intended for test-sized graphs.
//   * gnp(n, p)        — G(n,p) via geometric edge skipping, O(n + m).
//   * rmat(...)        — Recursive-MATrix power-law generator (Chakrabarti,
//                        Zhan, Faloutsos 2004), for skewed-degree examples.
//   * barabasi_albert  — preferential attachment, for the social-network
//                        example application.
//   * structured graphs: path, cycle, grid, clique, star, bipartite —
//                        used by tests and the tightness benchmarks (the
//                        paper's Θ(nk) clique-coloring example).
//
// All generators are deterministic in (parameters, seed).
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace relax::graph {

/// ~m uniform random undirected edges on n vertices (multi-sampled;
/// duplicate and self-loop samples are dropped, so the realized edge count
/// is slightly below m for dense settings). Generation is parallel and
/// deterministic in (n, m, seed, threads is irrelevant to the sample set).
Graph gnm(Vertex n, EdgeId m, std::uint64_t seed, unsigned threads = 0);

/// Exactly m distinct uniform edges (rejection sampling with a hash set).
/// Requires m <= n*(n-1)/2. Sequential; use for n up to ~10^5.
Graph gnm_exact(Vertex n, EdgeId m, std::uint64_t seed);

/// Erdos-Renyi G(n, p) via geometric skipping over the edge enumeration.
Graph gnp(Vertex n, double p, std::uint64_t seed, unsigned threads = 0);

/// R-MAT generator with partition probabilities (a, b, c); d = 1-a-b-c.
Graph rmat(Vertex n_pow2, EdgeId m, double a, double b, double c,
           std::uint64_t seed, unsigned threads = 0);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree.
Graph barabasi_albert(Vertex n, std::uint32_t attach, std::uint64_t seed);

/// Simple path 0-1-2-...-(n-1).
Graph path(Vertex n);

/// Cycle on n vertices (n >= 3).
Graph cycle(Vertex n);

/// rows x cols 2D grid, 4-neighborhood.
Graph grid(Vertex rows, Vertex cols);

/// Complete graph K_n.
Graph clique(Vertex n);

/// Star: vertex 0 adjacent to 1..n-1.
Graph star(Vertex n);

/// Complete bipartite K_{a,b}: parts {0..a-1} and {a..a+b-1}.
Graph complete_bipartite(Vertex a, Vertex b);

}  // namespace relax::graph
