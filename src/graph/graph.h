// Immutable undirected graph in compressed-sparse-row (CSR) form.
//
// This is the substrate for every experiment in the paper: the dependency
// graphs consumed by the relaxed scheduling framework are either the input
// graph itself (MIS, coloring), its line graph (matching), or an implicit
// structure exposed through the same interface (list contraction, shuffle).
//
// Representation choices:
//   * vertices are dense uint32 ids (the paper's graphs fit comfortably);
//   * edge offsets are uint64 (dense graphs exceed 2^32 directed edges);
//   * adjacency lists are sorted ascending and deduplicated, self-loops are
//     dropped at construction — greedy MIS/coloring/matching semantics
//     assume a simple graph.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace relax::graph {

using Vertex = std::uint32_t;
using EdgeId = std::uint64_t;
using Edge = std::pair<Vertex, Vertex>;

class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph from an undirected edge list. Each {u,v} pair is
  /// inserted in both directions; duplicates and self-loops are removed.
  /// Construction is parallelized over `threads` workers (0 = hardware).
  static Graph from_edges(Vertex n, std::span<const Edge> edges,
                          unsigned threads = 0);

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }

  /// Number of undirected edges (after dedup).
  [[nodiscard]] EdgeId num_edges() const noexcept { return adj_.size() / 2; }

  /// Number of directed arcs (= 2 * num_edges()).
  [[nodiscard]] EdgeId num_arcs() const noexcept { return adj_.size(); }

  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {adj_.data() + offsets_[v],
            adj_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::uint32_t degree(Vertex v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// True if {u,v} is an edge (binary search; O(log deg(u))).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  /// All undirected edges as (min,max) pairs, ordered by (u,v).
  /// Materializes a new vector; intended for tests and line-graph builds.
  [[nodiscard]] std::vector<Edge> edge_list() const;

  /// Offset of v's adjacency block; `arc` ids in [offsets(v), offsets(v+1))
  /// index into the directed arc array. Used by the matching adapter to map
  /// arcs back to edge tasks.
  [[nodiscard]] EdgeId arc_offset(Vertex v) const noexcept {
    return offsets_[v];
  }
  [[nodiscard]] Vertex arc_target(EdgeId arc) const noexcept {
    return adj_[arc];
  }

 private:
  Vertex n_ = 0;
  std::vector<EdgeId> offsets_;  // size n_+1
  std::vector<Vertex> adj_;      // size = num_arcs
};

/// Builds the line graph L(G): one vertex per undirected edge of G, with an
/// edge between two L(G)-vertices iff the corresponding G-edges share an
/// endpoint. Greedy matching on G == greedy MIS on L(G) (paper §2.4).
/// `edge_index` receives the G edge corresponding to each L(G) vertex.
Graph line_graph(const Graph& g, std::vector<Edge>* edge_index = nullptr);

}  // namespace relax::graph
