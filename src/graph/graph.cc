#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>

#include "util/parallel_for.h"

namespace relax::graph {

Graph Graph::from_edges(Vertex n, std::span<const Edge> edges,
                        unsigned threads) {
  Graph g;
  g.n_ = n;

  // Pass 1: directed degree counts (each undirected edge contributes two
  // arcs). Self-loops are skipped here and never enter the CSR.
  std::vector<std::atomic<EdgeId>> degree(n + 1);
  util::parallel_chunks(0, edges.size(), threads,
                        [&](std::uint64_t lo, std::uint64_t hi) {
                          for (std::uint64_t i = lo; i < hi; ++i) {
                            const auto [u, v] = edges[i];
                            assert(u < n && v < n);
                            if (u == v) continue;
                            degree[u].fetch_add(1, std::memory_order_relaxed);
                            degree[v].fetch_add(1, std::memory_order_relaxed);
                          }
                        });

  // Prefix sum -> provisional offsets (before dedup).
  std::vector<EdgeId> offsets(n + 1, 0);
  for (Vertex v = 0; v < n; ++v)
    offsets[v + 1] =
        offsets[v] + degree[v].load(std::memory_order_relaxed);

  // Pass 2: scatter arcs using atomic per-vertex cursors.
  std::vector<std::atomic<EdgeId>> cursor(n);
  for (Vertex v = 0; v < n; ++v)
    cursor[v].store(offsets[v], std::memory_order_relaxed);
  std::vector<Vertex> adj(offsets[n]);
  util::parallel_chunks(
      0, edges.size(), threads, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const auto [u, v] = edges[i];
          if (u == v) continue;
          adj[cursor[u].fetch_add(1, std::memory_order_relaxed)] = v;
          adj[cursor[v].fetch_add(1, std::memory_order_relaxed)] = u;
        }
      });

  // Pass 3: sort + dedup each adjacency list in place, recording new sizes.
  std::vector<EdgeId> unique_degree(n, 0);
  util::parallel_for(0, n, threads, [&](std::uint64_t v) {
    auto* first = adj.data() + offsets[v];
    auto* last = adj.data() + offsets[v + 1];
    std::sort(first, last);
    unique_degree[v] = static_cast<EdgeId>(std::unique(first, last) - first);
  });

  // Pass 4: compact into the final arrays.
  g.offsets_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v)
    g.offsets_[v + 1] = g.offsets_[v] + unique_degree[v];
  g.adj_.resize(g.offsets_[n]);
  util::parallel_for(0, n, threads, [&](std::uint64_t v) {
    std::copy_n(adj.data() + offsets[v], unique_degree[v],
                g.adj_.data() + g.offsets_[v]);
  });
  return g;
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t d = 0;
  for (Vertex v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= n_) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (Vertex u = 0; u < n_; ++u)
    for (Vertex v : neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  return edges;
}

Graph line_graph(const Graph& g, std::vector<Edge>* edge_index) {
  const std::vector<Edge> edges = g.edge_list();
  const auto m = static_cast<Vertex>(edges.size());

  // Map each G-edge to its line-graph vertex id; bucket edges by endpoint.
  std::vector<std::vector<Vertex>> incident(g.num_vertices());
  for (Vertex e = 0; e < m; ++e) {
    incident[edges[e].first].push_back(e);
    incident[edges[e].second].push_back(e);
  }

  std::vector<Edge> lg_edges;
  for (const auto& bucket : incident) {
    for (std::size_t i = 0; i < bucket.size(); ++i)
      for (std::size_t j = i + 1; j < bucket.size(); ++j)
        lg_edges.emplace_back(bucket[i], bucket[j]);
  }
  if (edge_index != nullptr) *edge_index = edges;
  return Graph::from_edges(m, lg_edges);
}

}  // namespace relax::graph
