#include "graph/io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

namespace relax::graph {
namespace {

constexpr std::uint64_t kBinaryMagic = 0x52454c4758454c31ULL;  // "RELGXEL1"

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_or_throw(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

}  // namespace

void write_edge_list(const Graph& g, const std::string& path) {
  File f = open_or_throw(path, "w");
  std::fprintf(f.get(), "%u %llu\n", g.num_vertices(),
               static_cast<unsigned long long>(g.num_edges()));
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    for (Vertex v : g.neighbors(u))
      if (u < v) std::fprintf(f.get(), "%u %u\n", u, v);
}

Graph read_edge_list(const std::string& path) {
  File f = open_or_throw(path, "r");
  unsigned n = 0;
  unsigned long long m = 0;
  if (std::fscanf(f.get(), "%u %llu", &n, &m) != 2)
    throw std::runtime_error("bad edge list header in " + path);
  std::vector<Edge> edges;
  edges.reserve(m);
  unsigned u = 0, v = 0;
  while (std::fscanf(f.get(), "%u %u", &u, &v) == 2)
    edges.emplace_back(u, v);
  if (edges.size() != m)
    throw std::runtime_error("edge count mismatch in " + path);
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

void write_binary(const Graph& g, const std::string& path) {
  File f = open_or_throw(path, "wb");
  const std::uint64_t magic = kBinaryMagic;
  const std::uint32_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  if (std::fwrite(&magic, sizeof magic, 1, f.get()) != 1 ||
      std::fwrite(&n, sizeof n, 1, f.get()) != 1 ||
      std::fwrite(&m, sizeof m, 1, f.get()) != 1)
    throw std::runtime_error("write failure on " + path);
  std::vector<std::uint32_t> buffer;
  buffer.reserve(1 << 16);
  auto flush = [&] {
    if (buffer.empty()) return;
    if (std::fwrite(buffer.data(), sizeof(std::uint32_t), buffer.size(),
                    f.get()) != buffer.size())
      throw std::runtime_error("write failure on " + path);
    buffer.clear();
  };
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (u >= v) continue;
      buffer.push_back(u);
      buffer.push_back(v);
      if (buffer.size() >= (1 << 16)) flush();
    }
  }
  flush();
}

Graph read_binary(const std::string& path) {
  File f = open_or_throw(path, "rb");
  std::uint64_t magic = 0;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  if (std::fread(&magic, sizeof magic, 1, f.get()) != 1 ||
      magic != kBinaryMagic || std::fread(&n, sizeof n, 1, f.get()) != 1 ||
      std::fread(&m, sizeof m, 1, f.get()) != 1)
    throw std::runtime_error("bad binary graph header in " + path);
  std::vector<Edge> edges(m);
  std::vector<std::uint32_t> raw(static_cast<std::size_t>(m) * 2);
  if (std::fread(raw.data(), sizeof(std::uint32_t), raw.size(), f.get()) !=
      raw.size())
    throw std::runtime_error("truncated binary graph " + path);
  for (std::uint64_t e = 0; e < m; ++e)
    edges[e] = {raw[2 * e], raw[2 * e + 1]};
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

}  // namespace relax::graph
