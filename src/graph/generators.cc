#include "graph/generators.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/parallel_for.h"
#include "util/rng.h"

namespace relax::graph {
namespace {

/// Deterministic per-chunk RNG: the sample set depends only on (seed, chunk
/// index), not on the thread count, because chunks are fixed-size.
constexpr std::uint64_t kChunkSize = 1 << 16;

std::uint64_t pair_key(Vertex u, Vertex v) noexcept {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph gnm(Vertex n, EdgeId m, std::uint64_t seed, unsigned threads) {
  if (n < 2) return Graph::from_edges(n, {});
  std::vector<Edge> edges(m);
  const std::uint64_t chunks = (m + kChunkSize - 1) / kChunkSize;
  util::parallel_for(0, chunks, threads, [&](std::uint64_t chunk) {
    util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)));
    const std::uint64_t lo = chunk * kChunkSize;
    const std::uint64_t hi = std::min<std::uint64_t>(m, lo + kChunkSize);
    for (std::uint64_t i = lo; i < hi; ++i) {
      Vertex u = static_cast<Vertex>(util::bounded(rng, n));
      Vertex v = static_cast<Vertex>(util::bounded(rng, n - 1));
      if (v >= u) ++v;  // uniform over ordered pairs with u != v
      edges[i] = {u, v};
    }
  });
  return Graph::from_edges(n, edges, threads);
}

Graph gnm_exact(Vertex n, EdgeId m, std::uint64_t seed) {
  const EdgeId max_edges =
      static_cast<EdgeId>(n) * (n - 1) / 2;
  if (m > max_edges)
    throw std::invalid_argument("gnm_exact: m exceeds n*(n-1)/2");
  util::Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  // Dense case fallback: enumerate and sample without replacement.
  if (m * 3 > max_edges * 2) {
    std::vector<Edge> all;
    all.reserve(max_edges);
    for (Vertex u = 0; u < n; ++u)
      for (Vertex v = u + 1; v < n; ++v) all.emplace_back(u, v);
    util::shuffle(std::span<Edge>(all), rng);
    all.resize(m);
    return Graph::from_edges(n, all);
  }
  while (edges.size() < m) {
    Vertex u = static_cast<Vertex>(util::bounded(rng, n));
    Vertex v = static_cast<Vertex>(util::bounded(rng, n - 1));
    if (v >= u) ++v;
    const Vertex a = std::min(u, v), b = std::max(u, v);
    if (seen.insert(pair_key(a, b)).second) edges.emplace_back(a, b);
  }
  return Graph::from_edges(n, edges);
}

Graph gnp(Vertex n, double p, std::uint64_t seed, unsigned threads) {
  if (p <= 0.0 || n < 2) return Graph::from_edges(n, {});
  if (p >= 1.0) return clique(n);
  // Geometric skipping (Batagelj & Brandes 2005) over the lower-triangular
  // enumeration, parallelized by row ranges.
  const double log1mp = std::log1p(-p);
  std::vector<std::vector<Edge>> partial(
      threads == 0 ? util::hardware_threads() : threads);
  util::parallel_chunks_indexed(1, n, static_cast<unsigned>(partial.size()),
                                [&](unsigned slot, std::uint64_t lo,
                                    std::uint64_t hi) {
    auto& out = partial[slot];
    for (std::uint64_t v = lo; v < hi; ++v) {
      // Per-row RNG keeps the sample set independent of the thread count.
      util::Rng rng(seed ^ (0xda942042e4dd58b5ULL * (v + 1)));
      // Enumerate edges (v, 0..v-1) with geometric gaps.
      std::uint64_t u = 0;
      for (;;) {
        const double r = util::uniform_double(rng);
        // Geometric gap: floor(log(1-r)/log(1-p)) absent edges before the
        // next present one. Compare in double before casting — converting
        // an out-of-range value to uint64 is undefined behaviour.
        const double skip = std::floor(std::log1p(-r) / log1mp);
        if (skip >= static_cast<double>(v - u)) break;
        u += static_cast<std::uint64_t>(skip);
        out.emplace_back(static_cast<Vertex>(v), static_cast<Vertex>(u));
        ++u;
      }
    }
  });
  std::size_t total = 0;
  for (const auto& part : partial) total += part.size();
  std::vector<Edge> edges;
  edges.reserve(total);
  for (auto& part : partial)
    edges.insert(edges.end(), part.begin(), part.end());
  return Graph::from_edges(n, edges, threads);
}

Graph rmat(Vertex n_pow2, EdgeId m, double a, double b, double c,
           std::uint64_t seed, unsigned threads) {
  if ((n_pow2 & (n_pow2 - 1)) != 0 || n_pow2 == 0)
    throw std::invalid_argument("rmat: n must be a power of two");
  int levels = 0;
  while ((1u << levels) < n_pow2) ++levels;
  std::vector<Edge> edges(m);
  const std::uint64_t chunks = (m + kChunkSize - 1) / kChunkSize;
  util::parallel_for(0, chunks, threads, [&](std::uint64_t chunk) {
    util::Rng rng(seed ^ (0xbf58476d1ce4e5b9ULL * (chunk + 1)));
    const std::uint64_t lo = chunk * kChunkSize;
    const std::uint64_t hi = std::min<std::uint64_t>(m, lo + kChunkSize);
    for (std::uint64_t i = lo; i < hi; ++i) {
      Vertex u = 0, v = 0;
      for (int level = 0; level < levels; ++level) {
        const double r = util::uniform_double(rng);
        u <<= 1;
        v <<= 1;
        if (r < a) {
          // top-left quadrant: no bits set
        } else if (r < a + b) {
          v |= 1;
        } else if (r < a + b + c) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      edges[i] = {u, v};
    }
  });
  return Graph::from_edges(n_pow2, edges, threads);
}

Graph barabasi_albert(Vertex n, std::uint32_t attach, std::uint64_t seed) {
  if (n == 0) return {};
  attach = std::max<std::uint32_t>(attach, 1);
  util::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * attach);
  // Repeated-endpoints trick: sampling a uniform element of the endpoint
  // multiset is exactly degree-proportional sampling.
  std::vector<Vertex> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * attach * 2);
  const Vertex seed_size = std::min<Vertex>(n, attach + 1);
  for (Vertex v = 1; v < seed_size; ++v) {
    edges.emplace_back(v, v - 1);
    endpoints.push_back(v);
    endpoints.push_back(v - 1);
  }
  for (Vertex v = seed_size; v < n; ++v) {
    for (std::uint32_t j = 0; j < attach; ++j) {
      const Vertex target =
          endpoints[util::bounded(rng, endpoints.size())];
      edges.emplace_back(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph path(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(v - 1, v);
  return Graph::from_edges(n, edges);
}

Graph cycle(Vertex n) {
  assert(n >= 3);
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(v - 1, v);
  edges.emplace_back(n - 1, 0);
  return Graph::from_edges(n, edges);
}

Graph grid(Vertex rows, Vertex cols) {
  std::vector<Edge> edges;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph clique(Vertex n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return Graph::from_edges(n, edges);
}

Graph star(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, edges);
}

Graph complete_bipartite(Vertex a, Vertex b) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  return Graph::from_edges(a + b, edges);
}

}  // namespace relax::graph
