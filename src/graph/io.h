// Plain-text and binary edge-list I/O.
//
// Text format ("el"): first line `n m`, then one `u v` pair per line.
// Binary format ("bel"): magic, u32 n, u64 m, then m packed {u32 u, u32 v}.
// The binary form exists so the Figure 2 graphs can be generated once and
// reloaded across benchmark runs.
#pragma once

#include <string>

#include "graph/graph.h"

namespace relax::graph {

/// Writes the graph as a text edge list. Throws std::runtime_error on I/O
/// failure.
void write_edge_list(const Graph& g, const std::string& path);

/// Reads a text edge list written by write_edge_list (or hand-authored).
Graph read_edge_list(const std::string& path);

/// Binary variants.
void write_binary(const Graph& g, const std::string& path);
Graph read_binary(const std::string& path);

}  // namespace relax::graph
