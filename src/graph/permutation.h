// Priority permutations over tasks.
//
// The framework (paper §2.2) assigns each task a label l(u) in 0..n-1 via a
// permutation pi chosen uniformly at random; smaller label = higher priority.
// We keep both directions:
//
//   labels[v]   = position of task v in pi   (the task's priority)
//   order[i]    = task at position i         (pi itself)
//
// Theorems 1 and 2 require pi uniform; the generator is deterministic in the
// seed so experiments are replayable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace relax::graph {

struct Priorities {
  std::vector<std::uint32_t> labels;  // labels[task] = priority (0 = first)
  std::vector<std::uint32_t> order;   // order[priority] = task

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(labels.size());
  }
};

/// Uniformly random priorities over n tasks.
inline Priorities random_priorities(std::uint32_t n, std::uint64_t seed) {
  Priorities p;
  util::Rng rng(seed);
  p.order = util::random_permutation(n, rng);
  p.labels.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) p.labels[p.order[i]] = i;
  return p;
}

/// Identity priorities (task id == priority); used by tests.
inline Priorities identity_priorities(std::uint32_t n) {
  Priorities p;
  p.labels.resize(n);
  p.order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    p.labels[i] = i;
    p.order[i] = i;
  }
  return p;
}

/// Builds Priorities from an explicit order (order[i] = task at position i).
inline Priorities priorities_from_order(std::span<const std::uint32_t> order) {
  Priorities p;
  p.order.assign(order.begin(), order.end());
  p.labels.resize(order.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) p.labels[order[i]] = i;
  return p;
}

}  // namespace relax::graph
