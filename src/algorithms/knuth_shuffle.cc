#include "algorithms/knuth_shuffle.h"

#include <numeric>

#include "util/rng.h"

namespace relax::algorithms {

std::vector<std::uint32_t> shuffle_targets(std::uint32_t n,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> t(n);
  for (std::uint32_t i = 0; i < n; ++i)
    t[i] = static_cast<std::uint32_t>(util::uniform_in(rng, 0, i));
  return t;
}

std::vector<std::uint32_t> sequential_knuth_shuffle(
    std::span<const std::uint32_t> targets) {
  std::vector<std::uint32_t> a(targets.size());
  std::iota(a.begin(), a.end(), 0u);
  for (std::uint32_t i = 0; i < targets.size(); ++i)
    std::swap(a[i], a[targets[i]]);
  return a;
}

std::vector<std::uint32_t> sequential_knuth_shuffle(
    std::span<const std::uint32_t> targets, const graph::Priorities& pri) {
  std::vector<std::uint32_t> a(targets.size());
  std::iota(a.begin(), a.end(), 0u);
  for (std::uint32_t label = 0; label < targets.size(); ++label) {
    const std::uint32_t i = pri.order[label];
    std::swap(a[i], a[targets[i]]);
  }
  return a;
}

PositionIndex::PositionIndex(std::span<const std::uint32_t> targets,
                             const graph::Priorities& pri) {
  const auto n = static_cast<std::uint32_t>(targets.size());
  offsets_.assign(n + 1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    ++offsets_[i + 1];
    if (targets[i] != i) ++offsets_[targets[i] + 1];
  }
  for (std::uint32_t p = 1; p <= n; ++p) offsets_[p] += offsets_[p - 1];
  tasks_.resize(offsets_[n]);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  // Inserting in ascending label order keeps each position's list sorted by
  // label, which is the order conflicts must resolve in (framework §2.2).
  for (std::uint32_t label = 0; label < n; ++label) {
    const std::uint32_t i = pri.order[label];
    tasks_[cursor[i]++] = i;
    if (targets[i] != i) tasks_[cursor[targets[i]]++] = i;
  }
}

KnuthShuffleProblem::KnuthShuffleProblem(
    std::span<const std::uint32_t> targets, const PositionIndex& index)
    : targets_(targets),
      index_(&index),
      array_(targets.size()),
      processed_(targets.size(), 0),
      head_(index.num_positions(), 0) {
  std::iota(array_.begin(), array_.end(), 0u);
}

bool KnuthShuffleProblem::is_min_unprocessed(core::Task i,
                                             std::uint32_t pos) {
  const auto tasks = index_->tasks_at(pos);
  std::uint32_t h = head_[pos];
  while (h < tasks.size() && processed_[tasks[h]]) ++h;
  head_[pos] = h;
  // i itself is unprocessed and in the list, so h indexes a task <= i.
  return h < tasks.size() && tasks[h] == i;
}

core::Outcome KnuthShuffleProblem::try_process(core::Task i) {
  if (!is_min_unprocessed(i, i)) return core::Outcome::kNotReady;
  if (targets_[i] != i && !is_min_unprocessed(i, targets_[i]))
    return core::Outcome::kNotReady;
  std::swap(array_[i], array_[targets_[i]]);
  processed_[i] = 1;
  return core::Outcome::kProcessed;
}

AtomicKnuthShuffleProblem::AtomicKnuthShuffleProblem(
    std::span<const std::uint32_t> targets, const PositionIndex& index)
    : targets_(targets),
      index_(&index),
      array_(targets.size()),
      processed_(targets.size()),
      head_(index.num_positions()) {
  std::iota(array_.begin(), array_.end(), 0u);
  for (auto& p : processed_) p.store(0, std::memory_order_relaxed);
  for (auto& h : head_) h.store(0, std::memory_order_relaxed);
}

bool AtomicKnuthShuffleProblem::is_min_unprocessed(core::Task i,
                                                   std::uint32_t pos) {
  const auto tasks = index_->tasks_at(pos);
  std::uint32_t h = head_[pos].load(std::memory_order_relaxed);
  while (h < tasks.size() &&
         processed_[tasks[h]].load(std::memory_order_acquire)) {
    ++h;
  }
  // Monotonic cursor advance: harmless if several threads race, the cursor
  // only skips tasks that are already processed.
  std::uint32_t cur = head_[pos].load(std::memory_order_relaxed);
  while (cur < h && !head_[pos].compare_exchange_weak(
                        cur, h, std::memory_order_relaxed)) {
  }
  return h < tasks.size() && tasks[h] == i;
}

core::Outcome AtomicKnuthShuffleProblem::try_process(core::Task i) {
  if (!is_min_unprocessed(i, i)) return core::Outcome::kNotReady;
  if (targets_[i] != i && !is_min_unprocessed(i, targets_[i]))
    return core::Outcome::kNotReady;
  // Readiness in both position lists gives this thread exclusive ownership
  // of array_[i] and array_[t[i]] (every other task touching them is either
  // processed, or blocked behind i). The acquire loads above order the
  // previous owners' swaps before ours.
  std::swap(array_[i], array_[targets_[i]]);
  processed_[i].store(1, std::memory_order_release);
  return core::Outcome::kProcessed;
}

std::vector<std::uint32_t> AtomicKnuthShuffleProblem::array() const {
  return array_;
}

}  // namespace relax::algorithms
