// Greedy Maximal Independent Set (paper §2.4, Algorithm 4).
//
// The greedy MIS under permutation pi ("lexicographically first MIS",
// MIS_pi) adds vertex v iff no neighbor with a smaller label was added
// before it. Every execution path in this library — sequential exact,
// sequential relaxed (any scheduler, any k), parallel relaxed, parallel
// exact — produces exactly MIS_pi; that determinism is the paper's central
// framework property and is enforced by tests.
//
// Pieces:
//   sequential_greedy_mis      optimized O(n + m) baseline (the paper's
//                              "optimized sequential code" in Figure 2)
//   MisProblem                 Algorithm 4 adapter for the sequential
//                              framework (dead-vertex retirement)
//   AtomicMisProblem           linearizable adapter for the parallel
//                              executors (LIVE -> IN_MIS / DEAD state
//                              machine; see DESIGN.md)
//   verify_mis                 independence + maximality checker
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.h"
#include "graph/graph.h"
#include "graph/permutation.h"

namespace relax::algorithms {

/// Reference O(n + m) greedy MIS: processes vertices in label order with
/// dead-vertex propagation (each MIS member kills its neighbors once, so
/// dead vertices are skipped in O(1)). Returns in_mis flags by vertex.
std::vector<std::uint8_t> sequential_greedy_mis(const graph::Graph& g,
                                                const graph::Priorities& pri);

/// The paper's §1 formulation, without dead propagation: every vertex
/// scans its full adjacency for an already-added higher-priority neighbor
/// (Theta(m) total edge visits). Same output as sequential_greedy_mis;
/// kept as the second baseline because the Figure 2 speedups depend
/// heavily on which sequential variant one measures against.
std::vector<std::uint8_t> sequential_greedy_mis_scan(
    const graph::Graph& g, const graph::Priorities& pri);

/// True iff in_mis is an independent set of g and maximal.
bool verify_mis(const graph::Graph& g, std::span<const std::uint8_t> in_mis);

/// Sequential Algorithm 4 adapter.
class MisProblem {
 public:
  MisProblem(const graph::Graph& g, const graph::Priorities& pri);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return g_->num_vertices();
  }

  core::Outcome try_process(core::Task v);

  /// in_mis flags after the run completes.
  [[nodiscard]] std::vector<std::uint8_t> result() const;

  /// Total neighbor visits across all try_process calls — the paper's §5
  /// future-work cost metric ("the number of edge accesses"), measured so
  /// benches can compare it with the vertex-query metric the theorems use.
  [[nodiscard]] std::uint64_t edge_accesses() const noexcept {
    return edge_accesses_;
  }

 private:
  enum class State : std::uint8_t { kLive, kInMis, kDead };

  std::uint64_t edge_accesses_ = 0;

  const graph::Graph* g_;
  const graph::Priorities* pri_;
  std::vector<State> state_;
};

/// Thread-safe Algorithm 4 adapter for core::run_parallel_{relaxed,exact}.
///
/// State machine per vertex (8-bit atomic):
///   LIVE -> IN_MIS   by the thread that popped v with all smaller-labelled
///                    neighbors decided (it then CASes LIVE neighbors DEAD);
///   LIVE -> DEAD     by exactly one CAS winner — either a neighbor that
///                    just entered the MIS, or v's own popper observing an
///                    IN_MIS smaller-labelled neighbor.
/// A vertex with a LIVE smaller-labelled neighbor is kNotReady. Because a
/// vertex is only decided when all its smaller-labelled neighbors are
/// decided, the fixed point equals the sequential MIS_pi for any schedule.
class AtomicMisProblem {
 public:
  AtomicMisProblem(const graph::Graph& g, const graph::Priorities& pri);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return g_->num_vertices();
  }

  core::Outcome try_process(core::Task v);

  [[nodiscard]] std::vector<std::uint8_t> result() const;

 private:
  static constexpr std::uint8_t kLive = 0;
  static constexpr std::uint8_t kInMis = 1;
  static constexpr std::uint8_t kDead = 2;

  const graph::Graph* g_;
  const graph::Priorities* pri_;
  std::vector<std::atomic<std::uint8_t>> state_;
};

}  // namespace relax::algorithms
