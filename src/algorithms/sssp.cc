#include "algorithms/sssp.h"

#include <algorithm>
#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "sched/batch_controller.h"
#include "sched/concurrent_multiqueue.h"
#include "sched/dary_heap.h"
#include "util/rng.h"
#include "util/spinlock.h"
#include "util/thread_pin.h"
#include "util/timer.h"

namespace relax::algorithms {

std::vector<std::uint32_t> synthetic_edge_weights(const graph::Graph& g,
                                                  std::uint64_t seed,
                                                  std::uint32_t max_w) {
  std::vector<std::uint32_t> weights(g.num_arcs());
  for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto offset = g.arc_offset(u);
    const auto nb = g.neighbors(u);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      const graph::Vertex v = nb[j];
      const std::uint64_t a = std::min(u, v), b = std::max(u, v);
      // Symmetric per-edge hash -> both arc directions agree.
      util::SplitMix64 h(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                         (b * 0xc2b2ae3d27d4eb4fULL));
      weights[offset + j] = static_cast<std::uint32_t>(h() % max_w) + 1;
    }
  }
  return weights;
}

std::vector<std::uint32_t> dijkstra(const graph::Graph& g,
                                    const std::vector<std::uint32_t>& weights,
                                    graph::Vertex source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  sched::DaryHeap<std::uint64_t> heap;  // (dist << 32) | vertex
  dist[source] = 0;
  heap.push(static_cast<std::uint64_t>(source));
  while (!heap.empty()) {
    const std::uint64_t key = heap.pop();
    const auto d = static_cast<std::uint32_t>(key >> 32);
    const auto v = static_cast<graph::Vertex>(key & 0xffffffffu);
    if (d > dist[v]) continue;  // stale entry (lazy deletion)
    const auto offset = g.arc_offset(v);
    const auto nb = g.neighbors(v);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      const graph::Vertex u = nb[j];
      const std::uint32_t nd = d + weights[offset + j];
      if (nd < dist[u]) {
        dist[u] = nd;
        heap.push((static_cast<std::uint64_t>(nd) << 32) | u);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> parallel_relaxed_sssp(
    const graph::Graph& g, const std::vector<std::uint32_t>& weights,
    graph::Vertex source, const SsspOptions& options, SsspStats* stats_out) {
  const unsigned threads = options.num_threads == 0
                               ? util::hardware_threads()
                               : options.num_threads;
  // Clamp defensively (mirroring engine::JobConfig::kMaxPopBatch): a
  // negative CLI value cast to unsigned would otherwise make each worker
  // reserve a multi-GiB pop buffer. Far above any useful batch.
  const std::uint32_t batch = std::clamp(options.pop_batch, 1u, 1u << 16);
  std::vector<std::atomic<std::uint32_t>> dist(g.num_vertices());
  for (auto& d : dist) d.store(kUnreachable, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  using Queue = sched::BasicConcurrentMultiQueue<std::uint64_t>;
  Queue queue(options.queue_factor * threads, options.seed);
  // Topology placement: socket-fill pin order plus a per-domain stripe map
  // over the sub-queues (quiescent here — no worker exists yet). Flat
  // placement (off / single domain) leaves both at the historical layout.
  const util::WorkerPlacement placement =
      util::plan_workers(options.topology, threads);
  if (placement.num_domains > 1) {
    queue.set_stripe_map(
        sched::StripeMap(queue.num_queues(), placement.num_domains));
  }
  queue.insert(static_cast<std::uint64_t>(source));

  // Termination: pending = queued-but-unprocessed entries. Incremented
  // before each insert (including buffered ones: the increment happens at
  // relaxation time, before the key ever sits in a local buffer, so the
  // count can never drop to zero while keys await their flush), and
  // decremented only after a popped batch is fully handled AND its
  // re-insertions flushed; zero means no thread can generate more work.
  std::atomic<std::int64_t> pending{1};
  std::vector<SsspStats> per_thread(threads);
  util::Timer timer;
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        util::pin_thread_to_cpu(placement.pin_slot[t]);
        // This thread's scheduler session: one handle plus one adaptive
        // batch controller for the whole execution — the same
        // occupancy-aware sizing the engine's jobs run (engine/job.h).
        // The handle carries the thread's topology domain so claims and
        // bulk re-inserts prefer same-domain stripes.
        auto handle = queue.get_handle();
        handle.set_domain(placement.domain[t]);
        sched::BatchController controller(
            batch, options.pop_batch_auto, /*high_watermark=*/0,
            sched::BatchController::kDefaultConsultPeriod, threads);
        // Stack-local; written back once (no false sharing between workers).
        SsspStats stats;
        std::vector<std::uint64_t> popped;
        std::vector<std::uint64_t> reinsert;
        popped.reserve(batch);
        while (pending.load(std::memory_order_acquire) > 0) {
          popped.clear();
          const std::uint32_t want =
              controller.next_claim(sched::QueueOccupancy<Queue>{&queue});
          if (want <= 1) {
            if (const auto key = handle.approx_get_min())
              popped.push_back(*key);
          } else {
            handle.approx_get_min_batch(want, popped);
          }
          controller.feedback(want,
                              static_cast<std::uint32_t>(popped.size()));
          if (popped.empty()) {
            util::cpu_relax();
            continue;
          }
          ++stats.batches;
          stats.max_claim = std::max<std::uint64_t>(stats.max_claim, want);
          stats.min_claim = stats.min_claim == 0
                                ? want
                                : std::min<std::uint64_t>(stats.min_claim,
                                                          want);
          reinsert.clear();
          for (const std::uint64_t key : popped) {
            ++stats.pops;
            const auto d = static_cast<std::uint32_t>(key >> 32);
            const auto v = static_cast<graph::Vertex>(key & 0xffffffffu);
            if (d > dist[v].load(std::memory_order_acquire)) {
              ++stats.stale_pops;
              continue;
            }
            const auto offset = g.arc_offset(v);
            const auto nb = g.neighbors(v);
            for (std::size_t j = 0; j < nb.size(); ++j) {
              const graph::Vertex u = nb[j];
              const std::uint32_t nd = d + weights[offset + j];
              std::uint32_t cur = dist[u].load(std::memory_order_relaxed);
              while (nd < cur) {
                if (dist[u].compare_exchange_weak(
                        cur, nd, std::memory_order_acq_rel)) {
                  ++stats.relaxations;
                  pending.fetch_add(1, std::memory_order_acq_rel);
                  reinsert.push_back((static_cast<std::uint64_t>(nd) << 32) |
                                     u);
                  break;
                }
              }
            }
          }
          // Batched re-insert: the whole run of successful relaxations goes
          // back in one bulk_insert (one lock + one merge per chunk)
          // instead of one lock + heap sift per key. Must happen before the
          // pending decrement for the popped keys — see the invariant note
          // above.
          if (reinsert.size() == 1) {
            handle.insert(reinsert.front());
          } else if (!reinsert.empty()) {
            handle.bulk_insert(std::span<const std::uint64_t>(reinsert));
          }
          pending.fetch_sub(static_cast<std::int64_t>(popped.size()),
                            std::memory_order_acq_rel);
        }
        per_thread[t] = stats;
      });
    }
  }
  if (stats_out != nullptr) {
    for (const auto& s : per_thread) {
      stats_out->pops += s.pops;
      stats_out->stale_pops += s.stale_pops;
      stats_out->relaxations += s.relaxations;
      stats_out->batches += s.batches;
      stats_out->max_claim = std::max(stats_out->max_claim, s.max_claim);
      if (s.min_claim != 0) {
        stats_out->min_claim = stats_out->min_claim == 0
                                   ? s.min_claim
                                   : std::min(stats_out->min_claim,
                                              s.min_claim);
      }
    }
    stats_out->seconds = timer.seconds();
  }
  std::vector<std::uint32_t> out(g.num_vertices());
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
    out[v] = dist[v].load(std::memory_order_relaxed);
  return out;
}

}  // namespace relax::algorithms
