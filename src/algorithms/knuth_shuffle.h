// Knuth (Fisher-Yates) Shuffle as an iterative task DAG (paper §1, §3.1;
// analyzed in Shun et al. [25]).
//
// Task i performs swap(a[i], a[t[i]]) where the targets t[i] in [0, i] are
// fixed up-front from a seed. Task i touches positions {i, t[i]}; two tasks
// conflict iff they touch a common position. Per the framework contract
// (paper §2.2) conflicts resolve in *label* order: the dependency DAG
// orients every conflict edge from the smaller-labelled task to the larger,
// so the minimum-labelled unprocessed task is always dependency-free and
// exact execution (Algorithm 1) never blocks. The per-position dependency
// chains have only O(n) edges in total, so by Theorem 1 the relaxation cost
// is O(poly(k)) — the shuffle is one of the paper's flagship "sparse
// dependency" examples.
//
// The output is the array obtained by applying the swaps in ascending label
// order; it is a deterministic function of (targets, pi), identical for
// every scheduler and every relaxation factor k. Driving the framework with
// identity priorities recovers the textbook sequential Fisher-Yates pass
// (i = 0..n-1), and a uniformly random pi applied to uniform targets still
// yields a uniformly random permutation (each swap sequence is a bijection
// of the starting array).
//
// Readiness: task i is ready iff it is the smallest-labelled unprocessed
// task in the (label-sorted) task lists of both of its positions. We keep
// per-position head cursors that advance monotonically past processed
// tasks.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.h"
#include "graph/permutation.h"

namespace relax::algorithms {

/// Fixed swap targets: t[i] uniform in [0, i]. Deterministic in seed.
std::vector<std::uint32_t> shuffle_targets(std::uint32_t n,
                                           std::uint64_t seed);

/// Reference shuffle applying swaps in ascending task-id order (the
/// textbook Fisher-Yates pass). Returns the shuffled array (initialized to
/// the identity). Equals the framework output under identity priorities.
std::vector<std::uint32_t> sequential_knuth_shuffle(
    std::span<const std::uint32_t> targets);

/// Reference shuffle applying swaps in ascending *label* order — the
/// framework's sequential baseline (Algorithm 1) for arbitrary pi.
std::vector<std::uint32_t> sequential_knuth_shuffle(
    std::span<const std::uint32_t> targets, const graph::Priorities& pri);

/// Shared position->tasks index used by both adapters. Task lists are
/// sorted by label so readiness checks resolve conflicts in priority order.
class PositionIndex {
 public:
  PositionIndex(std::span<const std::uint32_t> targets,
                const graph::Priorities& pri);

  /// Ids of tasks touching position p, in ascending label order.
  [[nodiscard]] std::span<const std::uint32_t> tasks_at(
      std::uint32_t p) const noexcept {
    return {tasks_.data() + offsets_[p], tasks_.data() + offsets_[p + 1]};
  }
  [[nodiscard]] std::uint32_t num_positions() const noexcept {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> tasks_;
};

/// Sequential Algorithm 2 adapter. The output equals
/// sequential_knuth_shuffle(targets, pri) for every scheduler and k.
class KnuthShuffleProblem {
 public:
  KnuthShuffleProblem(std::span<const std::uint32_t> targets,
                      const PositionIndex& index);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return static_cast<std::uint32_t>(targets_.size());
  }

  core::Outcome try_process(core::Task i);

  [[nodiscard]] const std::vector<std::uint32_t>& array() const noexcept {
    return array_;
  }

 private:
  [[nodiscard]] bool is_min_unprocessed(core::Task i, std::uint32_t pos);

  std::span<const std::uint32_t> targets_;
  const PositionIndex* index_;
  std::vector<std::uint32_t> array_;
  std::vector<std::uint8_t> processed_;
  std::vector<std::uint32_t> head_;  // per-position cursor into tasks_at
};

/// Thread-safe adapter. Readiness gives the processing thread exclusive
/// ownership of both touched positions, so the swap itself needs no
/// synchronization beyond the release fence of the processed flag.
class AtomicKnuthShuffleProblem {
 public:
  AtomicKnuthShuffleProblem(std::span<const std::uint32_t> targets,
                            const PositionIndex& index);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return static_cast<std::uint32_t>(targets_.size());
  }

  core::Outcome try_process(core::Task i);

  [[nodiscard]] std::vector<std::uint32_t> array() const;

 private:
  [[nodiscard]] bool is_min_unprocessed(core::Task i, std::uint32_t pos);

  std::span<const std::uint32_t> targets_;
  const PositionIndex* index_;
  std::vector<std::uint32_t> array_;
  std::vector<std::atomic<std::uint8_t>> processed_;
  std::vector<std::atomic<std::uint32_t>> head_;
};

}  // namespace relax::algorithms
