#include "algorithms/list_contraction.h"

#include <algorithm>
#include <array>

namespace relax::algorithms {
namespace {

/// Builds prev/next arrays from a list arrangement.
template <typename Store>
void build_links(std::span<const std::uint32_t> arrangement, Store& prev,
                 Store& next) {
  const std::size_t n = arrangement.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = arrangement[i];
    const std::uint32_t p = i > 0 ? arrangement[i - 1] : kNilNode;
    const std::uint32_t s = i + 1 < n ? arrangement[i + 1] : kNilNode;
    if constexpr (requires { prev[v].store(p); }) {
      prev[v].store(p, std::memory_order_relaxed);
      next[v].store(s, std::memory_order_relaxed);
    } else {
      prev[v] = p;
      next[v] = s;
    }
  }
}

}  // namespace

ContractionTrace sequential_list_contraction(
    std::span<const std::uint32_t> arrangement,
    const graph::Priorities& pri) {
  const std::size_t n = arrangement.size();
  std::vector<std::uint32_t> prev(n), next(n);
  build_links(arrangement, prev, next);
  ContractionTrace trace(n, {kNilNode, kNilNode});
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = pri.order[i];
    const std::uint32_t p = prev[v];
    const std::uint32_t s = next[v];
    trace[v] = {p, s};
    if (p != kNilNode) next[p] = s;
    if (s != kNilNode) prev[s] = p;
  }
  return trace;
}

ListContractionProblem::ListContractionProblem(
    std::span<const std::uint32_t> arrangement, const graph::Priorities& pri)
    : pri_(&pri),
      prev_(arrangement.size()),
      next_(arrangement.size()),
      trace_(arrangement.size(), {kNilNode, kNilNode}) {
  build_links(arrangement, prev_, next_);
}

core::Outcome ListContractionProblem::try_process(core::Task v) {
  const std::uint32_t label_v = pri_->labels[v];
  const std::uint32_t p = prev_[v];
  const std::uint32_t s = next_[v];
  // Current neighbors are uncontracted by construction; a smaller label
  // means an unprocessed predecessor.
  if (p != kNilNode && pri_->labels[p] < label_v)
    return core::Outcome::kNotReady;
  if (s != kNilNode && pri_->labels[s] < label_v)
    return core::Outcome::kNotReady;
  trace_[v] = {p, s};
  if (p != kNilNode) next_[p] = s;
  if (s != kNilNode) prev_[s] = p;
  return core::Outcome::kProcessed;
}

AtomicListContractionProblem::AtomicListContractionProblem(
    std::span<const std::uint32_t> arrangement, const graph::Priorities& pri)
    : pri_(&pri),
      prev_(arrangement.size()),
      next_(arrangement.size()),
      locks_(arrangement.size()),
      trace_(arrangement.size(), {kNilNode, kNilNode}) {
  build_links(arrangement, prev_, next_);
}

core::Outcome AtomicListContractionProblem::try_process(core::Task v) {
  const std::uint32_t label_v = pri_->labels[v];
  const std::uint32_t p = prev_[v].load(std::memory_order_acquire);
  const std::uint32_t s = next_[v].load(std::memory_order_acquire);
  if (p != kNilNode && pri_->labels[p] < label_v)
    return core::Outcome::kNotReady;
  if (s != kNilNode && pri_->labels[s] < label_v)
    return core::Outcome::kNotReady;

  // Lock {p, v, s} in ascending node-id order (global order, no deadlock).
  std::array<std::uint32_t, 3> ids{p, v, s};
  std::sort(ids.begin(), ids.end());
  std::uint32_t locked[3];
  int num_locked = 0;
  std::uint32_t last = kNilNode;
  for (const std::uint32_t id : ids) {
    if (id == kNilNode || id == last) continue;
    locks_[id].lock();
    locked[num_locked++] = id;
    last = id;
  }
  auto unlock_all = [&] {
    for (int i = num_locked - 1; i >= 0; --i) locks_[locked[i]].unlock();
  };

  // Re-validate under the locks: the neighborhood must be unchanged.
  if (prev_[v].load(std::memory_order_relaxed) != p ||
      next_[v].load(std::memory_order_relaxed) != s) {
    unlock_all();
    return core::Outcome::kNotReady;
  }
  trace_[v] = {p, s};
  if (p != kNilNode) next_[p].store(s, std::memory_order_release);
  if (s != kNilNode) prev_[s].store(p, std::memory_order_release);
  // Detach v's own pointers so a stale re-pop cannot misread them (v is
  // never popped again — kProcessed retires it — but keep the state tidy).
  prev_[v].store(kNilNode, std::memory_order_release);
  next_[v].store(kNilNode, std::memory_order_release);
  unlock_all();
  return core::Outcome::kProcessed;
}

}  // namespace relax::algorithms
