#include "algorithms/coloring.h"

#include <algorithm>

namespace relax::algorithms {
namespace {

/// Smallest color not present among the marked scratch entries [0, limit).
/// Resets the marks it used.
std::uint32_t smallest_free_color(std::vector<std::uint8_t>& scratch,
                                  std::span<const std::uint32_t> used) {
  for (const std::uint32_t c : used)
    if (c < scratch.size()) scratch[c] = 1;
  std::uint32_t color = 0;
  while (color < scratch.size() && scratch[color]) ++color;
  for (const std::uint32_t c : used)
    if (c < scratch.size()) scratch[c] = 0;
  return color;
}

}  // namespace

std::vector<std::uint32_t> sequential_greedy_coloring(
    const graph::Graph& g, const graph::Priorities& pri) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint32_t> colors(n, ColoringProblem::kUncolored);
  std::vector<std::uint8_t> scratch(g.max_degree() + 2, 0);
  std::vector<std::uint32_t> used;
  for (std::uint32_t i = 0; i < n; ++i) {
    const graph::Vertex v = pri.order[i];
    used.clear();
    for (const graph::Vertex u : g.neighbors(v))
      if (colors[u] != ColoringProblem::kUncolored) used.push_back(colors[u]);
    colors[v] = smallest_free_color(scratch, used);
  }
  return colors;
}

bool verify_coloring(const graph::Graph& g,
                     std::span<const std::uint32_t> colors) {
  if (colors.size() != g.num_vertices()) return false;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] == ColoringProblem::kUncolored) return false;
    for (const graph::Vertex u : g.neighbors(v))
      if (colors[u] == colors[v]) return false;
  }
  return true;
}

ColoringProblem::ColoringProblem(const graph::Graph& g,
                                 const graph::Priorities& pri)
    : g_(&g),
      pri_(&pri),
      colors_(g.num_vertices(), kUncolored),
      scratch_(g.max_degree() + 2, 0) {}

core::Outcome ColoringProblem::try_process(core::Task v) {
  const std::uint32_t label_v = pri_->labels[v];
  for (const graph::Vertex u : g_->neighbors(v)) {
    ++edge_accesses_;
    if (pri_->labels[u] < label_v && colors_[u] == kUncolored)
      return core::Outcome::kNotReady;
  }
  std::vector<std::uint32_t> used;
  for (const graph::Vertex u : g_->neighbors(v)) {
    ++edge_accesses_;
    if (pri_->labels[u] < label_v) used.push_back(colors_[u]);
  }
  colors_[v] = smallest_free_color(scratch_, used);
  return core::Outcome::kProcessed;
}

AtomicColoringProblem::AtomicColoringProblem(const graph::Graph& g,
                                             const graph::Priorities& pri)
    : g_(&g),
      pri_(&pri),
      colors_(g.num_vertices(), ColoringProblem::kUncolored),
      done_(g.num_vertices()) {
  for (auto& d : done_) d.store(0, std::memory_order_relaxed);
}

core::Outcome AtomicColoringProblem::try_process(core::Task v) {
  const std::uint32_t label_v = pri_->labels[v];
  for (const graph::Vertex u : g_->neighbors(v)) {
    if (pri_->labels[u] < label_v &&
        done_[u].load(std::memory_order_acquire) == 0)
      return core::Outcome::kNotReady;
  }
  // All predecessors colored; their colors are visible (release/acquire).
  std::vector<std::uint8_t> scratch(g_->degree(v) + 2, 0);
  std::vector<std::uint32_t> used;
  for (const graph::Vertex u : g_->neighbors(v))
    if (pri_->labels[u] < label_v) used.push_back(colors_[u]);
  for (const std::uint32_t c : used)
    if (c < scratch.size()) scratch[c] = 1;
  std::uint32_t color = 0;
  while (color < scratch.size() && scratch[color]) ++color;
  colors_[v] = color;
  done_[v].store(1, std::memory_order_release);
  return core::Outcome::kProcessed;
}

std::vector<std::uint32_t> AtomicColoringProblem::colors() const {
  return colors_;
}

}  // namespace relax::algorithms
