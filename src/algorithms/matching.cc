#include "algorithms/matching.h"

namespace relax::algorithms {

EdgeIncidence::EdgeIncidence(const graph::Graph& g)
    : edges_(g.edge_list()), offsets_(g.num_vertices() + 1, 0) {
  for (const auto& [a, b] : edges_) {
    ++offsets_[a + 1];
    ++offsets_[b + 1];
  }
  for (std::size_t v = 1; v < offsets_.size(); ++v)
    offsets_[v] += offsets_[v - 1];
  ids_.resize(offsets_.back());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    ids_[cursor[edges_[e].first]++] = e;
    ids_[cursor[edges_[e].second]++] = e;
  }
}

std::vector<std::uint8_t> sequential_greedy_matching(
    const EdgeIncidence& inc, const graph::Priorities& pri) {
  const std::uint32_t m = inc.num_edges();
  std::vector<std::uint8_t> matched_edge(m, 0);
  std::vector<std::uint8_t> matched_vertex;
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint32_t e = pri.order[i];
    const auto [a, b] = inc.edges()[e];
    if (matched_vertex.size() <= std::max(a, b))
      matched_vertex.resize(std::max(a, b) + 1, 0);
    if (matched_vertex[a] || matched_vertex[b]) continue;
    matched_edge[e] = 1;
    matched_vertex[a] = matched_vertex[b] = 1;
  }
  return matched_edge;
}

bool verify_matching(const EdgeIncidence& inc,
                     std::span<const std::uint8_t> matched) {
  if (matched.size() != inc.num_edges()) return false;
  // Validity: no vertex covered twice.
  std::vector<std::uint8_t> covered;
  for (std::uint32_t e = 0; e < inc.num_edges(); ++e) {
    if (!matched[e]) continue;
    const auto [a, b] = inc.edges()[e];
    if (covered.size() <= std::max(a, b))
      covered.resize(std::max(a, b) + 1, 0);
    if (covered[a] || covered[b]) return false;
    covered[a] = covered[b] = 1;
  }
  // Maximality: every unmatched edge has a covered endpoint.
  for (std::uint32_t e = 0; e < inc.num_edges(); ++e) {
    if (matched[e]) continue;
    const auto [a, b] = inc.edges()[e];
    const bool a_cov = a < covered.size() && covered[a];
    const bool b_cov = b < covered.size() && covered[b];
    if (!a_cov && !b_cov) return false;
  }
  return true;
}

MatchingProblem::MatchingProblem(const EdgeIncidence& inc,
                                 const graph::Priorities& pri)
    : inc_(&inc), pri_(&pri), state_(inc.num_edges(), State::kLive) {}

bool MatchingProblem::has_live_predecessor(core::Task e,
                                           graph::Vertex endpoint) const {
  const std::uint32_t label_e = pri_->labels[e];
  for (const std::uint32_t f : inc_->incident(endpoint)) {
    if (f != e && pri_->labels[f] < label_e && state_[f] == State::kLive)
      return true;
  }
  return false;
}

core::Outcome MatchingProblem::try_process(core::Task e) {
  if (state_[e] == State::kDead) return core::Outcome::kRetired;
  const auto [a, b] = inc_->edges()[e];
  // A smaller-labelled matched incident edge kills e (dead-edge shortcut,
  // the matching analogue of Algorithm 4's dead marking). The kill sweep of
  // the matched edge already flipped e to kDead, handled above; a LIVE
  // smaller incident edge blocks e.
  if (has_live_predecessor(e, a) || has_live_predecessor(e, b))
    return core::Outcome::kNotReady;
  state_[e] = State::kMatched;
  for (const graph::Vertex endpoint : {a, b}) {
    for (const std::uint32_t f : inc_->incident(endpoint)) {
      if (state_[f] == State::kLive) state_[f] = State::kDead;
    }
  }
  return core::Outcome::kProcessed;
}

std::vector<std::uint8_t> MatchingProblem::result() const {
  std::vector<std::uint8_t> matched(state_.size(), 0);
  for (std::size_t e = 0; e < state_.size(); ++e)
    matched[e] = state_[e] == State::kMatched ? 1 : 0;
  return matched;
}

AtomicMatchingProblem::AtomicMatchingProblem(const EdgeIncidence& inc,
                                             const graph::Priorities& pri)
    : inc_(&inc), pri_(&pri), state_(inc.num_edges()) {
  for (auto& s : state_) s.store(kLive, std::memory_order_relaxed);
}

core::Outcome AtomicMatchingProblem::scan_endpoint(core::Task e,
                                                   graph::Vertex endpoint,
                                                   std::uint32_t label_e,
                                                   bool& blocked) {
  for (const std::uint32_t f : inc_->incident(endpoint)) {
    if (f == e || pri_->labels[f] >= label_e) continue;
    const std::uint8_t sf = state_[f].load(std::memory_order_acquire);
    if (sf == kMatched) {
      // Smaller incident edge is matched: e dies (one CAS winner retires).
      std::uint8_t expected = kLive;
      state_[e].compare_exchange_strong(expected, kDead,
                                        std::memory_order_acq_rel);
      return core::Outcome::kRetired;
    }
    if (sf == kLive) blocked = true;
  }
  return core::Outcome::kProcessed;  // placeholder meaning "no kill found"
}

core::Outcome AtomicMatchingProblem::try_process(core::Task e) {
  if (state_[e].load(std::memory_order_acquire) == kDead)
    return core::Outcome::kRetired;
  const std::uint32_t label_e = pri_->labels[e];
  const auto [a, b] = inc_->edges()[e];
  bool blocked = false;
  if (scan_endpoint(e, a, label_e, blocked) == core::Outcome::kRetired)
    return core::Outcome::kRetired;
  if (scan_endpoint(e, b, label_e, blocked) == core::Outcome::kRetired)
    return core::Outcome::kRetired;
  if (blocked) return core::Outcome::kNotReady;
  // Every smaller-labelled incident edge is DEAD: e enters the matching.
  state_[e].store(kMatched, std::memory_order_release);
  for (const graph::Vertex endpoint : {a, b}) {
    for (const std::uint32_t f : inc_->incident(endpoint)) {
      if (f == e) continue;
      std::uint8_t expected = kLive;
      state_[f].compare_exchange_strong(expected, kDead,
                                        std::memory_order_acq_rel);
    }
  }
  return core::Outcome::kProcessed;
}

std::vector<std::uint8_t> AtomicMatchingProblem::result() const {
  std::vector<std::uint8_t> matched(state_.size(), 0);
  for (std::size_t e = 0; e < state_.size(); ++e)
    matched[e] = state_[e].load(std::memory_order_relaxed) == kMatched ? 1 : 0;
  return matched;
}

}  // namespace relax::algorithms
