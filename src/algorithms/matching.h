// Greedy Maximal Matching (paper §2.4).
//
// Greedy matching under an edge permutation pi adds edge e = (a, b) iff
// neither endpoint is matched by a smaller-labelled edge. The paper treats
// matching as MIS on the line graph L(G); we provide both:
//
//   * MatchingProblem / AtomicMatchingProblem operate *implicitly* on
//     L(G) — tasks are edge ids, predecessor queries walk the incident
//     edges of the two endpoints — so L(G) (which can be quadratically
//     large) is never materialized. Dead-edge retirement works exactly as
//     in Algorithm 4: once an endpoint is matched by a smaller edge, the
//     edge retires.
//   * graph::line_graph + MisProblem gives the explicit reduction, used by
//     tests to cross-validate the implicit adapters.
//
// Edge tasks are indexed by the order of graph::Graph::edge_list().
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.h"
#include "graph/graph.h"
#include "graph/permutation.h"

namespace relax::algorithms {

/// Incidence structure: for each vertex, the ids of its incident edges.
/// Shared by the sequential and atomic matching adapters.
class EdgeIncidence {
 public:
  explicit EdgeIncidence(const graph::Graph& g);

  [[nodiscard]] std::span<const std::uint32_t> incident(
      graph::Vertex v) const noexcept {
    return {ids_.data() + offsets_[v], ids_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] const std::vector<graph::Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::uint32_t num_edges() const noexcept {
    return static_cast<std::uint32_t>(edges_.size());
  }

 private:
  std::vector<graph::Edge> edges_;
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> ids_;
};

/// Reference greedy matching in edge-label order. Returns per-edge flags.
std::vector<std::uint8_t> sequential_greedy_matching(
    const EdgeIncidence& inc, const graph::Priorities& pri);

/// True iff `matched` is a valid maximal matching of the edge set.
bool verify_matching(const EdgeIncidence& inc,
                     std::span<const std::uint8_t> matched);

/// Sequential adapter (Algorithm 4 on the implicit line graph).
class MatchingProblem {
 public:
  MatchingProblem(const EdgeIncidence& inc, const graph::Priorities& pri);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return inc_->num_edges();
  }

  core::Outcome try_process(core::Task e);

  [[nodiscard]] std::vector<std::uint8_t> result() const;

 private:
  enum class State : std::uint8_t { kLive, kMatched, kDead };

  [[nodiscard]] bool has_live_predecessor(core::Task e,
                                          graph::Vertex endpoint) const;

  const EdgeIncidence* inc_;
  const graph::Priorities* pri_;
  std::vector<State> state_;
};

/// Thread-safe adapter; same state machine as AtomicMisProblem but on edge
/// tasks with the implicit line-graph adjacency.
class AtomicMatchingProblem {
 public:
  AtomicMatchingProblem(const EdgeIncidence& inc,
                        const graph::Priorities& pri);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return inc_->num_edges();
  }

  core::Outcome try_process(core::Task e);

  [[nodiscard]] std::vector<std::uint8_t> result() const;

 private:
  static constexpr std::uint8_t kLive = 0;
  static constexpr std::uint8_t kMatched = 1;
  static constexpr std::uint8_t kDead = 2;

  core::Outcome scan_endpoint(core::Task e, graph::Vertex endpoint,
                              std::uint32_t label_e, bool& blocked);

  const EdgeIncidence* inc_;
  const graph::Priorities* pri_;
  std::vector<std::atomic<std::uint8_t>> state_;
};

}  // namespace relax::algorithms
