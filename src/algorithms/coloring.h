// Greedy Vertex Coloring (paper §2.3, Algorithm 3).
//
// Process(v) assigns v the smallest color not used by any smaller-labelled
// neighbor. The dependency graph is the input graph with edges oriented by
// the labels, so the generic framework (Algorithm 2) applies directly;
// Theorem 1 bounds the relaxation cost by O(m/n)·poly(k), and the clique
// instance realizes the Θ(nk) tightness example discussed after Theorem 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.h"
#include "graph/graph.h"
#include "graph/permutation.h"

namespace relax::algorithms {

/// Reference greedy coloring in label order. Returns color per vertex.
std::vector<std::uint32_t> sequential_greedy_coloring(
    const graph::Graph& g, const graph::Priorities& pri);

/// True iff colors is a proper coloring of g (no edge monochromatic).
bool verify_coloring(const graph::Graph& g,
                     std::span<const std::uint32_t> colors);

/// Sequential Algorithm 2 adapter.
class ColoringProblem {
 public:
  static constexpr std::uint32_t kUncolored = ~0u;

  ColoringProblem(const graph::Graph& g, const graph::Priorities& pri);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return g_->num_vertices();
  }

  core::Outcome try_process(core::Task v);

  [[nodiscard]] const std::vector<std::uint32_t>& colors() const noexcept {
    return colors_;
  }

  /// Total neighbor visits across all try_process calls (paper §5's
  /// alternative "edge accesses" cost metric; see MisProblem).
  [[nodiscard]] std::uint64_t edge_accesses() const noexcept {
    return edge_accesses_;
  }

 private:
  const graph::Graph* g_;
  const graph::Priorities* pri_;
  std::uint64_t edge_accesses_ = 0;
  std::vector<std::uint32_t> colors_;
  std::vector<std::uint8_t> scratch_;  // color-used marks, reset per call
};

/// Thread-safe adapter: a vertex is ready when every smaller-labelled
/// neighbor is colored. colors_[u] is written before the release store of
/// done_[u], so a reader that observes done_[u] sees the final color.
class AtomicColoringProblem {
 public:
  AtomicColoringProblem(const graph::Graph& g, const graph::Priorities& pri);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return g_->num_vertices();
  }

  core::Outcome try_process(core::Task v);

  [[nodiscard]] std::vector<std::uint32_t> colors() const;

 private:
  const graph::Graph* g_;
  const graph::Priorities* pri_;
  std::vector<std::uint32_t> colors_;
  std::vector<std::atomic<std::uint8_t>> done_;
};

}  // namespace relax::algorithms
