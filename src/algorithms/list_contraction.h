// List Contraction (paper §2.3).
//
// Input: a doubly-linked list over n nodes. Contracting node v swings two
// pointers (prev[v].next = next[v]; next[v].prev = prev[v]), removing v.
// The dependency graph links nodes adjacent in the list; the predecessor
// query checks whether the *current* prev/next of v has a smaller label
// (current neighbors are by construction uncontracted). Contracting only
// local label-minima yields, for every schedule, the same per-node
// contraction trace {(prev, next) at contraction time} as the sequential
// label-order execution — the determinism property tests assert trace
// equality. The dependency structure has m = n - 1 edges, so Theorem 1
// gives O(poly(k)) expected extra iterations.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/problem.h"
#include "graph/permutation.h"
#include "util/spinlock.h"

namespace relax::algorithms {

inline constexpr std::uint32_t kNilNode = ~0u;

/// Per-node contraction record: the (prev, next) pair observed when the
/// node was contracted. kNilNode marks a list end.
using ContractionTrace = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Reference sequential contraction in label order over the list
/// arrangement (arrangement[i] = node at list position i).
ContractionTrace sequential_list_contraction(
    std::span<const std::uint32_t> arrangement, const graph::Priorities& pri);

/// Sequential Algorithm 2 adapter.
class ListContractionProblem {
 public:
  ListContractionProblem(std::span<const std::uint32_t> arrangement,
                         const graph::Priorities& pri);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return static_cast<std::uint32_t>(trace_.size());
  }

  core::Outcome try_process(core::Task v);

  [[nodiscard]] const ContractionTrace& trace() const noexcept {
    return trace_;
  }

 private:
  const graph::Priorities* pri_;
  std::vector<std::uint32_t> prev_;
  std::vector<std::uint32_t> next_;
  ContractionTrace trace_;
};

/// Thread-safe adapter. Contraction takes per-node spinlocks on {prev, v,
/// next} in node-id order (global order => deadlock-free) and re-validates
/// the neighborhood under the locks; any interleaved change aborts to
/// kNotReady and the task is re-inserted.
class AtomicListContractionProblem {
 public:
  AtomicListContractionProblem(std::span<const std::uint32_t> arrangement,
                               const graph::Priorities& pri);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept {
    return static_cast<std::uint32_t>(trace_.size());
  }

  core::Outcome try_process(core::Task v);

  [[nodiscard]] const ContractionTrace& trace() const noexcept {
    return trace_;
  }

 private:
  const graph::Priorities* pri_;
  std::vector<std::atomic<std::uint32_t>> prev_;
  std::vector<std::atomic<std::uint32_t>> next_;
  std::vector<util::Spinlock> locks_;
  ContractionTrace trace_;  // slots written exclusively by the contractor
};

}  // namespace relax::algorithms
