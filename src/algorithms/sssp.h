// Single-Source Shortest Paths via a relaxed scheduler.
//
// Dijkstra's algorithm is the paper's canonical *motivating* example for
// relaxed scheduling (§1): popping vertices out of order never breaks
// correctness because tentative distances converge monotonically to the
// true distances; the price is wasted work on stale pops. SSSP is NOT in
// the paper's deterministic framework class (the priority order must follow
// distances, so pi cannot be a uniformly random permutation — §2.2), which
// is why it lives here as a standalone algorithm and example rather than a
// Problem adapter.
//
// Edge weights are synthesized deterministically from (edge, seed) since
// graph::Graph is unweighted.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/topology.h"

namespace relax::algorithms {

inline constexpr std::uint32_t kUnreachable = ~0u;

/// Per-arc weights aligned with the CSR arc array; symmetric (both
/// directions of an undirected edge carry the same weight in [1, max_w]).
std::vector<std::uint32_t> synthetic_edge_weights(const graph::Graph& g,
                                                  std::uint64_t seed,
                                                  std::uint32_t max_w = 100);

/// Reference Dijkstra (exact binary-heap scheduler). Returns distances.
std::vector<std::uint32_t> dijkstra(const graph::Graph& g,
                                    const std::vector<std::uint32_t>& weights,
                                    graph::Vertex source);

struct SsspStats {
  std::uint64_t pops = 0;
  std::uint64_t stale_pops = 0;  // wasted work due to relaxation/concurrency
  std::uint64_t relaxations = 0;
  std::uint64_t batches = 0;  // scheduler acquisition round trips
  // Smallest / largest claim size *requested* across all acquisition round
  // trips (0 when no batch was ever claimed). A fixed pop_batch reports
  // min == max == pop_batch; adaptive mode (SsspOptions::pop_batch_auto)
  // reports the controller's real range — min 1 (every worker starts
  // there) up to whatever the ramp reached, which is how `relaxsched
  // --pop-batch=auto` proves the claim size actually adapted instead of
  // silently degrading to a fixed cap.
  std::uint64_t min_claim = 0;
  std::uint64_t max_claim = 0;
  double seconds = 0.0;
};

/// Knobs for parallel_relaxed_sssp, mirroring the relevant slice of
/// core::ParallelOptions (SSSP lives outside the framework's Problem layer,
/// so it keeps its own struct instead of dragging the engine headers in).
struct SsspOptions {
  unsigned num_threads = 0;      // 0 = hardware concurrency
  unsigned queue_factor = 4;     // MultiQueue sub-queues per thread
  std::uint64_t seed = 1;        // scheduler + weight randomness
  std::uint32_t pop_batch = 1;   // keys claimed per scheduler touch
  /// Adaptive claim sizing: pop_batch becomes the cap and each worker's
  /// sched::BatchController floats the claim between 1 (near drain) and
  /// the cap (sustained load), consulting the queue's striped size()
  /// occasionally — the same occupancy-aware controller the engine's
  /// framework executors run (engine/job.h).
  bool pop_batch_auto = false;
  /// Topology placement (--numa): off = flat, auto = sysfs sockets (flat
  /// fallback), virtual:K = synthetic domains. Threads pin in socket-fill
  /// order and the MultiQueue is striped per domain, exactly like the
  /// engine executors (util/topology.h, sched/stripe_map.h).
  util::TopologySpec topology;
};

/// Multi-threaded label-correcting SSSP over a relaxed concurrent
/// MultiQueue ((distance, vertex) packed into 64-bit keys). Produces exact
/// distances (monotone convergence); stats report the relaxation overhead.
///
/// pop_batch > 1 batches BOTH scheduler sides, exactly like the framework
/// executors (engine/job.h): up to pop_batch keys are claimed per
/// approx_get_min_batch round trip, and the successful relaxations they
/// generate are re-inserted as one bulk_insert run. Label correction is
/// insensitive to the extra relaxation (distances converge monotonically
/// for any pop order); the price is more stale pops, which stats make
/// visible next to the throughput gain.
std::vector<std::uint32_t> parallel_relaxed_sssp(
    const graph::Graph& g, const std::vector<std::uint32_t>& weights,
    graph::Vertex source, const SsspOptions& options,
    SsspStats* stats = nullptr);

/// Positional-argument form (fixed batch only), kept for existing callers.
inline std::vector<std::uint32_t> parallel_relaxed_sssp(
    const graph::Graph& g, const std::vector<std::uint32_t>& weights,
    graph::Vertex source, unsigned num_threads, unsigned queue_factor,
    std::uint64_t seed, unsigned pop_batch = 1, SsspStats* stats = nullptr) {
  SsspOptions options;
  options.num_threads = num_threads;
  options.queue_factor = queue_factor;
  options.seed = seed;
  options.pop_batch = pop_batch;
  return parallel_relaxed_sssp(g, weights, source, options, stats);
}

}  // namespace relax::algorithms
