// Single-Source Shortest Paths via a relaxed scheduler.
//
// Dijkstra's algorithm is the paper's canonical *motivating* example for
// relaxed scheduling (§1): popping vertices out of order never breaks
// correctness because tentative distances converge monotonically to the
// true distances; the price is wasted work on stale pops. SSSP is NOT in
// the paper's deterministic framework class (the priority order must follow
// distances, so pi cannot be a uniformly random permutation — §2.2), which
// is why it lives here as a standalone algorithm and example rather than a
// Problem adapter.
//
// Edge weights are synthesized deterministically from (edge, seed) since
// graph::Graph is unweighted.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace relax::algorithms {

inline constexpr std::uint32_t kUnreachable = ~0u;

/// Per-arc weights aligned with the CSR arc array; symmetric (both
/// directions of an undirected edge carry the same weight in [1, max_w]).
std::vector<std::uint32_t> synthetic_edge_weights(const graph::Graph& g,
                                                  std::uint64_t seed,
                                                  std::uint32_t max_w = 100);

/// Reference Dijkstra (exact binary-heap scheduler). Returns distances.
std::vector<std::uint32_t> dijkstra(const graph::Graph& g,
                                    const std::vector<std::uint32_t>& weights,
                                    graph::Vertex source);

struct SsspStats {
  std::uint64_t pops = 0;
  std::uint64_t stale_pops = 0;  // wasted work due to relaxation/concurrency
  std::uint64_t relaxations = 0;
  std::uint64_t batches = 0;  // scheduler acquisition round trips
  double seconds = 0.0;
};

/// Multi-threaded label-correcting SSSP over a relaxed concurrent
/// MultiQueue ((distance, vertex) packed into 64-bit keys). Produces exact
/// distances (monotone convergence); stats report the relaxation overhead.
///
/// pop_batch > 1 batches BOTH scheduler sides, exactly like the framework
/// executors (engine/job.h): up to pop_batch keys are claimed per
/// approx_get_min_batch round trip, and the successful relaxations they
/// generate are re-inserted as one bulk_insert run. Label correction is
/// insensitive to the extra relaxation (distances converge monotonically
/// for any pop order); the price is more stale pops, which stats make
/// visible next to the throughput gain.
std::vector<std::uint32_t> parallel_relaxed_sssp(
    const graph::Graph& g, const std::vector<std::uint32_t>& weights,
    graph::Vertex source, unsigned num_threads, unsigned queue_factor,
    std::uint64_t seed, unsigned pop_batch = 1, SsspStats* stats = nullptr);

}  // namespace relax::algorithms
