#include "algorithms/mis.h"

namespace relax::algorithms {

std::vector<std::uint8_t> sequential_greedy_mis(
    const graph::Graph& g, const graph::Priorities& pri) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint8_t> in_mis(n, 0);
  std::vector<std::uint8_t> dead(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const graph::Vertex v = pri.order[i];
    if (dead[v]) continue;
    in_mis[v] = 1;
    for (const graph::Vertex u : g.neighbors(v)) dead[u] = 1;
  }
  return in_mis;
}

std::vector<std::uint8_t> sequential_greedy_mis_scan(
    const graph::Graph& g, const graph::Priorities& pri) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint8_t> in_mis(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const graph::Vertex v = pri.order[i];
    bool blocked = false;
    for (const graph::Vertex u : g.neighbors(v)) {
      if (in_mis[u]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) in_mis[v] = 1;
  }
  return in_mis;
}

bool verify_mis(const graph::Graph& g, std::span<const std::uint8_t> in_mis) {
  if (in_mis.size() != g.num_vertices()) return false;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    bool has_mis_neighbor = false;
    for (const graph::Vertex u : g.neighbors(v)) {
      if (in_mis[u]) has_mis_neighbor = true;
      if (in_mis[u] && in_mis[v]) return false;  // not independent
    }
    if (!in_mis[v] && !has_mis_neighbor) return false;  // not maximal
  }
  return true;
}

MisProblem::MisProblem(const graph::Graph& g, const graph::Priorities& pri)
    : g_(&g), pri_(&pri), state_(g.num_vertices(), State::kLive) {}

core::Outcome MisProblem::try_process(core::Task v) {
  if (state_[v] == State::kDead) return core::Outcome::kRetired;
  const std::uint32_t label_v = pri_->labels[v];
  for (const graph::Vertex u : g_->neighbors(v)) {
    ++edge_accesses_;
    if (pri_->labels[u] < label_v && state_[u] == State::kLive)
      return core::Outcome::kNotReady;  // live predecessor
  }
  state_[v] = State::kInMis;
  for (const graph::Vertex u : g_->neighbors(v)) {
    ++edge_accesses_;
    if (state_[u] == State::kLive) state_[u] = State::kDead;
  }
  return core::Outcome::kProcessed;
}

std::vector<std::uint8_t> MisProblem::result() const {
  std::vector<std::uint8_t> in_mis(state_.size(), 0);
  for (std::size_t v = 0; v < state_.size(); ++v)
    in_mis[v] = state_[v] == State::kInMis ? 1 : 0;
  return in_mis;
}

AtomicMisProblem::AtomicMisProblem(const graph::Graph& g,
                                   const graph::Priorities& pri)
    : g_(&g), pri_(&pri), state_(g.num_vertices()) {
  for (auto& s : state_) s.store(kLive, std::memory_order_relaxed);
}

core::Outcome AtomicMisProblem::try_process(core::Task v) {
  if (state_[v].load(std::memory_order_acquire) == kDead)
    return core::Outcome::kRetired;
  const std::uint32_t label_v = pri_->labels[v];
  for (const graph::Vertex u : g_->neighbors(v)) {
    if (pri_->labels[u] >= label_v) continue;
    const std::uint8_t su = state_[u].load(std::memory_order_acquire);
    if (su == kLive) return core::Outcome::kNotReady;
    if (su == kInMis) {
      // A smaller-labelled neighbor is in the MIS: v dies. The neighbor's
      // own kill sweep may also target v — CAS arbitrates; exactly one
      // transition wins, so retirement is counted once (kill sweeps do not
      // retire, only pop outcomes do).
      std::uint8_t expected = kLive;
      state_[v].compare_exchange_strong(expected, kDead,
                                        std::memory_order_acq_rel);
      return core::Outcome::kRetired;
    }
  }
  // All smaller-labelled neighbors are DEAD: v joins the MIS. v is the only
  // thread that can decide v here (it holds the unique queue entry for v;
  // any concurrent kill requires an IN_MIS smaller neighbor, which we just
  // excluded — neighbors currently LIVE can only enter the MIS after v is
  // decided, because v is LIVE and smaller-labelled from their viewpoint
  // only if label_v < label_u, in which case they are blocked on v).
  state_[v].store(kInMis, std::memory_order_release);
  for (const graph::Vertex u : g_->neighbors(v)) {
    std::uint8_t expected = kLive;
    state_[u].compare_exchange_strong(expected, kDead,
                                      std::memory_order_acq_rel);
  }
  return core::Outcome::kProcessed;
}

std::vector<std::uint8_t> AtomicMisProblem::result() const {
  std::vector<std::uint8_t> in_mis(state_.size(), 0);
  for (std::size_t v = 0; v < state_.size(); ++v)
    in_mis[v] = state_[v].load(std::memory_order_relaxed) == kInMis ? 1 : 0;
  return in_mis;
}

}  // namespace relax::algorithms
