// Concurrent MultiQueue (Rihani, Sanders, Dementiev, SPAA'15), the relaxed
// scheduler used for the paper's concurrent MIS experiments (§4).
//
// Layout: q = queue_factor * num_threads sub-queues (the paper uses factor
// 4), each a cache-line-padded {spinlock, two-part priority queue (sorted
// bulk-load array + 8-ary overflow min-heap), atomic top cache}.
//
//   Insert(p):        lock a uniformly random sub-queue (retrying with a new
//                     victim on contention), push, refresh the top cache.
//   ApproxGetMin():   sample two distinct sub-queues, compare their atomic
//                     top caches without locking, lock the apparent smaller
//                     one, re-verify, pop. On contention or a lost race,
//                     resample.
//
// The top cache makes the two-choice comparison lock-free; staleness only
// perturbs the choice distribution, never correctness (the popped element is
// re-read under the lock). Alistarh et al. [2] prove the two-choice process
// is (O(q), O(q log q))-relaxed; concurrent executions preserve the bounds
// under the analytic assumptions of [1].
//
// Emptiness: approx_get_min falls back to a full top-cache scan after
// `probe_limit` consecutive empty samples and returns nullopt only when the
// scan sees every sub-queue empty. With concurrent re-insertions in flight
// this is necessarily heuristic — executors must use their own termination
// criterion (retirement counting; see core/parallel_executor.h) and treat
// nullopt as "retry or check termination".
//
// Scalability note: there is deliberately *no* global element counter — a
// shared atomic touched by every insert/pop serializes the whole scheduler
// through one cache line and flattens the Figure 2 thread sweep. Counts are
// striped per sub-queue (updated under that queue's lock, whose line the
// owner already holds exclusively); size() sums the stripes and is racy
// under concurrency, exact when quiescent.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <type_traits>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "sched/dary_heap.h"
#include "sched/sampling.h"
#include "sched/scheduler.h"
#include "sched/stripe_map.h"
#include "util/padded.h"
#include "util/rng.h"
#include "util/spinlock.h"

namespace relax::sched {

/// Key type must be an unsigned integer; the maximum value is reserved as
/// the "empty" sentinel for the lock-free top cache. The framework uses
/// Key = Priority (dense labels); SSSP packs (distance << 32 | vertex) into
/// 64-bit keys.
template <typename Key = Priority>
class BasicConcurrentMultiQueue {
  static_assert(std::is_unsigned_v<Key>);

 public:
  static constexpr Key kEmptyTop = std::numeric_limits<Key>::max();

  /// num_queues should be queue_factor * num_threads; seed derives
  /// per-thread RNG streams deterministically. choices selects the number
  /// of sampled sub-queues per pop: 2 is the classic power-of-two-choices
  /// MultiQueue; 1 degrades to uniform single sampling (no rank bound —
  /// exposed for the ablation bench). probe_limit is the number of
  /// consecutive empty samples before approx_get_min falls back to a full
  /// top-cache scan (0 scans on every pop — a testing/near-empty-workload
  /// seam, not a production setting).
  explicit BasicConcurrentMultiQueue(std::uint32_t num_queues,
                                     std::uint64_t seed = 1,
                                     unsigned choices = 2,
                                     int probe_limit = kProbeLimit)
      : queues_(std::max<std::uint32_t>(num_queues, 2)),
        seed_(seed),
        choices_(choices < 1 ? 1 : choices),
        probe_limit_(probe_limit < 0 ? 0 : probe_limit) {}

  BasicConcurrentMultiQueue(const BasicConcurrentMultiQueue&) = delete;
  BasicConcurrentMultiQueue& operator=(const BasicConcurrentMultiQueue&) =
      delete;

  /// Thread-local handle. Each thread must obtain its own (cheap, just an
  /// RNG stream + pointer); handles may not be shared across threads.
  class Handle {
   public:
    void insert(Key p) { mq_->insert(p, rng_, &ctx_); }
    /// Batched live insert: amortizes locking over the whole batch (one
    /// sub-queue lock per chunk instead of per key). Safe concurrently with
    /// any handle operation; see bulk_insert below.
    void bulk_insert(std::span<const Key> keys) {
      mq_->bulk_insert(keys, rng_, &ctx_);
    }
    /// Native batched insert (the uniform name sched::insert_batch
    /// dispatches on): the chunked sorted-run merge of bulk_insert — sort
    /// each chunk, one lock per target sub-queue, one splice into the
    /// sorted base array.
    void insert_batch(std::span<const Key> keys) {
      mq_->bulk_insert(keys, rng_, &ctx_);
    }
    std::optional<Key> approx_get_min() {
      return mq_->approx_get_min(rng_, &ctx_);
    }
    /// Batched pop: one best-of-c sample + one sub-queue lock, then up to
    /// `k` pops (O(1) cursor advances while the sorted base lasts). Appends
    /// to `out`, returns the number claimed; 0 means observed empty. May
    /// return fewer than k when the chosen sub-queue holds fewer — callers
    /// just process what they got. Rank cost is O(k * q) per batch (the
    /// batch drains one sub-queue's prefix); see batched_rank_bound.
    std::size_t approx_get_min_batch(std::size_t k, std::vector<Key>& out) {
      return mq_->approx_get_min_batch(k, out, rng_, &ctx_);
    }

    /// The owning worker's topology domain (engine session state sets this
    /// right after make_handle). Only meaningful once the queue carries a
    /// StripeMap with > 1 domain; otherwise placement stays flat.
    void set_domain(unsigned domain) { ctx_.domain = domain; }
    /// Cumulative local/steal claim tally for this handle (a steal = a
    /// claim served from a stripe outside the handle's domain while the
    /// queue runs with > 1 domain). The engine flushes per-slice deltas of
    /// these into obs metrics.
    [[nodiscard]] StripeStats stripe_stats() const noexcept {
      return StripeStats{ctx_.local_claims, ctx_.steal_claims};
    }

   private:
    friend class BasicConcurrentMultiQueue;
    Handle(BasicConcurrentMultiQueue* mq, std::uint64_t stream)
        : mq_(mq), rng_(stream) {}
    BasicConcurrentMultiQueue* mq_;
    util::Rng rng_;
    StripeContext ctx_;
  };

  [[nodiscard]] Handle get_handle() {
    const std::uint64_t id =
        next_handle_.fetch_add(1, std::memory_order_relaxed);
    return Handle(this, seed_ ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  }

  /// Pre-loads `keys` round-robin across the sub-queues into their sorted
  /// base arrays (single-threaded; call before spawning workers). Pops from
  /// the base are O(1) cursor advances; use this for the framework's
  /// initial task load instead of n heap pushes.
  void bulk_load(std::span<const Key> keys) {
    const std::size_t q = queues_.size();
    for (auto& padded : queues_) {
      padded->base.reserve(keys.size() / q + 1);
    }
    for (std::size_t i = 0; i < keys.size(); ++i)
      queues_[i % q]->base.push_back(keys[i]);
    for (auto& padded : queues_) {
      auto& sq = *padded;
      std::sort(sq.base.begin() + static_cast<std::ptrdiff_t>(sq.cursor),
                sq.base.end());
      sq.refresh_top();
    }
  }

  /// Single-threaded convenience form of the live batched insert.
  void bulk_insert(std::span<const Key> keys) {
    util::Rng rng(seed_ ^ sequential_ops_++);
    bulk_insert(keys, rng);
  }
  /// Uniform-name alias for the generic sched::insert_batch dispatch.
  void insert_batch(std::span<const Key> keys) { bulk_insert(keys); }

  /// Single-threaded convenience interface (satisfies SequentialScheduler
  /// modulo seeding); used by tests. Not for concurrent use — use handles.
  void insert(Key p) {
    util::Rng rng(seed_ ^ sequential_ops_++);
    insert(p, rng);
  }
  std::optional<Key> approx_get_min() {
    util::Rng rng(seed_ ^ sequential_ops_++);
    return approx_get_min(rng);
  }
  std::size_t approx_get_min_batch(std::size_t k, std::vector<Key>& out) {
    util::Rng rng(seed_ ^ sequential_ops_++);
    return approx_get_min_batch(k, out, rng);
  }

  /// Sum of the per-sub-queue stripes: exact when quiescent, a snapshot
  /// under concurrency.
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& q : queues_)
      total += q->count.load(std::memory_order_acquire);
    return total;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::uint32_t num_queues() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }

  /// Engages topology-aware placement: handle claims prefer their domain's
  /// stripe block with a bounded cross-domain steal, handle inserts land in
  /// the own block (sched/stripe_map.h). Call while quiescent, before
  /// workers touch the queue; map.stripes() must equal num_queues(). A map
  /// with one domain (or never calling this) keeps the flat path
  /// byte-for-byte unchanged.
  void set_stripe_map(const StripeMap& map) { stripe_map_ = map; }
  [[nodiscard]] const StripeMap& stripe_map() const noexcept {
    return stripe_map_;
  }

  /// Per-sub-queue element counts (the striped size): exact when quiescent,
  /// a racy snapshot under concurrency. Monitoring/test seam — this is how
  /// the bulk_insert spread regression observes placement.
  [[nodiscard]] std::vector<std::size_t> per_queue_sizes() const {
    std::vector<std::size_t> sizes;
    sizes.reserve(queues_.size());
    for (const auto& q : queues_)
      sizes.push_back(q->count.load(std::memory_order_acquire));
    return sizes;
  }

  /// Number of consumed-prefix compactions bulk_insert has performed across
  /// all sub-queues (exact when quiescent). Lets tests prove the compaction
  /// path actually ran instead of asserting around it.
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    std::uint64_t total = 0;
    for (const auto& q : queues_)
      total += q->compactions.load(std::memory_order_acquire);
    return total;
  }

  /// Minimum keys per bulk_insert chunk: below this the sort/merge overhead
  /// stops amortizing and the batch targets fewer sub-queues (never fewer
  /// than two — see bulk_insert).
  static constexpr std::size_t kMinBulkChunk = 64;

 private:
  struct SubQueue {
    util::Spinlock lock;
    std::atomic<Key> top{kEmptyTop};
    std::atomic<std::size_t> count{0};  // updated under lock: same line
    // Two-part priority queue. `base` holds the bulk-loaded initial task
    // set, sorted, consumed front-to-back by `cursor`: pops from it are
    // O(1) and stream sequentially through memory instead of sifting a
    // multi-megabyte heap (heap pops on cold memory dominate per-op cost
    // and are what makes a naive 1-thread MultiQueue several times slower
    // than the sequential baseline — the paper reports the two should be
    // close). `heap` (8-ary: each sift level is one cache line of
    // children) takes dynamic inserts — for framework executions only the
    // poly(k) re-insertions, so it stays small and hot.
    std::vector<Key> base;
    std::size_t cursor = 0;
    DaryHeap<Key, 8> heap;
    // Consumed-prefix compactions performed on this sub-queue (stored under
    // the lock, atomic so quiescent readers need no lock).
    std::atomic<std::uint64_t> compactions{0};

    [[nodiscard]] Key current_min() const noexcept {
      const Key b = cursor < base.size() ? base[cursor] : kEmptyTop;
      const Key h = heap.empty() ? kEmptyTop : heap.top();
      return b < h ? b : h;
    }

    /// Pre: current_min() != kEmptyTop. Under lock.
    Key pop_min() noexcept {
      const Key b = cursor < base.size() ? base[cursor] : kEmptyTop;
      const Key h = heap.empty() ? kEmptyTop : heap.top();
      if (b <= h) {
        ++cursor;
        return b;
      }
      return heap.pop();
    }

    void refresh_top() noexcept {
      top.store(current_min(), std::memory_order_release);
      count.store(base.size() - cursor + heap.size(),
                  std::memory_order_release);
    }
  };

  /// Live-queue batched insert, the admission + re-insertion fast path for
  /// the engine: unlike bulk_load (quiescent-only), this may run
  /// concurrently with any number of handle inserts/pops and other
  /// bulk_inserts. The batch is sorted once and dealt *round-robin*
  /// (strided) over its target sub-queues starting at a random offset —
  /// each target receives the still-sorted subsequence c, c+chunks, ...,
  /// takes its lock once, and merges it into the sorted base array. Pops
  /// stay O(1) cursor advances and the per-key cost is one sort/merge
  /// share instead of a lock + heap sift.
  ///
  /// The strided deal (rather than contiguous slices) is load-bearing for
  /// relaxation quality: contiguous slices put each sub-queue's share ~one
  /// whole slice apart in priority, so every two-choice pop during the
  /// batch's lifetime is off by O(slice) ranks — the audited mean rank
  /// error scales with the admission chunk (hundreds at chunk 1024).
  /// Interleaving keeps neighbouring keys in different sub-queues, exactly
  /// like bulk_load's round-robin placement, so the batch perturbs the
  /// two-choice process by O(chunks), not O(batch).
  void bulk_insert(std::span<const Key> keys, util::Rng& rng,
                   StripeContext* ctx = nullptr) {
    if (keys.empty()) return;
    // Under a StripeMap the whole run stays in the inserting handle's
    // domain block (placement is the point); targets and the start offset
    // are then drawn from that block instead of all of [0, q).
    const bool striped = ctx != nullptr && stripe_map_.domains() > 1;
    const std::size_t block_begin =
        striped ? stripe_map_.domain_begin(ctx->domain) : 0;
    const std::size_t q =
        striped ? stripe_map_.domain_size(ctx->domain) : queues_.size();
    // Never fewer than two targets: dumping a whole small batch into a
    // single random sub-queue transiently skews that queue (and the rank
    // distribution every two-choice pop samples from) until pops rebalance
    // it. q >= 2 always holds flat, so small batches still spread (a
    // 1-stripe domain block necessarily takes the whole run).
    const std::size_t chunks = std::min<std::size_t>(
        q, std::max<std::size_t>(
               2, (keys.size() + kMinBulkChunk - 1) / kMinBulkChunk));
    // Already-sorted runs (the common case: admission streams labels in
    // ascending order) are dealt straight from the caller's span; only
    // unsorted runs pay a copy + sort.
    std::span<const Key> sorted = keys;
    std::vector<Key> scratch;
    if (!std::is_sorted(keys.begin(), keys.end())) {
      scratch.assign(keys.begin(), keys.end());
      std::sort(scratch.begin(), scratch.end());
      sorted = scratch;
    }
    const std::size_t start = util::bounded(rng, q);
    for (std::size_t c = 0; c < chunks; ++c) {
      if (c >= sorted.size()) break;  // more targets than keys
      // This target's strided share: ceil((size - c) / chunks) elements.
      const std::size_t share = (sorted.size() - c + chunks - 1) / chunks;
      auto& sq = *queues_[block_begin + (start + c) % q];
      sq.lock.lock();
      std::lock_guard<util::Spinlock> guard(sq.lock, std::adopt_lock);
      // Long-lived queues accumulate a consumed prefix in base; drop it
      // before growing so memory stays proportional to live elements.
      if (sq.cursor > 0 && sq.cursor * 2 >= sq.base.size()) {
        sq.base.erase(sq.base.begin(),
                      sq.base.begin() + static_cast<std::ptrdiff_t>(sq.cursor));
        sq.cursor = 0;
        sq.compactions.fetch_add(1, std::memory_order_release);
      }
      const auto mid = static_cast<std::ptrdiff_t>(sq.base.size());
      sq.base.reserve(sq.base.size() + share);
      for (std::size_t i = c; i < sorted.size(); i += chunks)
        sq.base.push_back(sorted[i]);
      // The strided subsequence is already sorted. Admission streams labels
      // in ascending order, so a batch usually lands entirely above the
      // live tail — then the concatenation is already sorted and the
      // O(live) merge can be skipped.
      if (mid > static_cast<std::ptrdiff_t>(sq.cursor) &&
          sq.base[static_cast<std::size_t>(mid)] < sq.base[static_cast<std::size_t>(mid) - 1]) {
        std::inplace_merge(
            sq.base.begin() + static_cast<std::ptrdiff_t>(sq.cursor),
            sq.base.begin() + mid, sq.base.end());
      }
      sq.refresh_top();
    }
  }

  void insert(Key p, util::Rng& rng, StripeContext* ctx = nullptr) {
    const bool striped = ctx != nullptr && stripe_map_.domains() > 1;
    for (;;) {
      const std::size_t victim =
          striped ? sampling::pick_uniform_in_domain(TopPolicy{this},
                                                     stripe_map_, ctx->domain,
                                                     rng)
                  : sampling::pick_uniform(TopPolicy{this}, rng);
      auto& sq = *queues_[victim];
      if (!sq.lock.try_lock()) continue;  // pick a fresh victim instead
      std::lock_guard<util::Spinlock> guard(sq.lock, std::adopt_lock);
      sq.heap.push(p);
      sq.refresh_top();
      return;
    }
  }

  /// Sampling policy over the lock-free top caches (sched/sampling.h): the
  /// probe is one atomic load, nullopt iff the cached top is the empty
  /// sentinel. Staleness only perturbs the choice distribution — claims
  /// re-verify under the sub-queue lock.
  struct TopPolicy {
    const BasicConcurrentMultiQueue* mq;
    [[nodiscard]] std::size_t count() const noexcept {
      return mq->queues_.size();
    }
    [[nodiscard]] std::optional<Key> peek(std::size_t i) const {
      const Key t = mq->queues_[i]->top.load(std::memory_order_acquire);
      if (t == kEmptyTop) return std::nullopt;
      return t;
    }
  };

  std::optional<Key> approx_get_min(util::Rng& rng,
                                    StripeContext* ctx = nullptr) {
    if (ctx != nullptr && stripe_map_.domains() > 1) {
      return sampling::select_and_claim_striped(
          TopPolicy{this}, stripe_map_, *ctx, rng, choices_, probe_limit_,
          std::optional<Key>{},
          [this](std::size_t idx) { return try_pop(*queues_[idx]); });
    }
    return sampling::select_and_claim(
        TopPolicy{this}, rng, choices_, probe_limit_, std::optional<Key>{},
        [this](std::size_t idx) { return try_pop(*queues_[idx]); });
  }

  /// Batched pop: same victim selection as approx_get_min, but the winning
  /// sub-queue is drained of up to `k` elements under its single lock
  /// acquisition — pops from the sorted base are O(1) cursor advances, and
  /// the top cache / count stripe refresh is paid once per batch instead of
  /// once per element. Returns the number appended to `out` (0 = observed
  /// empty; fewer than k when the victim ran short or a later caller should
  /// resample anyway).
  std::size_t approx_get_min_batch(std::size_t k, std::vector<Key>& out,
                                   util::Rng& rng,
                                   StripeContext* ctx = nullptr) {
    if (k == 0) return 0;
    if (ctx != nullptr && stripe_map_.domains() > 1) {
      return sampling::select_and_claim_striped(
          TopPolicy{this}, stripe_map_, *ctx, rng, choices_, probe_limit_,
          std::size_t{0}, [&](std::size_t idx) {
            return try_pop_batch(*queues_[idx], k, out);
          });
    }
    return sampling::select_and_claim(
        TopPolicy{this}, rng, choices_, probe_limit_, std::size_t{0},
        [&](std::size_t idx) { return try_pop_batch(*queues_[idx], k, out); });
  }

  std::optional<Key> try_pop(SubQueue& sq) {
    if (!sq.lock.try_lock()) return std::nullopt;
    std::lock_guard<util::Spinlock> guard(sq.lock, std::adopt_lock);
    if (sq.current_min() == kEmptyTop) return std::nullopt;
    const Key p = sq.pop_min();
    sq.refresh_top();
    return p;
  }

  std::size_t try_pop_batch(SubQueue& sq, std::size_t k,
                            std::vector<Key>& out) {
    if (!sq.lock.try_lock()) return 0;
    std::lock_guard<util::Spinlock> guard(sq.lock, std::adopt_lock);
    std::size_t got = 0;
    while (got < k && sq.current_min() != kEmptyTop) {
      out.push_back(sq.pop_min());
      ++got;
    }
    if (got > 0) sq.refresh_top();
    return got;
  }

  static constexpr int kProbeLimit = 16;

  std::vector<util::Padded<SubQueue>> queues_;
  StripeMap stripe_map_;  // 1 domain until set_stripe_map engages placement
  std::uint64_t seed_;
  unsigned choices_ = 2;
  int probe_limit_ = kProbeLimit;
  std::atomic<std::uint64_t> next_handle_{0};
  std::uint64_t sequential_ops_ = 0;
};

/// The framework's scheduler: dense-label keys.
using ConcurrentMultiQueue = BasicConcurrentMultiQueue<Priority>;

}  // namespace relax::sched
