// D-ary min-heap. The scheduler substrate's workhorse: 4-ary heaps have
// shallower trees and better cache behaviour than binary heaps for the
// pop-heavy access pattern of priority schedulers.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace relax::sched {

template <typename T, unsigned D = 4, typename Compare = std::less<T>>
class DaryHeap {
  static_assert(D >= 2, "heap arity must be at least 2");

 public:
  DaryHeap() = default;
  explicit DaryHeap(Compare cmp) : cmp_(std::move(cmp)) {}

  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// Smallest element. Precondition: !empty().
  [[nodiscard]] const T& top() const noexcept {
    assert(!data_.empty());
    return data_.front();
  }

  void push(T value) {
    data_.push_back(std::move(value));
    sift_up(data_.size() - 1);
  }

  T pop() {
    assert(!data_.empty());
    T out = std::move(data_.front());
    data_.front() = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) sift_down(0);
    return out;
  }

  void clear() noexcept { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

 private:
  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (!cmp_(data_[i], data_[parent])) break;
      std::swap(data_[i], data_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = data_.size();
    for (;;) {
      const std::size_t first_child = i * D + 1;
      if (first_child >= n) return;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + D, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (cmp_(data_[c], data_[best])) best = c;
      if (!cmp_(data_[best], data_[i])) return;
      std::swap(data_[i], data_[best]);
      i = best;
    }
  }

  std::vector<T> data_;
  Compare cmp_;
};

}  // namespace relax::sched
