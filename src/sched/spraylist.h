// Concurrent SprayList (Alistarh, Kopinsky, Li, Shavit, PPoPP'15) — the
// second practical relaxed scheduler the paper builds on (reference [3]).
//
// Structure: a lazy concurrent skip list (optimistic fine-grained locking
// with logical-mark-then-unlink deletion, à la Herlihy & Shavit ch. 14).
// DeleteMin is replaced by a *spray*: a randomized descent that, instead of
// always taking the head, jumps a uniformly random number of forward steps
// on each of ~log2(p) levels before descending. The landing rank is a sum
// of independent uniform jumps — concentrated around Θ(p) with exponential
// tails, which is exactly the (O(p polylog p), O(p polylog p))-relaxation
// the paper's Definition 1 captures.
//
// Spray parameterization (following the published description, constants
// simplified): spray height H = floor(log2 p) + 1 levels, per-level jump
// uniform in [0, D] with D = max(1, ceil(2p / H)), so the maximal reach is
// H*D ≈ 2p and the mean landing rank ≈ p.
//
// Deletion is *logical-first with prefix reclamation*, following the
// published design: a spray claim only sets the node's mark, and physical
// unlinking is done by a best-effort cleaner that strips the maximal
// marked prefix off the head. Marked interior nodes therefore keep serving
// as high-level waypoints until everything before them is gone. This is
// load-bearing for relaxation quality, not just a perf nicety: sprays land
// disproportionately on/near tall towers, so eager per-node unlinking
// strips the front of its high-level towers under drain-heavy load, and
// once the first level-L tower sits R live nodes deep every level-L jump
// from the head overshoots all R of them — measured rank error then grows
// linearly with the number of pops instead of staying at the O(p polylog p)
// spray reach (tests/sched_quality_test.cc pins this down).
//
// Memory reclamation: unlinked nodes may still be traversed by concurrent
// sprays, so nodes are retired to an internal registry and freed only when
// the SprayList is destroyed. For the framework's workloads (n tasks plus
// poly(k) re-insertions, Theorem 2) the arena stays O(n); deferred
// unlinking does not change that policy, it only delays the (already
// deferred) physical reclamation.
//
// This implementation favours clarity over the last 20% of throughput; the
// ConcurrentMultiQueue is the library's performance scheduler (as in the
// paper's own experiments), and tests/spraylist_test.cc plus
// bench/scheduler_quality validate this structure's semantics and
// relaxation quality.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "sched/scheduler.h"
#include "sched/stripe_map.h"
#include "util/rng.h"
#include "util/spinlock.h"

namespace relax::sched {

class SprayList {
 public:
  static constexpr int kMaxLevel = 24;

  /// The published spray parameterization for p threads: height H =
  /// floor(log2 p) + 1 descent levels, per-level jump uniform in [0, D]
  /// with D = max(1, ceil(2p / H)), so the nominal reach is H * D ~ 2p.
  /// Single source of truth shared by the constructor, the backend
  /// registry's Definition 1 rank-bound estimate, and tests.
  struct SprayParams {
    std::uint32_t height;
    std::uint64_t width;

    [[nodiscard]] std::uint64_t reach() const noexcept {
      return static_cast<std::uint64_t>(height) * width;
    }
  };
  static SprayParams spray_params(unsigned p) noexcept;

  /// p: intended thread count (drives spray height/width). seed:
  /// deterministic base for per-thread RNG streams.
  explicit SprayList(unsigned p, std::uint64_t seed = 1);
  ~SprayList();

  SprayList(const SprayList&) = delete;
  SprayList& operator=(const SprayList&) = delete;

  /// Thread-local handle (owns an RNG stream). Handles may not be shared.
  class Handle {
   public:
    void insert(Priority key) { list_->insert(key, rng_); }
    /// Native batched insert: one skip-list descent for the sorted run,
    /// each subsequent key's search resuming from the previous key's
    /// predecessors instead of the head — k links for roughly one
    /// descent's worth of traversal. Safe concurrently with sprays,
    /// inserts, and other batched inserts.
    void insert_batch(std::span<const Priority> keys) {
      list_->insert_batch(keys, rng_);
    }
    std::optional<Priority> approx_get_min() { return list_->spray(rng_); }
    /// Batched claim: one spray descent, then up to `k` successive CAS
    /// claims walking forward from the landing point. Appends to `out`;
    /// returns the number claimed (0 = observed empty). Rank cost is the
    /// spray reach plus up to k-1 forward steps — O(k + reach) per batch.
    std::size_t approx_get_min_batch(std::size_t k,
                                     std::vector<Priority>& out) {
      return list_->spray_batch(k, out, rng_);
    }

    /// Topology placement is degenerate here (see set_stripe_map): the
    /// domain is accepted for interface uniformity and ignored.
    void set_domain(unsigned domain) { (void)domain; }
    /// Always zero: one shared structure means no stripe is ever local or
    /// stolen. Steal-count acceptance checks read the MultiQueues.
    [[nodiscard]] StripeStats stripe_stats() const noexcept {
      return StripeStats{};
    }

   private:
    friend class SprayList;
    Handle(SprayList* list, std::uint64_t stream)
        : list_(list), rng_(stream) {}
    SprayList* list_;
    util::Rng rng_;
  };

  [[nodiscard]] Handle get_handle() {
    const auto id = next_handle_.fetch_add(1, std::memory_order_relaxed);
    return Handle(this, seed_ ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  }

  /// Single-threaded convenience API (SequentialScheduler-compatible).
  void insert(Priority key) { insert(key, seq_rng_); }
  void insert_batch(std::span<const Priority> keys) {
    insert_batch(keys, seq_rng_);
  }
  std::optional<Priority> approx_get_min() { return spray(seq_rng_); }
  std::size_t approx_get_min_batch(std::size_t k, std::vector<Priority>& out) {
    return spray_batch(k, out, seq_rng_);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    const auto s = size_.load(std::memory_order_acquire);
    return s > 0 ? static_cast<std::size_t>(s) : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Accepted for interface uniformity with the striped backends and
  /// ignored: the SprayList is ONE shared skip list — there are no
  /// per-domain stripes to prefer, so topology-aware placement is
  /// degenerate here. Spray descents stay global; quality and conformance
  /// under --numa therefore match the flat behavior exactly.
  void set_stripe_map(const StripeMap& map) { (void)map; }

 private:
  struct Node {
    Priority key;
    int top_level;
    std::atomic<bool> marked{false};        // logically deleted (claimed)
    std::atomic<bool> unlinked{false};      // physically removed (cleaner)
    std::atomic<bool> fully_linked{false};  // insert completed
    util::Spinlock lock;
    std::atomic<Node*> next[kMaxLevel + 1];

    Node(Priority k, int level) : key(k), top_level(level) {
      for (int i = 0; i <= kMaxLevel; ++i)
        next[i].store(nullptr, std::memory_order_relaxed);
    }
  };

  void insert(Priority key, util::Rng& rng);
  void insert_batch(std::span<const Priority> keys, util::Rng& rng);
  std::optional<Priority> spray(util::Rng& rng);
  std::size_t spray_batch(std::size_t k, std::vector<Priority>& out,
                          util::Rng& rng);

  /// Shared core of spray/spray_batch: descend, then walk the bottom level
  /// claiming up to `k` unmarked nodes, reporting each claimed key through
  /// `sink(key)`. Returns the number claimed (0 after the attempt budget =
  /// observed empty). Instantiated only inside spraylist.cc.
  template <typename Sink>
  std::size_t spray_claim(std::size_t k, util::Rng& rng, Sink sink);

  /// One randomized spray descent (degrading to an exact head walk after
  /// enough failed attempts): returns the landing node to start claiming
  /// from. Shared by spray and spray_batch.
  Node* spray_descent(int attempt, util::Rng& rng);

  /// Standard lazy-skiplist search: fills preds/succs per level for `key`.
  /// Returns the level of the first exact key match or -1.
  int find(Priority key, Node** preds, Node** succs);

  /// Search that resumes from a previous (smaller-or-equal key) search's
  /// predecessors instead of the head — the amortization seam for the
  /// batched insert. `preds` holds the resume hints on entry and is updated
  /// in place; hints may be stale (marked or even unlinked nodes): the walk
  /// only ever moves forward in key order, and try_insert_at's lock-and-
  /// validate step rejects any position that is no longer linked.
  void find_from(Priority key, Node** preds, Node** succs);

  /// One optimistic link attempt at the positions `preds`/`succs` describe:
  /// locks predecessors bottom-up, validates them, links a new node of
  /// `top_level` towers. Returns false (nothing linked) when validation
  /// fails — the caller re-searches and retries.
  bool try_insert_at(Priority key, int top_level, Node* const* preds,
                     Node* const* succs);

  /// Physically unlinks a marked node. Only the prefix cleaner calls this
  /// (serialized by cleaner_lock_), so each node is unlinked at most once.
  void unlink(Node* victim);

  /// Strips the maximal marked prefix off the head (best-effort: skips if
  /// another thread is already cleaning). Called after every spray claim.
  void clean_prefix();

  int random_level(util::Rng& rng);

  Node* allocate(Priority key, int level);

  Node* head_;
  Node* tail_;
  unsigned spray_height_;
  std::uint64_t spray_width_;
  std::uint64_t seed_;
  std::atomic<std::int64_t> size_{0};
  std::atomic<std::uint64_t> next_handle_{0};
  util::Rng seq_rng_;

  // Serializes prefix cleaning (one cleaner at a time is enough).
  util::Spinlock cleaner_lock_;

  // Allocation registry: nodes live until the list dies (see header note).
  util::Spinlock registry_lock_;
  std::vector<std::unique_ptr<Node>> registry_;
};

}  // namespace relax::sched
