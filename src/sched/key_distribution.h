// Key-distribution and insert-policy generators for steady-state
// scheduler benchmarking, in the style of the multiqueue throughput
// harness (KvGeijer/multiqueue benchmark/throughput.cpp): a timed working
// phase drives every backend with a sustained stream of inserts and
// deletes, and these policy values decide *which* threads insert and
// *what* keys they insert.
//
// Like sampling.h's count()/peek() policies, everything here is a small
// header-only value type a harness thread owns privately: no shared state,
// no locks, deterministic given (seed, tid). The steady-state harness
// (src/bench/steady_state.h) instantiates one OpSequencer + KeyGenerator
// per worker; the unit tests drive them directly.
//
// InsertPolicy — who inserts and who deletes:
//   kUniform      every thread flips a fair coin per scheduler touch;
//   kSplit        the first floor(threads/2) threads insert only, the rest
//                 delete only (producer/consumer halves);
//   kProducer     thread 0 inserts only, every other thread deletes only
//                 (single-producer fan-out);
//   kAlternating  every thread strictly alternates insert, delete, ...
// Single-thread runs degrade kSplit/kProducer to "both roles" so a lone
// thread still makes progress.
//
// KeyDistribution — what keys the insert side produces (universe is the
// priority range [0, universe), bounded so exact rank mirrors stay cheap):
//   kUniform     uniform over the universe;
//   kDijkstra    shortest-path-shaped feedback: popped keys are fed back
//                and re-inserted as key + offset, offset uniform in
//                [kDijkstraMinIncrease, kDijkstraMaxIncrease] (clamped at
//                universe - 1); with no feedback pending it falls back to
//                a uniform draw, so the stream self-starts;
//   kAscending   per-thread monotone non-decreasing keys (thread t emits
//                t, t + threads, t + 2*threads, ... saturating at
//                universe - 1) — FIFO-shaped pressure, always inserting
//                at the back;
//   kDescending  the mirror image, starting at universe - 1 - t and
//                saturating at 0 — every insert is a new minimum, the
//                adversarial case for relaxed pops.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace relax::sched {

enum class InsertPolicy : std::uint8_t {
  kUniform,
  kSplit,
  kProducer,
  kAlternating,
};

enum class KeyDistribution : std::uint8_t {
  kUniform,
  kDijkstra,
  kAscending,
  kDescending,
};

[[nodiscard]] constexpr std::string_view insert_policy_name(
    InsertPolicy p) noexcept {
  switch (p) {
    case InsertPolicy::kUniform: return "uniform";
    case InsertPolicy::kSplit: return "split";
    case InsertPolicy::kProducer: return "producer";
    case InsertPolicy::kAlternating: return "alternating";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view key_distribution_name(
    KeyDistribution d) noexcept {
  switch (d) {
    case KeyDistribution::kUniform: return "uniform";
    case KeyDistribution::kDijkstra: return "dijkstra";
    case KeyDistribution::kAscending: return "ascending";
    case KeyDistribution::kDescending: return "descending";
  }
  return "?";
}

/// All policies / distributions in stable presentation order — the axis
/// vocabulary for `--policies=all` / `--distributions=all`.
[[nodiscard]] inline std::span<const InsertPolicy> all_insert_policies() {
  static constexpr std::array<InsertPolicy, 4> kAll = {
      InsertPolicy::kUniform, InsertPolicy::kSplit, InsertPolicy::kProducer,
      InsertPolicy::kAlternating};
  return kAll;
}

[[nodiscard]] inline std::span<const KeyDistribution> all_key_distributions() {
  static constexpr std::array<KeyDistribution, 4> kAll = {
      KeyDistribution::kUniform, KeyDistribution::kDijkstra,
      KeyDistribution::kAscending, KeyDistribution::kDescending};
  return kAll;
}

[[nodiscard]] inline std::optional<InsertPolicy> parse_insert_policy(
    std::string_view name) {
  for (const InsertPolicy p : all_insert_policies())
    if (name == insert_policy_name(p)) return p;
  return std::nullopt;
}

[[nodiscard]] inline std::optional<KeyDistribution> parse_key_distribution(
    std::string_view name) {
  for (const KeyDistribution d : all_key_distributions())
    if (name == key_distribution_name(d)) return d;
  return std::nullopt;
}

/// Which sides of the scheduler a given thread drives under a policy.
struct ThreadRole {
  bool inserts;
  bool deletes;
};

/// Deterministic role assignment. threads == 0 is treated as 1.
[[nodiscard]] constexpr ThreadRole thread_role(InsertPolicy policy,
                                               unsigned tid,
                                               unsigned threads) noexcept {
  const unsigned p = threads == 0 ? 1 : threads;
  switch (policy) {
    case InsertPolicy::kUniform:
    case InsertPolicy::kAlternating:
      return {true, true};
    case InsertPolicy::kSplit:
      if (p < 2) return {true, true};
      return {tid < p / 2, tid >= p / 2};
    case InsertPolicy::kProducer:
      if (p < 2) return {true, true};
      return {tid == 0, tid != 0};
  }
  return {true, true};
}

/// Per-thread op sequencing: next_is_insert() realizes the policy as a
/// stream of insert/delete decisions. Strictly thread-local.
class OpSequencer {
 public:
  OpSequencer(InsertPolicy policy, unsigned tid, unsigned threads)
      : policy_(policy), role_(thread_role(policy, tid, threads)) {}

  [[nodiscard]] ThreadRole role() const noexcept { return role_; }

  template <typename Engine>
  [[nodiscard]] bool next_is_insert(Engine& rng) noexcept {
    if (!role_.deletes) return true;
    if (!role_.inserts) return false;
    if (policy_ == InsertPolicy::kAlternating) return (index_++ % 2) == 0;
    return (rng() & 1) != 0;  // kUniform (and degraded single-thread roles)
  }

 private:
  InsertPolicy policy_;
  ThreadRole role_;
  std::uint64_t index_ = 0;
};

/// Per-thread key stream for the insert side. feed() hands popped keys
/// back for the Dijkstra distribution (bounded ring; overflow drops the
/// oldest feedback, underflow falls back to a uniform draw).
class KeyGenerator {
 public:
  static constexpr std::uint32_t kDijkstraMinIncrease = 1;
  static constexpr std::uint32_t kDijkstraMaxIncrease = 100;
  static constexpr std::size_t kFeedbackCapacity = 4096;

  KeyGenerator(KeyDistribution dist, Priority universe, unsigned tid,
               unsigned threads)
      : dist_(dist),
        universe_(universe == 0 ? 1 : universe),
        stride_(threads == 0 ? 1 : threads) {
    ascending_ = std::min<std::uint64_t>(tid, universe_ - 1);
    descending_ = static_cast<std::int64_t>(universe_ - 1) -
                  static_cast<std::int64_t>(std::min<std::uint64_t>(
                      tid, universe_ - 1));
    if (dist_ == KeyDistribution::kDijkstra)
      feedback_.resize(kFeedbackCapacity);
  }

  [[nodiscard]] Priority universe() const noexcept { return universe_; }

  /// The next key to insert.
  template <typename Engine>
  [[nodiscard]] Priority next(Engine& rng) noexcept {
    switch (dist_) {
      case KeyDistribution::kUniform:
        return static_cast<Priority>(util::bounded(rng, universe_));
      case KeyDistribution::kDijkstra: {
        if (size_ == 0)
          return static_cast<Priority>(util::bounded(rng, universe_));
        const Priority base = feedback_[head_];
        head_ = (head_ + 1) % feedback_.size();
        --size_;
        const std::uint64_t key =
            static_cast<std::uint64_t>(base) +
            util::uniform_in(rng, kDijkstraMinIncrease, kDijkstraMaxIncrease);
        return static_cast<Priority>(
            std::min<std::uint64_t>(key, universe_ - 1));
      }
      case KeyDistribution::kAscending: {
        const auto key = static_cast<Priority>(ascending_);
        ascending_ = std::min<std::uint64_t>(ascending_ + stride_,
                                             universe_ - 1);
        return key;
      }
      case KeyDistribution::kDescending: {
        const auto key = static_cast<Priority>(descending_);
        descending_ = std::max<std::int64_t>(
            descending_ - static_cast<std::int64_t>(stride_), 0);
        return key;
      }
    }
    return 0;
  }

  /// Dijkstra feedback: a popped key to be re-emitted as key + offset.
  /// No-op for the other distributions.
  void feed(Priority popped) noexcept {
    if (dist_ != KeyDistribution::kDijkstra) return;
    if (size_ == feedback_.size()) return;  // ring full: drop (bounded mem)
    feedback_[(head_ + size_) % feedback_.size()] = popped;
    ++size_;
  }

  /// Pending Dijkstra feedback entries (tests / diagnostics).
  [[nodiscard]] std::size_t pending_feedback() const noexcept {
    return size_;
  }

 private:
  KeyDistribution dist_;
  Priority universe_;
  std::uint64_t stride_;
  std::uint64_t ascending_ = 0;    // next ascending key (saturating)
  std::int64_t descending_ = 0;    // next descending key (saturating)
  std::vector<Priority> feedback_; // Dijkstra ring buffer
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace relax::sched
