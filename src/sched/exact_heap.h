// Exact sequential scheduler: a plain min-heap, i.e. the k = 1 case.
// Algorithm 1 of the paper instantiated with this scheduler is the
// reference sequential execution every relaxed run must reproduce.
#pragma once

#include <optional>

#include "sched/dary_heap.h"
#include "sched/scheduler.h"

namespace relax::sched {

class ExactHeapScheduler {
 public:
  ExactHeapScheduler() = default;
  /// seed parameter accepted for interface uniformity with the relaxed
  /// schedulers; an exact heap has no randomness.
  explicit ExactHeapScheduler(std::uint64_t /*seed*/) {}

  void insert(Priority p) { heap_.push(p); }

  std::optional<Priority> approx_get_min() {
    if (heap_.empty()) return std::nullopt;
    return heap_.pop();
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  DaryHeap<Priority> heap_;
};

static_assert(SequentialScheduler<ExactHeapScheduler>);

}  // namespace relax::sched
