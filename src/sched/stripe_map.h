// StripeMap — stripe (sub-queue) placement as a named, swappable policy.
//
// Both MultiQueues used to treat their q sub-structures as one flat index
// space: pick_uniform insert targets, best-of-c pop sampling, strided
// bulk-insert dealing, all over [0, q). That is exactly right on one
// socket and exactly wrong on several — every claim and every splice
// bounces cache lines across the interconnect. This header hoists the
// index-selection arithmetic those backends (and sampling.h's helpers)
// each reimplemented into one partition policy:
//
//   * stripes are block-partitioned into `domains` contiguous groups
//     (domain d owns [d*S/D, (d+1)*S/D), every domain non-empty);
//   * a worker's handle carries its domain (util::WorkerPlacement ->
//     engine session state -> Handle::set_domain), and claims/inserts
//     prefer that domain's block;
//   * every steal_period-th pop sample targets another domain
//     (steal_domain cycles them), so no stripe is ever unreachable and a
//     domain whose workers stall cannot starve its labels — the bounded
//     bias that keeps the Definition 1 envelope (the rank analysis is
//     oblivious to WHICH stripes are sampled; the quality suite pins the
//     constant empirically);
//   * the probe-limit emptiness fallback stays a full GLOBAL scan:
//     "observed empty" still means every stripe of every domain was seen
//     empty, domains or not.
//
// select_and_claim_striped is the domain-aware twin of
// sampling.h's select_and_claim; with domains() == 1 the backends never
// call it and the flat path runs byte-for-byte unchanged.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sched/sampling.h"
#include "util/rng.h"

namespace relax::sched {

/// Partition of [0, stripes) into contiguous per-domain blocks, plus the
/// cross-domain steal schedule. Immutable once built; cheap to copy.
class StripeMap {
 public:
  /// One pop sample in `kStealPeriod` targets a foreign domain. Small
  /// enough that a stalled domain's labels surface within a handful of
  /// pops (fairness phi), large enough that the hot path stays local.
  static constexpr unsigned kStealPeriod = 8;

  StripeMap() = default;

  /// steal_period 0 disables cross-domain stealing entirely — claims only
  /// leave their domain through the full-scan emptiness fallback. That is
  /// a measurably worse scheduler (see the starved-domain quality leg);
  /// the knob exists for that demonstration and for ablation.
  explicit StripeMap(std::size_t num_stripes, unsigned num_domains,
                     unsigned steal_period = kStealPeriod)
      : stripes_(std::max<std::size_t>(num_stripes, 1)),
        domains_(static_cast<unsigned>(std::clamp<std::size_t>(
            num_domains == 0 ? 1 : num_domains, 1, stripes_))),
        steal_period_(steal_period) {}

  [[nodiscard]] std::size_t stripes() const noexcept { return stripes_; }
  [[nodiscard]] unsigned domains() const noexcept { return domains_; }
  [[nodiscard]] unsigned steal_period() const noexcept {
    return steal_period_;
  }

  /// First stripe of domain d's block.
  [[nodiscard]] std::size_t domain_begin(unsigned d) const noexcept {
    return (static_cast<std::uint64_t>(d) * stripes_) / domains_;
  }

  /// Number of stripes in domain d's block (>= 1: domains <= stripes).
  [[nodiscard]] std::size_t domain_size(unsigned d) const noexcept {
    return domain_begin(d + 1) - domain_begin(d);
  }

  /// Inverse of the block partition: the domain owning stripe i.
  [[nodiscard]] unsigned domain_of_stripe(std::size_t i) const noexcept {
    // begin(d) = floor(d*S/D), so the owner of i is the largest d with
    // begin(d) <= i, i.e. floor(((i+1)*D - 1) / S).
    return static_cast<unsigned>(
        ((static_cast<std::uint64_t>(i) + 1) * domains_ - 1) / stripes_);
  }

  /// The foreign domain the n-th steal from domain d targets: cycles
  /// through all other domains, so every stripe is reachable from every
  /// domain. Requires domains() >= 2 (callers only steal then).
  [[nodiscard]] unsigned steal_domain(unsigned d,
                                      std::uint64_t attempt) const noexcept {
    return static_cast<unsigned>((d + 1 + attempt % (domains_ - 1)) %
                                 domains_);
  }

 private:
  std::size_t stripes_ = 1;
  unsigned domains_ = 1;
  unsigned steal_period_ = kStealPeriod;
};

/// Per-handle locality state: which domain the owning worker belongs to,
/// the sample counter driving the steal cadence, and the local/steal claim
/// tally the engine flushes into obs metrics per slice. Strictly handle
///-local (one handle per worker-session), so plain ints.
struct StripeContext {
  unsigned domain = 0;
  std::uint64_t samples = 0;       // pop samples taken (steal cadence clock)
  std::uint64_t local_claims = 0;  // claims served from the own block
  std::uint64_t steal_claims = 0;  // claims served from a foreign stripe
};

/// Snapshot of a handle's claim-locality tally (Handle::stripe_stats()).
struct StripeStats {
  std::uint64_t local_claims = 0;
  std::uint64_t steal_claims = 0;
};

namespace sampling {

/// Policy view restricting a count()/peek(i) policy to one domain's block:
/// sample_best over this view draws best-of-c from the block alone.
template <typename Policy>
struct BlockPolicy {
  const Policy& base;
  std::size_t begin;
  std::size_t size;

  [[nodiscard]] std::size_t count() const { return size; }
  [[nodiscard]] auto peek(std::size_t i) const { return base.peek(begin + i); }
};

/// Domain-aware victim selection: best-of-`choices` within the handle's
/// own block, with every map.steal_period()-th sample redirected to
/// steal_domain's block, and the probe-limit fallback scanning ALL
/// stripes (emptiness and reachability keep their flat-path meaning —
/// `empty` is returned only when a full global scan saw every stripe of
/// every domain empty). claim(global_index) attempts the pop(s); falsy
/// means lost race, resample. Claims are tallied local vs. steal in `ctx`
/// by the domain that actually served them.
template <typename R, typename Policy, typename Claim>
R select_and_claim_striped(const Policy& policy, const StripeMap& map,
                           StripeContext& ctx, util::Rng& rng,
                           unsigned choices, int probe_limit, R empty,
                           Claim claim) {
  const auto record = [&](std::size_t stripe, R r) {
    if (map.domain_of_stripe(stripe) == ctx.domain)
      ++ctx.local_claims;
    else
      ++ctx.steal_claims;
    return r;
  };
  int empty_probes = 0;
  for (;;) {
    if (empty_probes >= probe_limit) {
      // Sampling keeps missing: full global scan, exactly as in the flat
      // select_and_claim — this is what preserves the observed-empty
      // contract (and reaches stripes of stalled domains even with
      // stealing disabled).
      const std::size_t found =
          scan_nonempty(policy, util::bounded(rng, policy.count()));
      if (found == policy.count()) return empty;
      empty_probes = 0;
      if (R r = claim(found)) return record(found, std::move(r));
      continue;
    }
    unsigned target = ctx.domain;
    const unsigned period = map.steal_period();
    const std::uint64_t sample = ctx.samples++;
    if (period != 0 && map.domains() > 1 && sample % period == period - 1)
      target = map.steal_domain(ctx.domain, sample / period);
    const BlockPolicy<Policy> block{policy, map.domain_begin(target),
                                    map.domain_size(target)};
    const Sampled s = sample_best(block, choices, rng);
    if (!s.nonempty) {
      ++empty_probes;
      continue;
    }
    const std::size_t stripe = block.begin + s.index;
    if (R r = claim(stripe)) return record(stripe, std::move(r));
    // Lost the claim race; resample.
  }
}

/// Insert target under a StripeMap: uniform within the inserting handle's
/// own block (placement is the point — inserts never steal).
template <typename Policy>
std::size_t pick_uniform_in_domain(const Policy& policy, const StripeMap& map,
                                   unsigned domain, util::Rng& rng) {
  const BlockPolicy<Policy> block{policy, map.domain_begin(domain),
                                 map.domain_size(domain)};
  return block.begin + util::bounded(rng, block.count());
}

}  // namespace sampling
}  // namespace relax::sched
