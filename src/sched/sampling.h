// Shared victim-selection machinery for sampled sub-structure schedulers.
//
// ConcurrentMultiQueue and LockFreeMultiQueue are the same stochastic
// process over different primitives: q sub-structures, a cheap per-index
// emptiness/head probe, best-of-c sampling on the pop side, a uniform
// random target on the insert side, and a randomized full scan as the
// emptiness fallback. This header hoists that loop so a sampling-policy
// change (probe limits, scan randomization, batch target selection) lands
// once instead of drifting per backend — the structural duplication called
// out in ROADMAP item 6.
//
// A backend plugs in with a lightweight Policy value:
//
//   std::size_t count() const;            // number of sub-structures
//   std::optional<K> peek(std::size_t i); // head key, nullopt == empty
//
// where K is any <-comparable key type (the MultiQueue's top-cache Key, the
// lock-free list's head Priority). peek must be safe without locks — it
// only guides the choice; claims re-verify under their own synchronization.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "util/rng.h"

namespace relax::sched::sampling {

struct Sampled {
  std::size_t index;
  bool nonempty;
};

/// Best of `choices` sampled sub-structures (c = 2 is the classic
/// power-of-two-choices rule; larger c tightens the rank distribution at
/// the cost of extra probes; 1 degrades to uniform single sampling with no
/// rank bound — the ablation knob). Candidates are drawn distinct from the
/// current best; an empty probe compares as +infinity.
template <typename Policy>
Sampled sample_best(const Policy& policy, unsigned choices, util::Rng& rng) {
  const std::size_t q = policy.count();
  std::size_t best = util::bounded(rng, q);
  auto tbest = policy.peek(best);
  for (unsigned c = 1; c < choices && q > 1; ++c) {
    std::size_t cand = util::bounded(rng, q - 1);
    if (cand >= best) ++cand;  // distinct from the current best
    auto tc = policy.peek(cand);
    if (tc && (!tbest || *tc < *tbest)) {
      best = cand;
      tbest = std::move(tc);
    }
  }
  return Sampled{best, tbest.has_value()};
}

/// Full probe scan beginning at `start` (wrapping): index of the first
/// sub-structure whose probe is non-empty, or count() when the whole scan
/// agrees the scheduler is empty. Callers pass a random start: a fixed
/// origin funnels every thread of a near-empty scheduler onto the
/// lowest-index non-empty sub-structure (contention plus a pop bias toward
/// whatever happens to live there).
template <typename Policy>
std::size_t scan_nonempty(const Policy& policy, std::size_t start) {
  const std::size_t q = policy.count();
  for (std::size_t i = 0; i < q; ++i) {
    const std::size_t idx = (start + i) % q;
    if (policy.peek(idx)) return idx;
  }
  return q;
}

/// Uniform random insert target: one sub-structure per insert (or per
/// batched insert run — the whole run lands in one sub-structure, which is
/// what makes a batched splice one coordination round trip).
template <typename Policy>
std::size_t pick_uniform(const Policy& policy, util::Rng& rng) {
  return util::bounded(rng, policy.count());
}

/// The victim-selection loop shared by single and batched claim paths:
/// sample best-of-`choices` sub-structures, falling back to a randomized
/// full scan after `probe_limit` consecutive empty samples. `claim(index)`
/// attempts the pop(s) on that sub-structure; a falsy result means "lost
/// the race — resample". Returns `empty` only when a full scan observed
/// every sub-structure empty.
template <typename R, typename Policy, typename Claim>
R select_and_claim(const Policy& policy, util::Rng& rng, unsigned choices,
                   int probe_limit, R empty, Claim claim) {
  int empty_probes = 0;
  for (;;) {
    if (empty_probes >= probe_limit) {
      // Random sampling keeps missing: scan every probe once. Only report
      // empty when the whole scan agrees; otherwise aim straight at a
      // non-empty sub-structure (may race and come back here).
      const std::size_t found =
          scan_nonempty(policy, util::bounded(rng, policy.count()));
      if (found == policy.count()) return empty;
      empty_probes = 0;
      if (R r = claim(found)) return r;
      continue;
    }
    const Sampled s = sample_best(policy, choices, rng);
    if (!s.nonempty) {
      ++empty_probes;
      continue;
    }
    if (R r = claim(s.index)) return r;
    // Lost the claim race; resample.
  }
}

}  // namespace relax::sched::sampling
