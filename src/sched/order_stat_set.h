// Order-statistics multiset over a dense priority universe [0, capacity).
//
// Backed by a Fenwick (binary indexed) tree of per-priority counts:
//   insert / erase              O(log U)
//   rank_of(p)  (# present < p) O(log U)
//   select(r)   (r-th smallest) O(log U)   -- single top-down descent
//   min()                       O(log U)
//
// Uses: the canonical top-k uniform scheduler (select a uniformly random
// rank among the top k), the spray-walk scheduler, and the exact mirror
// inside RelaxationMonitor that measures empirical rank error.
//
// Duplicates are first-class: the tree stores counts, not presence bits,
// so a priority may be present with any multiplicity — rank_of counts
// every copy and select() resolves ties by multiplicity. Framework
// executions never need this (labels are unique, and a re-inserted task
// reuses its label only after it was removed), but the steady-state
// harness's key distributions (sched/key_distribution.h) emit arbitrary
// colliding key streams, and its rank mirror must absorb them.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace relax::sched {

class OrderStatSet {
 public:
  explicit OrderStatSet(std::uint32_t capacity)
      : capacity_(capacity), tree_(capacity + 1, 0) {}

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool contains(std::uint32_t p) const noexcept {
    assert(p < capacity_);
    return present_at(p);
  }

  /// Multiplicity of p (0 when absent).
  [[nodiscard]] std::uint32_t count(std::uint32_t p) const noexcept {
    assert(p < capacity_);
    return rank_of(p + 1) - rank_of(p);
  }

  void insert(std::uint32_t p) {
    assert(p < capacity_);
    update(p, +1);
    ++size_;
  }

  void erase(std::uint32_t p) {
    assert(contains(p));
    update(p, -1);
    --size_;
  }

  /// Number of present priorities strictly smaller than p.
  [[nodiscard]] std::uint32_t rank_of(std::uint32_t p) const noexcept {
    std::uint32_t i = p;  // prefix sum over [0, p)
    std::uint32_t sum = 0;
    while (i > 0) {
      sum += tree_[i];
      i &= i - 1;
    }
    return sum;
  }

  /// r-th smallest present priority, r in [0, size()).
  [[nodiscard]] std::uint32_t select(std::uint32_t r) const noexcept {
    assert(r < size_);
    std::uint32_t pos = 0;
    std::uint32_t remaining = r + 1;
    // Highest power of two <= capacity_.
    std::uint32_t step = 1;
    while ((step << 1) <= capacity_) step <<= 1;
    for (; step > 0; step >>= 1) {
      const std::uint32_t next = pos + step;
      if (next <= capacity_ && tree_[next] < remaining) {
        remaining -= tree_[next];
        pos = next;
      }
    }
    return pos;  // pos is the 0-based priority (tree is 1-indexed)
  }

  /// Smallest present priority. Precondition: !empty().
  [[nodiscard]] std::uint32_t min() const noexcept { return select(0); }

 private:
  [[nodiscard]] bool present_at(std::uint32_t p) const noexcept {
    // present(p) == rank_of(p+1) - rank_of(p); cheaper: walk the implicit
    // interval tree. Simpler and still O(log U):
    return rank_of(p + 1) - rank_of(p) != 0;
  }

  void update(std::uint32_t p, int delta) noexcept {
    for (std::uint32_t i = p + 1; i <= capacity_; i += i & (0 - i))
      tree_[i] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(tree_[i]) + delta);
  }

  std::uint32_t capacity_;
  std::uint32_t size_ = 0;
  std::vector<std::uint32_t> tree_;
};

}  // namespace relax::sched
