#include "sched/spraylist.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace relax::sched {
namespace {

constexpr Priority kHeadKey = 0;  // head compares below every key by rule
constexpr Priority kTailKey = std::numeric_limits<Priority>::max();

}  // namespace

SprayList::SprayList(unsigned p, std::uint64_t seed)
    : seed_(seed), seq_rng_(seed ^ 0x5bd1e995u) {
  p = std::max(p, 1u);
  spray_height_ = std::bit_width(p);  // floor(log2 p) + 1
  spray_width_ = std::max<std::uint64_t>(
      1, (2ull * p + spray_height_ - 1) / spray_height_);
  head_ = allocate(kHeadKey, kMaxLevel);
  tail_ = allocate(kTailKey, kMaxLevel);
  for (int level = 0; level <= kMaxLevel; ++level)
    head_->next[level].store(tail_, std::memory_order_relaxed);
  head_->fully_linked.store(true, std::memory_order_release);
  tail_->fully_linked.store(true, std::memory_order_release);
}

SprayList::~SprayList() = default;  // registry frees every node

SprayList::Node* SprayList::allocate(Priority key, int level) {
  auto node = std::make_unique<Node>(key, level);
  Node* raw = node.get();
  std::lock_guard<util::Spinlock> guard(registry_lock_);
  registry_.push_back(std::move(node));
  return raw;
}

int SprayList::random_level(util::Rng& rng) {
  // Geometric with ratio 1/2, capped.
  const std::uint64_t r = rng();
  const int level = std::countr_one(r & ((1ull << kMaxLevel) - 1));
  return std::min(level, kMaxLevel);
}

int SprayList::find(Priority key, Node** preds, Node** succs) {
  int found_level = -1;
  Node* pred = head_;
  for (int level = kMaxLevel; level >= 0; --level) {
    Node* curr = pred->next[level].load(std::memory_order_acquire);
    // head/tail sentinels: head is below all keys, tail above all.
    while (curr != tail_ && curr->key < key) {
      pred = curr;
      curr = pred->next[level].load(std::memory_order_acquire);
    }
    if (found_level == -1 && curr != tail_ && curr->key == key)
      found_level = level;
    preds[level] = pred;
    succs[level] = curr;
  }
  return found_level;
}

void SprayList::insert(Priority key, util::Rng& rng) {
  const int top_level = random_level(rng);
  Node* preds[kMaxLevel + 1];
  Node* succs[kMaxLevel + 1];
  for (;;) {
    // The framework may re-insert a key that is still physically present in
    // marked form; duplicates are therefore allowed (the spray skips marked
    // nodes). We do not need the "wait for fully_linked twin" path of exact
    // sets: equal keys simply sit adjacent.
    find(key, preds, succs);

    // Lock predecessors bottom-up and validate.
    Node* locked[kMaxLevel + 1];
    int num_locked = 0;
    bool valid = true;
    Node* last_locked = nullptr;
    for (int level = 0; valid && level <= top_level; ++level) {
      Node* pred = preds[level];
      Node* succ = succs[level];
      if (pred != last_locked) {  // avoid re-locking the same node
        pred->lock.lock();
        locked[num_locked++] = pred;
        last_locked = pred;
      }
      valid = !pred->marked.load(std::memory_order_acquire) &&
              pred->next[level].load(std::memory_order_acquire) == succ;
    }
    if (!valid) {
      for (int i = num_locked - 1; i >= 0; --i) locked[i]->lock.unlock();
      continue;  // retry
    }
    Node* node = allocate(key, top_level);
    for (int level = 0; level <= top_level; ++level)
      node->next[level].store(succs[level], std::memory_order_relaxed);
    for (int level = 0; level <= top_level; ++level)
      preds[level]->next[level].store(node, std::memory_order_release);
    node->fully_linked.store(true, std::memory_order_release);
    for (int i = num_locked - 1; i >= 0; --i) locked[i]->lock.unlock();
    size_.fetch_add(1, std::memory_order_release);
    return;
  }
}

void SprayList::unlink(Node* victim) {
  // Lazy-skiplist remove, phase 2. The caller won the mark CAS, so it has
  // exclusive unlink duty. We hold victim's lock throughout: in-flight
  // inserts using victim as a predecessor serialize before us (they hold
  // victim's lock while linking) or abort (they validate !pred->marked).
  //
  // Lock discipline: every lock acquisition in this file targets a node
  // strictly *earlier* in list order than the locks already held (insert
  // locks preds bottom-up, which is non-increasing list position; unlink
  // holds victim and takes one predecessor at a time). Acquisition order is
  // therefore globally consistent and deadlock-free.
  std::lock_guard<util::Spinlock> victim_guard(victim->lock);
  for (int level = victim->top_level; level >= 0; --level) {
    for (;;) {
      // Locate the node whose next[level] is victim (pointer identity —
      // duplicates of the same key may precede it).
      Node* pred = head_;
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (curr != victim && curr != tail_ && curr->key <= victim->key) {
        pred = curr;
        curr = pred->next[level].load(std::memory_order_acquire);
      }
      if (curr != victim) break;  // not (or no longer) linked at this level
      pred->lock.lock();
      // The pred must be unmarked: a marked pred may already be unlinked
      // (its own remover redirects its *predecessor's* pointer, never its
      // outgoing ones), and redirecting a dead node's pointer would leave
      // the victim permanently linked — a resurrection that livelocks every
      // later insert validating against the marked-but-linked victim.
      const bool ok =
          !pred->marked.load(std::memory_order_acquire) &&
          pred->next[level].load(std::memory_order_acquire) == victim;
      if (ok) {
        pred->next[level].store(
            victim->next[level].load(std::memory_order_acquire),
            std::memory_order_release);
      }
      pred->lock.unlock();
      if (ok) break;
      // Predecessor changed under us: retry this level.
    }
  }
}

std::optional<Priority> SprayList::spray(util::Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (size_.load(std::memory_order_acquire) <= 0) return std::nullopt;
    // Randomized descent.
    Node* curr = head_;
    const int start_level =
        std::min<int>(static_cast<int>(spray_height_) - 1, kMaxLevel);
    for (int level = start_level; level >= 0; --level) {
      std::uint64_t jumps = util::bounded(rng, spray_width_ + 1);
      while (jumps > 0) {
        Node* nxt = curr->next[level].load(std::memory_order_acquire);
        if (nxt == tail_ || nxt == nullptr) break;
        curr = nxt;
        --jumps;
      }
    }
    // Walk forward from the landing point to the first claimable node.
    Node* cand =
        curr == head_ ? curr->next[0].load(std::memory_order_acquire) : curr;
    while (cand != tail_) {
      if (cand != head_ &&
          cand->fully_linked.load(std::memory_order_acquire) &&
          !cand->marked.load(std::memory_order_acquire)) {
        bool expected = false;
        if (cand->marked.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          size_.fetch_sub(1, std::memory_order_release);
          const Priority key = cand->key;
          unlink(cand);
          return key;
        }
      }
      cand = cand->next[0].load(std::memory_order_acquire);
    }
    // Fell off the end: retry (the list may still hold elements closer to
    // the head than our landing point, or be momentarily contended).
  }
  return std::nullopt;
}

}  // namespace relax::sched
