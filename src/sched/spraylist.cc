#include "sched/spraylist.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

namespace relax::sched {
namespace {

constexpr Priority kHeadKey = 0;  // head compares below every key by rule
constexpr Priority kTailKey = std::numeric_limits<Priority>::max();

}  // namespace

SprayList::SprayParams SprayList::spray_params(unsigned p) noexcept {
  p = std::max(p, 1u);
  const std::uint32_t height = std::bit_width(p);  // floor(log2 p) + 1
  const std::uint64_t width =
      std::max<std::uint64_t>(1, (2ull * p + height - 1) / height);
  return SprayParams{height, width};
}

SprayList::SprayList(unsigned p, std::uint64_t seed)
    : seed_(seed), seq_rng_(seed ^ 0x5bd1e995u) {
  const SprayParams params = spray_params(p);
  spray_height_ = params.height;
  spray_width_ = params.width;
  head_ = allocate(kHeadKey, kMaxLevel);
  tail_ = allocate(kTailKey, kMaxLevel);
  for (int level = 0; level <= kMaxLevel; ++level)
    head_->next[level].store(tail_, std::memory_order_relaxed);
  head_->fully_linked.store(true, std::memory_order_release);
  tail_->fully_linked.store(true, std::memory_order_release);
}

SprayList::~SprayList() = default;  // registry frees every node

SprayList::Node* SprayList::allocate(Priority key, int level) {
  auto node = std::make_unique<Node>(key, level);
  Node* raw = node.get();
  std::lock_guard<util::Spinlock> guard(registry_lock_);
  registry_.push_back(std::move(node));
  return raw;
}

int SprayList::random_level(util::Rng& rng) {
  // Geometric with ratio 1/2, capped.
  const std::uint64_t r = rng();
  const int level = std::countr_one(r & ((1ull << kMaxLevel) - 1));
  return std::min(level, kMaxLevel);
}

int SprayList::find(Priority key, Node** preds, Node** succs) {
  int found_level = -1;
  Node* pred = head_;
  for (int level = kMaxLevel; level >= 0; --level) {
    Node* curr = pred->next[level].load(std::memory_order_acquire);
    // head/tail sentinels: head is below all keys, tail above all.
    while (curr != tail_ && curr->key < key) {
      pred = curr;
      curr = pred->next[level].load(std::memory_order_acquire);
    }
    if (found_level == -1 && curr != tail_ && curr->key == key)
      found_level = level;
    preds[level] = pred;
    succs[level] = curr;
  }
  return found_level;
}

void SprayList::find_from(Priority key, Node** preds, Node** succs) {
  // Like find, but each level's walk may start from the better of the
  // carried-over predecessor and the caller's per-level hint. Every hint
  // was a predecessor for a key <= `key`, so hint->key < key always holds
  // and the walk never has to move backwards. A hint that has since been
  // unlinked still works as a starting point: its forward pointers are
  // frozen at unlink time and re-join the live list (nodes are only freed
  // at destruction), and any stale position it produces is caught by
  // try_insert_at's validation.
  Node* pred = head_;
  for (int level = kMaxLevel; level >= 0; --level) {
    Node* hint = preds[level];
    if (hint != nullptr && hint != head_ && hint->key > pred->key) pred = hint;
    Node* curr = pred->next[level].load(std::memory_order_acquire);
    while (curr != tail_ && curr->key < key) {
      pred = curr;
      curr = pred->next[level].load(std::memory_order_acquire);
    }
    preds[level] = pred;
    succs[level] = curr;
  }
}

bool SprayList::try_insert_at(Priority key, int top_level, Node* const* preds,
                              Node* const* succs) {
  // Lock predecessors bottom-up and validate.
  Node* locked[kMaxLevel + 1];
  int num_locked = 0;
  bool valid = true;
  Node* last_locked = nullptr;
  for (int level = 0; valid && level <= top_level; ++level) {
    Node* pred = preds[level];
    Node* succ = succs[level];
    if (pred != last_locked) {  // avoid re-locking the same node
      pred->lock.lock();
      locked[num_locked++] = pred;
      last_locked = pred;
    }
    // A *marked* pred is fine to link after — logically deleted nodes
    // stay physically present until the prefix cleaner reaches them, and
    // refusing them as predecessors would livelock every insert whose
    // key lands just past a marked node. Only an *unlinked* pred is
    // dangerous: its outgoing pointers are dead, so a node hung off it
    // would be unreachable.
    valid = !pred->unlinked.load(std::memory_order_acquire) &&
            pred->next[level].load(std::memory_order_acquire) == succ;
  }
  if (!valid) {
    for (int i = num_locked - 1; i >= 0; --i) locked[i]->lock.unlock();
    return false;
  }
  Node* node = allocate(key, top_level);
  for (int level = 0; level <= top_level; ++level)
    node->next[level].store(succs[level], std::memory_order_relaxed);
  for (int level = 0; level <= top_level; ++level)
    preds[level]->next[level].store(node, std::memory_order_release);
  node->fully_linked.store(true, std::memory_order_release);
  for (int i = num_locked - 1; i >= 0; --i) locked[i]->lock.unlock();
  size_.fetch_add(1, std::memory_order_release);
  return true;
}

void SprayList::insert(Priority key, util::Rng& rng) {
  const int top_level = random_level(rng);
  Node* preds[kMaxLevel + 1];
  Node* succs[kMaxLevel + 1];
  for (;;) {
    // The framework may re-insert a key that is still physically present in
    // marked form; duplicates are therefore allowed (the spray skips marked
    // nodes). We do not need the "wait for fully_linked twin" path of exact
    // sets: equal keys simply sit adjacent.
    find(key, preds, succs);
    if (try_insert_at(key, top_level, preds, succs)) return;
  }
}

void SprayList::insert_batch(std::span<const Priority> keys, util::Rng& rng) {
  // One descent for the whole run: the keys are sorted ascending and each
  // key's search resumes from the previous key's predecessors (find_from),
  // so the batch pays roughly one head-to-landing traversal plus one
  // forward link per key instead of a full descent per key. On a failed
  // optimistic link the hints are discarded and that key falls back to a
  // fresh head search — correctness never depends on hint freshness.
  if (keys.empty()) return;
  // Already-sorted runs link straight from the caller's span; only
  // unsorted runs pay a copy + sort.
  std::span<const Priority> sorted = keys;
  std::vector<Priority> scratch;
  if (!std::is_sorted(keys.begin(), keys.end())) {
    scratch.assign(keys.begin(), keys.end());
    std::sort(scratch.begin(), scratch.end());
    sorted = scratch;
  }
  Node* preds[kMaxLevel + 1];
  Node* succs[kMaxLevel + 1];
  for (int level = 0; level <= kMaxLevel; ++level) preds[level] = head_;
  for (const Priority key : sorted) {
    const int top_level = random_level(rng);
    find_from(key, preds, succs);
    while (!try_insert_at(key, top_level, preds, succs)) {
      find(key, preds, succs);  // hints went stale: full search
    }
  }
}

void SprayList::unlink(Node* victim) {
  // Lazy-skiplist remove, phase 2, invoked only by the prefix cleaner
  // (cleaner_lock_ serializes callers, so each node is unlinked once). We
  // hold victim's lock throughout: in-flight inserts using victim as a
  // predecessor serialize before us (they hold victim's lock while
  // linking) or abort (they validate !pred->unlinked).
  //
  // Lock discipline: every lock acquisition in this file targets a node
  // strictly *earlier* in list order than the locks already held (insert
  // locks preds bottom-up, which is non-increasing list position; unlink
  // holds victim and takes one predecessor at a time). Acquisition order is
  // therefore globally consistent and deadlock-free.
  std::lock_guard<util::Spinlock> victim_guard(victim->lock);
  // Publish "outgoing pointers are dead" before any pointer is redirected:
  // inserts validating against victim must abort from now on.
  victim->unlinked.store(true, std::memory_order_release);
  for (int level = victim->top_level; level >= 0; --level) {
    for (;;) {
      // Locate the node whose next[level] is victim (pointer identity —
      // duplicates of the same key may precede it).
      Node* pred = head_;
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (curr != victim && curr != tail_ && curr->key <= victim->key) {
        pred = curr;
        curr = pred->next[level].load(std::memory_order_acquire);
      }
      if (curr != victim) break;  // not (or no longer) linked at this level
      pred->lock.lock();
      // The pred must not itself be unlinked: redirecting a dead node's
      // pointer would leave the victim permanently linked — a resurrection
      // that livelocks later inserts validating against it. (Merely
      // *marked* preds are fine: they are still physically in the list.)
      const bool ok =
          !pred->unlinked.load(std::memory_order_acquire) &&
          pred->next[level].load(std::memory_order_acquire) == victim;
      if (ok) {
        pred->next[level].store(
            victim->next[level].load(std::memory_order_acquire),
            std::memory_order_release);
      }
      pred->lock.unlock();
      if (ok) break;
      // Predecessor changed under us: retry this level.
    }
  }
}

SprayList::Node* SprayList::spray_descent(int attempt, util::Rng& rng) {
  // After kRandomAttempts failed descents, degrade to a deterministic
  // bottom-level walk from the head (an exact-min claim). Randomized
  // descents can keep overshooting when only a few live nodes remain ahead
  // of marked-but-not-yet-reclaimed ones, and without the fallback a
  // quiescent non-empty list could report "observed empty".
  constexpr int kRandomAttempts = 8;
  Node* curr = head_;
  const int start_level =
      std::min<int>(static_cast<int>(spray_height_) - 1, kMaxLevel);
  for (int level = attempt < kRandomAttempts ? start_level : -1; level >= 0;
       --level) {
    std::uint64_t jumps = util::bounded(rng, spray_width_ + 1);
    while (jumps > 0) {
      Node* nxt = curr->next[level].load(std::memory_order_acquire);
      if (nxt == tail_ || nxt == nullptr) break;
      curr = nxt;
      --jumps;
    }
  }
  return curr == head_ ? curr->next[0].load(std::memory_order_acquire) : curr;
}

template <typename Sink>
std::size_t SprayList::spray_claim(std::size_t k, util::Rng& rng, Sink sink) {
  // One descent, up to k claims: after the spray lands, keep walking the
  // bottom level claiming unmarked nodes until the batch is full. The i-th
  // claim sits at most i live nodes past the landing rank, so a batch's
  // rank envelope is the spray reach plus k — amortizing the whole descent
  // (and the single clean_prefix pass) over k pops. Claims are logical
  // deletes only: nodes stay linked as waypoints (see the header's quality
  // note); physical removal happens when the marked prefix reaches them.
  if (k == 0) return 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (size_.load(std::memory_order_acquire) <= 0) return 0;
    Node* cand = spray_descent(attempt, rng);
    std::size_t got = 0;
    while (cand != tail_ && got < k) {
      if (cand != head_ &&
          cand->fully_linked.load(std::memory_order_acquire) &&
          !cand->marked.load(std::memory_order_acquire)) {
        bool expected = false;
        if (cand->marked.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          size_.fetch_sub(1, std::memory_order_release);
          sink(cand->key);
          ++got;
        }
      }
      cand = cand->next[0].load(std::memory_order_acquire);
    }
    if (got > 0) {
      clean_prefix();
      return got;
    }
    // Claimed nothing: retry (later attempts land closer to the head, and
    // past kRandomAttempts the descent degrades to an exact head walk).
  }
  return 0;
}

std::optional<Priority> SprayList::spray(util::Rng& rng) {
  std::optional<Priority> popped;
  spray_claim(1, rng, [&](Priority key) { popped = key; });
  return popped;
}

std::size_t SprayList::spray_batch(std::size_t k, std::vector<Priority>& out,
                                   util::Rng& rng) {
  return spray_claim(k, rng, [&](Priority key) { out.push_back(key); });
}

void SprayList::clean_prefix() {
  // One cleaner at a time is enough — contenders just leave the prefix for
  // the next claim to strip.
  if (!cleaner_lock_.try_lock()) return;
  std::lock_guard<util::Spinlock> guard(cleaner_lock_, std::adopt_lock);
  for (;;) {
    Node* first = head_->next[0].load(std::memory_order_acquire);
    if (first == tail_ || first == nullptr) return;
    if (!first->marked.load(std::memory_order_acquire)) return;
    // first is the minimum physical node and it is dead: unlink it at
    // every level (its per-level predecessor search is O(1) — the head,
    // give or take an in-flight insert) and re-check the new front.
    unlink(first);
  }
}

}  // namespace relax::sched
