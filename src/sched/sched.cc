// Header-hygiene translation unit: instantiates every scheduler header so
// each is compiled stand-alone at least once.
#include "sched/concurrent_multiqueue.h"
#include "sched/dary_heap.h"
#include "sched/exact_heap.h"
#include "sched/faa_array_queue.h"
#include "sched/kbounded.h"
#include "sched/lockfree_multiqueue.h"
#include "sched/mpmc_queue.h"
#include "sched/order_stat_set.h"
#include "sched/relaxation_monitor.h"
#include "sched/scheduler.h"
#include "sched/sim_multiqueue.h"
#include "sched/sim_spraylist.h"
#include "sched/topk_uniform.h"

namespace relax::sched {

// Explicit instantiations exercised by the archive.
template class DaryHeap<Priority>;
template class MpmcQueue<Priority>;
template class RelaxationMonitor<ExactHeapScheduler>;
template class RelaxationMonitor<SimMultiQueue>;
template class RelaxationMonitor<TopKUniformScheduler>;
template class RelaxationMonitor<SimSprayList>;
template class RelaxationMonitor<KBoundedScheduler>;

}  // namespace relax::sched
