#include "sched/backend_registry.h"

namespace relax::sched {

namespace {

// Stable presentation order: scalable relaxed structures first, then the
// lock-serialized simulations and deterministic baselines. Names are part
// of the CLI/bench interface — append, don't rename.
constexpr BackendInfo kRegistry[] = {
    {"multiqueue-c2", BackendKind::kMultiQueue, 2, false, true,
     "locked MultiQueue, two-choice sampling (paper default)"},
    {"multiqueue-c4", BackendKind::kMultiQueue, 4, false, true,
     "locked MultiQueue, four sampled sub-queues per pop"},
    {"multiqueue-c8", BackendKind::kMultiQueue, 8, false, true,
     "locked MultiQueue, eight sampled sub-queues per pop"},
    {"lockfree-multiqueue", BackendKind::kLockFreeMultiQueue, 2, false, true,
     "Harris-list MultiQueue (the paper's lock-free variant)"},
    {"spraylist", BackendKind::kSprayList, 0, false, true,
     "lazy skip list with randomized spray deletes (PPoPP'15)"},
    {"sim-multiqueue", BackendKind::kSimMultiQueue, 2, false, false,
     "lock-serialized sequential MultiQueue simulation (Table 1)"},
    {"sim-spraylist", BackendKind::kSimSprayList, 0, false, false,
     "lock-serialized sequential spray simulation"},
    {"kbounded", BackendKind::kKBounded, 0, true, false,
     "deterministic k-bounded window (k-LSM family), exact every k-th pop"},
    {"exact", BackendKind::kExact, 0, true, false,
     "lock-serialized exact min-heap, the k = 1 baseline"},
};

}  // namespace

std::span<const BackendInfo> backend_registry() { return kRegistry; }

const BackendInfo* find_backend(std::string_view name) {
  for (const auto& info : kRegistry) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const BackendInfo& backend_or_throw(std::string_view name) {
  if (const BackendInfo* info = find_backend(name)) return *info;
  throw std::invalid_argument("unknown scheduler backend '" +
                              std::string(name) + "'; valid backends: " +
                              backend_names());
}

std::string backend_names() {
  std::string names;
  for (const auto& info : kRegistry) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

const BackendInfo& default_backend() { return kRegistry[0]; }

}  // namespace relax::sched
