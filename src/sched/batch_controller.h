// Per-worker batch-size controller — the policy half of a scheduler
// *session* (engine/job.h caches the other half, the per-worker handle).
//
// The claim-feedback rule started life inside RelaxedJob (PR 4): a full
// batch doubles the next claim toward the cap (sustained load — amortize
// the sample/lock/CAS round trip harder), a short or empty claim resets it
// to 1 (the sampled sub-structure ran dry; near drain, large batches only
// buy rank error, see sched::batched_rank_bound). Hoisted here it is
// reusable by anything that pops in batches — the engine's job loop and
// SSSP's standalone label-correcting executor both ride it — and it gains
// an *occupancy* input: every consult_period claims the controller reads
// the backend's striped size() (racy, O(q), and only advisory — exactly
// like the sampling probes in sched/sampling.h) and overrides the
// feedback ramp from global state:
//
//   live >= high watermark   deep backlog: jump straight to the cap
//                            instead of doubling up through it
//   live <= low watermark    one claim round across the pool could drain
//                            everything visible: fall back to single pops
//                            and their tight Definition 1 envelope, and PIN
//                            there (feedback ramping suspended) until a
//                            later consult observes the backlog recovering
//
// Both watermarks scale with the pool width the controller serves
// alongside (the num_workers constructor argument): occupancy is a GLOBAL
// reading, and W workers each claiming a full cap drain W*cap labels per
// round — so "deep backlog" means cap * 16 * W and "near drain" means
// cap * W. Width 1 (the default) preserves the original single-executor
// thresholds exactly.
//
// With measured_watermarks the static marks are only the COLD-START
// values: each occupancy consult also closes a drain window — the labels
// this worker's claims actually delivered since the previous consult,
// over the wall time between them. EWMAs of the drain rate (labels/sec)
// and the window duration give the expected per-window drain, and the
// marks are re-derived from it: low = per-window drain * W ("the pool
// clears everything visible within one consult window"), high = low *
// kDefaultLoadFactor (unless an explicit high watermark was given, which
// always wins). A worker claiming small batches against a slow scheduler
// thus pins near-drain at a proportionally smaller backlog than the
// static cap-derived guess, and a fast drainer keeps ramping where the
// static marks would have pinned it. Idle or empty windows (nothing
// delivered, or no time elapsed on a coarse clock) keep the previous
// marks — the static fallback persists until there is real evidence.
//
// Between the two marks the claim-feedback ramp runs untouched. The
// occupancy source is a policy value in the style of sampling.h's
// count()/peek() policies:
//
//   std::optional<std::size_t> size() const;   // nullopt == unknown
//
// QueueOccupancy<Queue> adapts any backend: it reports the backend's
// size() when one exists (all registry backends stripe it per
// sub-structure, so the read is cheap and lock-free) and nullopt
// otherwise, which keeps the controller pure claim-feedback.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace relax::sched {

/// Occupancy policy over a backend pointer: the striped size() snapshot
/// when the backend has one, nullopt otherwise. peek-style: no locks, no
/// side effects; staleness only perturbs the claim-size choice.
template <typename Queue>
struct QueueOccupancy {
  const Queue* queue;

  [[nodiscard]] std::optional<std::size_t> size() const {
    if constexpr (requires { queue->size(); }) {
      return queue->size();
    } else {
      return std::nullopt;
    }
  }
};

/// Occupancy policy for callers without a global view (tests, backends
/// that cannot count): the controller stays pure claim-feedback.
struct NoOccupancy {
  [[nodiscard]] std::optional<std::size_t> size() const {  // NOLINT
    return std::nullopt;
  }
};

/// One worker's claim-size state. Strictly thread-local (one controller
/// per worker, like one handle per worker); all methods are O(1) except
/// the every-consult_period occupancy read, whose cost is the policy's.
class BatchController {
 public:
  /// Regime-transition tally, kept by the controller itself (plain ints —
  /// the controller is thread-local) so observability layers can report
  /// when and how often the sizing policy changed mode. Jobs flush deltas
  /// into the engine's obs::MetricsRegistry per slice.
  struct Transitions {
    std::uint64_t ramps = 0;          // feedback doubled the claim
    std::uint64_t resets = 0;         // short claim reset it to 1
    std::uint64_t backlog_jumps = 0;  // consult jumped straight to the cap
    std::uint64_t drain_pins = 0;     // consult pinned single pops
  };

  /// Claims between occupancy consults. The consult is an O(q) striped-
  /// counter walk; once per 64 claims it is noise next to the pops it
  /// spans, while still reacting within one slice of a typical budget.
  static constexpr std::uint32_t kDefaultConsultPeriod = 64;
  /// High watermark as a multiple of the cap when none is given: a
  /// backlog >= 16 caps cannot be drained by any single claim, so the
  /// doubling ramp is pure latency — jump to the cap.
  static constexpr std::uint32_t kDefaultLoadFactor = 16;

  /// Clock seam for the measured-watermark mode, injectable so tests can
  /// drive windows deterministically; nullptr = steady_clock.
  using NowFn = std::uint64_t (*)();

  BatchController() = default;

  /// cap: the largest claim ever issued (JobConfig::pop_batch). adaptive
  /// off degrades next_claim to the fixed cap and feedback to a no-op, so
  /// callers need no mode branches. high_watermark 0 derives
  /// cap * kDefaultLoadFactor * num_workers (and, with measured_watermarks,
  /// lets the drain-rate derivation replace both marks once a window of
  /// evidence exists; a nonzero explicit high watermark always wins).
  /// num_workers is the width of the pool this controller's worker belongs
  /// to — both watermarks gate a GLOBAL occupancy reading, so they scale
  /// with how much the whole pool drains per claim round (see file
  /// header); 0 is treated as 1.
  explicit BatchController(std::uint32_t cap, bool adaptive,
                           std::uint64_t high_watermark = 0,
                           std::uint32_t consult_period = kDefaultConsultPeriod,
                           std::uint32_t num_workers = 1,
                           bool measured_watermarks = false,
                           NowFn now_ns = nullptr)
      : cap_(std::max<std::uint32_t>(cap, 1)),
        adaptive_(adaptive),
        high_(high_watermark != 0
                  ? high_watermark
                  : static_cast<std::uint64_t>(std::max<std::uint32_t>(cap, 1)) *
                        kDefaultLoadFactor *
                        std::max<std::uint32_t>(num_workers, 1)),
        low_(static_cast<std::uint64_t>(std::max<std::uint32_t>(cap, 1)) *
             std::max<std::uint32_t>(num_workers, 1)),
        consult_period_(std::max<std::uint32_t>(consult_period, 1)),
        width_(std::max<std::uint32_t>(num_workers, 1)),
        measured_(measured_watermarks),
        explicit_high_(high_watermark),
        now_(now_ns) {}

  /// The claim size for the next scheduler touch. Consults `occupancy`
  /// every consult_period calls; an unknown occupancy (nullopt) leaves the
  /// claim-feedback value (and any standing drain pin) untouched.
  template <typename Occupancy>
  [[nodiscard]] std::uint32_t next_claim(const Occupancy& occupancy) {
    if (!adaptive_) return cap_;
    if (++touches_ >= consult_period_) {
      touches_ = 0;
      if (measured_) consult_drain();
      if (const auto live = occupancy.size()) {
        if (*live >= high_) {
          if (k_ != cap_ || drain_pinned_) ++transitions_.backlog_jumps;
          k_ = cap_;  // deep backlog: skip the doubling ramp
          drain_pinned_ = false;
        } else if (*live <= low_) {
          // Near drain: single pops and their tight rank envelope. The pin
          // STICKS until a later consult observes recovery — a handful of
          // leftover items can still fill claims of 1, 2, 4, ..., and
          // letting that feedback re-ramp to the cap against a nearly
          // drained scheduler is exactly the O(k*q) rank charge this rule
          // exists to avoid.
          if (!drain_pinned_) ++transitions_.drain_pins;
          k_ = 1;
          drain_pinned_ = true;
        } else {
          drain_pinned_ = false;  // backlog recovered: the ramp rules again
        }
      }
    }
    return k_;
  }

  /// Claim feedback. `asked` is what was actually requested from the
  /// scheduler (callers may shrink next_claim()'s value against an
  /// external budget — a budget-capped claim is not evidence of load, so
  /// it never ramps); `got` is what the scheduler delivered. A short
  /// claim means the chosen sub-structure ran dry: reset to 1. A full
  /// un-shrunk claim doubles toward the cap — unless the last occupancy
  /// consult pinned the controller near drain, in which case the ramp is
  /// suppressed until a consult sees the backlog recover.
  void feedback(std::uint32_t asked, std::uint32_t got) {
    if (!adaptive_) return;
    // Drain accounting for the measured-watermark window: every label the
    // scheduler actually delivered, whatever the regime.
    if (measured_) delivered_window_ += got;
    if (got < asked) {
      if (k_ != 1) ++transitions_.resets;
      k_ = 1;
    } else if (!drain_pinned_ && asked >= k_ && k_ < cap_) {
      k_ = std::min(cap_, k_ * 2);
      ++transitions_.ramps;
    }
  }

  [[nodiscard]] std::uint32_t cap() const noexcept { return cap_; }
  [[nodiscard]] bool adaptive() const noexcept { return adaptive_; }
  /// The current claim size (what next_claim would return absent a
  /// consult). Exposed for stats/tests.
  [[nodiscard]] std::uint32_t current() const noexcept {
    return adaptive_ ? k_ : cap_;
  }

  /// Cumulative regime-transition counts since construction.
  [[nodiscard]] const Transitions& transitions() const noexcept {
    return transitions_;
  }

  /// The watermarks currently gating occupancy consults — the static
  /// cold-start values until a measured window replaces them. Exposed for
  /// stats/tests.
  [[nodiscard]] std::uint64_t high_watermark() const noexcept { return high_; }
  [[nodiscard]] std::uint64_t low_watermark() const noexcept { return low_; }

 private:
  /// Closes one drain window (called at every occupancy consult in
  /// measured mode) and re-derives the watermarks from the EWMA drain
  /// rate. Windows with no deliveries or no elapsed time leave the marks
  /// untouched — cold-start and idle phases keep the static fallback.
  void consult_drain() {
    const std::uint64_t now =
        now_ != nullptr ? now_()
                        : static_cast<std::uint64_t>(
                              std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now()
                                      .time_since_epoch())
                                  .count());
    const std::uint64_t delivered = delivered_window_;
    delivered_window_ = 0;
    if (!window_open_) {
      window_open_ = true;
      window_start_ = now;
      return;
    }
    const std::uint64_t elapsed = now - window_start_;
    window_start_ = now;
    if (delivered == 0 || elapsed == 0) return;
    // Drain rate this worker sustained over the window (labels/sec), and
    // the window's duration, both EWMA-smoothed (alpha = 1/2) so one
    // anomalous window cannot whipsaw the marks.
    const double rate = static_cast<double>(delivered) * 1e9 /
                        static_cast<double>(elapsed);
    rate_ewma_ = rate_ewma_ == 0.0 ? rate : (rate_ewma_ + rate) / 2.0;
    window_ns_ewma_ = window_ns_ewma_ == 0.0
                          ? static_cast<double>(elapsed)
                          : (window_ns_ewma_ + static_cast<double>(elapsed)) / 2.0;
    // Expected labels the POOL clears per consult window: this worker's
    // rate * window * width. That is the measured meaning of "one claim
    // round across the pool could drain everything visible".
    const double per_window = rate_ewma_ * window_ns_ewma_ / 1e9;
    const auto low = static_cast<std::uint64_t>(
        std::max(1.0, per_window * static_cast<double>(width_)));
    low_ = low;
    high_ = explicit_high_ != 0
                ? explicit_high_
                : std::max<std::uint64_t>(low + 1, low * kDefaultLoadFactor);
  }

  std::uint32_t cap_ = 1;
  bool adaptive_ = false;
  std::uint64_t high_ = kDefaultLoadFactor;
  std::uint64_t low_ = 1;  // near-drain watermark: cap * pool width
  std::uint32_t consult_period_ = kDefaultConsultPeriod;
  std::uint32_t k_ = 1;        // current adaptive claim size
  std::uint32_t touches_ = 0;  // claims since the last occupancy consult
  bool drain_pinned_ = false;  // last consult saw near-drain: no ramping
  Transitions transitions_;    // regime-change tally for observability

  // Measured-watermark state (all thread-local like the rest).
  std::uint32_t width_ = 1;            // pool width the marks scale by
  bool measured_ = false;              // re-derive marks from drain rate
  std::uint64_t explicit_high_ = 0;    // caller-given high mark (wins)
  NowFn now_ = nullptr;                // test clock seam
  bool window_open_ = false;           // first consult only seeds the window
  std::uint64_t window_start_ = 0;     // ns stamp of the open window
  std::uint64_t delivered_window_ = 0; // labels delivered since then
  double rate_ewma_ = 0.0;             // labels/sec (0 = unmeasured)
  double window_ns_ewma_ = 0.0;        // consult window duration
};

}  // namespace relax::sched
