// Backend registry — every concurrent scheduler in the library as a named,
// first-class execution backend.
//
// The paper's claims are about a *family* of relaxed schedulers
// (MultiQueues, SprayList-style skip lists, deterministic k-bounded
// windows), all interchangeable behind Insert/ApproxGetMin. The registry
// makes that family operational: each entry maps a stable name (the key
// used by `relaxsched --backend=`, `bench/backend_matrix`, the engine's
// submit_relaxed_backend, and the conformance/quality test fixtures) to the
// backend's kind, its sampling parameters, and metadata (deterministic?
// lock-serialized adapter or genuinely scalable?).
//
// Because the backends are heterogeneous C++ types, the "factory closure"
// is expressed as a visitor: dispatch_backend(info, params, f) invokes
// f(BackendTag<Queue>{}, ctor-args...) with the concrete scheduler type and
// its fully resolved constructor arguments. Callers either construct on the
// stack (tests, benches) or inside an owning job (engine/backend_jobs.h) —
// one registry, no type erasure at the scheduler layer.
//
// Sizing conventions, mirroring the paper's experiments:
//   * MultiQueue family: q = queue_factor * threads sub-queues (paper: 4).
//   * SprayList: spray height/width derived from the thread count p.
//   * k-bounded / sequential simulations: relaxation k defaults to q, so
//     locked baselines are parameter-matched with the scalable backends.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sched/concurrent_multiqueue.h"
#include "sched/exact_heap.h"
#include "sched/kbounded.h"
#include "sched/lockfree_multiqueue.h"
#include "sched/scheduler.h"
#include "sched/sim_multiqueue.h"
#include "sched/sim_spraylist.h"
#include "sched/spraylist.h"

namespace relax::sched {

enum class BackendKind : std::uint8_t {
  kMultiQueue,          // ConcurrentMultiQueue (locked sub-queues, top cache)
  kLockFreeMultiQueue,  // Harris-list MultiQueue (the paper's own variant)
  kSprayList,           // lazy skip list with randomized spray deletes
  kSimMultiQueue,       // LockedScheduler<SimMultiQueue> (Table 1 simulation)
  kSimSprayList,        // LockedScheduler<SimSprayList>
  kKBounded,            // LockedScheduler<KBoundedScheduler>, deterministic
  kExact,               // LockedScheduler<ExactHeapScheduler>, k = 1 baseline
};

struct BackendInfo {
  std::string_view name;         // registry key, e.g. "multiqueue-c4"
  BackendKind kind;
  unsigned choices;              // sampled sub-queues per pop (MQ family)
  bool deterministic;            // pop sequence is schedule-independent when
                                 // driven single-threaded with a fixed seed
  bool scalable;                 // true concurrent structure (false: one-lock
                                 // adapter, correctness/quality baseline)
  std::string_view description;  // one line for --help / README
};

/// All registered backends, in stable presentation order.
[[nodiscard]] std::span<const BackendInfo> backend_registry();

/// Lookup by registry name; nullptr when unknown.
[[nodiscard]] const BackendInfo* find_backend(std::string_view name);

/// Lookup that throws std::invalid_argument listing the valid names.
[[nodiscard]] const BackendInfo& backend_or_throw(std::string_view name);

/// Comma-separated list of every registry name (for CLI errors / --help).
[[nodiscard]] std::string backend_names();

/// The engine's default backend ("multiqueue-c2", the paper's two-choice
/// MultiQueue).
[[nodiscard]] const BackendInfo& default_backend();

/// Instantiation-time parameters shared by every backend. Unused fields are
/// ignored by backends that do not need them.
struct BackendParams {
  unsigned threads = 1;        // intended concurrency (sizes MQ/spray)
  unsigned queue_factor = 4;   // MQ sub-queues per thread (paper: 4)
  std::uint64_t seed = 1;      // scheduler randomness
  std::uint32_t kbound = 0;    // relaxation k for window/sim backends;
                               // 0 derives q = queue_factor * threads
  std::uint32_t capacity = 0;  // priority universe size (labels are
                               // < capacity); required by sim-spraylist
};

namespace detail {

inline std::uint32_t resolved_queues(const BackendParams& p) noexcept {
  return std::max<std::uint32_t>(
      2, p.queue_factor * std::max<unsigned>(p.threads, 1));
}

inline std::uint32_t resolved_k(const BackendParams& p) noexcept {
  return p.kbound != 0 ? p.kbound : resolved_queues(p);
}

}  // namespace detail

/// Carries the concrete scheduler type through dispatch_backend.
template <typename Queue>
struct BackendTag {
  using type = Queue;
};

/// Invokes f(BackendTag<Queue>{}, ctor-args...) for the backend `info`
/// describes, with constructor arguments resolved from `params`. All
/// branches must yield the same result type (typically void or a
/// type-erased job/pointer).
template <typename F>
decltype(auto) dispatch_backend(const BackendInfo& info,
                                const BackendParams& params, F&& f) {
  const std::uint32_t queues = detail::resolved_queues(params);
  const unsigned threads = std::max<unsigned>(params.threads, 1);
  switch (info.kind) {
    case BackendKind::kMultiQueue:
      return f(BackendTag<ConcurrentMultiQueue>{}, queues, params.seed,
               info.choices);
    case BackendKind::kLockFreeMultiQueue:
      return f(BackendTag<LockFreeMultiQueue>{}, queues, params.seed,
               info.choices);
    case BackendKind::kSprayList:
      return f(BackendTag<SprayList>{}, threads, params.seed);
    case BackendKind::kSimMultiQueue:
      return f(BackendTag<LockedScheduler<SimMultiQueue>>{},
               detail::resolved_k(params), params.seed);
    case BackendKind::kSimSprayList: {
      // make_sim_spraylist's parameterization for p = threads.
      const SimSprayParams spray = sim_spray_params(threads);
      return f(BackendTag<LockedScheduler<SimSprayList>>{}, params.capacity,
               spray.height, spray.width, params.seed);
    }
    case BackendKind::kKBounded:
      return f(BackendTag<LockedScheduler<KBoundedScheduler>>{},
               detail::resolved_k(params), params.seed);
    case BackendKind::kExact:
      return f(BackendTag<LockedScheduler<ExactHeapScheduler>>{},
               params.seed);
  }
  throw std::logic_error("dispatch_backend: unknown BackendKind");
}

/// Nominal Definition 1 rank-bound scale k for `info` under `params`: the
/// quantity the exponential tail Pr[rank >= l] <= exp(-l/k) decays against.
/// Deterministic backends honour it strictly (rank < k); randomized ones in
/// expectation/tail. Tests compare empirical measurements against generous
/// multiples of this value.
[[nodiscard]] inline std::uint64_t expected_rank_bound(
    const BackendInfo& info, const BackendParams& params) {
  const unsigned threads = std::max<unsigned>(params.threads, 1);
  switch (info.kind) {
    case BackendKind::kMultiQueue:
    case BackendKind::kLockFreeMultiQueue:
    case BackendKind::kSimMultiQueue:
      return detail::resolved_queues(params);
    case BackendKind::kSprayList:
      return SprayList::spray_params(threads).reach();
    case BackendKind::kSimSprayList:
      return sim_spray_params(threads).reach();
    case BackendKind::kKBounded:
      return detail::resolved_k(params);
    case BackendKind::kExact:
      return 1;
  }
  throw std::logic_error("expected_rank_bound: unknown BackendKind");
}

/// Batch-aware Definition 1 rank scale: a native batched pop claims k
/// consecutive minima from ONE sub-structure (one best-of-c sub-queue, one
/// sub-list, one spray neighbourhood), so batch element i is served at rank
/// up to ~i sub-structure spacings past the single-pop bound — O(k * k_0)
/// overall, where k_0 = expected_rank_bound. Backends without a native
/// batch (the generic one-at-a-time shim) stay at k_0 per pop, which this
/// bound dominates, so one envelope covers the whole registry.
[[nodiscard]] inline std::uint64_t batched_rank_bound(
    const BackendInfo& info, const BackendParams& params, std::uint64_t k) {
  return std::max<std::uint64_t>(k, 1) * expected_rank_bound(info, params);
}

}  // namespace relax::sched
