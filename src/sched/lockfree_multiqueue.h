// Lock-free MultiQueue — the paper's own scheduler variant (§1, §4): "a
// lock-free extension of the MultiQueue relaxed schedulers [21] ... We use
// lock-free lists to maintain the individual priority queues".
//
// Layout: q sub-queues, each a Harris-style lock-free sorted singly-linked
// list (CAS insertion, logical mark-then-unlink deletion with cooperative
// helping). ApproxGetMin samples `choices` distinct sub-lists, peeks their
// heads without writing, and claims the head of the apparently smaller one
// by CASing the mark bit into the head node's own next pointer — the mark
// also fences off concurrent insertions behind the claimed node, because
// their link CAS expects an unmarked next value.
//
// Relaxation: identical two-choice process to the locked MultiQueue, so the
// (O(q), O(q log q)) bounds of Alistarh et al. [2] apply; tests measure the
// empirical tails side by side with the locked variant.
//
// Cost model: a sorted-list insert is O(rank of the key within its
// sub-list). The framework's traffic is exactly the favourable case: the
// initial task load is bulk (see bulk_load, which builds each sub-list
// directly from its sorted strided partition), and every later insert is a
// *re-insertion* of a just-popped task whose priority is near the top, so
// the walk is short. Arbitrary insert streams work but degrade to O(n) per
// insert; use the heap-based ConcurrentMultiQueue for those.
//
// Memory reclamation: unlinked nodes may still be traversed by concurrent
// walks, so nodes go on a lock-free allocation chain and are freed only at
// destruction — O(n + poly(k)) nodes for framework executions (Theorem 2),
// the same policy as the SprayList.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sched/sampling.h"
#include "sched/scheduler.h"
#include "sched/stripe_map.h"
#include "util/padded.h"
#include "util/rng.h"

namespace relax::sched {

class LockFreeMultiQueue {
 public:
  /// num_queues should be queue_factor * num_threads (paper: factor 4).
  /// choices = 2 is the classic power-of-two-choices MultiQueue; 1 degrades
  /// to uniform single sampling (ablation knob, no rank bound).
  /// probe_limit: consecutive empty samples before approx_get_min falls
  /// back to a full sub-list scan (0 = scan every pop; a testing seam).
  explicit LockFreeMultiQueue(std::uint32_t num_queues,
                              std::uint64_t seed = 1, unsigned choices = 2,
                              int probe_limit = kProbeLimit)
      : queues_(std::max<std::uint32_t>(num_queues, 1)),
        seed_(seed),
        choices_(choices < 1 ? 1 : choices),
        probe_limit_(probe_limit < 0 ? 0 : probe_limit) {
    for (auto& q : queues_) {
      Node* sentinel = allocate(0);
      q.value.head = sentinel;
    }
  }

  ~LockFreeMultiQueue() {
    Node* node = alloc_chain_.load(std::memory_order_acquire);
    while (node != nullptr) {
      Node* next = node->alloc_next;
      delete node;
      node = next;
    }
  }

  LockFreeMultiQueue(const LockFreeMultiQueue&) = delete;
  LockFreeMultiQueue& operator=(const LockFreeMultiQueue&) = delete;

  /// Thread-local handle (owns an RNG stream). Handles may not be shared.
  class Handle {
   public:
    void insert(Priority p) { mq_->insert(p, rng_, &ctx_); }
    /// Native batched insert: CAS-splices the sorted run into a handful of
    /// sub-lists (one for small runs, strided chunks of >= kMinSpliceChunk
    /// keys for large ones), each chunk in a single forward walk — one
    /// list traversal plus k link CASes per chunk instead of k traversals,
    /// amortizing like the MultiQueue's chunked merge. Safe concurrently
    /// with any handle operation.
    void insert_batch(std::span<const Priority> keys) {
      mq_->insert_batch(keys, rng_, &ctx_);
    }
    std::optional<Priority> approx_get_min() {
      return mq_->approx_get_min(rng_, &ctx_);
    }
    /// Batched claim: one sample, then up to `k` successive head claims on
    /// the chosen sub-list (each an O(1)-expected CAS at the front).
    /// Appends to `out`; returns the number claimed (0 = observed empty).
    std::size_t approx_get_min_batch(std::size_t k,
                                     std::vector<Priority>& out) {
      return mq_->approx_get_min_batch(k, out, rng_, &ctx_);
    }

    /// The owning worker's topology domain (engine session state sets this
    /// right after make_handle). Only meaningful once the queue carries a
    /// StripeMap with > 1 domain; otherwise placement stays flat.
    void set_domain(unsigned domain) { ctx_.domain = domain; }
    /// Cumulative local/steal claim tally for this handle (a steal = a
    /// claim served from a stripe outside the handle's domain while the
    /// queue runs with > 1 domain).
    [[nodiscard]] StripeStats stripe_stats() const noexcept {
      return StripeStats{ctx_.local_claims, ctx_.steal_claims};
    }

   private:
    friend class LockFreeMultiQueue;
    Handle(LockFreeMultiQueue* mq, std::uint64_t stream)
        : mq_(mq), rng_(stream) {}
    LockFreeMultiQueue* mq_;
    util::Rng rng_;
    StripeContext ctx_;
  };

  [[nodiscard]] Handle get_handle() {
    const std::uint64_t id =
        next_handle_.fetch_add(1, std::memory_order_relaxed);
    return Handle(this, seed_ ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  }

  /// Pre-loads `keys` round-robin across the sub-lists, building each list
  /// directly (single-threaded; call before spawning workers). Much faster
  /// than per-key insert for large ascending task loads.
  void bulk_load(std::span<const Priority> keys) {
    const std::size_t q = queues_.size();
    std::vector<std::vector<Priority>> buckets(q);
    for (std::size_t i = 0; i < keys.size(); ++i)
      buckets[i % q].push_back(keys[i]);
    for (std::size_t i = 0; i < q; ++i) {
      auto& bucket = buckets[i];
      std::sort(bucket.begin(), bucket.end());
      // Build back-to-front so each node links to the already-built tail.
      Node* next = nullptr;
      for (auto it = bucket.rbegin(); it != bucket.rend(); ++it) {
        Node* node = allocate(*it);
        node->next.store(pack(next, false), std::memory_order_relaxed);
        next = node;
      }
      Node* sentinel = queues_[i].value.head;
      sentinel->next.store(pack(next, false), std::memory_order_release);
      queues_[i].value.count.store(static_cast<std::int64_t>(bucket.size()),
                                   std::memory_order_release);
    }
  }

  /// Single-threaded convenience API (SequentialScheduler-compatible).
  void insert(Priority p) {
    util::Rng rng(seed_ ^ sequential_ops_++);
    insert(p, rng);
  }
  void insert_batch(std::span<const Priority> keys) {
    util::Rng rng(seed_ ^ sequential_ops_++);
    insert_batch(keys, rng);
  }
  std::optional<Priority> approx_get_min() {
    util::Rng rng(seed_ ^ sequential_ops_++);
    return approx_get_min(rng);
  }
  std::size_t approx_get_min_batch(std::size_t k, std::vector<Priority>& out) {
    util::Rng rng(seed_ ^ sequential_ops_++);
    return approx_get_min_batch(k, out, rng);
  }

  /// Sum of the per-sub-list stripes: exact when quiescent, a snapshot
  /// under concurrency.
  [[nodiscard]] std::size_t size() const noexcept {
    std::int64_t total = 0;
    for (const auto& q : queues_)
      total += q.value.count.load(std::memory_order_acquire);
    return total > 0 ? static_cast<std::size_t>(total) : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::uint32_t num_queues() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }

  /// Engages topology-aware placement: handle claims prefer their domain's
  /// stripe block with a bounded cross-domain steal, handle inserts land in
  /// the own block (sched/stripe_map.h). Call while quiescent, before
  /// workers touch the queue; map.stripes() must equal num_queues(). A map
  /// with one domain (or never calling this) keeps the flat path
  /// byte-for-byte unchanged.
  void set_stripe_map(const StripeMap& map) { stripe_map_ = map; }
  [[nodiscard]] const StripeMap& stripe_map() const noexcept {
    return stripe_map_;
  }

  /// Per-sub-list element counts (the striped size): exact when quiescent,
  /// a racy snapshot under concurrency. Monitoring/test seam — this is how
  /// the insert_batch splice-spread regression observes placement.
  [[nodiscard]] std::vector<std::size_t> per_list_sizes() const {
    std::vector<std::size_t> sizes;
    sizes.reserve(queues_.size());
    for (const auto& q : queues_) {
      const std::int64_t c = q.value.count.load(std::memory_order_acquire);
      sizes.push_back(c > 0 ? static_cast<std::size_t>(c) : 0);
    }
    return sizes;
  }

  /// Minimum keys per spliced chunk of a batched insert: below this a
  /// second list walk stops paying for itself and the whole run splices
  /// into one sub-list (the single-round-trip design point of PR 4).
  static constexpr std::size_t kMinSpliceChunk = 64;

 private:
  struct Node {
    explicit Node(Priority k) : key(k) {}
    Priority key;
    std::atomic<std::uintptr_t> next{0};  // tagged: low bit = marked
    Node* alloc_next = nullptr;           // reclamation chain
  };

  struct SubList {
    Node* head = nullptr;  // sentinel; never marked, never unlinked
    std::atomic<std::int64_t> count{0};  // striped size (no global counter)
  };

  static std::uintptr_t pack(Node* node, bool marked) noexcept {
    return reinterpret_cast<std::uintptr_t>(node) |
           static_cast<std::uintptr_t>(marked);
  }
  static Node* ptr_of(std::uintptr_t tagged) noexcept {
    return reinterpret_cast<Node*>(tagged & ~std::uintptr_t{1});
  }
  static bool marked(std::uintptr_t tagged) noexcept {
    return (tagged & 1) != 0;
  }

  Node* allocate(Priority key) {
    Node* node = new Node(key);
    node->alloc_next = alloc_chain_.load(std::memory_order_relaxed);
    while (!alloc_chain_.compare_exchange_weak(node->alloc_next, node,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
    }
    return node;
  }

  /// Harris search: positions (pred, curr) such that curr is the first
  /// unmarked node with key >= `key` (curr == nullptr at the end), helping
  /// unlink marked nodes along the way. pred is always unmarked-at-read.
  struct Window {
    Node* pred;
    std::uintptr_t pred_next;  // the unmarked tagged value observed
    Node* curr;
  };

  /// Search starting from `start` instead of the head — the amortization
  /// seam for the batched insert: successive keys of a sorted run resume
  /// from the previous key's link position, so the run costs one walk. A
  /// `start` that has itself been claimed (its next is marked) cannot serve
  /// as a predecessor; the walk then restarts from the sentinel, which is
  /// never marked.
  Window search_from(SubList& list, Node* start, Priority key) {
    for (;;) {
      Node* pred = start;
      std::uintptr_t pred_next = pred->next.load(std::memory_order_acquire);
      if (marked(pred_next)) {
        start = list.head;
        continue;  // start died underneath us: fall back to a full walk
      }
      Node* curr = ptr_of(pred_next);
      while (curr != nullptr) {
        const std::uintptr_t curr_next =
            curr->next.load(std::memory_order_acquire);
        if (marked(curr_next)) {
          // Help unlink the logically deleted node.
          const std::uintptr_t unlinked = pack(ptr_of(curr_next), false);
          if (!pred->next.compare_exchange_strong(
                  pred_next, unlinked, std::memory_order_acq_rel)) {
            break;  // pred changed (or got marked): restart the walk
          }
          pred_next = unlinked;
          curr = ptr_of(curr_next);
          continue;
        }
        if (curr->key >= key) return Window{pred, pred_next, curr};
        pred = curr;
        pred_next = curr_next;
        curr = ptr_of(curr_next);
      }
      if (curr == nullptr) return Window{pred, pred_next, nullptr};
      // Helping CAS failed: restart (re-validating `start`).
    }
  }

  Window search(SubList& list, Priority key) {
    return search_from(list, list.head, key);
  }

  void insert(Priority p, util::Rng& rng, StripeContext* ctx = nullptr) {
    const bool striped = ctx != nullptr && stripe_map_.domains() > 1;
    const std::size_t victim =
        striped ? sampling::pick_uniform_in_domain(PeekPolicy{this},
                                                   stripe_map_, ctx->domain,
                                                   rng)
                : sampling::pick_uniform(PeekPolicy{this}, rng);
    auto& list = queues_[victim].value;
    Node* node = allocate(p);
    for (;;) {
      Window w = search(list, p);
      node->next.store(pack(w.curr, false), std::memory_order_relaxed);
      std::uintptr_t expected = w.pred_next;
      if (w.pred->next.compare_exchange_strong(expected, pack(node, false),
                                               std::memory_order_acq_rel)) {
        list.count.fetch_add(1, std::memory_order_release);
        return;
      }
      // Lost the race (concurrent insert/claim at pred): re-search.
    }
  }

  /// Splices the strided subsequence sorted[offset], sorted[offset+stride],
  /// ... into `list` in one forward pass: each key's search resumes from
  /// the node just linked (whose key is <= the next key), so the chunk
  /// costs one list traversal plus its link CASes instead of one traversal
  /// per key. Safe concurrently with inserts, claims, and other splices; a
  /// claimed-or-raced resume point falls back to a head walk inside
  /// search_from.
  void splice_run(SubList& list, std::span<const Priority> sorted,
                  std::size_t offset, std::size_t stride) {
    Node* resume = list.head;
    std::int64_t linked = 0;
    for (std::size_t i = offset; i < sorted.size(); i += stride) {
      const Priority p = sorted[i];
      Node* node = allocate(p);
      for (;;) {
        Window w = search_from(list, resume, p);
        node->next.store(pack(w.curr, false), std::memory_order_relaxed);
        std::uintptr_t expected = w.pred_next;
        if (w.pred->next.compare_exchange_strong(expected, pack(node, false),
                                                 std::memory_order_acq_rel)) {
          resume = node;
          ++linked;
          break;
        }
        // Lost the race at pred: re-search from the last linked node (it
        // may itself have been claimed; search_from handles that).
      }
    }
    if (linked > 0) list.count.fetch_add(linked, std::memory_order_release);
  }

  /// Native batched insert (ROADMAP: "a CAS-splice of a sorted run would
  /// amortize like the MultiQueue's merge"): sorts the run and CAS-splices
  /// it via splice_run. Small runs target ONE uniform random sub-list —
  /// the single-coordination-round-trip that makes batching pay. Runs much
  /// larger than kMinSpliceChunk are dealt *strided* over several adjacent
  /// sub-lists, exactly like ConcurrentMultiQueue::bulk_insert's chunking:
  /// parking a whole large run on one sub-list makes that list's head the
  /// run's global minimum neighbourhood for many pops, so every two-choice
  /// sample that misses it is off by O(run) ranks until pops rebalance —
  /// transient skew that inflates the audited mean rank error. Strided
  /// chunks keep neighbouring keys in different sub-lists (each chunk is
  /// still sorted, so the one-walk splice applies per chunk) and perturb
  /// the sampling process by O(chunks), not O(run).
  void insert_batch(std::span<const Priority> keys, util::Rng& rng,
                    StripeContext* ctx = nullptr) {
    if (keys.empty()) return;
    // Under a StripeMap the whole run stays in the inserting handle's
    // domain block; targets and the start offset come from that block.
    const bool striped = ctx != nullptr && stripe_map_.domains() > 1;
    const std::size_t block_begin =
        striped ? stripe_map_.domain_begin(ctx->domain) : 0;
    const std::size_t q =
        striped ? stripe_map_.domain_size(ctx->domain) : queues_.size();
    // Already-sorted runs splice straight from the caller's span; only
    // unsorted runs pay a copy + sort.
    std::span<const Priority> sorted = keys;
    std::vector<Priority> scratch;
    if (!std::is_sorted(keys.begin(), keys.end())) {
      scratch.assign(keys.begin(), keys.end());
      std::sort(scratch.begin(), scratch.end());
      sorted = scratch;
    }
    // Floor division: every chunk carries >= kMinSpliceChunk keys, and
    // runs below 2 * kMinSpliceChunk keep the single-list splice.
    const std::size_t chunks = std::min<std::size_t>(
        q, std::max<std::size_t>(1, sorted.size() / kMinSpliceChunk));
    const std::size_t start = util::bounded(rng, q);
    for (std::size_t c = 0; c < chunks; ++c)
      splice_run(queues_[block_begin + (start + c) % q].value, sorted, c,
                 chunks);
  }

  /// First unmarked key of a sub-list, or nullopt. Read-only.
  std::optional<Priority> peek(const SubList& list) const {
    Node* curr =
        ptr_of(list.head->next.load(std::memory_order_acquire));
    while (curr != nullptr) {
      const std::uintptr_t next = curr->next.load(std::memory_order_acquire);
      if (!marked(next)) return curr->key;
      curr = ptr_of(next);
    }
    return std::nullopt;
  }

  /// Claims and returns the minimum of one sub-list, or nullopt if it is
  /// (momentarily) empty.
  std::optional<Priority> pop_min(SubList& list) {
    for (;;) {
      Node* pred = list.head;
      std::uintptr_t pred_next = pred->next.load(std::memory_order_acquire);
      Node* curr = ptr_of(pred_next);
      while (curr != nullptr) {
        std::uintptr_t curr_next =
            curr->next.load(std::memory_order_acquire);
        if (marked(curr_next)) {
          // Help unlink, then continue from the successor.
          const std::uintptr_t unlinked = pack(ptr_of(curr_next), false);
          if (!pred->next.compare_exchange_strong(
                  pred_next, unlinked, std::memory_order_acq_rel)) {
            break;  // restart the outer loop
          }
          pred_next = unlinked;
          curr = ptr_of(curr_next);
          continue;
        }
        // Claim: set the mark bit on curr's own next pointer. Success
        // linearizes the removal and blocks insertions behind curr.
        if (curr->next.compare_exchange_strong(
                curr_next, curr_next | 1, std::memory_order_acq_rel)) {
          list.count.fetch_sub(1, std::memory_order_release);
          // Best-effort physical unlink; walks will help if this fails.
          pred->next.compare_exchange_strong(pred_next,
                                             pack(ptr_of(curr_next), false),
                                             std::memory_order_acq_rel);
          return curr->key;
        }
        // curr was claimed or gained a successor mark race: restart.
        break;
      }
      if (curr == nullptr) return std::nullopt;
    }
  }

  /// Claims up to `k` successive minima of one sub-list, appending to
  /// `out`. Each claim restarts from the head, where the next minimum
  /// lives (walks past the marked prefix are shortened by the helping
  /// unlink inside pop_min). Stops early when the sub-list runs dry or a
  /// claim race is better resolved by resampling.
  std::size_t pop_min_batch(SubList& list, std::size_t k,
                            std::vector<Priority>& out) {
    std::size_t got = 0;
    while (got < k) {
      const auto p = pop_min(list);
      if (!p) break;
      out.push_back(*p);
      ++got;
    }
    return got;
  }

  /// Sampling policy over the sub-list heads (sched/sampling.h): the probe
  /// is a read-only head walk past the marked prefix. No locks — claims
  /// re-verify via their own CAS.
  struct PeekPolicy {
    const LockFreeMultiQueue* mq;
    [[nodiscard]] std::size_t count() const noexcept {
      return mq->queues_.size();
    }
    [[nodiscard]] std::optional<Priority> peek(std::size_t i) const {
      return mq->peek(mq->queues_[i].value);
    }
  };

  std::optional<Priority> approx_get_min(util::Rng& rng,
                                         StripeContext* ctx = nullptr) {
    if (ctx != nullptr && stripe_map_.domains() > 1) {
      return sampling::select_and_claim_striped(
          PeekPolicy{this}, stripe_map_, *ctx, rng, choices_, probe_limit_,
          std::optional<Priority>{},
          [this](std::size_t idx) { return pop_min(queues_[idx].value); });
    }
    return sampling::select_and_claim(
        PeekPolicy{this}, rng, choices_, probe_limit_,
        std::optional<Priority>{},
        [this](std::size_t idx) { return pop_min(queues_[idx].value); });
  }

  std::size_t approx_get_min_batch(std::size_t k, std::vector<Priority>& out,
                                   util::Rng& rng,
                                   StripeContext* ctx = nullptr) {
    if (k == 0) return 0;
    if (ctx != nullptr && stripe_map_.domains() > 1) {
      return sampling::select_and_claim_striped(
          PeekPolicy{this}, stripe_map_, *ctx, rng, choices_, probe_limit_,
          std::size_t{0}, [&](std::size_t idx) {
            return pop_min_batch(queues_[idx].value, k, out);
          });
    }
    return sampling::select_and_claim(
        PeekPolicy{this}, rng, choices_, probe_limit_, std::size_t{0},
        [&](std::size_t idx) {
          return pop_min_batch(queues_[idx].value, k, out);
        });
  }

  static constexpr int kProbeLimit = 16;

  std::vector<util::Padded<SubList>> queues_;
  StripeMap stripe_map_;  // 1 domain until set_stripe_map engages placement
  std::uint64_t seed_;
  unsigned choices_ = 2;
  int probe_limit_ = kProbeLimit;
  std::atomic<std::uint64_t> next_handle_{0};
  std::atomic<Node*> alloc_chain_{nullptr};
  std::uint64_t sequential_ops_ = 0;
};

static_assert(ConcurrentScheduler<LockFreeMultiQueue>);

}  // namespace relax::sched
