// Empirical measurement of a scheduler's relaxation quality (Definition 1).
//
// Wraps any SequentialScheduler and maintains an exact order-statistics
// mirror of its contents. On every pop it records:
//
//   * rank error: the popped element's 0-based rank among present elements
//     (0 == exact behaviour). Definition 1 demands Pr[rank >= l] <=
//     exp(-l/k).
//   * inversions: for a deterministic 1-in-`sample_stride` subset of
//     priorities, the number of lower-priority pops that occur while the
//     tracked element is present (Definition 1: Pr[inv >= l] <=
//     exp(-l/phi)). Sampling keeps per-pop overhead O(#tracked).
//
// The monitor itself satisfies SequentialScheduler, so it can be dropped
// into the execution framework to measure in-situ relaxation during real
// algorithm runs — which is exactly how bench/scheduler_quality produces
// the Definition 1 validation tables.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sched/order_stat_set.h"
#include "sched/scheduler.h"
#include "util/stats.h"

namespace relax::sched {

template <SequentialScheduler Inner>
class RelaxationMonitor {
 public:
  /// capacity: priority universe size. sample_stride: track inversions for
  /// priorities p with p % sample_stride == 0 (1 = track everything).
  RelaxationMonitor(Inner inner, std::uint32_t capacity,
                    std::uint32_t sample_stride = 1)
      : inner_(std::move(inner)),
        mirror_(capacity),
        stride_(sample_stride == 0 ? 1 : sample_stride) {}

  void insert(Priority p) {
    mirror_.insert(p);
    if (p % stride_ == 0) tracked_.emplace(p, 0);
    inner_.insert(p);
  }

  /// Batched insert, measured: the mirror observes every key individually
  /// (a batched insert is k inserts as far as Definition 1 is concerned —
  /// inserts carry no rank), then the run is handed to the wrapped
  /// scheduler's own batched path so the audit measures the same splice
  /// the production path runs.
  void insert_batch(std::span<const Priority> keys) {
    for (const Priority p : keys) {
      mirror_.insert(p);
      if (p % stride_ == 0) tracked_.emplace(p, 0);
    }
    sched::insert_batch(inner_, keys);
  }

  std::optional<Priority> approx_get_min() {
    auto popped = inner_.approx_get_min();
    if (!popped) return popped;
    record_pop(*popped);
    return popped;
  }

  /// Batched pop, measured: pulls the batch from the wrapped scheduler
  /// (its native batched claim when it has one) and accounts each label in
  /// pop order — element i's rank is taken with the batch's earlier labels
  /// already erased from the mirror, i.e. a batch is assessed as k
  /// successive pops, which is exactly what Definition 1's per-pop rank
  /// speaks about.
  std::size_t approx_get_min_batch(std::size_t k, std::vector<Priority>& out) {
    const std::size_t before = out.size();
    const std::size_t got = pop_batch(inner_, k, out);
    for (std::size_t i = before; i < out.size(); ++i) record_pop(out[i]);
    return got;
  }

  [[nodiscard]] bool empty() const noexcept { return inner_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return inner_.size(); }

  [[nodiscard]] const util::ExponentialHistogram& rank_histogram() const {
    return rank_hist_;
  }
  [[nodiscard]] const util::ExponentialHistogram& inversion_histogram()
      const {
    return inversion_hist_;
  }

  [[nodiscard]] Inner& inner() noexcept { return inner_; }

 private:
  void record_pop(Priority p) {
    rank_hist_.add(mirror_.rank_of(p));
    mirror_.erase(p);
    for (auto& [tp, inv] : tracked_) {
      if (tp < p) ++inv;
    }
    if (const auto it = tracked_.find(p); it != tracked_.end()) {
      inversion_hist_.add(it->second);
      tracked_.erase(it);
    }
  }

  Inner inner_;
  OrderStatSet mirror_;
  std::uint32_t stride_;
  std::unordered_map<Priority, std::uint64_t> tracked_;
  util::ExponentialHistogram rank_hist_;
  util::ExponentialHistogram inversion_hist_;
};

}  // namespace relax::sched
