// Sequential simulation of the SprayList (Alistarh, Kopinsky, Li, Shavit,
// PPoPP'15). The SprayList performs a random descent ("spray") over a skip
// list: starting from a height-h tower it repeatedly jumps a uniformly
// random number of forward steps at each level before descending. The
// landing rank is a sum of independent uniform jumps, concentrated around
// its mean with exponential tails — which is what makes the SprayList a
// (O(p polylog p), O(p polylog p))-relaxed scheduler.
//
// We simulate the spray over an order-statistics set: rank = sum over
// `height` levels of Uniform[0, width]. height defaults to ceil(log2 p)+1
// and width to max(1, p/..) per the paper's parameterization; we expose the
// spray parameters directly and provide make_sim_spraylist(p) with the
// published defaults.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>

#include "sched/order_stat_set.h"
#include "sched/scheduler.h"
#include "util/rng.h"

namespace relax::sched {

class SimSprayList {
 public:
  /// capacity = priority universe size; a spray jumps `height` times, each a
  /// uniform step count in [0, width].
  SimSprayList(std::uint32_t capacity, std::uint32_t height,
               std::uint32_t width, std::uint64_t seed)
      : set_(capacity),
        height_(std::max<std::uint32_t>(height, 1)),
        width_(width),
        rng_(seed) {}

  void insert(Priority p) { set_.insert(p); }

  std::optional<Priority> approx_get_min() {
    if (set_.empty()) return std::nullopt;
    std::uint64_t rank = 0;
    for (std::uint32_t level = 0; level < height_; ++level)
      rank += util::bounded(rng_, static_cast<std::uint64_t>(width_) + 1);
    rank = std::min<std::uint64_t>(rank, set_.size() - 1);
    const Priority p = set_.select(static_cast<std::uint32_t>(rank));
    set_.erase(p);
    return p;
  }

  [[nodiscard]] bool empty() const noexcept { return set_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return set_.size(); }

  /// Expected spray reach (max attainable rank + 1).
  [[nodiscard]] std::uint64_t reach() const noexcept {
    return static_cast<std::uint64_t>(height_) * width_ + 1;
  }

 private:
  OrderStatSet set_;
  std::uint32_t height_;
  std::uint32_t width_;
  util::Rng rng_;
};

/// Spray parameters for p simulated threads, following the SprayList paper:
/// height ~ log p, per-level jump width ~ p, giving reach O(p log p).
/// Single source of truth shared by make_sim_spraylist, the backend
/// registry's dispatch, and its Definition 1 rank-bound estimate.
struct SimSprayParams {
  std::uint32_t height;
  std::uint32_t width;

  [[nodiscard]] std::uint64_t reach() const noexcept {
    return static_cast<std::uint64_t>(height) * width;
  }
};

inline SimSprayParams sim_spray_params(std::uint32_t p) noexcept {
  return SimSprayParams{std::bit_width(std::max<std::uint32_t>(p, 2)),
                        std::max<std::uint32_t>(p, 1)};
}

inline SimSprayList make_sim_spraylist(std::uint32_t capacity,
                                       std::uint32_t p, std::uint64_t seed) {
  const SimSprayParams params = sim_spray_params(p);
  return SimSprayList(capacity, params.height, params.width, seed);
}

static_assert(SequentialScheduler<SimSprayList>);

}  // namespace relax::sched
