// Canonical k-relaxed scheduler (paper §2.1): ApproxGetMin returns a
// uniformly random element among the top-k present priorities.
//
// This is the analytic model the paper suggests keeping in mind ("it may
// help to think of a queue which returns a uniformly random element of the
// top-k at each step as the canonical k-relaxed Q"). It satisfies both
// Definition 1 bounds: rank error is capped at k deterministically, and an
// element at rank 1 survives each step with probability at most (k-1)/k,
// giving Pr[inv >= l] <= ((k-1)/k)^l <= exp(-l/k).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "sched/order_stat_set.h"
#include "sched/scheduler.h"
#include "util/rng.h"

namespace relax::sched {

class TopKUniformScheduler {
 public:
  /// capacity = priority universe size (number of tasks).
  TopKUniformScheduler(std::uint32_t capacity, std::uint32_t k,
                       std::uint64_t seed)
      : set_(capacity), k_(std::max<std::uint32_t>(k, 1)), rng_(seed) {}

  void insert(Priority p) { set_.insert(p); }

  std::optional<Priority> approx_get_min() {
    if (set_.empty()) return std::nullopt;
    const std::uint32_t window = std::min<std::uint32_t>(k_, set_.size());
    const auto r =
        static_cast<std::uint32_t>(util::bounded(rng_, window));
    const Priority p = set_.select(r);
    set_.erase(p);
    return p;
  }

  [[nodiscard]] bool empty() const noexcept { return set_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return set_.size(); }
  [[nodiscard]] std::uint32_t relaxation() const noexcept { return k_; }

 private:
  OrderStatSet set_;
  std::uint32_t k_;
  util::Rng rng_;
};

static_assert(SequentialScheduler<TopKUniformScheduler>);

}  // namespace relax::sched
