// Uniform access shims over the two concurrent-scheduler surfaces.
//
// The library's concurrent backends come in two shapes:
//
//   * handle-based: MultiQueue, LockFreeMultiQueue, SprayList expose
//     get_handle(), and each thread drives its own handle (a private RNG
//     stream plus a pointer — handles may not be shared);
//   * plain: LockedScheduler wrappers (and anything else satisfying
//     sched::ConcurrentScheduler directly) are safe to call from any thread.
//
// make_handle() erases the difference for generic code (the engine's job
// loop, the cross-backend conformance tests): it returns the backend's own
// handle when one exists and a DirectHandle forwarding shim otherwise.
//
// SequentialView is the complementary adapter for *quiescent* access: it
// narrows a concurrent backend's single-threaded convenience API down to
// the SequentialScheduler concept, which is what RelaxationMonitor needs to
// keep its exact order-statistics mirror in lock-step with the scheduler
// (the monitored engine jobs serialize it under one LockedScheduler lock).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "sched/scheduler.h"

namespace relax::sched {

/// Forwarding shim for backends without per-thread handles. The wrapped
/// scheduler must itself be safe for concurrent calls (LockedScheduler).
/// The batched pop and batched insert forward to the backend's native
/// batch ops when it has them (LockedScheduler amortizes its lock over the
/// batch) and degrade to one-at-a-time ops otherwise, so every backend —
/// locked, sim, deterministic — accepts batching on both sides with
/// unchanged semantics.
template <typename Queue>
struct DirectHandle {
  Queue* queue;
  void insert(Priority p) { queue->insert(p); }
  void insert_batch(std::span<const Priority> keys) {
    sched::insert_batch(*queue, keys);
  }
  std::optional<Priority> approx_get_min() {
    return queue->approx_get_min();
  }
  std::size_t approx_get_min_batch(std::size_t k, std::vector<Priority>& out) {
    return pop_batch(*queue, k, out);
  }
};

/// One thread-private access point for `queue`, whatever its shape.
template <typename Queue>
auto make_handle(Queue& queue) {
  if constexpr (requires { queue.get_handle(); }) {
    return queue.get_handle();
  } else {
    return DirectHandle<Queue>{&queue};
  }
}

/// SequentialScheduler view over a concurrent backend's single-threaded
/// convenience API; only valid while no concurrent operations are in
/// flight (or under an external lock — see engine::MonitoredRelaxedJob).
template <typename Queue>
class SequentialView {
 public:
  explicit SequentialView(Queue& queue) : queue_(&queue) {}
  void insert(Priority p) { queue_->insert(p); }
  void insert_batch(std::span<const Priority> keys) {
    sched::insert_batch(*queue_, keys);
  }
  std::optional<Priority> approx_get_min() {
    return queue_->approx_get_min();
  }
  std::size_t approx_get_min_batch(std::size_t k, std::vector<Priority>& out) {
    return pop_batch(*queue_, k, out);
  }
  [[nodiscard]] bool empty() const { return queue_->empty(); }
  [[nodiscard]] std::size_t size() const { return queue_->size(); }

 private:
  Queue* queue_;
};

}  // namespace relax::sched
