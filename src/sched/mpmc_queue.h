// Bounded lock-free MPMC FIFO queue (Vyukov's bounded queue design:
// per-cell sequence numbers, fetch-and-add style ticket acquisition).
//
// This is our stand-in for the "Wait-free queue as fast as fetch-and-add"
// of Yang & Mellor-Crummey [27], which the paper uses as the *exact*
// concurrent scheduler: tasks are loaded in priority order and dequeued
// FIFO, so the queue delivers exact priority order with one FAA-dominated
// operation per dequeue. Our executor pre-loads all n tasks and never
// enqueues afterwards (stragglers backoff-wait instead of re-inserting,
// exactly as described in §4 of the paper), so the bounded capacity is
// simply n and the fast path is a single fetch_add plus one cell handoff.
//
// The structure is nonetheless a complete general-purpose MPMC queue
// (concurrent enqueue + dequeue, wrap-around), tested independently.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/padded.h"
#include "util/spinlock.h"  // for cpu_relax

namespace relax::sched {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to a power of two (required for index masking).
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Non-blocking enqueue; returns false when the queue is full.
  bool try_enqueue(T value) {
    std::size_t pos = enqueue_pos_->load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_->compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_->load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[pos & mask_];
    cell.value = std::move(value);
    cell.sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking dequeue; nullopt when the queue is empty.
  std::optional<T> try_dequeue() {
    std::size_t pos = dequeue_pos_->load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_->compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_->load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[pos & mask_];
    T out = std::move(cell.value);
    cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate size (racy snapshot; exact when quiescent).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t e = enqueue_pos_->load(std::memory_order_acquire);
    const std::size_t d = dequeue_pos_->load(std::memory_order_acquire);
    return e > d ? e - d : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  util::Padded<std::atomic<std::size_t>> enqueue_pos_{0};
  util::Padded<std::atomic<std::size_t>> dequeue_pos_{0};
};

}  // namespace relax::sched
