// Sequential simulation of the MultiQueue (Rihani, Sanders, Dementiev,
// SPAA'15): q independent min-heaps; Insert pushes to a uniformly random
// heap; ApproxGetMin samples two distinct heaps uniformly at random and pops
// the smaller of their minima (the classic power-of-two-choices rule).
//
// Alistarh et al. (PODC'17, reference [2] of the paper) prove this scheme
// is (O(q), O(q log q))-relaxed. Table 1 of the paper is generated with
// exactly this simulation, with the relaxation factor k equal to the number
// of queues q.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/dary_heap.h"
#include "sched/scheduler.h"
#include "util/rng.h"

namespace relax::sched {

class SimMultiQueue {
 public:
  SimMultiQueue(std::uint32_t num_queues, std::uint64_t seed)
      : queues_(std::max<std::uint32_t>(num_queues, 1)), rng_(seed) {}

  void insert(Priority p) {
    queues_[util::bounded(rng_, queues_.size())].push(p);
    ++size_;
  }

  std::optional<Priority> approx_get_min() {
    if (size_ == 0) return std::nullopt;
    const std::size_t q = queues_.size();
    std::size_t a = util::bounded(rng_, q);
    std::size_t b = q > 1 ? util::bounded(rng_, q - 1) : a;
    if (q > 1 && b >= a) ++b;  // uniform over distinct pairs
    // Power of two choices; fall back to a linear scan if both are empty
    // (size_ > 0 guarantees some queue is non-empty).
    const std::size_t chosen = pick_nonempty_smaller(a, b);
    --size_;
    return queues_[chosen].pop();
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t num_queues() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }

 private:
  std::size_t pick_nonempty_smaller(std::size_t a, std::size_t b) noexcept {
    const bool ea = queues_[a].empty();
    const bool eb = queues_[b].empty();
    if (!ea && !eb)
      return queues_[a].top() <= queues_[b].top() ? a : b;
    if (!ea) return a;
    if (!eb) return b;
    // Both sampled queues empty: retry with fresh samples (cheap, and keeps
    // the two-choice distribution conditioned on non-emptiness).
    for (;;) {
      const std::size_t c = util::bounded(rng_, queues_.size());
      if (!queues_[c].empty()) return c;
    }
  }

  std::vector<DaryHeap<Priority>> queues_;
  std::size_t size_ = 0;
  util::Rng rng_;
};

static_assert(SequentialScheduler<SimMultiQueue>);

}  // namespace relax::sched
