// Wait-free FAA array queue — the exact concurrent scheduler (paper §4).
//
// Stand-in for the "Wait-free queue as fast as fetch-and-add" of Yang &
// Mellor-Crummey [27]. The paper's exact executor loads all n tasks in
// priority order up front and only ever dequeues afterwards (stragglers
// backoff-wait rather than re-insert), so the queue degenerates to a
// ticket dispenser over the priority-sorted task array: one wait-free
// fetch_add per dequeue, which is precisely the fast path of [27] and its
// contention profile. (The general-purpose Vyukov MPMC ring in
// sched/mpmc_queue.h also works here, but its CAS retry loop storms under
// a 24-thread dequeue-only load, which distorts the exact-scheduler series
// of Figure 2; the dispenser is the honest baseline.)
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/padded.h"

namespace relax::sched {

template <typename T>
class FaaArrayQueue {
 public:
  FaaArrayQueue() = default;
  explicit FaaArrayQueue(std::vector<T> items) : items_(std::move(items)) {}

  FaaArrayQueue(const FaaArrayQueue&) = delete;
  FaaArrayQueue& operator=(const FaaArrayQueue&) = delete;

  /// Single-threaded setup: replaces the backing array and resets the
  /// cursor. Must not race with try_dequeue.
  void load(std::vector<T> items) {
    items_ = std::move(items);
    next_->store(0, std::memory_order_release);
  }

  /// Wait-free: one fetch_add. nullopt once every item has been dispensed.
  std::optional<T> try_dequeue() {
    const std::size_t idx = next_->fetch_add(1, std::memory_order_acq_rel);
    if (idx >= items_.size()) return std::nullopt;
    return items_[idx];
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return items_.size();
  }

  /// Items not yet dispensed (racy snapshot; exact when quiescent).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t n = next_->load(std::memory_order_acquire);
    return n < items_.size() ? items_.size() - n : 0;
  }

 private:
  std::vector<T> items_;
  util::Padded<std::atomic<std::size_t>> next_{0};
};

}  // namespace relax::sched
