// Scheduler interfaces (paper §2.1).
//
// A scheduler holds task *priorities*. Priorities in this library are dense
// 32-bit labels assigned by a permutation pi: label 0 is the highest
// priority. Because labels are unique per task and re-insertions reuse the
// original label (paper: Q.insert(v_t, pi(v_t))), the scheduler only needs
// to store the label itself; callers map labels back to tasks through
// graph::Priorities::order.
//
// Sequential schedulers implement:
//   insert(label)              -- paper's Insert(<task, priority>)
//   approx_get_min()           -- paper's ApproxGetMin(); nullopt == bottom
//   empty(), size()
//
// A (k, phi)-relaxed scheduler (Definition 1) additionally promises
// exponential tail bounds on the rank of returned elements (rank bound k)
// and on per-element priority inversions (fairness bound phi). The bounds
// are not enforceable by the type system; tests/sched_quality_test.cc and
// bench/scheduler_quality measure them empirically via RelaxationMonitor.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/spinlock.h"

namespace relax::sched {

using Priority = std::uint32_t;

template <typename S>
concept SequentialScheduler = requires(S s, Priority p) {
  { s.insert(p) } -> std::same_as<void>;
  { s.approx_get_min() } -> std::same_as<std::optional<Priority>>;
  { s.empty() } -> std::convertible_to<bool>;
  { s.size() } -> std::convertible_to<std::size_t>;
};

/// Concurrent schedulers use the same vocabulary but must be safe to call
/// from many threads. approx_get_min() returning nullopt means "observed
/// empty at some point during the call" — with in-flight re-insertions the
/// caller must use its own termination criterion (see core/parallel docs).
template <typename S>
concept ConcurrentScheduler = requires(S s, Priority p) {
  { s.insert(p) } -> std::same_as<void>;
  { s.approx_get_min() } -> std::same_as<std::optional<Priority>>;
};

/// Batched pop over any scheduler-like surface (a scheduler, a handle, a
/// view): appends up to `k` labels to `out` and returns how many were
/// appended; 0 means "observed empty". Uses the target's native
/// approx_get_min_batch when it has one (one coordination round trip for
/// the whole batch — the throughput lever), and degrades to k single pops
/// otherwise, so every backend supports batching with unchanged semantics.
///
/// Relaxation cost: a native batch claims k consecutive minima from ONE
/// sub-structure, so a (k_0)-rank-bounded scheduler serves batch element i
/// at rank O(k_0 + i * q)-ish — the batch-aware Definition 1 envelope is
/// O(k * k_0), not k_0 (see backend_registry.h's batched_rank_bound and
/// tests/sched_quality_test.cc).
template <typename S>
std::size_t pop_batch(S& s, std::size_t k, std::vector<Priority>& out) {
  if constexpr (requires { s.approx_get_min_batch(k, out); }) {
    return s.approx_get_min_batch(k, out);
  } else {
    std::size_t got = 0;
    while (got < k) {
      const auto p = s.approx_get_min();
      if (!p) break;
      out.push_back(*p);
      ++got;
    }
    return got;
  }
}

/// Batched insert over any scheduler-like surface — the insert-side mirror
/// of pop_batch, so batching is a symmetric whole-system property instead
/// of a pop-only special case. Prefers the target's native insert_batch
/// (one coordination round trip — a sorted-run splice into one
/// sub-structure, or one lock for a serialized adapter), then a live
/// bulk_insert (the MultiQueue's chunked sorted merge), and degrades to
/// per-key inserts elsewhere, so every backend accepts batched insertion
/// with unchanged multiset semantics.
///
/// Relaxation cost: inserts carry no rank, so a batched insert never
/// loosens a Definition 1 envelope by itself — it only concentrates the
/// batch in one sub-structure, a transient skew of the same O(k) order the
/// batched pop already charges (see batched_rank_bound and
/// tests/sched_quality_test.cc's batched-insert leg).
template <typename S>
void insert_batch(S& s, std::span<const Priority> keys) {
  if (keys.size() == 1) {
    // Singleton runs take the plain insert path: a 1-run "batch" would pay
    // the sort/splice machinery for no amortization.
    s.insert(keys.front());
    return;
  }
  if constexpr (requires { s.insert_batch(keys); }) {
    s.insert_batch(keys);
  } else if constexpr (requires { s.bulk_insert(keys); }) {
    s.bulk_insert(keys);
  } else {
    for (const Priority p : keys) s.insert(p);
  }
}

/// Adapts any SequentialScheduler into a ConcurrentScheduler by serializing
/// every operation through one spinlock. Deliberately unscalable — the use
/// cases are deterministic schedulers (KBoundedScheduler) and audit wrappers
/// (RelaxationMonitor) inside the concurrent engine, where correctness of
/// the single-threaded structure matters more than throughput.
template <SequentialScheduler S>
class LockedScheduler {
 public:
  template <typename... Args>
  explicit LockedScheduler(Args&&... args)
      : inner_(std::forward<Args>(args)...) {}

  void insert(Priority p) {
    std::lock_guard<util::Spinlock> guard(lock_);
    inner_.insert(p);
  }
  /// Batched insert under ONE lock acquisition — the insert-side twin of
  /// approx_get_min_batch: k inserts cost one lock round trip instead of k.
  void insert_batch(std::span<const Priority> keys) {
    std::lock_guard<util::Spinlock> guard(lock_);
    sched::insert_batch(inner_, keys);
  }
  std::optional<Priority> approx_get_min() {
    std::lock_guard<util::Spinlock> guard(lock_);
    return inner_.approx_get_min();
  }
  /// Batched pop under ONE lock acquisition — for the serialized adapters
  /// this is where batching pays: k pops cost one lock round trip instead
  /// of k.
  std::size_t approx_get_min_batch(std::size_t k, std::vector<Priority>& out) {
    std::lock_guard<util::Spinlock> guard(lock_);
    return pop_batch(inner_, k, out);
  }
  [[nodiscard]] bool empty() const {
    std::lock_guard<util::Spinlock> guard(lock_);
    return inner_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<util::Spinlock> guard(lock_);
    return inner_.size();
  }

  /// The wrapped scheduler. Callers must be quiescent (no concurrent ops).
  [[nodiscard]] S& inner() noexcept { return inner_; }

 private:
  mutable util::Spinlock lock_;
  S inner_;
};

}  // namespace relax::sched
